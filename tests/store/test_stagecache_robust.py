"""StageCache on the blob store: corrupt accounting, leases, degradation."""

from __future__ import annotations

import os
import threading
import time

import pytest

from repro.pipeline import PipelineConfig, StageCache, prepare_design
from repro.pipeline.runner import _locked_compute
from repro.placement import PlacementConfig
from repro.routing import RouterConfig
from repro.store import Lease, StoreDegradedWarning
from repro.circuit import superblue_suite

KEY = "cafef00d" * 4


def tiny_config(**overrides) -> PipelineConfig:
    base = dict(scale=0.15, grid_nx=8, grid_ny=8, use_cache=True,
                placement=PlacementConfig(outer_iterations=1),
                router=RouterConfig(nx=8, ny=8, rrr_iterations=1))
    base.update(overrides)
    return PipelineConfig(**base)


class TestCorruptAccounting:
    def test_checksum_corruption_counts_corrupt_not_miss(self, tmp_path):
        cache = StageCache(str(tmp_path))
        cache.store(KEY, {"stage": "product"})
        data = bytearray(open(cache._path(KEY), "rb").read())
        data[1] ^= 0xFF
        open(cache._path(KEY), "wb").write(bytes(data))

        assert cache.load(KEY) is None
        assert cache.corrupt == 1
        assert cache.misses == 0
        assert cache.hits == 0
        assert not os.path.exists(cache._path(KEY))  # quarantined
        # Recompute lands in a clean slot and hits normally.
        cache.store(KEY, {"stage": "recomputed"})
        assert cache.load(KEY) == {"stage": "recomputed"}
        assert cache.hits == 1

    def test_unpicklable_legacy_blob_is_quarantined(self, tmp_path):
        cache = StageCache(str(tmp_path))
        path = cache._path(KEY)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "wb") as fh:
            fh.write(b"not a pickle")  # unframed: legacy read path
        assert cache.load(KEY) is None
        assert cache.corrupt == 1
        assert cache.misses == 0
        assert not os.path.exists(path)
        assert cache.blobs.quarantine_records()[0]["reason"].startswith(
            "unpicklable payload")

    def test_load_if_present_skips_the_miss_counter(self, tmp_path):
        cache = StageCache(str(tmp_path))
        assert cache.load_if_present(KEY) is None
        assert cache.misses == 0
        cache.store(KEY, 42)
        assert cache.load_if_present(KEY) == 42
        assert cache.hits == 1


class TestDegradedCache:
    def test_unwritable_root_completes_uncached_with_warning(self, tmp_path):
        blocker = tmp_path / "not-a-dir"
        blocker.write_text("x")
        cache = StageCache(str(blocker / "cache"))
        design = superblue_suite(scale=0.15)[0]
        with pytest.warns(StoreDegradedWarning):
            graph = prepare_design(design, tiny_config(), cache=cache)
        assert graph.num_gcells > 0
        assert cache.degraded
        assert cache.stores == 0

    def test_rootless_cache_counts_misses_only(self, tmp_path):
        cache = StageCache(None)
        assert cache.load(KEY) is None
        assert cache.misses == 1
        cache.store(KEY, 1)  # no-op
        assert cache.stores == 0
        assert not cache.contains(KEY)


class TestLockedCompute:
    def test_computes_and_stores_under_a_lease(self, tmp_path):
        cache = StageCache(str(tmp_path))
        value = _locked_compute(cache, KEY, "route", "tiny", lambda: 41)
        assert value == 41
        assert cache.load(KEY) == 41
        assert not os.path.exists(cache.blobs.lease_path(KEY))  # released

    def test_waits_for_a_live_holder_and_loads_their_result(self, tmp_path):
        cache = StageCache(str(tmp_path))
        holder = cache.try_lease(KEY)
        assert isinstance(holder, Lease)

        def finish_elsewhere():
            time.sleep(0.4)
            cache.store(KEY, "their result")
            holder.release()

        thread = threading.Thread(target=finish_elsewhere)
        thread.start()
        computed = []
        value = _locked_compute(cache, KEY, "route", "tiny",
                                lambda: computed.append(1) or "my result")
        thread.join()
        assert value == "their result"
        assert computed == []  # no duplicate stage work

    def test_steals_a_dead_holders_lease(self, tmp_path):
        cache = StageCache(str(tmp_path))
        crashed = cache.try_lease(KEY)
        old = time.time() - 1000
        os.utime(crashed.path, (old, old))  # heartbeat long gone
        value = _locked_compute(cache, KEY, "route", "tiny", lambda: 7)
        assert value == 7
        assert cache.load(KEY) == 7

    def test_acquirer_rechecks_cache_before_computing(self, tmp_path):
        cache = StageCache(str(tmp_path))
        cache.store(KEY, "already done")
        value = _locked_compute(cache, KEY, "route", "tiny",
                                lambda: pytest.fail("must not recompute"))
        assert value == "already done"
