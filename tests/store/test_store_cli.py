"""Tests for the ``repro store`` maintenance CLI (gc / stats / quarantine)."""

from __future__ import annotations

import os
import time

from repro.cli import main
from repro.store import BlobStore

KEY = "beadfeed" * 4


def seeded_store(root: str) -> BlobStore:
    """A store with one object, one orphaned tmp, one expired lease."""
    store = BlobStore(root)
    store.put(KEY, b"a stage product")
    obj_dir = os.path.dirname(store.object_path(KEY))
    orphan = os.path.join(obj_dir, "orphan.tmp")
    with open(orphan, "wb") as fh:
        fh.write(b"debris")
    dead = store.lease_path("dead" * 8)
    os.makedirs(os.path.dirname(dead), exist_ok=True)
    with open(dead, "w") as fh:
        fh.write("{}")
    old = time.time() - 10_000
    os.utime(orphan, (old, old))
    os.utime(dead, (old, old))
    return store


class TestStoreGc:
    def test_gc_reports_and_removes_debris(self, tmp_path, capsys):
        store = seeded_store(str(tmp_path))
        assert main(["store", "gc", "--root", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "removed 1 orphaned tmp file(s), 1 expired lease(s)" in out
        assert store.get(KEY) == b"a stage product"  # objects untouched

    def test_gc_respects_max_age(self, tmp_path, capsys):
        seeded_store(str(tmp_path))
        assert main(["store", "gc", "--root", str(tmp_path),
                     "--max-age", "1e9"]) == 0
        out = capsys.readouterr().out
        assert "removed 0 orphaned tmp file(s)" in out

    def test_gc_defaults_to_the_stage_cache_root(self, tmp_path, capsys,
                                                 monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        seeded_store(str(tmp_path))
        assert main(["store", "gc"]) == 0
        assert "expired lease(s)" in capsys.readouterr().out


class TestStoreStats:
    def test_stats_census(self, tmp_path, capsys):
        seeded_store(str(tmp_path))
        assert main(["store", "stats", "--root", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "objects         1" in out
        assert "active leases   1" in out


class TestStoreQuarantine:
    def test_empty_quarantine(self, tmp_path, capsys):
        assert main(["store", "quarantine", "--root", str(tmp_path)]) == 0
        assert "empty" in capsys.readouterr().out

    def test_lists_reasons(self, tmp_path, capsys):
        store = seeded_store(str(tmp_path))
        path = store.object_path(KEY)
        data = bytearray(open(path, "rb").read())
        data[1] ^= 0xFF
        open(path, "wb").write(bytes(data))
        assert store.get(KEY) is None  # quarantines

        assert main(["store", "quarantine", "--root", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "1 artifact(s)" in out
        assert "checksum mismatch" in out
