"""Chaos suite: SIGKILL / corruption / degraded-root end-to-end recovery.

Everything here is deterministic — faults come from the
:mod:`repro.testing.faults` plans (carried into subprocesses via the
``REPRO_FAULTS`` environment variable), not from timing or randomness.
Marked ``chaos`` (and therefore skipped by tier-1); the nightly CI job
runs them with ``-m chaos``.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.circuit import superblue_suite
from repro.models.mlp_baseline import MLPBaseline
from repro.nn.serialize import CheckpointError, save_checkpoint
from repro.pipeline import (PipelineConfig, STAGE_CALLS, StageCache,
                            prepare_designs, reset_stage_calls,
                            stage_keys_for)
from repro.placement import PlacementConfig
from repro.routing import RouterConfig
from repro.serve.registry import restore_model, save_model
from repro.store import StoreDegradedWarning, sweep
from repro.testing import FaultInjector, FaultRule
from repro.testing.faults import FAULTS_ENV

pytestmark = pytest.mark.chaos


def tiny_config(**overrides) -> PipelineConfig:
    base = dict(scale=0.15, grid_nx=8, grid_ny=8, use_cache=True,
                placement=PlacementConfig(outer_iterations=1),
                router=RouterConfig(nx=8, ny=8, rrr_iterations=1))
    base.update(overrides)
    return PipelineConfig(**base)


def subprocess_env(**extra) -> dict:
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + \
        env.get("PYTHONPATH", "")
    env.pop(FAULTS_ENV, None)
    env.update(extra)
    return env


#: Runs the staged pipeline over the first two tiny designs; argv is
#: ``<cache_root> <workers>``.  The config must match tiny_config().
PREPARE_SCRIPT = """
import sys
from repro.circuit import superblue_suite
from repro.pipeline import PipelineConfig, StageCache, prepare_designs
from repro.placement import PlacementConfig
from repro.routing import RouterConfig

config = PipelineConfig(scale=0.15, grid_nx=8, grid_ny=8, use_cache=True,
                        placement=PlacementConfig(outer_iterations=1),
                        router=RouterConfig(nx=8, ny=8, rrr_iterations=1))
designs = superblue_suite(scale=0.15)[:2]
prepare_designs(designs, config, workers=int(sys.argv[2]),
                cache=StageCache(sys.argv[1]))
print("PREPARED-OK")
"""

#: Prepares ONE design sequentially and reports its stage-call counters
#: as JSON; argv is ``<cache_root>``.
PREPARE_ONE_SCRIPT = """
import json, sys
from repro.circuit import superblue_suite
from repro.pipeline import (PipelineConfig, STAGE_CALLS, StageCache,
                            prepare_design, reset_stage_calls)
from repro.placement import PlacementConfig
from repro.routing import RouterConfig

config = PipelineConfig(scale=0.15, grid_nx=8, grid_ny=8, use_cache=True,
                        placement=PlacementConfig(outer_iterations=1),
                        router=RouterConfig(nx=8, ny=8, rrr_iterations=1))
design = superblue_suite(scale=0.15)[0]
reset_stage_calls()
prepare_design(design, config, cache=StageCache(sys.argv[1]))
print(json.dumps(dict(STAGE_CALLS)))
"""

#: Saves a checkpoint over argv[1]; a fault plan in the environment can
#: kill the process between the tmp write and the rename.
SAVE_CKPT_SCRIPT = """
import sys
import numpy as np
from repro.models.mlp_baseline import MLPBaseline
from repro.nn.serialize import save_checkpoint

model = MLPBaseline(hidden=8, rng=np.random.default_rng(99))
save_checkpoint(model, sys.argv[1])
print("SAVED-OK")
"""


class TestCrashResume:
    """SIGKILL a pool worker at a stage barrier; resume must be exact."""

    @pytest.mark.parametrize("barrier,stage", [
        ("stage.start", "route"),    # killed before the stage computes
        ("stage.stored", "route"),   # killed right after the blob landed
        ("store.write.tmp", ""),     # killed between tmp write and rename
    ])
    def test_sigkill_then_resume_recomputes_only_missing(self, tmp_path,
                                                         barrier, stage):
        root = str(tmp_path / "cache")
        designs = superblue_suite(scale=0.15)[:2]
        config = tiny_config()
        victim = designs[0].name
        match = f"{stage}:{victim}" if stage else ""
        plan = FaultInjector(
            [FaultRule(point=barrier, action="kill", match=match)]).to_env()

        crashed = subprocess.run(
            [sys.executable, "-c", PREPARE_SCRIPT, root, "2"],
            env=subprocess_env(**{FAULTS_ENV: plan}),
            capture_output=True, text=True)
        assert crashed.returncode != 0, crashed.stdout  # the pool broke
        assert "PREPARED-OK" not in crashed.stdout

        # Record exactly which stage products survived the crash...
        all_keys = [stage_keys_for(d, config) for d in designs]
        survived = {(i, s): os.path.getmtime(StageCache(root)._path(k[s]))
                    for i, k in enumerate(all_keys)
                    for s in ("place", "route", "graph")
                    if os.path.exists(StageCache(root)._path(k[s]))}
        missing = 6 - len(survived)
        assert missing > 0  # the kill really interrupted something

        # ...resume without faults: only the missing products recompute.
        reset_stage_calls()
        cache = StageCache(root)
        graphs, _ = prepare_designs(designs, config, cache=cache)
        assert len(graphs) == 2
        assert sum(STAGE_CALLS[s] for s in ("place", "route", "graph")) \
            == missing
        # Zero recomputed finished stages: surviving blobs untouched.
        for (i, s), mtime in survived.items():
            assert os.path.getmtime(cache._path(all_keys[i][s])) == mtime

        # And the resumed cache state is complete and clean.
        rerun = StageCache(root)
        again, _ = prepare_designs(designs, config, cache=rerun)
        assert rerun.hits == 2 and rerun.misses == 0
        np.testing.assert_array_equal(again[0].congestion,
                                      graphs[0].congestion)

    def test_concurrent_prepare_computes_each_stage_exactly_once(
            self, tmp_path):
        """Two processes, one design, one shared cache: no duplicate work."""
        root = str(tmp_path / "cache")
        procs = [subprocess.Popen(
            [sys.executable, "-c", PREPARE_ONE_SCRIPT, root],
            env=subprocess_env(), stdout=subprocess.PIPE, text=True)
            for _ in range(2)]
        counts = []
        for proc in procs:
            out, _ = proc.communicate(timeout=300)
            assert proc.returncode == 0
            counts.append(json.loads(out.strip().splitlines()[-1]))
        for stage in ("place", "route", "graph"):
            total = sum(c.get(stage, 0) for c in counts)
            assert total == 1, (stage, counts)  # never duplicated

    def test_startup_gc_reaps_dead_leases_and_tmp(self, tmp_path):
        from repro.pipeline import prepare_workload
        root = str(tmp_path)
        monkey_cache = StageCache(root)
        orphan = os.path.join(root, "objects", "zz", "orphan.tmp")
        os.makedirs(os.path.dirname(orphan), exist_ok=True)
        with open(orphan, "wb") as fh:
            fh.write(b"debris")
        dead_lease = monkey_cache.blobs.lease_path("dead" * 8)
        os.makedirs(os.path.dirname(dead_lease), exist_ok=True)
        with open(dead_lease, "w") as fh:
            fh.write("{}")
        old = time.time() - 10_000
        os.utime(orphan, (old, old))
        os.utime(dead_lease, (old, old))

        designs = superblue_suite(scale=0.15)[:1]
        prepare_workload("superblue", tiny_config(), cache=StageCache(root),
                         designs=designs)
        assert not os.path.exists(orphan)
        assert not os.path.exists(dead_lease)


class TestCheckpointDurability:
    def test_sigkill_between_tmp_and_rename_keeps_old_checkpoint(
            self, tmp_path):
        path = str(tmp_path / "model.npz")
        model = MLPBaseline(hidden=8, rng=np.random.default_rng(0))
        save_checkpoint(model, path)
        before = open(path, "rb").read()

        plan = FaultInjector([FaultRule(point="checkpoint.write.tmp",
                                        action="kill")]).to_env()
        crashed = subprocess.run(
            [sys.executable, "-c", SAVE_CKPT_SCRIPT, path],
            env=subprocess_env(**{FAULTS_ENV: plan}),
            capture_output=True, text=True)
        assert crashed.returncode != 0
        assert "SAVED-OK" not in crashed.stdout

        # The old checkpoint is bit-identical and still restorable...
        assert open(path, "rb").read() == before
        restored = MLPBaseline(hidden=8, rng=np.random.default_rng(5))
        from repro.nn.serialize import load_checkpoint
        load_checkpoint(restored, path)
        # ...and the only debris is an orphaned tmp, reaped by the sweep.
        debris = [n for n in os.listdir(tmp_path) if n.endswith(".tmp")]
        assert len(debris) == 1
        report = sweep(str(tmp_path), max_tmp_age_s=0.0)
        assert len(report["tmp_removed"]) == 1
        assert not any(n.endswith(".tmp") for n in os.listdir(tmp_path))

    @pytest.mark.parametrize("damage", ["truncate", "flip"])
    def test_corrupt_checkpoint_quarantined_prior_restorable(
            self, tmp_path, damage):
        old_path = save_model(
            MLPBaseline(hidden=8, rng=np.random.default_rng(0)),
            str(tmp_path / "model-v1.npz"))
        new_path = save_model(
            MLPBaseline(hidden=8, rng=np.random.default_rng(1)),
            str(tmp_path / "model-v2.npz"))

        data = open(new_path, "rb").read()
        if damage == "truncate":
            bad = data[:len(data) // 2]
        else:
            mutated = bytearray(data)
            mutated[len(mutated) // 2] ^= 0xFF
            bad = bytes(mutated)
        open(new_path, "wb").write(bad)

        with pytest.raises(CheckpointError, match="quarantined") as info:
            restore_model(new_path)
        assert info.value.corrupt
        assert not os.path.exists(new_path)  # off the fast path
        qdir = tmp_path / "quarantine"
        quarantined = [n for n in os.listdir(qdir)
                       if n.endswith(".reason.json")]
        assert len(quarantined) == 1

        model, _ = restore_model(old_path)  # the prior checkpoint works
        assert isinstance(model, MLPBaseline)


class TestDegradedEndToEnd:
    def test_run_experiment_completes_uncached_on_readonly_root(
            self, tmp_path, monkeypatch):
        from repro.api import ExperimentSpec, apply_overrides, run_experiment
        blocker = tmp_path / "not-a-dir"
        blocker.write_text("x")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(blocker / "cache"))
        spec = apply_overrides(ExperimentSpec(), [
            "model.family=mlp", "model.params.hidden=8", "train.epochs=1",
            "workload.suite=hotspot", "workload.count=2",
            "workload.scale=0.15", f"output.artifacts_dir={tmp_path}"])
        with pytest.warns(StoreDegradedWarning):
            result = run_experiment(spec, save=False)
        assert np.isfinite(result.metrics["f1"])
