"""Tests for the checksummed, crash-safe blob store primitives."""

from __future__ import annotations

import glob
import os
import pickle
import time

import pytest

from repro.store import (BlobCorruptError, BlobStore, Lease, NullLease,
                         StoreDegradedWarning, atomic_write_bytes,
                         frame_blob, read_bytes, sweep, unframe_blob)
from repro.testing import FaultInjector, FaultRule, install_faults

KEY = "deadbeef" * 4


def tmp_files(root: str) -> list[str]:
    return glob.glob(os.path.join(root, "**", "*.tmp"), recursive=True)


class TestFraming:
    def test_round_trip_is_verified(self):
        framed = frame_blob(b"payload")
        payload, verified = unframe_blob(framed)
        assert payload == b"payload"
        assert verified

    def test_legacy_bytes_pass_through_unverified(self):
        payload, verified = unframe_blob(b"an old, unframed blob")
        assert payload == b"an old, unframed blob"
        assert not verified

    def test_flipped_payload_byte_is_corrupt(self):
        framed = bytearray(frame_blob(b"payload"))
        framed[2] ^= 0xFF
        with pytest.raises(BlobCorruptError, match="checksum mismatch"):
            unframe_blob(bytes(framed))


class TestAtomicWrite:
    def test_writes_bytes_and_leaves_no_tmp(self, tmp_path):
        path = str(tmp_path / "sub" / "file.bin")
        atomic_write_bytes(path, b"hello")
        assert read_bytes(path) == b"hello"
        assert tmp_files(str(tmp_path)) == []

    def test_single_injected_eio_is_retried_and_survived(self, tmp_path):
        install_faults(FaultInjector(
            [FaultRule(point="store.write", action="eio", nth=1, count=1)]))
        path = str(tmp_path / "file.bin")
        atomic_write_bytes(path, b"survived")
        assert read_bytes(path) == b"survived"

    def test_persistent_eio_exhausts_retries(self, tmp_path):
        install_faults(FaultInjector(
            [FaultRule(point="store.write", action="eio", count=-1)]))
        path = str(tmp_path / "file.bin")
        with pytest.raises(OSError):
            atomic_write_bytes(path, b"never lands")
        assert not os.path.exists(path)
        assert tmp_files(str(tmp_path)) == []

    def test_single_transient_read_eio_is_retried(self, tmp_path):
        path = str(tmp_path / "file.bin")
        atomic_write_bytes(path, b"data")
        install_faults(FaultInjector(
            [FaultRule(point="store.read", action="eio", nth=1, count=1)]))
        assert read_bytes(path) == b"data"


class TestBlobStore:
    def test_put_get_round_trip(self, tmp_path):
        store = BlobStore(str(tmp_path))
        assert store.put(KEY, b"stage product")
        assert store.contains(KEY)
        assert store.get(KEY) == b"stage product"
        assert store.writes == 1 and store.reads == 1
        # On disk the blob is framed, not raw.
        with open(store.object_path(KEY), "rb") as fh:
            assert len(fh.read()) > len(b"stage product")

    def test_absent_key_is_a_plain_miss(self, tmp_path):
        store = BlobStore(str(tmp_path))
        assert store.get(KEY) is None
        assert not store.contains(KEY)
        assert store.corrupt == 0

    def test_corrupt_blob_is_quarantined_with_reason(self, tmp_path):
        store = BlobStore(str(tmp_path))
        store.put(KEY, b"stage product")
        path = store.object_path(KEY)
        data = bytearray(open(path, "rb").read())
        data[1] ^= 0xFF  # flip a payload byte, keep the footer
        open(path, "wb").write(bytes(data))

        assert store.get(KEY) is None
        assert store.corrupt == 1
        assert not os.path.exists(path)  # moved off the fast path
        records = store.quarantine_records()
        assert len(records) == 1
        assert "checksum mismatch" in records[0]["reason"]
        assert records[0]["key"] == KEY
        # The slot is clean: a recompute stores and reads normally.
        assert store.put(KEY, b"recomputed")
        assert store.get(KEY) == b"recomputed"

    def test_legacy_unframed_blob_reads_unverified(self, tmp_path):
        store = BlobStore(str(tmp_path))
        path = store.object_path(KEY)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        legacy = pickle.dumps({"old": True})
        with open(path, "wb") as fh:
            fh.write(legacy)
        assert store.get(KEY) == legacy
        assert store.corrupt == 0

    def test_unwritable_root_degrades_with_structured_warning(self, tmp_path):
        blocker = tmp_path / "not-a-dir"
        blocker.write_text("a file where the store root wants a directory")
        root = str(blocker / "cache")
        store = BlobStore(root)
        with pytest.warns(StoreDegradedWarning) as caught:
            assert not store.put(KEY, b"payload")
        assert store.degraded
        assert caught[0].message.root == root
        assert "blob" in caught[0].message.reason
        # Degradation warns once; later writes are silent no-ops.
        assert not store.put(KEY, b"payload")
        assert len([w for w in caught
                    if isinstance(w.message, StoreDegradedWarning)]) == 1

    def test_degraded_store_hands_out_null_leases(self, tmp_path):
        blocker = tmp_path / "not-a-dir"
        blocker.write_text("x")
        store = BlobStore(str(blocker / "cache"))
        with pytest.warns(StoreDegradedWarning):
            store.put(KEY, b"payload")
        assert isinstance(store.try_lease(KEY), NullLease)

    def test_rootless_store_is_inert(self):
        store = BlobStore(None)
        assert not store.put(KEY, b"payload")
        assert store.get(KEY) is None
        assert isinstance(store.try_lease(KEY), NullLease)
        assert store.gc() == {"tmp_removed": [], "leases_removed": []}

    def test_try_lease_contends_and_steals_stale(self, tmp_path):
        store = BlobStore(str(tmp_path))
        lease = store.try_lease(KEY)
        assert isinstance(lease, Lease) and lease.held
        assert store.try_lease(KEY) is None  # held by a live local pid
        old = time.time() - 1000
        os.utime(store.lease_path(KEY), (old, old))
        stolen = store.try_lease(KEY)  # stale heartbeat: stolen
        assert isinstance(stolen, Lease) and stolen.held
        stolen.release()

    def test_stats_census(self, tmp_path):
        store = BlobStore(str(tmp_path))
        store.put(KEY, b"one")
        store.put(KEY[::-1], b"two")
        lease = store.try_lease(KEY)
        stats = store.stats()
        assert stats["objects"] == 2
        assert stats["object_bytes"] > 0
        assert stats["leases"] == 1
        assert stats["quarantined"] == 0
        assert not stats["degraded"]
        lease.release()


class TestSweep:
    def test_removes_old_tmp_keeps_fresh_and_objects(self, tmp_path):
        store = BlobStore(str(tmp_path))
        store.put(KEY, b"keep me")
        obj_dir = os.path.dirname(store.object_path(KEY))
        stale = os.path.join(obj_dir, "orphan.tmp")
        fresh = os.path.join(obj_dir, "inflight.tmp")
        for path in (stale, fresh):
            with open(path, "wb") as fh:
                fh.write(b"debris")
        old = time.time() - 1000
        os.utime(stale, (old, old))

        report = sweep(str(tmp_path), max_tmp_age_s=600.0)
        assert report["tmp_removed"] == [stale]
        assert os.path.exists(fresh)
        assert store.get(KEY) == b"keep me"

    def test_removes_only_stale_leases(self, tmp_path):
        store = BlobStore(str(tmp_path))
        held = store.try_lease(KEY)
        dead = store.lease_path("dead" * 8)
        os.makedirs(os.path.dirname(dead), exist_ok=True)
        with open(dead, "w") as fh:
            fh.write("{}")
        old = time.time() - 1000
        os.utime(dead, (old, old))

        report = store.gc()
        assert report["leases_removed"] == [dead]
        assert os.path.exists(store.lease_path(KEY))
        held.release()

    def test_sweep_skips_quarantine(self, tmp_path):
        store = BlobStore(str(tmp_path))
        qdir = store.quarantine_dir
        os.makedirs(qdir, exist_ok=True)
        evidence = os.path.join(qdir, "evidence.tmp")
        with open(evidence, "wb") as fh:
            fh.write(b"keep for inspection")
        old = time.time() - 1000
        os.utime(evidence, (old, old))
        sweep(str(tmp_path), max_tmp_age_s=600.0)
        assert os.path.exists(evidence)
