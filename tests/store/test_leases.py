"""Tests for cross-process lease files: acquire, contend, stale, steal."""

from __future__ import annotations

import json
import os
import subprocess
import time

import pytest

from repro.store import Lease, NullLease, lease_is_stale


@pytest.fixture()
def lease_path(tmp_path):
    return str(tmp_path / "leases" / "key.json")


def dead_pid() -> int:
    """A pid that provably does not exist on this host anymore."""
    proc = subprocess.Popen(["true"])
    proc.wait()
    return proc.pid


class TestAcquireRelease:
    def test_acquire_writes_inspectable_record(self, lease_path):
        lease = Lease(lease_path, ttl_s=300.0)
        assert lease.acquire()
        with open(lease_path) as fh:
            record = json.load(fh)
        assert record["pid"] == os.getpid()
        assert record["token"] == lease.token
        lease.release()
        assert not os.path.exists(lease_path)

    def test_second_acquire_loses(self, lease_path):
        first = Lease(lease_path, ttl_s=300.0)
        assert first.acquire()
        second = Lease(lease_path, ttl_s=300.0)
        assert not second.acquire()
        first.release()
        assert second.acquire()
        second.release()

    def test_release_does_not_remove_a_stolen_lease(self, lease_path):
        first = Lease(lease_path, ttl_s=300.0)
        assert first.acquire()
        thief = Lease(lease_path, ttl_s=300.0)
        assert thief.steal()
        first.release()  # token no longer ours: file must survive
        assert os.path.exists(lease_path)
        with open(lease_path) as fh:
            assert json.load(fh)["token"] == thief.token
        thief.release()

    def test_context_manager_requires_acquisition(self, lease_path):
        with pytest.raises(RuntimeError, match="not acquired"):
            with Lease(lease_path):
                pass


class TestStaleness:
    def test_fresh_lease_of_live_pid_is_not_stale(self, lease_path):
        lease = Lease(lease_path, ttl_s=300.0)
        assert lease.acquire()
        assert not lease_is_stale(lease_path, ttl_s=300.0)
        lease.release()

    def test_stale_by_heartbeat_age(self, lease_path):
        lease = Lease(lease_path, ttl_s=300.0)
        assert lease.acquire()
        old = time.time() - 1000
        os.utime(lease_path, (old, old))
        assert lease_is_stale(lease_path, ttl_s=300.0)
        lease.release()

    def test_stale_by_dead_pid_without_waiting_for_ttl(self, lease_path):
        lease = Lease(lease_path, ttl_s=300.0)
        assert lease.acquire()
        with open(lease_path) as fh:
            record = json.load(fh)
        record["pid"] = dead_pid()
        with open(lease_path, "w") as fh:
            json.dump(record, fh)
        assert lease_is_stale(lease_path, ttl_s=300.0)  # mtime is fresh

    def test_vanished_lease_is_stale(self, lease_path):
        assert lease_is_stale(lease_path, ttl_s=300.0)

    def test_unparsable_lease_only_stale_after_ttl(self, lease_path):
        os.makedirs(os.path.dirname(lease_path), exist_ok=True)
        with open(lease_path, "w") as fh:
            fh.write("{half a rec")  # a holder mid-write
        assert not lease_is_stale(lease_path, ttl_s=300.0)
        old = time.time() - 1000
        os.utime(lease_path, (old, old))
        assert lease_is_stale(lease_path, ttl_s=300.0)

    def test_steal_takes_over_a_stale_lease(self, lease_path):
        crashed = Lease(lease_path, ttl_s=300.0)
        assert crashed.acquire()
        old = time.time() - 1000
        os.utime(lease_path, (old, old))
        thief = Lease(lease_path, ttl_s=300.0)
        assert not thief.acquire()  # file exists: must go through steal
        assert thief.steal()
        assert not lease_is_stale(lease_path, ttl_s=300.0)
        thief.release()


class TestHeartbeat:
    def test_heartbeat_keeps_the_lease_fresh(self, lease_path):
        lease = Lease(lease_path, ttl_s=0.4)  # heartbeat every 0.1s
        assert lease.acquire()
        with lease:
            old = time.time() - 1000
            os.utime(lease_path, (old, old))
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                if time.time() - os.stat(lease_path).st_mtime < 10:
                    break
                time.sleep(0.05)
            assert time.time() - os.stat(lease_path).st_mtime < 10
        assert not os.path.exists(lease_path)


class TestNullLease:
    def test_null_lease_is_a_no_op_context(self):
        lease = NullLease()
        assert lease.acquire()
        with lease:
            assert lease.held
        lease.release()
