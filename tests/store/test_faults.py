"""Tests for the deterministic fault-injection harness itself.

The chaos suite leans entirely on these semantics — nth/count windows,
substring matching, per-process hit counters, env round-trips — so they
get direct coverage before anything is injected into the store.
"""

from __future__ import annotations

import errno

import pytest

from repro.testing import (FaultError, FaultInjector, FaultRule,
                           clear_faults, current_injector, install_faults)
from repro.testing.faults import FAULTS_ENV


class TestFaultRule:
    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError, match="unknown fault action"):
            FaultRule(point="store.write", action="explode")

    def test_nth_is_one_based(self):
        with pytest.raises(ValueError, match="1-based"):
            FaultRule(point="store.write", action="eio", nth=0)


class TestFiringWindows:
    def test_nth_and_count_window(self):
        inj = FaultInjector([FaultRule(point="p", action="fail",
                                       nth=2, count=2)])
        inj.barrier("p")                       # hit 1: before the window
        with pytest.raises(FaultError):
            inj.barrier("p")                   # hit 2: fires
        with pytest.raises(FaultError):
            inj.barrier("p")                   # hit 3: fires
        inj.barrier("p")                       # hit 4: window exhausted

    def test_count_minus_one_fires_forever(self):
        inj = FaultInjector([FaultRule(point="p", action="fail", count=-1)])
        for _ in range(5):
            with pytest.raises(FaultError):
                inj.barrier("p")

    def test_match_narrows_by_tag_substring(self):
        inj = FaultInjector([FaultRule(point="stage.start", action="fail",
                                       match="route:alpha")])
        inj.barrier("stage.start", "place:alpha")   # different stage
        inj.barrier("stage.start", "route:beta")    # different design
        with pytest.raises(FaultError):
            inj.barrier("stage.start", "route:alpha")

    def test_non_matching_hits_do_not_advance_counter(self):
        inj = FaultInjector([FaultRule(point="p", action="fail",
                                       nth=2, match="x")])
        inj.barrier("p", "other")  # no match: not a hit
        inj.barrier("p", "x-1")    # hit 1
        with pytest.raises(FaultError):
            inj.barrier("p", "x-2")  # hit 2 fires

    def test_determinism_same_plan_same_failures(self):
        def run():
            inj = FaultInjector([FaultRule(point="p", action="eio", nth=3)])
            outcomes = []
            for _ in range(5):
                try:
                    inj.barrier("p")
                    outcomes.append("ok")
                except OSError:
                    outcomes.append("eio")
            return outcomes
        assert run() == run() == ["ok", "ok", "eio", "ok", "ok"]


class TestActions:
    def test_eio_carries_the_errno(self):
        inj = FaultInjector([FaultRule(point="p", action="eio")])
        with pytest.raises(OSError) as info:
            inj.barrier("p")
        assert info.value.errno == errno.EIO

    def test_truncate_on_write(self):
        inj = FaultInjector([FaultRule(point="w", action="truncate", arg=3)])
        assert inj.on_write("w", "t", b"abcdef") == b"abc"
        assert inj.on_write("w", "t", b"abcdef") == b"abcdef"  # count=1

    def test_flip_on_read(self):
        inj = FaultInjector([FaultRule(point="r", action="flip", arg=1)])
        mutated = inj.on_read("r", "t", b"abc")
        assert mutated == bytes([ord("a"), ord("b") ^ 0xFF, ord("c")])


class TestInstallAndEnv:
    def test_install_and_clear(self):
        inj = install_faults(FaultInjector([]))
        assert current_injector() is inj
        clear_faults()
        assert current_injector() is None

    def test_env_round_trip_resets_hit_counters(self):
        inj = FaultInjector([FaultRule(point="p", action="fail",
                                       nth=1, count=1, match="m", arg=7)])
        with pytest.raises(FaultError):
            inj.barrier("p", "m")
        clone = FaultInjector.from_env(inj.to_env())
        assert clone.rules == inj.rules
        with pytest.raises(FaultError):  # fresh counters fire again
            clone.barrier("p", "m")

    def test_env_plan_is_picked_up(self, monkeypatch):
        plan = FaultInjector([FaultRule(point="p", action="fail")]).to_env()
        monkeypatch.setenv(FAULTS_ENV, plan)
        clear_faults()  # force a re-read of the environment
        inj = current_injector()
        assert inj is not None
        with pytest.raises(FaultError):
            inj.barrier("p")
