"""Shared hygiene for the store tests: no fault plan leaks across tests."""

from __future__ import annotations

import pytest

from repro.testing import clear_faults


@pytest.fixture(autouse=True)
def _isolated_faults(monkeypatch):
    """Each test starts and ends with no injector and no env plan."""
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    clear_faults()
    yield
    clear_faults()
