"""Tests for crafted feature maps and G-net features."""

import numpy as np
import pytest

from repro.features import (GCELL_FEATURE_NAMES, GNET_FEATURE_NAMES,
                            compute_gnets, gcell_feature_stack,
                            net_density_maps, pin_density_map, rudy_map,
                            terminal_mask)


@pytest.fixture(scope="module")
def gnets(placed_design_module, grid_module):
    return compute_gnets(placed_design_module, grid_module, max_fraction=None)


@pytest.fixture(scope="module")
def placed_design_module(request):
    from repro.circuit import DesignSpec, generate_design
    from repro.placement import place
    d = generate_design(DesignSpec(name="feat-t", seed=41, num_movable=150,
                                   num_terminals=12, num_macros=2,
                                   die_size=32.0))
    place(d)
    return d


@pytest.fixture(scope="module")
def grid_module(placed_design_module):
    from repro.routing import RoutingGrid
    return RoutingGrid(placed_design_module, nx=16, ny=16)


class TestGNets:
    def test_feature_columns(self, gnets):
        assert gnets.features.shape[1] == len(GNET_FEATURE_NAMES)

    def test_area_is_product_of_spans(self, gnets):
        span_v = gnets.features[:, 0]
        span_h = gnets.features[:, 1]
        area = gnets.features[:, 3]
        assert np.allclose(area, span_h * span_v)

    def test_npin_matches_design(self, gnets, placed_design_module):
        deg = placed_design_module.net_degree()
        assert np.allclose(gnets.features[:, 2], deg[gnets.net_ids])

    def test_bounding_boxes_inside_grid(self, gnets, grid_module):
        assert gnets.gx0.min() >= 0
        assert gnets.gx1.max() < grid_module.nx
        assert np.all(gnets.gx0 <= gnets.gx1)
        assert np.all(gnets.gy0 <= gnets.gy1)

    def test_large_net_filter(self, placed_design_module, grid_module):
        unfiltered = compute_gnets(placed_design_module, grid_module,
                                   max_fraction=None)
        filtered = compute_gnets(placed_design_module, grid_module,
                                 max_fraction=0.05)
        assert filtered.num_gnets <= unfiltered.num_gnets
        limit = 0.05 * grid_module.nx * grid_module.ny
        assert np.all(filtered.features[:, 3] <= limit)

    def test_covered_cells_count(self, gnets, grid_module):
        for i in range(min(10, gnets.num_gnets)):
            cells = gnets.covered_cells(i, grid_module.ny)
            assert len(cells) == int(gnets.features[i, 3])

    def test_min_degree_filter(self, placed_design_module, grid_module):
        gnets = compute_gnets(placed_design_module, grid_module,
                              min_degree=3)
        assert np.all(gnets.features[:, 2] >= 3)


class TestVectorisedAgainstLoopReference:
    """The difference-array map builders must reproduce the original
    per-G-net loops: bit-exactly on dyadic weights (where float addition
    is associative), and to accumulated-rounding precision (≤ 1e-12)
    on organic designs."""

    @pytest.fixture()
    def dyadic_gnets(self):
        """G-nets whose spans are powers of two, so every deposited
        weight (1/span, npin·(span+span)/area) is dyadic and summation
        order cannot change the result."""
        from repro.features.gnet import GNetData
        rng = np.random.default_rng(7)
        n = 64
        span_choices = np.array([1, 2, 4, 8])
        span_h = rng.choice(span_choices, size=n)
        span_v = rng.choice(span_choices, size=n)
        gx0 = rng.integers(0, 16 - span_h + 1)
        gy0 = rng.integers(0, 16 - span_v + 1)
        npin = rng.integers(2, 9, size=n).astype(float)
        feats = np.stack([span_v.astype(float), span_h.astype(float),
                          npin, (span_h * span_v).astype(float)], axis=-1)
        return GNetData(net_ids=np.arange(n),
                        gx0=gx0, gy0=gy0,
                        gx1=gx0 + span_h - 1, gy1=gy0 + span_v - 1,
                        features=feats)

    def test_net_density_exact_on_dyadic_spans(self, dyadic_gnets):
        from repro.features.gcell import _net_density_maps_reference
        h, v = net_density_maps(dyadic_gnets, 16, 16)
        h_ref, v_ref = _net_density_maps_reference(dyadic_gnets, 16, 16)
        assert np.array_equal(h, h_ref)
        assert np.array_equal(v, v_ref)

    def test_rudy_exact_on_dyadic_spans(self, dyadic_gnets):
        from repro.features.gcell import _rudy_map_reference
        assert np.array_equal(rudy_map(dyadic_gnets, 16, 16),
                              _rudy_map_reference(dyadic_gnets, 16, 16))

    def test_net_density_matches_loop_on_organic_design(self, gnets,
                                                        grid_module):
        from repro.features.gcell import _net_density_maps_reference
        h, v = net_density_maps(gnets, grid_module.nx, grid_module.ny)
        h_ref, v_ref = _net_density_maps_reference(gnets, grid_module.nx,
                                                   grid_module.ny)
        np.testing.assert_allclose(h, h_ref, rtol=0, atol=1e-12)
        np.testing.assert_allclose(v, v_ref, rtol=0, atol=1e-12)

    def test_rudy_matches_loop_on_organic_design(self, gnets, grid_module):
        from repro.features.gcell import _rudy_map_reference
        np.testing.assert_allclose(
            rudy_map(gnets, grid_module.nx, grid_module.ny),
            _rudy_map_reference(gnets, grid_module.nx, grid_module.ny),
            rtol=0, atol=1e-12)

    def test_terminal_mask_exact(self, placed_design_module, grid_module):
        from repro.features.gcell import _terminal_mask_reference
        assert np.array_equal(
            terminal_mask(placed_design_module, grid_module),
            _terminal_mask_reference(placed_design_module, grid_module))

    def test_empty_gnets(self):
        from repro.features.gnet import GNetData
        empty = GNetData(net_ids=np.zeros(0, dtype=np.int64),
                         gx0=np.zeros(0, dtype=np.int64),
                         gy0=np.zeros(0, dtype=np.int64),
                         gx1=np.zeros(0, dtype=np.int64),
                         gy1=np.zeros(0, dtype=np.int64),
                         features=np.zeros((0, 4)))
        h, v = net_density_maps(empty, 8, 8)
        assert h.shape == (8, 8) and not h.any() and not v.any()
        assert not rudy_map(empty, 8, 8).any()


class TestGCellFeatures:
    def test_net_density_mass(self, gnets, grid_module):
        """Each net contributes exactly span_h to total H density."""
        h, v = net_density_maps(gnets, grid_module.nx, grid_module.ny)
        expected_h = gnets.features[:, 1].sum()   # sum of span_h
        expected_v = gnets.features[:, 0].sum()   # sum of span_v
        assert h.sum() == pytest.approx(expected_h)
        assert v.sum() == pytest.approx(expected_v)

    def test_net_density_nonnegative(self, gnets, grid_module):
        h, v = net_density_maps(gnets, grid_module.nx, grid_module.ny)
        assert (h >= 0).all() and (v >= 0).all()

    def test_pin_density_total(self, placed_design_module, grid_module):
        pins = pin_density_map(placed_design_module, grid_module)
        assert pins.sum() == pytest.approx(placed_design_module.num_pins)

    def test_terminal_mask_binary(self, placed_design_module, grid_module):
        mask = terminal_mask(placed_design_module, grid_module)
        assert set(np.unique(mask)).issubset({0.0, 1.0})
        assert mask.sum() > 0  # pads and macros exist

    def test_rudy_mass(self, gnets, grid_module):
        rudy = rudy_map(gnets, grid_module.nx, grid_module.ny)
        expected = (gnets.features[:, 2]
                    * (gnets.features[:, 1] + gnets.features[:, 0])).sum()
        assert rudy.sum() == pytest.approx(expected)

    def test_stack_shape_and_order(self, placed_design_module, grid_module,
                                   gnets):
        stack = gcell_feature_stack(placed_design_module, grid_module, gnets)
        assert stack.shape == (16, 16, len(GCELL_FEATURE_NAMES))
        h, v = net_density_maps(gnets, 16, 16)
        assert np.allclose(stack[:, :, 0], h)
        assert np.allclose(stack[:, :, 1], v)
