"""Tests for crafted feature maps and G-net features."""

import numpy as np
import pytest

from repro.features import (GCELL_FEATURE_NAMES, GNET_FEATURE_NAMES,
                            compute_gnets, gcell_feature_stack,
                            net_density_maps, pin_density_map, rudy_map,
                            terminal_mask)


@pytest.fixture(scope="module")
def gnets(placed_design_module, grid_module):
    return compute_gnets(placed_design_module, grid_module, max_fraction=None)


@pytest.fixture(scope="module")
def placed_design_module(request):
    from repro.circuit import DesignSpec, generate_design
    from repro.placement import place
    d = generate_design(DesignSpec(name="feat-t", seed=41, num_movable=150,
                                   num_terminals=12, num_macros=2,
                                   die_size=32.0))
    place(d)
    return d


@pytest.fixture(scope="module")
def grid_module(placed_design_module):
    from repro.routing import RoutingGrid
    return RoutingGrid(placed_design_module, nx=16, ny=16)


class TestGNets:
    def test_feature_columns(self, gnets):
        assert gnets.features.shape[1] == len(GNET_FEATURE_NAMES)

    def test_area_is_product_of_spans(self, gnets):
        span_v = gnets.features[:, 0]
        span_h = gnets.features[:, 1]
        area = gnets.features[:, 3]
        assert np.allclose(area, span_h * span_v)

    def test_npin_matches_design(self, gnets, placed_design_module):
        deg = placed_design_module.net_degree()
        assert np.allclose(gnets.features[:, 2], deg[gnets.net_ids])

    def test_bounding_boxes_inside_grid(self, gnets, grid_module):
        assert gnets.gx0.min() >= 0
        assert gnets.gx1.max() < grid_module.nx
        assert np.all(gnets.gx0 <= gnets.gx1)
        assert np.all(gnets.gy0 <= gnets.gy1)

    def test_large_net_filter(self, placed_design_module, grid_module):
        unfiltered = compute_gnets(placed_design_module, grid_module,
                                   max_fraction=None)
        filtered = compute_gnets(placed_design_module, grid_module,
                                 max_fraction=0.05)
        assert filtered.num_gnets <= unfiltered.num_gnets
        limit = 0.05 * grid_module.nx * grid_module.ny
        assert np.all(filtered.features[:, 3] <= limit)

    def test_covered_cells_count(self, gnets, grid_module):
        for i in range(min(10, gnets.num_gnets)):
            cells = gnets.covered_cells(i, grid_module.ny)
            assert len(cells) == int(gnets.features[i, 3])

    def test_min_degree_filter(self, placed_design_module, grid_module):
        gnets = compute_gnets(placed_design_module, grid_module,
                              min_degree=3)
        assert np.all(gnets.features[:, 2] >= 3)


class TestGCellFeatures:
    def test_net_density_mass(self, gnets, grid_module):
        """Each net contributes exactly span_h to total H density."""
        h, v = net_density_maps(gnets, grid_module.nx, grid_module.ny)
        expected_h = gnets.features[:, 1].sum()   # sum of span_h
        expected_v = gnets.features[:, 0].sum()   # sum of span_v
        assert h.sum() == pytest.approx(expected_h)
        assert v.sum() == pytest.approx(expected_v)

    def test_net_density_nonnegative(self, gnets, grid_module):
        h, v = net_density_maps(gnets, grid_module.nx, grid_module.ny)
        assert (h >= 0).all() and (v >= 0).all()

    def test_pin_density_total(self, placed_design_module, grid_module):
        pins = pin_density_map(placed_design_module, grid_module)
        assert pins.sum() == pytest.approx(placed_design_module.num_pins)

    def test_terminal_mask_binary(self, placed_design_module, grid_module):
        mask = terminal_mask(placed_design_module, grid_module)
        assert set(np.unique(mask)).issubset({0.0, 1.0})
        assert mask.sum() > 0  # pads and macros exist

    def test_rudy_mass(self, gnets, grid_module):
        rudy = rudy_map(gnets, grid_module.nx, grid_module.ny)
        expected = (gnets.features[:, 2]
                    * (gnets.features[:, 1] + gnets.features[:, 0])).sum()
        assert rudy.sum() == pytest.approx(expected)

    def test_stack_shape_and_order(self, placed_design_module, grid_module,
                                   gnets):
        stack = gcell_feature_stack(placed_design_module, grid_module, gnets)
        assert stack.shape == (16, 16, len(GCELL_FEATURE_NAMES))
        h, v = net_density_maps(gnets, 16, 16)
        assert np.allclose(stack[:, :, 0], h)
        assert np.allclose(stack[:, :, 1], v)
