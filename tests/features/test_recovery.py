"""Feature-recovery tests (paper §3.2, Figure 2).

The paper's claim: crafted features are exactly one-step message passing
on the LH-graph's G-net → G-cell relation.  These tests verify the
identities to machine precision on a real placed design:

* horizontal net density = H @ (1 / span_v),
* vertical net density   = H @ (1 / span_h),
* RUDY                   = H @ (npin · (span_h + span_v) / area),
* expected pin density   = H @ (npin / area), whose total mass equals the
  number of pins of the kept nets.
"""

import numpy as np
import pytest

from repro.circuit import DesignSpec, generate_design
from repro.features import compute_gnets, net_density_maps, rudy_map
from repro.graph import build_hypergraph_incidence
from repro.nn import Tensor, spmm
from repro.placement import place
from repro.routing import RoutingGrid


@pytest.fixture(scope="module")
def setup():
    d = generate_design(DesignSpec(name="recov", seed=51, num_movable=150,
                                   die_size=32.0))
    place(d)
    grid = RoutingGrid(d, nx=16, ny=16)
    gnets = compute_gnets(d, grid, max_fraction=None)
    H = build_hypergraph_incidence(gnets, 16, 16)
    return d, grid, gnets, H


def test_horizontal_net_density_recovered(setup):
    _, grid, gnets, H = setup
    span_v = gnets.features[:, 0:1]
    recovered = spmm(H, Tensor(1.0 / span_v)).data.reshape(16, 16)
    reference, _ = net_density_maps(gnets, 16, 16)
    assert np.allclose(recovered, reference, atol=1e-12)


def test_vertical_net_density_recovered(setup):
    _, grid, gnets, H = setup
    span_h = gnets.features[:, 1:2]
    recovered = spmm(H, Tensor(1.0 / span_h)).data.reshape(16, 16)
    _, reference = net_density_maps(gnets, 16, 16)
    assert np.allclose(recovered, reference, atol=1e-12)


def test_rudy_recovered(setup):
    _, grid, gnets, H = setup
    span_v = gnets.features[:, 0:1]
    span_h = gnets.features[:, 1:2]
    npin = gnets.features[:, 2:3]
    area = gnets.features[:, 3:4]
    payload = npin * (span_h + span_v) / area
    recovered = spmm(H, Tensor(payload)).data.reshape(16, 16)
    reference = rudy_map(gnets, 16, 16)
    assert np.allclose(recovered, reference, atol=1e-12)


def test_expected_pin_density_mass(setup):
    _, grid, gnets, H = setup
    npin = gnets.features[:, 2:3]
    area = gnets.features[:, 3:4]
    expected = spmm(H, Tensor(npin / area)).data
    assert expected.sum() == pytest.approx(float(npin.sum()))


def test_expected_pin_density_correlates_with_actual(setup):
    design, grid, gnets, H = setup
    from repro.features import pin_density_map
    npin = gnets.features[:, 2:3]
    area = gnets.features[:, 3:4]
    expected = spmm(H, Tensor(npin / area)).data.reshape(-1)
    actual = pin_density_map(design, grid).reshape(-1)
    corr = np.corrcoef(expected, actual)[0, 1]
    assert corr > 0.4  # expectation tracks reality on a placed design
