"""Tests for neighbour sampling (paper's {6,3,2} fan-outs)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.graph import sample_neighbors, sampled_operators
from repro.nn import SparseMatrix


@pytest.fixture
def rng():
    return np.random.default_rng(0)


@pytest.fixture
def operator():
    """10 destinations, 20 sources, dense-ish incidence."""
    mat = sp.random(10, 20, density=0.6, random_state=7, format="csr")
    mat.data[:] = 1.0
    return SparseMatrix(mat)


class TestSampleNeighbors:
    def test_fanout_respected(self, operator, rng):
        sampled = sample_neighbors(operator, fanout=3, rng=rng)
        per_row = np.diff(sampled.mat.indptr)
        assert per_row.max() <= 3

    def test_rows_with_few_neighbours_keep_all(self, rng):
        mat = sp.csr_matrix(np.array([[1.0, 1.0, 0.0], [0.0, 0.0, 1.0]]))
        sampled = sample_neighbors(SparseMatrix(mat), fanout=5, rng=rng)
        assert np.allclose(np.diff(sampled.mat.indptr), [2, 1])

    def test_mean_normalization(self, operator, rng):
        sampled = sample_neighbors(operator, fanout=4, rng=rng,
                                   normalize="mean")
        sums = sampled.row_sums()
        nonzero = sums > 0
        assert np.allclose(sums[nonzero], 1.0)

    def test_sum_normalization_keeps_values(self, rng):
        mat = sp.csr_matrix(np.array([[2.0, 0.0], [0.0, 3.0]]))
        sampled = sample_neighbors(SparseMatrix(mat), fanout=5, rng=rng,
                                   normalize="sum")
        assert np.allclose(sampled.toarray(), mat.toarray())

    def test_unbiased_rescales_by_degree_over_kept(self, rng):
        """Each kept edge is scaled by degree/kept, so row sums of a
        row-constant operator are preserved exactly."""
        mat = sp.csr_matrix(np.full((3, 8), 0.5))
        sampled = sample_neighbors(SparseMatrix(mat), fanout=2, rng=rng,
                                   normalize="unbiased")
        dense = sampled.toarray()
        assert np.allclose(dense[dense > 0], 0.5 * 8 / 2)
        assert np.allclose(sampled.row_sums(), 4.0)

    def test_unbiased_estimates_full_row_sum(self):
        """E[sampled row sum] == full row sum for non-constant values."""
        vals = np.arange(1.0, 7.0)[None, :]
        operator = SparseMatrix(sp.csr_matrix(vals))
        trials = 4000
        total = sum(sample_neighbors(operator, 3, np.random.default_rng(t),
                                     normalize="unbiased").row_sums()[0]
                    for t in range(trials))
        assert total / trials == pytest.approx(vals.sum(), rel=0.05)

    def test_sampled_edges_are_subset(self, operator, rng):
        sampled = sample_neighbors(operator, fanout=2, rng=rng)
        full = operator.toarray() > 0
        sub = sampled.toarray() > 0
        assert np.all(full | ~sub)

    def test_invalid_fanout(self, operator, rng):
        with pytest.raises(ValueError):
            sample_neighbors(operator, fanout=0, rng=rng)

    def test_invalid_normalize(self, operator, rng):
        with pytest.raises(ValueError):
            sample_neighbors(operator, fanout=2, rng=rng, normalize="max")

    def test_empty_rows_stay_empty(self, rng):
        mat = sp.csr_matrix(np.array([[0.0, 0.0], [1.0, 1.0]]))
        sampled = sample_neighbors(SparseMatrix(mat), fanout=1, rng=rng)
        assert sampled.row_sums()[0] == 0.0

    def test_empty_operator(self, rng):
        sampled = sample_neighbors(SparseMatrix(sp.csr_matrix((3, 5))),
                                   fanout=2, rng=rng)
        assert sampled.shape == (3, 5) and sampled.nnz == 0

    def test_kept_counts_equal_min_degree_fanout(self, operator, rng):
        sampled = sample_neighbors(operator, fanout=3, rng=rng)
        degrees = np.diff(operator.mat.indptr)
        assert np.array_equal(np.diff(sampled.mat.indptr),
                              np.minimum(degrees, 3))

    def test_marginal_keep_probabilities(self):
        """The vectorised draw must keep each edge with prob fanout/degree,
        matching the per-row rng.choice loop it replaced."""
        mat = sp.csr_matrix(np.array([
            [1.0, 1.0, 1.0, 1.0, 1.0, 1.0],   # degree 6
            [1.0, 1.0, 1.0, 0.0, 0.0, 0.0],   # degree 3
            [0.0, 0.0, 0.0, 0.0, 1.0, 1.0],   # degree 2 (< fanout: keep all)
        ]))
        operator = SparseMatrix(mat)
        fanout, trials = 3, 3000
        counts = np.zeros(mat.shape)
        for trial in range(trials):
            s = sample_neighbors(operator, fanout,
                                 np.random.default_rng(trial),
                                 normalize="sum")
            counts += s.toarray() > 0
        empirical = counts / trials
        degrees = np.diff(mat.indptr)
        expected = mat.toarray() * np.minimum(
            fanout / np.maximum(degrees, 1), 1.0)[:, None]
        assert np.abs(empirical - expected).max() < 0.05


class TestSampledOperators:
    def test_all_four_operators(self, small_graph, rng):
        ops = sampled_operators(small_graph,
                                {"featuregen": 6, "hypermp": 3,
                                 "latticemp": 2}, rng)
        assert set(ops) == {"op_nc_sum", "op_cn_mean", "op_nc_mean",
                            "op_cc_mean"}
        assert ops["op_nc_sum"].shape == small_graph.op_nc_sum.shape

    def test_latticemp_fanout(self, small_graph, rng):
        ops = sampled_operators(small_graph, {"latticemp": 2}, rng)
        per_row = np.diff(ops["op_cc_mean"].mat.indptr)
        assert per_row.max() <= 2

    def test_different_draws_differ(self, small_graph):
        a = sampled_operators(small_graph, {}, np.random.default_rng(0))
        b = sampled_operators(small_graph, {}, np.random.default_rng(1))
        assert not np.allclose(a["op_cc_mean"].toarray(),
                               b["op_cc_mean"].toarray())

    def test_featuregen_sampled_sums_match_full_graph(self, small_graph, rng):
        """Sampled FeatureGen aggregation must reproduce the full-graph
        scaled-sum magnitudes: the scaled-sum operator's values are
        row-constant, so the unbiased reweighting (degree/kept per edge)
        makes every sampled row sum *exactly* the full row sum."""
        ops = sampled_operators(small_graph, {"featuregen": 4}, rng)
        assert np.allclose(ops["op_nc_sum"].row_sums(),
                           small_graph.op_nc_scaled_sum.row_sums())

    def test_on_batched_graph(self, tiny_graph_suite, rng):
        from repro.graph import batch_graphs
        batched = batch_graphs(tiny_graph_suite[:2])
        ops = sampled_operators(batched, {"latticemp": 2}, rng)
        assert ops["op_cc_mean"].shape == batched.op_cc_mean.shape
        assert np.diff(ops["op_cc_mean"].mat.indptr).max() <= 2
