"""Tests for neighbour sampling (paper's {6,3,2} fan-outs)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.graph import sample_neighbors, sampled_operators
from repro.nn import SparseMatrix


@pytest.fixture
def rng():
    return np.random.default_rng(0)


@pytest.fixture
def operator():
    """10 destinations, 20 sources, dense-ish incidence."""
    mat = sp.random(10, 20, density=0.6, random_state=7, format="csr")
    mat.data[:] = 1.0
    return SparseMatrix(mat)


class TestSampleNeighbors:
    def test_fanout_respected(self, operator, rng):
        sampled = sample_neighbors(operator, fanout=3, rng=rng)
        per_row = np.diff(sampled.mat.indptr)
        assert per_row.max() <= 3

    def test_rows_with_few_neighbours_keep_all(self, rng):
        mat = sp.csr_matrix(np.array([[1.0, 1.0, 0.0], [0.0, 0.0, 1.0]]))
        sampled = sample_neighbors(SparseMatrix(mat), fanout=5, rng=rng)
        assert np.allclose(np.diff(sampled.mat.indptr), [2, 1])

    def test_mean_normalization(self, operator, rng):
        sampled = sample_neighbors(operator, fanout=4, rng=rng,
                                   normalize="mean")
        sums = sampled.row_sums()
        nonzero = sums > 0
        assert np.allclose(sums[nonzero], 1.0)

    def test_sum_normalization_keeps_values(self, rng):
        mat = sp.csr_matrix(np.array([[2.0, 0.0], [0.0, 3.0]]))
        sampled = sample_neighbors(SparseMatrix(mat), fanout=5, rng=rng,
                                   normalize="sum")
        assert np.allclose(sampled.toarray(), mat.toarray())

    def test_sampled_edges_are_subset(self, operator, rng):
        sampled = sample_neighbors(operator, fanout=2, rng=rng)
        full = operator.toarray() > 0
        sub = sampled.toarray() > 0
        assert np.all(full | ~sub)

    def test_invalid_fanout(self, operator, rng):
        with pytest.raises(ValueError):
            sample_neighbors(operator, fanout=0, rng=rng)

    def test_invalid_normalize(self, operator, rng):
        with pytest.raises(ValueError):
            sample_neighbors(operator, fanout=2, rng=rng, normalize="max")

    def test_empty_rows_stay_empty(self, rng):
        mat = sp.csr_matrix(np.array([[0.0, 0.0], [1.0, 1.0]]))
        sampled = sample_neighbors(SparseMatrix(mat), fanout=1, rng=rng)
        assert sampled.row_sums()[0] == 0.0


class TestSampledOperators:
    def test_all_four_operators(self, small_graph, rng):
        ops = sampled_operators(small_graph,
                                {"featuregen": 6, "hypermp": 3,
                                 "latticemp": 2}, rng)
        assert set(ops) == {"op_nc_sum", "op_cn_mean", "op_nc_mean",
                            "op_cc_mean"}
        assert ops["op_nc_sum"].shape == small_graph.op_nc_sum.shape

    def test_latticemp_fanout(self, small_graph, rng):
        ops = sampled_operators(small_graph, {"latticemp": 2}, rng)
        per_row = np.diff(ops["op_cc_mean"].mat.indptr)
        assert per_row.max() <= 2

    def test_different_draws_differ(self, small_graph):
        a = sampled_operators(small_graph, {}, np.random.default_rng(0))
        b = sampled_operators(small_graph, {}, np.random.default_rng(1))
        assert not np.allclose(a["op_cc_mean"].toarray(),
                               b["op_cc_mean"].toarray())
