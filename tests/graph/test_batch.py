"""Tests for block-diagonal graph batching."""

import numpy as np
import pytest

from repro.graph import BatchCache, batch_graphs, plan_batches, unbatch_values
from repro.models.lhnn import LHNN, LHNNConfig
from repro.nn import Tensor


@pytest.fixture(scope="module")
def pair(tiny_graph_suite):
    return tiny_graph_suite[0], tiny_graph_suite[1]


@pytest.fixture(scope="module")
def batched(pair):
    return batch_graphs(list(pair))


class TestBatchGraphs:
    def test_counts_add_up(self, pair, batched):
        a, b = pair
        assert batched.num_gcells == a.num_gcells + b.num_gcells
        assert batched.num_gnets == a.num_gnets + b.num_gnets
        assert batched.vc.shape[0] == batched.num_gcells

    def test_block_diagonal_structure(self, pair, batched):
        a, b = pair
        dense = batched.incidence.toarray()
        # off-diagonal blocks must be zero
        assert np.allclose(dense[:a.num_gcells, a.num_gnets:], 0.0)
        assert np.allclose(dense[a.num_gcells:, :a.num_gnets], 0.0)
        assert np.allclose(dense[:a.num_gcells, :a.num_gnets],
                           a.incidence.toarray())

    def test_labels_stacked(self, pair, batched):
        a, b = pair
        assert batched.congestion.shape[0] == a.num_gcells + b.num_gcells
        assert np.allclose(batched.congestion[:a.num_gcells], a.congestion)

    def test_single_graph_passthrough(self, pair):
        assert batch_graphs([pair[0]]) is pair[0]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            batch_graphs([])

    def test_metadata_offsets(self, pair, batched):
        a, b = pair
        assert batched.metadata["cell_counts"] == [a.num_gcells, b.num_gcells]
        assert batched.metadata["names"] == [a.name, b.name]

    def test_per_design_gnets_in_metadata(self, pair, batched):
        """No design's G-net data may be silently dropped or misattributed."""
        a, b = pair
        assert batched.gnets is None
        assert batched.metadata["gnets"] == [a.gnets, b.gnets]
        assert batched.metadata["net_counts"] == [a.num_gnets, b.num_gnets]


class TestBatchedForward:
    def test_lhnn_forward_matches_per_design(self, pair, batched):
        """Block-diagonal batching must give exactly the per-design outputs."""
        model = LHNN(LHNNConfig(hidden=8), np.random.default_rng(0))
        model.eval()
        out_batched = model(batched).cls_prob.data
        parts = unbatch_values(batched, out_batched)
        for graph, part in zip(pair, parts):
            single = model(graph).cls_prob.data
            assert np.allclose(part, single, atol=1e-10)

    def test_collated_forward_matches_concat(self, tiny_graph_suite):
        """Batched training view == per-design forward passes, concatenated."""
        from repro.data import CongestionDataset, collate_samples
        ds = CongestionDataset(tiny_graph_suite, channels=1)
        samples = [ds.sample(i) for i in range(3)]
        model = LHNN(LHNNConfig(hidden=8), np.random.default_rng(1))
        model.eval()
        batch = collate_samples(samples)
        out = model(batch.graph, vc=Tensor(batch.features),
                    vn=Tensor(batch.net_features)).cls_prob.data
        singles = [model(s.graph, vc=Tensor(s.features),
                         vn=Tensor(s.net_features)).cls_prob.data
                   for s in samples]
        assert np.allclose(out, np.concatenate(singles), atol=1e-9)
        assert np.allclose(batch.cls_target,
                           np.concatenate([s.cls_target for s in samples]))

    def test_unbatch_roundtrip(self, pair, batched):
        values = np.arange(batched.num_gcells, dtype=float)
        parts = unbatch_values(batched, values)
        assert len(parts) == 2
        assert np.allclose(np.concatenate(parts), values)

    def test_unbatch_on_plain_graph(self, pair):
        out = unbatch_values(pair[0], np.zeros(pair[0].num_gcells))
        assert len(out) == 1

    def test_unbatch_per_gnet_array(self, pair, batched):
        """G-net-sized arrays split by net_counts, not cell_counts."""
        a, b = pair
        values = np.arange(batched.num_gnets, dtype=float)
        parts = unbatch_values(batched, values)
        assert [len(p) for p in parts] == [a.num_gnets, b.num_gnets]
        assert np.allclose(np.concatenate(parts), values)

    def test_unbatch_rejects_wrong_length(self, batched):
        with pytest.raises(ValueError):
            unbatch_values(batched, np.zeros(batched.num_gcells + 1))

    def test_unbatch_2d_values(self, pair, batched):
        values = np.zeros((batched.num_gcells, 2))
        parts = unbatch_values(batched, values)
        assert [p.shape for p in parts] == [(g.num_gcells, 2) for g in pair]


class TestBatchCache:
    def test_hit_on_same_membership(self, pair):
        cache = BatchCache()
        first = cache.get(list(pair))
        second = cache.get(list(pair))
        assert first is second
        assert cache.hits == 1 and cache.misses == 1

    def test_miss_on_different_membership(self, pair):
        cache = BatchCache()
        cache.get(list(pair))
        cache.get([pair[0]])
        assert cache.misses == 2

    def test_eviction_bound(self, tiny_graph_suite):
        cache = BatchCache(max_entries=2)
        for g in tiny_graph_suite[:4]:
            cache.get([g])
        assert len(cache) == 2

    def test_clear(self, pair):
        cache = BatchCache()
        cache.get(list(pair))
        cache.clear()
        assert len(cache) == 0 and cache.hits == 0 and cache.misses == 0


class _Stub:
    """Graph stand-in: plan_batches only reads ``ny``."""

    def __init__(self, ny):
        self.ny = ny


class TestPlanBatches:
    def test_uniform_ny_single_group(self):
        assert plan_batches([_Stub(16)] * 3) == [[0, 1, 2]]

    def test_groups_respect_max_batch(self):
        groups = plan_batches([_Stub(16)] * 5, max_batch=2)
        assert groups == [[0, 1], [2, 3], [4]]

    def test_mixed_ny_split_into_compatible_groups(self):
        graphs = [_Stub(16), _Stub(8), _Stub(16), _Stub(8), _Stub(32)]
        groups = plan_batches(graphs)
        assert groups == [[0, 2], [1, 3], [4]]
        # Every index appears exactly once.
        flat = sorted(i for g in groups for i in g)
        assert flat == list(range(5))

    def test_groups_are_batchable(self, tiny_graph_suite):
        groups = plan_batches(tiny_graph_suite, max_batch=4)
        for group in groups:
            members = [tiny_graph_suite[i] for i in group]
            batched = batch_graphs(members)
            assert batched.num_gcells == sum(m.num_gcells for m in members)

    def test_empty_and_validation(self):
        assert plan_batches([]) == []
        with pytest.raises(ValueError):
            plan_batches([_Stub(16)], max_batch=0)
