"""Tests for block-diagonal graph batching."""

import numpy as np
import pytest

from repro.graph import batch_graphs, unbatch_values
from repro.models.lhnn import LHNN, LHNNConfig
from repro.nn import Tensor


@pytest.fixture(scope="module")
def pair(tiny_graph_suite):
    return tiny_graph_suite[0], tiny_graph_suite[1]


@pytest.fixture(scope="module")
def batched(pair):
    return batch_graphs(list(pair))


class TestBatchGraphs:
    def test_counts_add_up(self, pair, batched):
        a, b = pair
        assert batched.num_gcells == a.num_gcells + b.num_gcells
        assert batched.num_gnets == a.num_gnets + b.num_gnets
        assert batched.vc.shape[0] == batched.num_gcells

    def test_block_diagonal_structure(self, pair, batched):
        a, b = pair
        dense = batched.incidence.toarray()
        # off-diagonal blocks must be zero
        assert np.allclose(dense[:a.num_gcells, a.num_gnets:], 0.0)
        assert np.allclose(dense[a.num_gcells:, :a.num_gnets], 0.0)
        assert np.allclose(dense[:a.num_gcells, :a.num_gnets],
                           a.incidence.toarray())

    def test_labels_stacked(self, pair, batched):
        a, b = pair
        assert batched.congestion.shape[0] == a.num_gcells + b.num_gcells
        assert np.allclose(batched.congestion[:a.num_gcells], a.congestion)

    def test_single_graph_passthrough(self, pair):
        assert batch_graphs([pair[0]]) is pair[0]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            batch_graphs([])

    def test_metadata_offsets(self, pair, batched):
        a, b = pair
        assert batched.metadata["cell_counts"] == [a.num_gcells, b.num_gcells]
        assert batched.metadata["names"] == [a.name, b.name]


class TestBatchedForward:
    def test_lhnn_forward_matches_per_design(self, pair, batched):
        """Block-diagonal batching must give exactly the per-design outputs."""
        model = LHNN(LHNNConfig(hidden=8), np.random.default_rng(0))
        model.eval()
        out_batched = model(batched).cls_prob.data
        parts = unbatch_values(batched, out_batched)
        for graph, part in zip(pair, parts):
            single = model(graph).cls_prob.data
            assert np.allclose(part, single, atol=1e-10)

    def test_unbatch_roundtrip(self, pair, batched):
        values = np.arange(batched.num_gcells, dtype=float)
        parts = unbatch_values(batched, values)
        assert len(parts) == 2
        assert np.allclose(np.concatenate(parts), values)

    def test_unbatch_on_plain_graph(self, pair):
        out = unbatch_values(pair[0], np.zeros(pair[0].num_gcells))
        assert len(out) == 1
