"""Tests for LH-graph construction and the heterogeneous container."""

import numpy as np
import pytest

from repro.graph import (HeteroGraph, build_hypergraph_incidence,
                         build_lattice_adjacency, build_lhgraph)
from repro.nn import SparseMatrix


class TestLatticeAdjacency:
    def test_corner_degree_two(self):
        a = build_lattice_adjacency(4, 4)
        deg = a.row_sums()
        assert deg[0] == 2          # corner (0,0)

    def test_interior_degree_four(self):
        a = build_lattice_adjacency(4, 4)
        deg = a.row_sums().reshape(4, 4)
        assert deg[1, 1] == 4
        assert deg[1, 0] == 3       # edge cell

    def test_symmetric(self):
        a = build_lattice_adjacency(5, 3).toarray()
        assert np.allclose(a, a.T)

    def test_no_self_loops(self):
        a = build_lattice_adjacency(5, 5).toarray()
        assert np.allclose(np.diag(a), 0.0)

    def test_total_edges(self):
        # nx*ny grid has nx*(ny-1) + ny*(nx-1) undirected edges
        a = build_lattice_adjacency(6, 4)
        assert a.nnz == 2 * (6 * 3 + 4 * 5)

    def test_neighbours_are_adjacent_cells(self):
        ny = 4
        a = build_lattice_adjacency(4, ny).toarray()
        idx = 1 * ny + 2   # cell (1, 2)
        neighbours = np.flatnonzero(a[idx])
        coords = {(i // ny, i % ny) for i in neighbours}
        assert coords == {(0, 2), (2, 2), (1, 1), (1, 3)}


class TestLHGraph:
    def test_shapes(self, small_graph):
        g = small_graph
        assert g.vc.shape == (g.num_gcells, 4)
        assert g.vn.shape == (g.num_gnets, 4)
        assert g.incidence.shape == (g.num_gcells, g.num_gnets)
        assert g.adjacency.shape == (g.num_gcells, g.num_gcells)

    def test_labels_attached(self, small_graph):
        assert small_graph.demand is not None
        assert small_graph.congestion is not None
        assert small_graph.demand.shape == (small_graph.num_gcells, 2)
        assert set(np.unique(small_graph.congestion)).issubset({0.0, 1.0})

    def test_operator_normalisations(self, small_graph):
        g = small_graph
        # op_cn_mean rows (G-nets) sum to 1 where degree > 0
        sums = g.op_cn_mean.row_sums()
        assert np.allclose(sums[sums > 0], 1.0)
        sums = g.op_nc_mean.row_sums()
        assert np.allclose(sums[sums > 0], 1.0)
        sums = g.op_cc_mean.row_sums()
        assert np.allclose(sums, 1.0)  # lattice has no isolated cells

    def test_scaled_sum_proportional_to_h(self, small_graph):
        g = small_graph
        ratio = g.op_nc_scaled_sum.mat.data / g.incidence.mat.data
        assert np.allclose(ratio, ratio[0])

    def test_incidence_matches_gnets(self, small_graph):
        g = small_graph
        areas = g.incidence.col_sums()
        assert np.allclose(areas, g.gnets.features[:, 3])

    def test_congestion_rate_channel(self, small_graph):
        r = small_graph.congestion_rate(0)
        assert 0.0 <= r <= 1.0
        assert r == pytest.approx(float(small_graph.congestion[:, 0].mean()))

    def test_congestion_rate_requires_labels(self, placed_design,
                                             routing_result):
        g = build_lhgraph(placed_design, routing_result.grid, maps=None)
        with pytest.raises(ValueError):
            g.congestion_rate()

    def test_map_to_grid_roundtrip(self, small_graph):
        g = small_graph
        flat = np.arange(g.num_gcells, dtype=float)
        assert np.allclose(g.map_to_grid(flat).reshape(-1), flat)

    def test_to_hetero_schema(self, small_graph):
        h = small_graph.to_hetero()
        schema = h.schema()
        assert schema["nodes"]["gcell"] == small_graph.num_gcells
        assert schema["nodes"]["gnet"] == small_graph.num_gnets
        assert len(schema["relations"]) == 4


class TestHeteroGraph:
    def test_duplicate_node_type_rejected(self):
        g = HeteroGraph()
        g.add_nodes("a", 3)
        with pytest.raises(ValueError):
            g.add_nodes("a", 3)

    def test_feature_row_mismatch_rejected(self):
        g = HeteroGraph()
        g.add_nodes("a", 3)
        with pytest.raises(ValueError):
            g.set_features("a", np.zeros((4, 2)))

    def test_relation_shape_checked(self):
        g = HeteroGraph()
        g.add_nodes("a", 3)
        g.add_nodes("b", 2)
        with pytest.raises(ValueError):
            g.add_relation("a", "to", "b", SparseMatrix(np.zeros((3, 2))))
        g.add_relation("a", "to", "b", SparseMatrix(np.zeros((2, 3))))
        assert g.has_relation("a", "to", "b")

    def test_unknown_node_type(self):
        g = HeteroGraph()
        with pytest.raises(KeyError):
            g.set_features("ghost", np.zeros((1, 1)))
