"""Tests for the perf harness: op timers, allocation counters, reporter.

The reporter smoke test is the tier-1 guard the CI nightly bench job
relies on: if ``write_bench_report`` ever emits JSON that
``load_bench_report`` rejects, it fails here on every push instead of
silently corrupting the nightly ``BENCH_nn.json`` artifact.
"""

import json

import numpy as np
import pytest

from repro import perf
from repro.nn import Adam, Parameter, SparseMatrix, Tensor, spmm
from repro.perf.report import (BENCH_SCHEMA, load_bench_report,
                               speedup_entry, write_bench_report)


@pytest.fixture(autouse=True)
def _clean_registry():
    perf.disable()
    perf.reset()
    yield
    perf.disable()
    perf.reset()


class TestRegistry:
    def test_disabled_records_nothing(self):
        with perf.op_timer("noop"):
            pass
        assert perf.perf_report()["ops"] == {}

    def test_enable_capture_and_report(self):
        perf.enable()
        with perf.op_timer("stage", nbytes=128):
            pass
        with perf.op_timer("stage", nbytes=128):
            pass
        report = perf.perf_report()
        stat = report["ops"]["stage"]
        assert stat["calls"] == 2
        assert stat["total_s"] >= 0.0
        assert stat["mean_s"] == pytest.approx(stat["total_s"] / 2)
        assert stat["bytes_allocated"] == 256

    def test_enable_resets_by_default(self):
        perf.enable()
        perf.PERF.record("old", 1.0)
        perf.enable()
        assert "old" not in perf.perf_report()["ops"]
        perf.PERF.record("kept", 1.0)
        perf.enable(reset=False)
        assert "kept" in perf.perf_report()["ops"]

    def test_hot_ops_report_when_enabled(self):
        perf.enable()
        x = Tensor(np.ones((4, 3)), requires_grad=True)
        op = SparseMatrix(np.eye(4))
        out = spmm(op, x).sum()
        out.backward()
        p = Parameter(np.ones(3))
        p.grad = np.ones(3)
        Adam([p], lr=0.1).step()
        ops = perf.perf_report()["ops"]
        assert "spmm.forward" in ops
        assert "spmm.backward" in ops
        assert "autograd.backward" in ops
        assert "optimizer.step" in ops

    def test_measure_returns_time_and_peak(self):
        m = perf.measure(lambda: np.zeros(1 << 16))
        assert m.seconds >= 0.0
        assert m.peak_bytes > 0
        assert isinstance(m.value, np.ndarray)


class TestBenchReporter:
    def test_speedup_entry_math(self):
        entry = speedup_entry(float32_s=1.0, float64_s=2.0, note="x")
        assert entry["speedup_vs_float64"] == pytest.approx(2.0)
        assert entry["note"] == "x"

    def test_speedup_entry_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            speedup_entry(0.0, 1.0)

    def test_write_and_load_roundtrip(self, tmp_path):
        path = str(tmp_path / "BENCH_nn.json")
        entries = {
            "train_epoch": speedup_entry(0.5, 1.0, f1_float32=40.0,
                                         f1_float64=40.2),
            "spmm": speedup_entry(0.001, 0.002),
        }
        perf.enable()
        perf.PERF.record("spmm.forward", 0.001, 64)
        written = write_bench_report(path, entries,
                                     perf_ops=perf.perf_report(),
                                     context={"rounds": 3})
        assert written == path
        report = load_bench_report(path)
        assert report["schema"] == BENCH_SCHEMA
        assert report["entries"]["train_epoch"]["speedup_vs_float64"] \
            == pytest.approx(2.0)
        assert report["perf_ops"]["ops"]["spmm.forward"]["calls"] == 1
        assert report["context"]["rounds"] == 3
        # The artifact must be plain parseable JSON for CI tooling.
        with open(path) as handle:
            assert json.load(handle)["entries"]

    def test_empty_entries_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_bench_report(str(tmp_path / "b.json"), {})

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "other", "entries": {"a": {}}}))
        with pytest.raises(ValueError):
            load_bench_report(str(path))

    def test_load_rejects_non_numeric_timing(self, tmp_path):
        path = tmp_path / "bad2.json"
        path.write_text(json.dumps({
            "schema": BENCH_SCHEMA,
            "entries": {"a": {"float32_s": "fast"}}}))
        with pytest.raises(ValueError):
            load_bench_report(str(path))
