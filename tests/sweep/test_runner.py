"""Runner layer: exactly-once execution, resume, quarantine, status."""

import json
import os
import threading
import time

import pytest
from sweep_utils import tiny_sweep_payload, write_stub_manifest

from repro.store import BlobStore
from repro.sweep import (JOURNAL_NAME, SweepError, expand_grid,
                         point_lease_name, point_state, run_sweep,
                         sweep_from_dict, sweep_status)


def make_sweep(tmp_path, **kwargs):
    return sweep_from_dict(tiny_sweep_payload(str(tmp_path), **kwargs))


def journal_events(artifacts_dir):
    path = os.path.join(artifacts_dir, "experiments", JOURNAL_NAME)
    if not os.path.exists(path):
        return []
    with open(path) as fh:
        return [json.loads(line) for line in fh if line.strip()]


class TestRunResume:
    def test_runs_every_point_once(self, tmp_path, stub_executor):
        sweep = make_sweep(tmp_path)
        report = run_sweep(sweep, execute=stub_executor)
        assert (report.total, report.executed, report.skipped) == (4, 4, 0)
        for point in expand_grid(sweep):
            assert os.path.exists(point.spec.manifest_path())
        events = journal_events(str(tmp_path))
        assert sorted(e["fingerprint"] for e in events) == \
            sorted(p.fingerprint for p in expand_grid(sweep))

    def test_rerun_skips_done_points(self, tmp_path, stub_executor):
        sweep = make_sweep(tmp_path)
        run_sweep(sweep, execute=stub_executor)
        mtimes = {p.fingerprint: os.stat(p.spec.manifest_path()).st_mtime_ns
                  for p in expand_grid(sweep)}
        report = run_sweep(sweep, execute=stub_executor)
        assert (report.executed, report.skipped) == (0, 4)
        # Resume never rewrites a completed point's manifest.
        for point in expand_grid(sweep):
            assert os.stat(point.spec.manifest_path()).st_mtime_ns == \
                mtimes[point.fingerprint]

    def test_partial_resume_fills_only_the_hole(self, tmp_path,
                                                stub_executor):
        sweep = make_sweep(tmp_path)
        points = expand_grid(sweep)
        for point in points[:3]:  # simulate a crash after three points
            write_stub_manifest(point.spec)
        report = run_sweep(sweep, execute=stub_executor)
        assert (report.executed, report.skipped) == (1, 3)
        assert journal_events(str(tmp_path))[0]["fingerprint"] == \
            points[3].fingerprint

    def test_stale_lease_is_stolen(self, tmp_path, stub_executor):
        sweep = make_sweep(tmp_path)
        point = expand_grid(sweep)[0]
        lease_dir = tmp_path / "leases"
        lease_dir.mkdir()
        stale = lease_dir / f"{point_lease_name(point.fingerprint)}.json"
        stale.write_text(json.dumps({
            "host": __import__("socket").gethostname(),
            "pid": 2 ** 22 + 1,  # beyond any real pid: provably dead
            "token": "dead", "acquired_unix": time.time()}))
        report = run_sweep(sweep, execute=stub_executor)
        assert report.executed == 4
        assert not stale.exists()

    def test_failed_point_reported_others_complete(self, tmp_path,
                                                   flaky_stub_executor):
        sweep = make_sweep(tmp_path)
        with pytest.raises(SweepError, match="2 of 4.*gridsage failure"):
            run_sweep(sweep, execute=flaky_stub_executor)
        done = [p for p in expand_grid(sweep)
                if os.path.exists(p.spec.manifest_path())]
        assert {p.axes["model.family"] for p in done} == {"mlp"}

    def test_multiprocess_pool_runs_all_points(self, tmp_path,
                                               stub_executor):
        sweep = make_sweep(tmp_path)
        report = run_sweep(sweep, workers=2, execute=stub_executor)
        assert report.executed == 4
        assert len(journal_events(str(tmp_path))) == 4


class TestExactlyOnce:
    def test_busy_lease_is_waited_out(self, tmp_path, stub_executor):
        """A point leased by a live contender is polled, not re-executed."""
        sweep = make_sweep(tmp_path)
        point = expand_grid(sweep)[0]
        store = BlobStore(str(tmp_path))
        lease = store.try_lease(point_lease_name(point.fingerprint))
        assert lease is not None and not hasattr(lease, "root")

        result = {}

        def drive():
            result["report"] = run_sweep(sweep, poll_s=0.02,
                                         execute=stub_executor)

        thread = threading.Thread(target=drive)
        thread.start()
        time.sleep(0.15)  # let the runner finish everything else
        # The "other process" completes its point, then drops the lease.
        write_stub_manifest(point.spec)
        lease.release()
        thread.join(timeout=10)
        assert not thread.is_alive()
        report = result["report"]
        assert report.executed == 3
        assert report.skipped == 1
        assert report.waited_on >= 1
        assert all(e["fingerprint"] != point.fingerprint
                   for e in journal_events(str(tmp_path)))

    def test_concurrent_runs_execute_each_point_once(self, tmp_path,
                                                     slow_stub_executor):
        sweep = make_sweep(tmp_path)
        reports = [None, None]

        def drive(slot):
            reports[slot] = run_sweep(sweep, poll_s=0.02,
                                      execute=slow_stub_executor)

        threads = [threading.Thread(target=drive, args=(i,))
                   for i in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert all(r is not None for r in reports)
        assert reports[0].executed + reports[1].executed == 4
        assert reports[0].skipped + reports[1].skipped == 4
        events = journal_events(str(tmp_path))
        assert len(events) == 4
        assert len({e["fingerprint"] for e in events}) == 4


class TestQuarantine:
    def test_corrupt_manifest_quarantined_and_reexecuted(self, tmp_path,
                                                         stub_executor):
        sweep = make_sweep(tmp_path)
        point = expand_grid(sweep)[0]
        path = write_stub_manifest(point.spec)
        with open(path, "w") as fh:
            fh.write("{ not json")
        report = run_sweep(sweep, execute=stub_executor)
        assert report.executed == 4  # the corrupt point ran again
        quarantine = tmp_path / "quarantine"
        names = os.listdir(quarantine)
        # quarantine_file keeps the basename and stamps it; the reason
        # record rides alongside as <stamped>.reason.json.
        base = os.path.basename(path)
        assert any(n.startswith(base) and not n.endswith(".reason.json")
                   for n in names)
        (reason_path,) = [quarantine / n for n in names
                          if n.endswith(".reason.json")]
        reason = json.loads(reason_path.read_text())
        assert reason["fingerprint"] == point.fingerprint

    def test_wrong_fingerprint_manifest_is_not_done(self, tmp_path,
                                                    stub_executor):
        """A manifest embedding another spec's fingerprint never
        satisfies a point (a copied file cannot fake completion).

        The planted file *does* count for point b — identity lives in the
        embedded fingerprint, not the filename (the legacy-name
        back-compat path) — but point a must re-execute.
        """
        sweep = make_sweep(tmp_path)
        a, b = expand_grid(sweep)[:2]
        write_stub_manifest(b.spec)
        # Plant b's manifest at a's canonical path.
        os.replace(b.spec.manifest_path(), a.spec.manifest_path())
        report = run_sweep(sweep, execute=stub_executor)
        assert (report.executed, report.skipped) == (3, 1)
        manifest = json.load(open(a.spec.manifest_path()))
        assert manifest["fingerprint"] == a.fingerprint


class TestStatus:
    def test_status_reports_all_states_and_takes_nothing(self, tmp_path,
                                                         stub_executor):
        sweep = make_sweep(tmp_path)
        points = expand_grid(sweep)
        # point 0: done; point 1: leased (live — held by this process);
        # point 2: corrupt manifest -> quarantined; point 3: pending.
        write_stub_manifest(points[0].spec)
        store = BlobStore(str(tmp_path))
        lease = store.try_lease(point_lease_name(points[1].fingerprint))
        path = write_stub_manifest(points[2].spec)
        with open(path, "w") as fh:
            fh.write("garbage")
        try:
            lease_dir = tmp_path / "leases"
            before = set(os.listdir(lease_dir))
            statuses = sweep_status(sweep)
            assert [s.state for s in statuses] == \
                ["done", "leased", "quarantined", "pending"]
            assert statuses[0].manifest_path == \
                points[0].spec.manifest_path()
            assert statuses[1].holder["pid"] == os.getpid()
            assert "parse" in statuses[2].detail or \
                "unreadable" in statuses[2].detail
            # Read-only: no lease created, renewed or stolen; the
            # corrupt manifest stays in place for `run` to quarantine.
            assert set(os.listdir(lease_dir)) == before
            assert os.path.exists(path)
            assert not os.path.exists(tmp_path / "quarantine")
        finally:
            lease.release()

    def test_stale_lease_reads_as_pending(self, tmp_path):
        sweep = make_sweep(tmp_path)
        point = expand_grid(sweep)[0]
        lease_dir = tmp_path / "leases"
        lease_dir.mkdir()
        stale = lease_dir / f"{point_lease_name(point.fingerprint)}.json"
        stale.write_text(json.dumps({
            "host": __import__("socket").gethostname(),
            "pid": 2 ** 22 + 1, "token": "dead",
            "acquired_unix": time.time()}))
        assert point_state(str(tmp_path), point).state == "pending"

    def test_status_on_fresh_dir_is_all_pending(self, tmp_path):
        statuses = sweep_status(make_sweep(tmp_path))
        assert [s.state for s in statuses] == ["pending"] * 4
        assert not (tmp_path / "leases").exists()
