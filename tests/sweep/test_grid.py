"""Grid layer: sweep parsing, cartesian expansion, seed derivation."""

import pytest

from repro.api import SpecError, spec_fingerprint
from repro.sweep import (derive_point_seed, expand_grid, load_sweep,
                         seed_basis_fingerprint, sweep_from_dict,
                         sweep_fingerprint)

from sweep_utils import tiny_sweep_payload


class TestParsing:
    def test_inline_base_and_axes(self, tmp_path):
        sweep = sweep_from_dict(tiny_sweep_payload(str(tmp_path)))
        assert sweep.name == "unit"
        assert sweep.base.workload.suite == "hotspot"
        assert sweep.grid_size() == 4
        assert sweep.artifacts_dir == str(tmp_path)
        assert not sweep.seed_pinned

    def test_base_as_relative_path(self, tmp_path):
        (tmp_path / "base.toml").write_text(
            "[workload]\nsuite = 'hotspot'\ncount = 2\nscale = 0.2\n"
            "[model]\nfamily = 'mlp'\n")
        sweep_file = tmp_path / "sweep.toml"
        sweep_file.write_text(
            "name = 'from-path'\n"
            "base = 'base.toml'\n"
            "[axes]\n\"train.epochs\" = [1, 2]\n")
        sweep = load_sweep(str(sweep_file))
        assert sweep.base.workload.suite == "hotspot"
        assert sweep.grid_size() == 2

    def test_base_overrides_apply_before_expansion(self, tmp_path):
        sweep = sweep_from_dict(tiny_sweep_payload(str(tmp_path)),
                                base_overrides=["workload.count=3"])
        assert sweep.base.workload.count == 3

    def test_unknown_top_level_key(self, tmp_path):
        payload = tiny_sweep_payload(str(tmp_path))
        payload["grid"] = {}
        with pytest.raises(SpecError, match="unknown sweep key 'grid'"):
            sweep_from_dict(payload)

    def test_base_must_not_pin_checkpoint(self, tmp_path):
        payload = tiny_sweep_payload(str(tmp_path))
        payload["base"]["output"]["checkpoint"] = "x.npz"
        with pytest.raises(SpecError, match="must not pin"):
            sweep_from_dict(payload)

    def test_base_must_not_pin_manifest(self, tmp_path):
        payload = tiny_sweep_payload(str(tmp_path))
        payload["base"]["output"]["manifest"] = "x.json"
        with pytest.raises(SpecError, match="must not pin"):
            sweep_from_dict(payload)

    def test_base_wrong_type(self):
        with pytest.raises(SpecError, match="spec table or a path"):
            sweep_from_dict({"base": 5, "axes": {"train.epochs": [1]}})

    def test_empty_axes_rejected(self, tmp_path):
        payload = tiny_sweep_payload(str(tmp_path), axes={})
        with pytest.raises(SpecError, match=r"\[axes\] must be"):
            sweep_from_dict(payload)

    def test_missing_axes_rejected(self, tmp_path):
        payload = tiny_sweep_payload(str(tmp_path))
        del payload["axes"]
        with pytest.raises(SpecError, match=r"\[axes\] must be"):
            sweep_from_dict(payload)

    def test_undotted_axis_path(self, tmp_path):
        payload = tiny_sweep_payload(str(tmp_path), axes={"epochs": [1]})
        with pytest.raises(SpecError, match="must be dotted"):
            sweep_from_dict(payload)

    @pytest.mark.parametrize("path", ["output.name", "train.verbose",
                                      "workload.workers",
                                      "workload.use_cache"])
    def test_execution_only_axes_rejected(self, tmp_path, path):
        payload = tiny_sweep_payload(str(tmp_path),
                                     axes={path: [1, 2]})
        with pytest.raises(SpecError, match="does not affect results"):
            sweep_from_dict(payload)

    def test_empty_axis_values(self, tmp_path):
        payload = tiny_sweep_payload(str(tmp_path),
                                     axes={"train.epochs": []})
        with pytest.raises(SpecError, match="non-empty list"):
            sweep_from_dict(payload)

    def test_duplicate_axis_values(self, tmp_path):
        payload = tiny_sweep_payload(str(tmp_path),
                                     axes={"train.epochs": [1, 1]})
        with pytest.raises(SpecError, match="twice"):
            sweep_from_dict(payload)

    def test_load_sweep_names_the_file_on_error(self, tmp_path):
        bad = tmp_path / "bad.toml"
        bad.write_text("name = 'x'\n[axes]\n\"epochs\" = [1]\n")
        with pytest.raises(SpecError, match="bad.toml"):
            load_sweep(str(bad))

    def test_load_sweep_unsupported_extension(self, tmp_path):
        path = tmp_path / "sweep.yaml"
        path.write_text("a: 1\n")
        with pytest.raises(SpecError, match="unsupported sweep format"):
            load_sweep(str(path))


class TestExpansion:
    def test_file_order_last_axis_fastest(self, tmp_path):
        sweep = sweep_from_dict(tiny_sweep_payload(str(tmp_path)))
        points = expand_grid(sweep)
        combos = [(p.axes["model.family"], p.axes["train.epochs"])
                  for p in points]
        assert combos == [("mlp", 1), ("mlp", 2),
                          ("gridsage", 1), ("gridsage", 2)]
        assert [p.index for p in points] == [0, 1, 2, 3]

    def test_axes_applied_to_specs(self, tmp_path):
        sweep = sweep_from_dict(tiny_sweep_payload(str(tmp_path)))
        points = expand_grid(sweep)
        assert points[3].spec.model.family == "gridsage"
        assert points[3].spec.train.epochs == 2
        # Base knobs survive expansion untouched.
        assert all(p.spec.workload.count == 2 for p in points)

    def test_fingerprints_unique_and_stable(self, tmp_path):
        sweep = sweep_from_dict(tiny_sweep_payload(str(tmp_path)))
        a = expand_grid(sweep)
        b = expand_grid(sweep)
        assert len({p.fingerprint for p in a}) == 4
        assert [p.fingerprint for p in a] == [p.fingerprint for p in b]
        for point in a:
            assert point.fingerprint == spec_fingerprint(point.spec)

    def test_checkpoints_routed_by_fingerprint(self, tmp_path):
        sweep = sweep_from_dict(tiny_sweep_payload(str(tmp_path)))
        for point in expand_grid(sweep):
            assert point.spec.output.checkpoint.endswith(
                f"checkpoints/{point.fingerprint}.npz")
            assert point.spec.manifest_path().endswith(
                f"experiments/{point.fingerprint}.json")

    def test_invalid_axis_value_names_the_point(self, tmp_path):
        payload = tiny_sweep_payload(
            str(tmp_path), axes={"model.family": ["mlp", "resnet"]})
        sweep = sweep_from_dict(payload)
        with pytest.raises(SpecError, match="grid point 1"):
            expand_grid(sweep)

    def test_unknown_axis_path_fails_at_expansion(self, tmp_path):
        payload = tiny_sweep_payload(str(tmp_path),
                                     axes={"train.nope": [1, 2]})
        sweep = sweep_from_dict(payload)
        with pytest.raises(SpecError, match="unknown key"):
            expand_grid(sweep)

    def test_label(self, tmp_path):
        sweep = sweep_from_dict(tiny_sweep_payload(str(tmp_path)))
        assert expand_grid(sweep)[0].label() == "mlp 1"


class TestSeedDerivation:
    def test_derive_point_seed_is_pure_arithmetic(self):
        assert derive_point_seed("deadbeef" + "0" * 56) == \
            0xDEADBEEF % (2 ** 31)
        assert derive_point_seed("0" * 64) == 0

    def test_derived_seeds_in_31_bit_range(self, tmp_path):
        sweep = sweep_from_dict(tiny_sweep_payload(str(tmp_path)))
        for point in expand_grid(sweep):
            assert 0 <= point.seed < 2 ** 31

    def test_seeds_deterministic_and_embedded(self, tmp_path):
        sweep = sweep_from_dict(tiny_sweep_payload(str(tmp_path)))
        a = expand_grid(sweep)
        b = expand_grid(sweep)
        assert [p.seed for p in a] == [p.seed for p in b]
        for point in a:
            assert point.seed_derived
            assert point.spec.train.seed == point.seed

    def test_distinct_points_get_distinct_seeds(self, tmp_path):
        sweep = sweep_from_dict(tiny_sweep_payload(str(tmp_path)))
        seeds = [p.seed for p in expand_grid(sweep)]
        assert len(set(seeds)) == len(seeds)

    def test_seed_basis_excludes_the_seed_itself(self, tmp_path):
        from repro.api import apply_overrides
        sweep = sweep_from_dict(tiny_sweep_payload(str(tmp_path)))
        spec = expand_grid(sweep)[0].spec
        reseeded = apply_overrides(spec, ["train.seed=99"])
        assert seed_basis_fingerprint(spec) == \
            seed_basis_fingerprint(reseeded)
        changed = apply_overrides(spec, ["train.lr=0.9"])
        assert seed_basis_fingerprint(spec) != \
            seed_basis_fingerprint(changed)

    def test_pinned_seed_in_base_disables_derivation(self, tmp_path):
        payload = tiny_sweep_payload(str(tmp_path))
        payload["base"]["train"]["seed"] = 7
        sweep = sweep_from_dict(payload)
        assert sweep.seed_pinned
        for point in expand_grid(sweep):
            assert point.seed == 7
            assert not point.seed_derived

    def test_seed_axis_counts_as_pinned(self, tmp_path):
        payload = tiny_sweep_payload(str(tmp_path),
                                     axes={"train.seed": [1, 2]})
        sweep = sweep_from_dict(payload)
        assert sweep.seed_pinned
        assert [p.seed for p in expand_grid(sweep)] == [1, 2]

    def test_seed_override_counts_as_pinned(self, tmp_path):
        sweep = sweep_from_dict(tiny_sweep_payload(str(tmp_path)),
                                base_overrides=["train.seed=11"])
        assert sweep.seed_pinned
        assert all(p.seed == 11 for p in expand_grid(sweep))


class TestSweepFingerprint:
    def test_independent_of_output_paths(self, tmp_path):
        a = sweep_from_dict(tiny_sweep_payload(str(tmp_path / "a")))
        b = sweep_from_dict(tiny_sweep_payload(str(tmp_path / "b")))
        assert sweep_fingerprint(a) == sweep_fingerprint(b)

    def test_sensitive_to_axes(self, tmp_path):
        a = sweep_from_dict(tiny_sweep_payload(str(tmp_path)))
        b = sweep_from_dict(tiny_sweep_payload(
            str(tmp_path), axes={"model.family": ["mlp", "gridsage"]}))
        assert sweep_fingerprint(a) != sweep_fingerprint(b)

    def test_sensitive_to_base(self, tmp_path):
        payload = tiny_sweep_payload(str(tmp_path))
        a = sweep_from_dict(payload)
        payload["base"]["train"]["epochs"] = 9
        b = sweep_from_dict(payload)
        assert sweep_fingerprint(a) != sweep_fingerprint(b)
