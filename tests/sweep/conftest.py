"""Sweep-test fixtures: isolated stage cache, stub-executor registry.

Sweep runs set the process-wide compute dtype (through
``run_experiment``), so restore it around every test; the stage cache is
redirected to a per-session temp dir so tests never touch the real
cache root.  Stub executors (see ``sweep_utils``) are registered by
name in ``repro.sweep.runner._EXECUTORS`` and deregistered after each
test.
"""

from __future__ import annotations

import pytest
from sweep_utils import (flaky_stub_execute, slow_stub_execute,
                         stub_execute)

from repro.nn import get_default_dtype, set_default_dtype
from repro.sweep import runner
from repro.testing.faults import clear_faults


@pytest.fixture(autouse=True)
def restore_default_dtype():
    prev = get_default_dtype()
    yield
    set_default_dtype(prev)


@pytest.fixture(autouse=True)
def isolated_cache(monkeypatch, tmp_path_factory):
    cache = tmp_path_factory.getbasetemp() / "sweep-cache"
    monkeypatch.setenv("REPRO_CACHE_DIR", str(cache))


@pytest.fixture(autouse=True)
def no_leftover_faults():
    clear_faults()
    yield
    clear_faults()


def _register(name, fn):
    runner._EXECUTORS[name] = fn
    return name


@pytest.fixture
def stub_executor():
    yield _register("stub", stub_execute)
    runner._EXECUTORS.pop("stub", None)


@pytest.fixture
def slow_stub_executor():
    yield _register("slow-stub", slow_stub_execute)
    runner._EXECUTORS.pop("slow-stub", None)


@pytest.fixture
def flaky_stub_executor():
    yield _register("flaky", flaky_stub_execute)
    runner._EXECUTORS.pop("flaky", None)
