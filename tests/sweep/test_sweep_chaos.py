"""Chaos tier: SIGKILL a `sweep run --workers 2` mid-grid, then resume.

The fault plan rides in ``REPRO_FAULTS``: each fork-pool worker loads it
with fresh hit counters, so the worker that picks up its second grid
point SIGKILLs itself at the ``sweep.point.start`` barrier (after
winning the lease, before executing).  The parent's pool breaks and the
CLI dies non-zero — a deterministic "crashed mid-grid".  The rerun
must complete exactly the missing points: done manifests are not
rewritten (stable mtimes), the dead worker's stale lease is stolen, and
the execution journal shows every fingerprint exactly once across both
runs.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.sweep import expand_grid, load_sweep
from repro.testing.faults import FAULTS_ENV, FaultInjector, FaultRule

pytestmark = pytest.mark.chaos

SWEEP_TOML = """\
name = "chaos-2x2"

[base.workload]
suite = "hotspot"
count = 2
scale = 0.2

[base.model]
family = "mlp"
channels = 1

[base.model.params]
hidden = 8

[base.compute]
dtype = "float32"

[base.output]
artifacts_dir = "{artifacts}"

[axes]
"model.family" = ["mlp", "gridsage"]
"train.epochs" = [1, 2]
"""


def run_cli(config, cwd, *, faults=None, workers=2):
    env = {**os.environ,
           "PYTHONPATH": os.path.abspath("src"),
           "REPRO_CACHE_DIR": str(cwd / "cache")}
    env.pop(FAULTS_ENV, None)
    if faults is not None:
        env[FAULTS_ENV] = faults.to_env()
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", "sweep", "run",
         "--config", str(config), "--workers", str(workers)],
        cwd=str(cwd), env=env, capture_output=True, text=True,
        timeout=300)


def test_sigkill_mid_grid_then_exact_resume(tmp_path):
    artifacts = tmp_path / "artifacts"
    config = tmp_path / "sweep.toml"
    config.write_text(SWEEP_TOML.format(artifacts=artifacts))
    sweep = load_sweep(str(config))
    points = expand_grid(sweep)

    # Round 1: each pool worker SIGKILLs itself at its second point's
    # start barrier — with 4 points on 2 workers, someone always hits
    # a second point, so the run provably dies partway.
    faults = FaultInjector([FaultRule(point="sweep.point.start",
                                      action="kill", nth=2)])
    crashed = run_cli(config, tmp_path, faults=faults)
    assert crashed.returncode != 0, crashed.stdout + crashed.stderr

    done_before = {p.fingerprint: os.stat(p.spec.manifest_path()).st_mtime_ns
                   for p in points
                   if os.path.exists(p.spec.manifest_path())}
    assert 0 < len(done_before) < 4, (
        f"kill plan should leave a partial grid, got "
        f"{len(done_before)}/4 done\n{crashed.stdout}{crashed.stderr}")

    # Round 2, no faults: completes every missing point exactly once.
    resumed = run_cli(config, tmp_path)
    assert resumed.returncode == 0, resumed.stdout + resumed.stderr
    for point in points:
        assert os.path.exists(point.spec.manifest_path())
        manifest = json.load(open(point.spec.manifest_path()))
        assert manifest["fingerprint"] == point.fingerprint

    # Completed points were resumed, not recomputed: byte-stable mtimes.
    for fingerprint, mtime_ns in done_before.items():
        path = os.path.join(str(artifacts), "experiments",
                            f"{fingerprint}.json")
        assert os.stat(path).st_mtime_ns == mtime_ns

    # Exactly once across both runs: the journal records each
    # fingerprint's execution a single time (the SIGKILL fires *before*
    # execution, so the killed points left no journal entry behind).
    journal = os.path.join(str(artifacts), "experiments",
                           "sweep-journal.jsonl")
    with open(journal) as fh:
        events = [json.loads(line) for line in fh if line.strip()]
    executed = [e["fingerprint"] for e in events
                if e["event"] == "executed"]
    assert sorted(executed) == sorted(p.fingerprint for p in points)

    # The leaderboard manifest reflects the fully-healed grid.
    from repro.sweep import sweep_manifest_path, validate_sweep_manifest
    manifest = validate_sweep_manifest(
        json.load(open(sweep_manifest_path(sweep))))
    assert manifest["complete"] is True
    assert len(manifest["leaderboard"]) == 4
