"""Aggregation layer: sweep manifest build/validate/write + rendering."""

import json
import os

import pytest
from sweep_utils import tiny_sweep_payload, write_stub_manifest

from repro.api import SpecError
from repro.sweep import (SWEEP_SCHEMA, build_sweep_manifest, expand_grid,
                         render_leaderboard, run_sweep, sweep_from_dict,
                         sweep_manifest_path, validate_sweep_manifest,
                         write_sweep_manifest)


def make_sweep(tmp_path, **kwargs):
    return sweep_from_dict(tiny_sweep_payload(str(tmp_path), **kwargs))


def completed_sweep(tmp_path):
    sweep = make_sweep(tmp_path)
    for point in expand_grid(sweep):
        write_stub_manifest(point.spec)
    return sweep


class TestBuild:
    def test_complete_grid(self, tmp_path):
        sweep = completed_sweep(tmp_path)
        manifest = build_sweep_manifest(sweep)
        assert manifest["schema"] == SWEEP_SCHEMA
        assert manifest["complete"] is True
        assert manifest["grid_size"] == 4
        assert len(manifest["points"]) == 4
        assert len(manifest["leaderboard"]) == 4
        assert [e["rank"] for e in manifest["leaderboard"]] == [1, 2, 3, 4]
        f1s = [e["f1"] for e in manifest["leaderboard"]]
        assert f1s == sorted(f1s, reverse=True)
        for record in manifest["points"]:
            assert record["state"] == "done"
            assert record["seed_derived"] is True
            assert isinstance(record["metrics"]["f1"], float)

    def test_partial_grid(self, tmp_path):
        sweep = completed_sweep(tmp_path)
        victim = expand_grid(sweep)[2]
        os.remove(victim.spec.manifest_path())
        manifest = build_sweep_manifest(sweep)
        assert manifest["complete"] is False
        assert len(manifest["leaderboard"]) == 3
        states = {r["index"]: r["state"] for r in manifest["points"]}
        assert states[victim.index] == "pending"
        assert manifest["points"][victim.index]["metrics"] is None

    def test_legacy_named_manifest_counts_as_done(self, tmp_path):
        """Manifests written under the old <name>.json scheme are matched
        by their embedded fingerprint (satellite back-compat)."""
        sweep = make_sweep(tmp_path)
        points = expand_grid(sweep)
        for point in points[:3]:
            write_stub_manifest(point.spec)
        legacy = os.path.join(str(tmp_path), "experiments",
                              "mlp-hotspot.json")
        write_stub_manifest(points[3].spec, path=legacy)
        manifest = build_sweep_manifest(sweep)
        assert manifest["complete"] is True
        record = manifest["points"][points[3].index]
        assert record["manifest_path"] == legacy

    def test_empty_grid_state(self, tmp_path):
        manifest = build_sweep_manifest(make_sweep(tmp_path))
        assert manifest["complete"] is False
        assert manifest["leaderboard"] == []
        assert all(r["state"] == "pending" for r in manifest["points"])

    def test_real_run_produces_valid_manifest(self, tmp_path,
                                              stub_executor):
        sweep = make_sweep(tmp_path)
        run_sweep(sweep, execute=stub_executor)
        manifest = build_sweep_manifest(sweep)
        assert manifest["complete"] is True
        assert validate_sweep_manifest(manifest) is manifest


class TestWrite:
    def test_write_and_read_back(self, tmp_path):
        sweep = completed_sweep(tmp_path)
        manifest = build_sweep_manifest(sweep)
        path = write_sweep_manifest(sweep, manifest)
        assert path == sweep_manifest_path(sweep)
        assert path.startswith(os.path.join(str(tmp_path), "experiments"))
        loaded = json.load(open(path))
        assert validate_sweep_manifest(loaded)["name"] == "unit"

    def test_sweep_manifest_skipped_by_result_iterator(self, tmp_path):
        """The sweep-level manifest must not masquerade as a result
        manifest when the back-compat scanner walks experiments/."""
        from repro.api import iter_result_manifests
        sweep = completed_sweep(tmp_path)
        write_sweep_manifest(sweep, build_sweep_manifest(sweep))
        found = list(iter_result_manifests(str(tmp_path)))
        assert len(found) == 4
        assert all(m["schema"] == "repro-experiment-v1"
                   for _, m in found)


class TestValidate:
    def valid(self, tmp_path):
        return build_sweep_manifest(completed_sweep(tmp_path))

    def test_wrong_schema(self, tmp_path):
        manifest = {**self.valid(tmp_path), "schema": "nope"}
        with pytest.raises(SpecError, match="schema"):
            validate_sweep_manifest(manifest)

    def test_missing_key(self, tmp_path):
        manifest = self.valid(tmp_path)
        del manifest["leaderboard"]
        with pytest.raises(SpecError, match="leaderboard"):
            validate_sweep_manifest(manifest)

    def test_points_grid_size_mismatch(self, tmp_path):
        manifest = self.valid(tmp_path)
        manifest["points"] = manifest["points"][:-1]
        with pytest.raises(SpecError, match="grid_size"):
            validate_sweep_manifest(manifest)

    def test_unknown_state(self, tmp_path):
        manifest = self.valid(tmp_path)
        manifest["points"][0]["state"] = "limbo"
        with pytest.raises(SpecError, match="unknown.*state|state"):
            validate_sweep_manifest(manifest)

    def test_done_without_metrics(self, tmp_path):
        manifest = self.valid(tmp_path)
        manifest["points"][0]["metrics"] = None
        with pytest.raises(SpecError, match="no metrics"):
            validate_sweep_manifest(manifest)

    def test_leaderboard_length_mismatch(self, tmp_path):
        manifest = self.valid(tmp_path)
        manifest["leaderboard"] = manifest["leaderboard"][:-1]
        with pytest.raises(SpecError, match="leaderboard has"):
            validate_sweep_manifest(manifest)

    def test_bad_rank_sequence(self, tmp_path):
        manifest = self.valid(tmp_path)
        manifest["leaderboard"][1]["rank"] = 9
        with pytest.raises(SpecError, match="rank"):
            validate_sweep_manifest(manifest)

    def test_unsorted_f1(self, tmp_path):
        manifest = self.valid(tmp_path)
        manifest["leaderboard"][-1]["f1"] = 101.0
        with pytest.raises(SpecError, match="sorted by F1"):
            validate_sweep_manifest(manifest)

    def test_complete_mismatch(self, tmp_path):
        manifest = self.valid(tmp_path)
        manifest["complete"] = False
        with pytest.raises(SpecError, match="complete"):
            validate_sweep_manifest(manifest)


class TestRender:
    def test_complete_leaderboard(self, tmp_path):
        manifest = build_sweep_manifest(completed_sweep(tmp_path))
        text = render_leaderboard(manifest)
        assert "Sweep 'unit': 4/4 grid point(s) done" in text
        assert "Best F1 % per family x suite" in text
        assert "mlp" in text and "gridsage" in text
        assert "Not yet on the leaderboard" not in text

    def test_partial_shows_missing_points(self, tmp_path):
        sweep = completed_sweep(tmp_path)
        os.remove(expand_grid(sweep)[0].spec.manifest_path())
        text = render_leaderboard(build_sweep_manifest(sweep))
        assert "3/4 grid point(s) done (incomplete)" in text
        assert "Not yet on the leaderboard" in text
        assert "pending" in text

    def test_empty_grid_renders_header_only(self, tmp_path):
        text = render_leaderboard(build_sweep_manifest(make_sweep(tmp_path)))
        assert "0/4 grid point(s) done (incomplete)" in text
