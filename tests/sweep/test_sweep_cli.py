"""`repro.cli sweep run|status|report` end to end (real tiny grid)."""

import json

import pytest

from repro import cli
from repro.sweep import load_sweep, sweep_manifest_path, validate_sweep_manifest


@pytest.fixture()
def sweep_toml(tmp_path):
    """A real 2-point grid: mlp on tiny hotspot, 1 vs 2 epochs."""
    path = tmp_path / "sweep.toml"
    path.write_text(
        "name = 'cli-grid'\n"
        "[base.workload]\nsuite = 'hotspot'\ncount = 2\nscale = 0.2\n"
        "[base.model]\nfamily = 'mlp'\nchannels = 1\n"
        "[base.model.params]\nhidden = 8\n"
        "[base.compute]\ndtype = 'float32'\n"
        f"[base.output]\nartifacts_dir = '{tmp_path}'\n"
        "[axes]\n\"train.epochs\" = [1, 2]\n")
    return str(path)


def test_run_status_report_round_trip(sweep_toml, tmp_path, capsys):
    assert cli.main(["sweep", "run", "--config", sweep_toml]) == 0
    out = capsys.readouterr().out
    assert "2 point(s) — 2 executed" in out
    assert "sweep manifest written to" in out

    sweep = load_sweep(sweep_toml)
    manifest = validate_sweep_manifest(
        json.load(open(sweep_manifest_path(sweep))))
    assert manifest["complete"] is True
    assert len(manifest["leaderboard"]) == 2
    assert {e["family"] for e in manifest["leaderboard"]} == {"mlp"}

    # Rerun resumes: nothing executes, everything is already done.
    assert cli.main(["sweep", "run", "--config", sweep_toml]) == 0
    assert "0 executed, 2 already" in capsys.readouterr().out

    assert cli.main(["sweep", "status", "--config", sweep_toml]) == 0
    out = capsys.readouterr().out
    assert "2 grid point(s)" in out
    assert "2 done" in out

    assert cli.main(["sweep", "report", "--config", sweep_toml]) == 0
    out = capsys.readouterr().out
    assert "Sweep 'cli-grid': 2/2 grid point(s) done" in out
    assert "Best F1 % per family x suite" in out


def test_status_before_any_run(sweep_toml, capsys):
    assert cli.main(["sweep", "status", "--config", sweep_toml]) == 0
    assert "2 pending" in capsys.readouterr().out


def test_report_before_any_run_fails(sweep_toml, capsys):
    assert cli.main(["sweep", "report", "--config", sweep_toml]) == 2
    assert "no completed grid points" in capsys.readouterr().err


def test_bad_config_exits_2(tmp_path, capsys):
    bad = tmp_path / "bad.toml"
    bad.write_text("name = 'x'\n[axes]\n\"train.verbose\" = [true, false]\n")
    assert cli.main(["sweep", "run", "--config", str(bad)]) == 2
    assert "sweep failed" in capsys.readouterr().err


def test_set_overrides_reach_the_base(sweep_toml, tmp_path, capsys):
    """--set train.seed pins the seed for every grid point."""
    assert cli.main(["sweep", "status", "--config", sweep_toml,
                     "--set", "train.seed=3"]) == 0
    sweep = load_sweep(sweep_toml, base_overrides=["train.seed=3"])
    assert sweep.seed_pinned
