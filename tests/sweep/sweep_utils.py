"""Shared sweep-test helpers (stub manifests, stub executors, payloads).

Kept out of ``conftest.py`` so test modules can import them by name
(the tests tree is not a package; pytest puts this directory on
``sys.path``).  The stub executors short-circuit the expensive
experiment body: they write a *schema-valid* result manifest straight to
the spec's fingerprint-derived path, so runner tests exercise the full
lease / resume / quarantine machinery in milliseconds.  They are
module-level functions because fork-pool workers inherit
``repro.sweep.runner._EXECUTORS`` by reference — names registered there
must resolve to importable code, not closures.
"""

from __future__ import annotations

import json
import os
import time

from repro.api.spec import spec_fingerprint, spec_from_dict, spec_to_dict


def make_stub_manifest(spec, fingerprint: str) -> dict:
    """A minimal dict that passes ``validate_result_manifest``.

    F1/ACC are derived from the fingerprint so different grid points get
    deterministic, (almost surely) distinct leaderboard positions.
    """
    score = int(fingerprint[:4], 16) % 10000 / 100.0
    return {
        "schema": "repro-experiment-v1",
        "experiment": spec_to_dict(spec),
        "fingerprint": fingerprint,
        "family": spec.model.family,
        "metrics": {"f1": score, "acc": (score + 7.0) % 100.0},
        "checkpoint": spec.output.checkpoint or "",
        "workload": {"suite": spec.workload.suite, "num_designs": 2,
                     "dataset_injected": False,
                     "train_designs": ["a"], "test_designs": ["b"]},
        "timing": {"prepare_seconds": 0.0, "train_seconds": 0.0,
                   "evaluate_seconds": 0.0},
        "created_unix": time.time(),
    }


def write_stub_manifest(spec, *, path: str | None = None) -> str:
    """Write a stub manifest for ``spec`` (default: its canonical path).

    Atomic (tmp + rename) like the real executor: a concurrent reader
    must never see a torn manifest and quarantine it as corrupt.
    """
    from repro.store import atomic_write_bytes
    fingerprint = spec_fingerprint(spec)
    path = path or spec.manifest_path()
    os.makedirs(os.path.dirname(path), exist_ok=True)
    atomic_write_bytes(
        path,
        json.dumps(make_stub_manifest(spec, fingerprint)).encode())
    return path


def stub_execute(spec_payload: dict) -> dict:
    spec = spec_from_dict(spec_payload)
    write_stub_manifest(spec)
    return {}


def slow_stub_execute(spec_payload: dict) -> dict:
    time.sleep(0.05)  # widen the race window for concurrency tests
    return stub_execute(spec_payload)


def flaky_stub_execute(spec_payload: dict) -> dict:
    if spec_payload["model"]["family"] == "gridsage":
        raise RuntimeError("injected gridsage failure")
    return stub_execute(spec_payload)


def tiny_sweep_payload(artifacts_dir: str, axes: dict | None = None) -> dict:
    """A 2x2 sweep dict over the tiny hotspot workload."""
    return {
        "name": "unit",
        "base": {
            "workload": {"suite": "hotspot", "count": 2, "scale": 0.2},
            "model": {"family": "mlp", "channels": 1,
                      "params": {"hidden": 8}},
            "train": {"epochs": 1},
            "output": {"artifacts_dir": artifacts_dir},
        },
        "axes": axes if axes is not None else {
            "model.family": ["mlp", "gridsage"],
            "train.epochs": [1, 2],
        },
    }
