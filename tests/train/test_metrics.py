"""Tests for F1/ACC metrics and seed aggregation."""

import numpy as np
import pytest

from repro.train import (ConfusionCounts, MetricSummary, accuracy, confusion,
                         evaluate_binary, f1_score, precision, recall,
                         summarize_runs)


class TestConfusion:
    def test_counts(self):
        pred = np.array([1, 1, 0, 0])
        target = np.array([1, 0, 1, 0])
        c = confusion(pred, target)
        assert (c.tp, c.fp, c.fn, c.tn) == (1, 1, 1, 1)
        assert c.total == 4

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            confusion(np.ones(3), np.ones(4))

    def test_multidim_flattened(self):
        pred = np.ones((2, 2))
        target = np.ones((2, 2))
        assert confusion(pred, target).tp == 4


class TestMetrics:
    def test_perfect_prediction(self):
        y = np.array([1, 0, 1, 0])
        assert f1_score(y, y) == 1.0
        assert accuracy(y, y) == 1.0

    def test_all_wrong(self):
        pred = np.array([1, 0])
        target = np.array([0, 1])
        assert f1_score(pred, target) == 0.0
        assert accuracy(pred, target) == 0.0

    def test_zero_positive_labels_gives_zero_f1(self):
        """The paper notes zero-congestion circuits force F1 = 0."""
        pred = np.array([1, 1, 0])
        target = np.zeros(3)
        assert f1_score(pred, target) == 0.0

    def test_no_positive_predictions(self):
        pred = np.zeros(4)
        target = np.array([1, 1, 0, 0])
        assert f1_score(pred, target) == 0.0
        assert accuracy(pred, target) == 0.5

    def test_f1_known_value(self):
        pred = np.array([1, 1, 1, 0, 0])
        target = np.array([1, 1, 0, 1, 0])
        c = confusion(pred, target)
        p, r = precision(c), recall(c)
        assert p == pytest.approx(2 / 3)
        assert r == pytest.approx(2 / 3)
        assert f1_score(pred, target) == pytest.approx(2 / 3)

    def test_evaluate_binary_threshold(self):
        prob = np.array([0.4, 0.6])
        target = np.array([0.0, 1.0])
        out = evaluate_binary(prob, target, threshold=0.5)
        assert out["f1"] == 100.0
        assert out["acc"] == 100.0

    def test_evaluate_binary_percent_scale(self):
        prob = np.array([0.9, 0.9, 0.1, 0.1])
        target = np.array([1.0, 0.0, 1.0, 0.0])
        out = evaluate_binary(prob, target)
        assert out["acc"] == 50.0


class TestSummaries:
    def test_summarize_runs(self):
        runs = [{"f1": 40.0, "acc": 90.0}, {"f1": 42.0, "acc": 92.0}]
        s = summarize_runs(runs)
        assert s.f1_mean == pytest.approx(41.0)
        assert s.f1_std == pytest.approx(1.0)
        assert s.acc_mean == pytest.approx(91.0)

    def test_format(self):
        s = MetricSummary(40.894, 1.821, 95.46, 0.11)
        text = s.format()
        assert "40.89" in text and "95.46" in text
