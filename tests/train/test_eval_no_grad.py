"""Regression: inference paths must not record autograd closures.

Every ``evaluate_*`` loop in :mod:`repro.train.trainer` and the serving
engine's ``flush`` run under :func:`repro.nn.no_grad`; if someone adds a
forward pass outside the guard, evaluation silently builds (and leaks)
training graphs.  These tests spy on ``Tensor._make`` and assert no
created tensor carries a backward closure during inference.
"""

import numpy as np
import pytest

from repro.data import CongestionDataset
from repro.models.lhnn import LHNNConfig
from repro.nn.tensor import Tensor
from repro.serve import InferenceEngine, PredictRequest, ServeConfig
from repro.train import (TrainConfig, evaluate_lhnn, evaluate_mlp,
                         evaluate_unet, train_lhnn, train_mlp, train_unet)


@pytest.fixture(scope="module")
def dataset(tiny_graph_suite):
    return CongestionDataset(tiny_graph_suite, channels=1)


@pytest.fixture(scope="module")
def samples(dataset):
    return dataset.test_samples()


@pytest.fixture(scope="module")
def lhnn_model(dataset):
    return train_lhnn(dataset.train_samples(), TrainConfig(epochs=1, seed=0),
                      LHNNConfig(hidden=8))


@pytest.fixture
def closure_spy(monkeypatch):
    """Record every tensor Tensor._make creates while active."""
    created: list[Tensor] = []
    original = Tensor._make

    def spy(data, parents, backward):
        out = original(data, parents, backward)
        created.append(out)
        return out

    monkeypatch.setattr(Tensor, "_make", staticmethod(spy))
    return created


def _assert_no_closures(created):
    assert created, "spy saw no tensors — the forward pass did not run"
    recording = [t for t in created if t._backward is not None]
    assert not recording, (f"{len(recording)} tensors recorded backward "
                           f"closures during evaluation")


def test_evaluate_lhnn_records_no_closures(lhnn_model, samples, closure_spy):
    evaluate_lhnn(lhnn_model, samples, batch_size=2)
    _assert_no_closures(closure_spy)


def test_evaluate_mlp_records_no_closures(dataset, samples, closure_spy,
                                          monkeypatch):
    model = train_mlp(dataset.train_samples(), TrainConfig(epochs=1, seed=0),
                      hidden=8)
    closure_spy.clear()  # drop tensors created during training
    evaluate_mlp(model, samples)
    _assert_no_closures(closure_spy)


def test_evaluate_unet_records_no_closures(dataset, samples, closure_spy):
    model = train_unet(dataset.train_samples(), TrainConfig(epochs=1, seed=0),
                       base_width=4)
    closure_spy.clear()
    evaluate_unet(model, samples)
    _assert_no_closures(closure_spy)


def test_engine_flush_records_no_closures(lhnn_model, tiny_graph_suite,
                                          closure_spy):
    engine = InferenceEngine(lhnn_model, ServeConfig())
    for graph in tiny_graph_suite[:3]:
        engine.submit(PredictRequest(graph=graph))
    closure_spy.clear()  # keep only tensors created by the flush itself
    results = engine.flush()
    assert len(results) == 3
    _assert_no_closures(closure_spy)
