"""Tests for TrainingHistory."""

import pytest

from repro.train import TrainingHistory


class TestTrainingHistory:
    def test_record_and_counts(self):
        h = TrainingHistory()
        h.record(1.0, lr=0.01)
        h.record(0.5, lr=0.01, metrics={"f1": 30.0})
        assert h.num_epochs == 2
        assert h.lrs == [0.01, 0.01]

    def test_improved_over_first(self):
        h = TrainingHistory()
        h.record(1.0)
        assert not h.improved_over_first()
        h.record(0.4)
        assert h.improved_over_first()

    def test_best_epoch(self):
        h = TrainingHistory()
        for f1 in (10.0, 35.0, 20.0):
            h.record(1.0, metrics={"f1": f1})
        assert h.best_epoch("f1") == 1

    def test_best_epoch_without_metrics(self):
        with pytest.raises(ValueError):
            TrainingHistory().best_epoch()

    def test_plateau_length(self):
        h = TrainingHistory()
        for loss in (1.0, 0.5, 0.5000001, 0.5000002):
            h.record(loss)
        assert h.plateau_length() == 2

    def test_no_plateau_when_improving(self):
        h = TrainingHistory()
        for loss in (1.0, 0.8, 0.5):
            h.record(loss)
        assert h.plateau_length() == 0

    def test_ascii_curve_shape(self):
        h = TrainingHistory()
        for i in range(30):
            h.record(1.0 / (i + 1))
        art = h.ascii_curve(width=20, height=5)
        lines = art.split("\n")
        assert len(lines) == 5 + 2
        assert "*" in art

    def test_ascii_curve_empty(self):
        assert "no epochs" in TrainingHistory().ascii_curve()
