"""Training-loop tests: each model family trains and improves over chance."""

import numpy as np
import pytest

from repro.data import CongestionDataset
from repro.models.lhnn import LHNNConfig
from repro.train import (TrainConfig, evaluate_lhnn, evaluate_mlp,
                         evaluate_pix2pix, evaluate_unet, seeded_runs,
                         train_lhnn, train_mlp, train_pix2pix, train_unet)


@pytest.fixture(scope="module")
def dataset(tiny_graph_suite):
    return CongestionDataset(tiny_graph_suite, channels=1)


@pytest.fixture(scope="module")
def train_samples(dataset):
    return dataset.train_samples()


@pytest.fixture(scope="module")
def test_samples(dataset):
    return dataset.test_samples()


FAST = TrainConfig(epochs=4, seed=0)


class TestLHNNTraining:
    def test_loss_learns_on_train_set(self, train_samples):
        model = train_lhnn(train_samples, TrainConfig(epochs=8, seed=0),
                           LHNNConfig(hidden=16))
        metrics = evaluate_lhnn(model, train_samples)
        assert metrics["acc"] > 50.0
        assert metrics["f1"] > 0.0

    def test_evaluation_keys(self, train_samples, test_samples):
        model = train_lhnn(train_samples, FAST, LHNNConfig(hidden=16))
        metrics = evaluate_lhnn(model, test_samples)
        assert set(metrics) == {"f1", "acc"}
        assert 0 <= metrics["f1"] <= 100
        assert 0 <= metrics["acc"] <= 100

    def test_deterministic_given_seed(self, train_samples, test_samples):
        m1 = train_lhnn(train_samples, TrainConfig(epochs=2, seed=7),
                        LHNNConfig(hidden=8))
        m2 = train_lhnn(train_samples, TrainConfig(epochs=2, seed=7),
                        LHNNConfig(hidden=8))
        r1 = evaluate_lhnn(m1, test_samples)
        r2 = evaluate_lhnn(m2, test_samples)
        assert r1 == r2

    def test_sampling_mode_runs(self, train_samples, test_samples):
        cfg = TrainConfig(epochs=2, seed=0, use_sampling=True)
        model = train_lhnn(train_samples, cfg, LHNNConfig(hidden=8))
        metrics = evaluate_lhnn(model, test_samples)
        assert np.isfinite(metrics["f1"])

    def test_no_jointing_config(self, train_samples):
        model = train_lhnn(train_samples, FAST,
                           LHNNConfig(hidden=8, use_jointing=False))
        assert model.head_reg is None


class TestBatchedTraining:
    """The block-diagonal mini-batch path (TrainConfig.batch_size > 1)."""

    def test_batched_lhnn_learns(self, train_samples):
        cfg = TrainConfig(epochs=8, seed=0, batch_size=2)
        model = train_lhnn(train_samples, cfg, LHNNConfig(hidden=16))
        metrics = evaluate_lhnn(model, train_samples, batch_size=2)
        assert metrics["acc"] > 50.0
        assert metrics["f1"] > 0.0

    def test_batched_eval_equals_per_design_eval(self, train_samples,
                                                 test_samples):
        """Block-diagonal operators keep designs independent, so batching
        the evaluation loop must not change per-circuit metrics at all."""
        model = train_lhnn(train_samples, FAST, LHNNConfig(hidden=8))
        per_design = evaluate_lhnn(model, test_samples, batch_size=1)
        batched = evaluate_lhnn(model, test_samples,
                                batch_size=len(test_samples))
        assert per_design["f1"] == pytest.approx(batched["f1"], abs=1e-9)
        assert per_design["acc"] == pytest.approx(batched["acc"], abs=1e-9)

    def test_batched_sampling_mode_runs(self, train_samples, test_samples):
        cfg = TrainConfig(epochs=2, seed=0, batch_size=2, use_sampling=True)
        model = train_lhnn(train_samples, cfg, LHNNConfig(hidden=8))
        metrics = evaluate_lhnn(model, test_samples, batch_size=2)
        assert np.isfinite(metrics["f1"])

    def test_batched_deterministic_given_seed(self, train_samples,
                                              test_samples):
        runs = [train_lhnn(train_samples,
                           TrainConfig(epochs=2, seed=7, batch_size=3),
                           LHNNConfig(hidden=8)) for _ in range(2)]
        r1, r2 = (evaluate_lhnn(m, test_samples, batch_size=3) for m in runs)
        assert r1 == r2

    def test_batched_mlp_trains(self, train_samples, test_samples):
        cfg = TrainConfig(epochs=4, seed=0, batch_size=2)
        model = train_mlp(train_samples, cfg)
        metrics = evaluate_mlp(model, test_samples, batch_size=2)
        assert metrics["acc"] > 50.0

    def test_oversized_batch_is_one_step(self, train_samples, test_samples):
        cfg = TrainConfig(epochs=2, seed=0,
                          batch_size=len(train_samples) + 3)
        model = train_lhnn(train_samples, cfg, LHNNConfig(hidden=8))
        metrics = evaluate_lhnn(model, test_samples)
        assert np.isfinite(metrics["f1"])

    def test_lr_scales_by_actual_batch_members(self):
        """A ragged/oversized batch steps at lr × its member count, not
        lr × the configured batch_size, and the scheduled lr is restored."""
        from repro.nn.layers import Parameter
        from repro.nn.optim import Adam
        from repro.train.trainer import _scaled_step

        def first_step_delta(num_members, **cfg_kwargs):
            p = Parameter(np.array([0.0]))
            p.grad = np.array([1.0])
            opt = Adam([p], lr=1e-3)
            _scaled_step(opt, TrainConfig(**cfg_kwargs), num_members)
            assert opt.lr == 1e-3  # scheduled lr untouched after the step
            return abs(p.data[0])

        base = first_step_delta(1, batch_size=1)
        ragged = first_step_delta(2, batch_size=64)
        unscaled = first_step_delta(2, batch_size=64,
                                    scale_lr_with_batch=False)
        assert ragged == pytest.approx(2 * base)
        assert unscaled == pytest.approx(base)


class TestBaselineTraining:
    def test_mlp_trains(self, train_samples, test_samples):
        model = train_mlp(train_samples, FAST)
        metrics = evaluate_mlp(model, test_samples)
        assert metrics["acc"] > 50.0

    def test_unet_trains(self, train_samples, test_samples):
        model = train_unet(train_samples, TrainConfig(epochs=2, seed=0),
                           base_width=4)
        metrics = evaluate_unet(model, test_samples)
        assert np.isfinite(metrics["f1"])

    def test_unet_crop_mode(self, train_samples, test_samples):
        cfg = TrainConfig(epochs=2, seed=0, crop=8)
        model = train_unet(train_samples, cfg, base_width=4)
        metrics = evaluate_unet(model, test_samples, crop=8)
        assert np.isfinite(metrics["f1"])

    def test_pix2pix_trains(self, train_samples, test_samples):
        model = train_pix2pix(train_samples, TrainConfig(epochs=2, seed=0),
                              base_width=4)
        metrics = evaluate_pix2pix(model, test_samples)
        assert np.isfinite(metrics["f1"])


class TestSeededRuns:
    def test_aggregation(self):
        def fake_run(seed):
            return {"f1": 40.0 + seed, "acc": 90.0}
        summary = seeded_runs(fake_run, [0, 2])
        assert summary.f1_mean == pytest.approx(41.0)
        assert summary.f1_std == pytest.approx(1.0)
