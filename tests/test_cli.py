"""Tests for the command-line interface (fast paths only)."""

import numpy as np
import pytest

from repro import cli


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            cli._build_parser().parse_args([])

    def test_train_defaults(self):
        args = cli._build_parser().parse_args(["train"])
        assert args.epochs == 20
        assert not args.duo

    def test_predict_requires_args(self):
        with pytest.raises(SystemExit):
            cli._build_parser().parse_args(["predict"])


class TestInfo:
    def test_info_runs(self, capsys):
        assert cli.main(["info"]) == 0
        out = capsys.readouterr().out
        assert "repro" in out
        assert "numpy" in out


class TestModelRestore:
    def test_restore_uni_and_duo(self, tmp_path):
        from repro.models.lhnn import LHNN, LHNNConfig
        from repro.nn.serialize import save_checkpoint
        for channels in (1, 2):
            model = LHNN(LHNNConfig(channels=channels),
                         np.random.default_rng(0))
            path = save_checkpoint(model, str(tmp_path / f"c{channels}.npz"),
                                   metadata={"channels": channels})
            restored, meta = cli._restore_model(path)
            assert restored.config.channels == channels
            assert meta["channels"] == channels
