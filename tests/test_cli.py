"""Tests for the command-line interface (fast paths only)."""

import numpy as np
import pytest

from repro import cli


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            cli._build_parser().parse_args([])

    def test_train_flags_default_to_unset(self):
        """Dedicated flags default to None so a --config file wins unless
        the user explicitly passes the flag (the spec holds defaults)."""
        args = cli._build_parser().parse_args(["train"])
        assert args.epochs is None
        assert args.model is None
        assert args.suite is None
        assert not args.duo

    def test_train_resolved_spec_defaults(self):
        args = cli._build_parser().parse_args(["train"])
        spec = cli._resolve_spec(args, cli._train_flag_sets(args))
        assert spec.model.family == "lhnn"
        assert spec.workload.suite == "superblue"
        assert spec.train.epochs == 20
        assert spec.compute.dtype == "float32"

    def test_train_flags_map_to_spec(self):
        args = cli._build_parser().parse_args(
            ["train", "--model", "unet", "--suite", "hotspot",
             "--epochs", "3", "--duo", "--dtype", "float64",
             "--batch-size", "2", "--out", "x.npz",
             "--set", "model.params.base_width=4"])
        spec = cli._resolve_spec(args, cli._train_flag_sets(args))
        assert spec.model.family == "unet"
        assert spec.model.channels == 2
        assert spec.model.params == {"base_width": 4}
        assert spec.workload.suite == "hotspot"
        assert spec.train.epochs == 3
        assert spec.train.batch_size == 2
        assert spec.compute.dtype == "float64"
        assert spec.output.checkpoint == "x.npz"

    def test_train_rejects_unknown_family(self):
        with pytest.raises(SystemExit):
            cli._build_parser().parse_args(["train", "--model", "resnet"])

    def test_model_choices_match_registry(self):
        from repro.serve.registry import list_families
        assert sorted(cli.MODEL_FAMILIES) == list_families()

    def test_experiment_requires_config(self):
        with pytest.raises(SystemExit):
            cli._build_parser().parse_args(["experiment"])

    def test_predict_requires_args(self):
        with pytest.raises(SystemExit):
            cli._build_parser().parse_args(["predict"])


class TestPrepareParser:
    def test_prepare_defaults(self):
        args = cli._build_parser().parse_args(["prepare"])
        assert args.suite == "superblue"
        assert args.workers == 1
        assert args.bookshelf_dir is None
        assert not args.list_suites

    def test_prepare_flags(self):
        args = cli._build_parser().parse_args(
            ["prepare", "--suite", "hotspot", "--workers", "4",
             "--count", "2", "--no-cache"])
        assert args.suite == "hotspot"
        assert args.workers == 4
        assert args.count == 2
        assert args.no_cache

    def test_workers_must_be_positive(self):
        with pytest.raises(SystemExit):
            cli._build_parser().parse_args(["prepare", "--workers", "0"])


class TestPrepareCommand:
    @pytest.fixture(autouse=True)
    def isolated_cache(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        return tmp_path

    def test_list_suites(self, capsys):
        assert cli.main(["prepare", "--list-suites"]) == 0
        out = capsys.readouterr().out
        for name in ("superblue", "macro-heavy", "hotspot", "bookshelf"):
            assert name in out

    def test_unknown_suite_fails_cleanly(self, capsys):
        assert cli.main(["prepare", "--suite", "nope"]) == 2
        assert "unknown workload" in capsys.readouterr().err

    def test_bookshelf_without_dir_fails_cleanly(self, capsys):
        assert cli.main(["prepare", "--suite", "bookshelf"]) == 2
        assert "--bookshelf-dir" in capsys.readouterr().err

    def test_unsupported_params_fail_cleanly(self, capsys):
        assert cli.main(["prepare", "--suite", "superblue",
                         "--count", "4"]) == 2
        err = capsys.readouterr().err
        assert "does not accept parameters" in err
        assert "count" in err

    def test_prepare_superblue_end_to_end(self, capsys, monkeypatch):
        import repro.pipeline as pl
        orig = pl.superblue_suite
        monkeypatch.setattr(
            pl, "superblue_suite",
            lambda scale, base_seed: orig(scale=scale,
                                          base_seed=base_seed)[:2])
        assert cli.main(["prepare", "--scale", "0.15"]) == 0
        out = capsys.readouterr().out
        assert "prepared 2 designs of suite 'superblue'" in out

    @pytest.mark.slow
    def test_prepare_scenario_suite_end_to_end(self, capsys):
        assert cli.main(["prepare", "--suite", "hotspot", "--count", "2",
                         "--scale", "0.15", "--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "prepared 2 designs of suite 'hotspot'" in out

    @pytest.mark.slow
    def test_prepare_bookshelf_end_to_end(self, capsys, tmp_path):
        from repro.circuit import DesignSpec, generate_design, write_design
        d = generate_design(DesignSpec(name="clibs", seed=61,
                                       num_movable=80, die_size=32.0))
        write_design(d, str(tmp_path / "bs"))
        assert cli.main(["prepare", "--suite", "bookshelf",
                         "--bookshelf-dir", str(tmp_path / "bs")]) == 0
        out = capsys.readouterr().out
        assert "prepared 1 designs of suite 'bookshelf'" in out


class TestInfo:
    def test_info_runs(self, capsys):
        assert cli.main(["info"]) == 0
        out = capsys.readouterr().out
        assert "repro" in out
        assert "numpy" in out


class TestModelRestore:
    """The old cli._restore_model shim is gone; the registry is the one
    restore entry point every subcommand goes through."""

    def test_legacy_shim_removed(self):
        assert not hasattr(cli, "_restore_model")

    def test_restore_uni_and_duo(self, tmp_path):
        from repro.models.lhnn import LHNN, LHNNConfig
        from repro.nn.serialize import save_checkpoint
        from repro.serve.registry import restore_model
        for channels in (1, 2):
            model = LHNN(LHNNConfig(channels=channels),
                         np.random.default_rng(0))
            path = save_checkpoint(model, str(tmp_path / f"c{channels}.npz"),
                                   metadata={"channels": channels})
            restored, meta = restore_model(path)
            assert restored.config.channels == channels
            assert meta["channels"] == channels

    def test_restore_registry_checkpoint(self, tmp_path):
        from repro.models.related import GridSAGE
        from repro.serve.registry import restore_model, save_model
        model = GridSAGE(hidden=8, channels=2, rng=np.random.default_rng(1))
        path = save_model(model, str(tmp_path / "gs.npz"))
        restored, meta = restore_model(path)
        assert isinstance(restored, GridSAGE)
        assert restored.channels == 2
        assert meta["model"]["family"] == "gridsage"


class TestPredictParser:
    def test_channel_default_and_choices(self):
        args = cli._build_parser().parse_args(
            ["predict", "--checkpoint", "c", "--design", "d"])
        assert args.channel == "h"
        assert args.suite == "superblue"
        args = cli._build_parser().parse_args(
            ["predict", "--checkpoint", "c", "--design", "d",
             "--channel", "both"])
        assert args.channel == "both"

    def test_rejects_unknown_channel(self):
        with pytest.raises(SystemExit):
            cli._build_parser().parse_args(
                ["predict", "--checkpoint", "c", "--design", "d",
                 "--channel", "x"])

    def test_predict_missing_checkpoint_fails_cleanly(self, capsys):
        assert cli.main(["predict", "--checkpoint", "/nope/absent.npz",
                         "--design", "superblue5"]) == 2
        assert "predict failed" in capsys.readouterr().err


class TestServeCommand:
    def test_parser_defaults(self):
        args = cli._build_parser().parse_args(
            ["serve", "--checkpoint", "c"])
        assert args.port is None
        assert args.max_batch == 8
        assert args.suite == "superblue"

    def test_requires_checkpoint(self):
        with pytest.raises(SystemExit):
            cli._build_parser().parse_args(["serve"])

    def test_missing_checkpoint_fails_cleanly(self, capsys):
        assert cli.main(["serve", "--checkpoint", "/nope/absent.npz"]) == 2
        assert "serve failed" in capsys.readouterr().err

    def test_stdin_session_end_to_end(self, capsys, monkeypatch, tmp_path):
        import io
        import json
        from repro.models.mlp_baseline import MLPBaseline
        from repro.serve.registry import save_model
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        path = save_model(MLPBaseline(hidden=8,
                                      rng=np.random.default_rng(0)),
                          str(tmp_path / "mlp.npz"))
        requests = [
            {"op": "predict", "id": 1,
             "spec": {"name": "cli-serve", "seed": 8, "num_movable": 90,
                      "die_size": 32.0}},
            {"op": "flush"},
            {"op": "shutdown"},
        ]
        monkeypatch.setattr(
            "sys.stdin",
            io.StringIO("".join(json.dumps(r) + "\n" for r in requests)))
        assert cli.main(["serve", "--checkpoint", path]) == 0
        replies = [json.loads(line)
                   for line in capsys.readouterr().out.splitlines()]
        assert [r.get("status") for r in replies] == \
            ["queued", None, "flushed", "shutting down"]
        assert replies[1]["result"]["name"] == "cli-serve"
