"""Fast shape-claim checks distilled from the paper's narrative.

These are cheaper cousins of the benchmark assertions, runnable inside the
normal test suite: each encodes a qualitative claim the paper makes, at
the tiny-suite scale.
"""

import numpy as np
import pytest

from repro.data import CongestionDataset
from repro.eval import rate_tracking_error
from repro.models.lhnn import LHNNConfig
from repro.nn import Tensor, no_grad
from repro.train import (TrainConfig, evaluate_lhnn, evaluate_mlp,
                         train_lhnn, train_mlp)


@pytest.fixture(scope="module")
def dataset(tiny_graph_suite):
    return CongestionDataset(tiny_graph_suite, channels=1)


@pytest.fixture(scope="module")
def trained_lhnn(dataset):
    return train_lhnn(dataset.train_samples(), TrainConfig(epochs=10, seed=0),
                      LHNNConfig(hidden=16))


class TestPaperClaims:
    def test_lhnn_learns_better_than_chance(self, trained_lhnn, dataset):
        """§5.2: LHNN produces a usable congestion classifier."""
        te = dataset.test_samples()
        metrics = evaluate_lhnn(trained_lhnn, te)
        # Random guessing at the positive rate p has F1 ≈ p on average;
        # trained LHNN must beat the base-rate F1 comfortably.
        base_rate = 100 * float(np.mean([s.cls_target.mean() for s in te]))
        assert metrics["f1"] > base_rate

    def test_demand_regression_correlates(self, trained_lhnn, dataset):
        """§4.4: the jointly-trained regression head predicts demand."""
        sample = dataset.test_samples()[0]
        trained_lhnn.eval()
        with no_grad():
            out = trained_lhnn(sample.graph, vc=Tensor(sample.features),
                               vn=Tensor(sample.net_features))
        trained_lhnn.train()
        corr = np.corrcoef(out.reg_pred.data[:, 0],
                           sample.reg_target[:, 0])[0, 1]
        assert corr > 0.3

    def test_congested_cells_get_higher_scores(self, trained_lhnn, dataset):
        """The classifier separates the two classes in score space."""
        sample = max(dataset.test_samples(),
                     key=lambda s: s.cls_target.mean())
        if sample.cls_target.sum() == 0:
            pytest.skip("no positives in the chosen design")
        trained_lhnn.eval()
        with no_grad():
            out = trained_lhnn(sample.graph, vc=Tensor(sample.features),
                               vn=Tensor(sample.net_features))
        trained_lhnn.train()
        prob = out.cls_prob.data[:, 0]
        pos = prob[sample.cls_target[:, 0] > 0.5]
        neg = prob[sample.cls_target[:, 0] <= 0.5]
        assert pos.mean() > neg.mean()

    def test_gamma_below_one_increases_positive_predictions(self, dataset):
        """Eq. 5's purpose: γ<1 counters all-negative collapse."""
        tr = dataset.train_samples()
        te = dataset.test_samples()
        rates = {}
        for gamma in (0.5, 1.0):
            model = train_lhnn(tr, TrainConfig(epochs=6, seed=0, gamma=gamma),
                               LHNNConfig(hidden=16))
            model.eval()
            with no_grad():
                preds = [model(s.graph, vc=Tensor(s.features),
                               vn=Tensor(s.net_features)).cls_prob.data
                         for s in te]
            rates[gamma] = float(np.mean([(p >= 0.5).mean() for p in preds]))
        assert rates[0.5] >= rates[1.0]

    def test_lhnn_tracks_rates_at_least_as_well_as_mlp(self, trained_lhnn,
                                                       dataset):
        """Figure 4's calibration claim, via the rate-tracking metric."""
        te = dataset.test_samples()
        trained_lhnn.eval()
        with no_grad():
            lhnn_probs = [trained_lhnn(s.graph, vc=Tensor(s.features),
                                       vn=Tensor(s.net_features)).cls_prob.data
                          for s in te]
        trained_lhnn.train()
        targets = [s.cls_target for s in te]
        lhnn_err = rate_tracking_error(lhnn_probs, targets)
        assert lhnn_err < 0.5  # sane absolute bound
