"""Staged-pipeline tests: per-stage cache, manifests, workloads, parallelism.

Covers the cache layer of :mod:`repro.pipeline`: per-stage hit/miss
accounting, resume after a simulated mid-suite crash, fingerprint
stability across process restarts, parallel == sequential output
equivalence, the workload registry, and lazy manifest consumption by the
dataset.
"""

from __future__ import annotations

import os
import subprocess
import sys

import numpy as np
import pytest

import repro.pipeline as pl
import repro.pipeline.runner as runner_mod
from repro.circuit import DesignSpec, generate_design, superblue_suite
from repro.pipeline import (ManifestGraphs, PipelineConfig, StageCache,
                            STAGE_CALLS, design_fingerprint, get_workload,
                            list_workloads, load_workload, prepare_design,
                            prepare_designs, prepare_workload,
                            register_workload, reset_stage_calls,
                            stage_keys_for)
from repro.placement import PlacementConfig
from repro.routing import RouterConfig


def tiny_config(**overrides) -> PipelineConfig:
    base = dict(scale=0.15, grid_nx=8, grid_ny=8, use_cache=True,
                placement=PlacementConfig(outer_iterations=1),
                router=RouterConfig(nx=8, ny=8, rrr_iterations=1))
    base.update(overrides)
    return PipelineConfig(**base)


@pytest.fixture()
def cache_dir(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    return str(tmp_path)


@pytest.fixture()
def tiny_designs():
    return superblue_suite(scale=0.15)[:3]


class TestStageCache:
    def test_cold_run_executes_all_stages(self, cache_dir, tiny_designs):
        reset_stage_calls()
        cache = StageCache(cache_dir)
        prepare_designs(tiny_designs, tiny_config(), cache=cache)
        n = len(tiny_designs)
        assert STAGE_CALLS["place"] == n
        assert STAGE_CALLS["route"] == n
        assert STAGE_CALLS["graph"] == n
        assert cache.stores == 3 * n

    def test_warm_run_does_zero_stage_work(self, cache_dir, tiny_designs):
        cfg = tiny_config()
        first, _ = prepare_designs(tiny_designs, cfg)
        reset_stage_calls()
        cache = StageCache(cache_dir)
        second, _ = prepare_designs(tiny_designs, cfg, cache=cache)
        assert STAGE_CALLS["place"] == 0
        assert STAGE_CALLS["route"] == 0
        assert STAGE_CALLS["graph"] == 0
        assert cache.hits == len(tiny_designs)  # one graph blob each
        for a, b in zip(first, second):
            assert np.array_equal(a.vc, b.vc)
            assert np.array_equal(a.congestion, b.congestion)

    def test_router_change_keeps_placement_cached(self, cache_dir,
                                                  tiny_designs):
        design = tiny_designs[0]
        prepare_design(design, tiny_config())
        reset_stage_calls()
        changed = tiny_config(router=RouterConfig(nx=8, ny=8,
                                                  rrr_iterations=2))
        prepare_design(design, changed)
        assert STAGE_CALLS["place"] == 0
        assert STAGE_CALLS["route"] == 1
        assert STAGE_CALLS["graph"] == 1

    def test_graph_param_change_reuses_routing(self, cache_dir, tiny_designs):
        design = tiny_designs[0]
        prepare_design(design, tiny_config())
        reset_stage_calls()
        prepare_design(design, tiny_config(max_gnet_fraction=0.5))
        assert STAGE_CALLS["place"] == 0
        assert STAGE_CALLS["route"] == 0
        assert STAGE_CALLS["graph"] == 1

    def test_resume_after_mid_suite_crash(self, cache_dir, tiny_designs):
        cfg = tiny_config()
        crash_name = tiny_designs[-1].name
        real_graph_stage = runner_mod.run_graph_stage

        def faulting(design, routing, config):
            if design.name == crash_name:
                raise RuntimeError("simulated crash")
            return real_graph_stage(design, routing, config)

        with pytest.MonkeyPatch.context() as mp:
            mp.setattr(runner_mod, "run_graph_stage", faulting)
            with pytest.raises(RuntimeError, match="simulated crash"):
                prepare_designs(tiny_designs, cfg)

        # Resume: earlier designs hit the cache entirely; the crashed one
        # re-uses its already-persisted place/route products.
        reset_stage_calls()
        graphs, _ = prepare_designs(tiny_designs, cfg)
        assert len(graphs) == len(tiny_designs)
        assert STAGE_CALLS["place"] == 0
        assert STAGE_CALLS["route"] == 0
        assert STAGE_CALLS["graph"] == 1

    def test_corrupt_entry_is_a_miss(self, cache_dir, tiny_designs):
        cfg = tiny_config()
        design = tiny_designs[0]
        prepare_design(design, cfg)
        cache = StageCache(cache_dir)
        keys = stage_keys_for(design, cfg)
        with open(cache._path(keys["graph"]), "wb") as handle:
            handle.write(b"not a pickle")
        reset_stage_calls()
        graph = prepare_design(design, cfg)
        assert STAGE_CALLS["graph"] == 1  # recomputed
        assert graph.congestion is not None

    def test_disabled_cache_stores_nothing(self, cache_dir, tiny_designs):
        cfg = tiny_config(use_cache=False)
        prepare_design(tiny_designs[0], cfg)
        assert not os.path.exists(os.path.join(cache_dir, "objects"))


class TestFingerprints:
    def test_design_fingerprint_content_addressed(self, tiny_designs):
        a = design_fingerprint(tiny_designs[0])
        b = design_fingerprint(tiny_designs[0].copy())
        assert a == b
        moved = tiny_designs[0].copy()
        moved.cell_x = moved.cell_x + 1.0
        assert design_fingerprint(moved) != a

    def test_stage_keys_chain(self, tiny_designs):
        cfg = tiny_config()
        keys = stage_keys_for(tiny_designs[0], cfg)
        changed = stage_keys_for(tiny_designs[0],
                                 tiny_config(router=RouterConfig(
                                     nx=8, ny=8, rrr_iterations=3)))
        assert keys["place"] == changed["place"]
        assert keys["route"] != changed["route"]
        assert keys["graph"] != changed["graph"]

    def test_schema_version_invalidates(self, monkeypatch):
        import repro.pipeline.config as config_mod
        before = PipelineConfig().fingerprint()
        monkeypatch.setattr(config_mod, "SCHEMA_VERSION", 9999)
        assert PipelineConfig().fingerprint() != before

    def test_fingerprint_stable_across_process_restarts(self):
        cfg_fp = PipelineConfig().fingerprint()
        script = ("from repro.pipeline import PipelineConfig;"
                  "print(PipelineConfig().fingerprint())")
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + \
            env.get("PYTHONPATH", "")
        out = subprocess.run([sys.executable, "-c", script], env=env,
                             capture_output=True, text=True, check=True)
        assert out.stdout.strip() == cfg_fp


class TestParallelPreparation:
    @pytest.mark.slow
    def test_parallel_matches_sequential_bitwise(self, tiny_designs):
        for per_design_seeds in (False, True):
            cfg = tiny_config(use_cache=False,
                              per_design_seeds=per_design_seeds)
            seq, seq_entries = prepare_designs(tiny_designs, cfg,
                                               workers=1,
                                               cache=StageCache(None))
            par, par_entries = prepare_designs(tiny_designs, cfg,
                                               workers=4,
                                               cache=StageCache(None))
            for a, b in zip(seq, par):
                assert a.name == b.name
                assert np.array_equal(a.vc, b.vc)
                assert np.array_equal(a.vn, b.vn)
                assert np.array_equal(a.demand, b.demand)
                assert np.array_equal(a.congestion, b.congestion)
            assert seq_entries == par_entries

    @pytest.mark.slow
    def test_parallel_workers_share_cache(self, cache_dir, tiny_designs):
        cfg = tiny_config()
        prepare_designs(tiny_designs, cfg, workers=2)
        reset_stage_calls()
        graphs, _ = prepare_designs(tiny_designs, cfg, workers=1)
        assert STAGE_CALLS["place"] == 0  # parent reads workers' blobs
        assert len(graphs) == len(tiny_designs)

    def test_per_design_seeds_deterministic_and_distinct(self, tiny_designs):
        cfg = tiny_config(per_design_seeds=True)
        seeds = [int(stage_keys_for(d, cfg)["seed"]) for d in tiny_designs]
        assert seeds == [int(stage_keys_for(d, cfg)["seed"])
                        for d in tiny_designs]
        assert len(set(seeds)) == len(seeds)


class TestPrepareDesignMutation:
    def test_input_design_not_mutated(self, cache_dir):
        design = generate_design(DesignSpec(name="mut", seed=11,
                                            num_movable=100, die_size=32.0))
        x0, y0 = design.cell_x.copy(), design.cell_y.copy()
        prepare_design(design, tiny_config())
        assert np.array_equal(design.cell_x, x0)
        assert np.array_equal(design.cell_y, y0)

    def test_in_place_opt_in(self, cache_dir):
        design = generate_design(DesignSpec(name="mut2", seed=12,
                                            num_movable=100, die_size=32.0))
        x0 = design.cell_x.copy()
        prepare_design(design, tiny_config(), in_place=True)
        assert not np.array_equal(design.cell_x, x0)  # cells moved

    def test_in_place_applies_cached_placement(self, cache_dir):
        cfg = tiny_config()
        design = generate_design(DesignSpec(name="mut3", seed=13,
                                            num_movable=100, die_size=32.0))
        prepare_design(design, cfg, in_place=True)
        placed_x = design.cell_x.copy()
        fresh = generate_design(DesignSpec(name="mut3", seed=13,
                                           num_movable=100, die_size=32.0))
        reset_stage_calls()
        prepare_design(fresh, cfg, in_place=True)
        assert STAGE_CALLS["place"] == 0
        assert np.array_equal(fresh.cell_x, placed_x)


class TestWorkloads:
    def test_builtin_registry(self):
        names = [w.name for w in list_workloads()]
        for expected in ("superblue", "macro-heavy", "hotspot", "bookshelf"):
            assert expected in names

    def test_unknown_workload_lists_known(self):
        with pytest.raises(KeyError, match="superblue"):
            get_workload("nope")

    def test_scenario_families_distinct(self):
        cfg = tiny_config()
        macro = load_workload("macro-heavy", cfg, count=2)
        hot = load_workload("hotspot", cfg, count=2)
        assert macro[0].name.startswith("macroheavy")
        assert hot[0].name.startswith("hotspot")
        # Macro-heavy designs carry far more fixed macro area.
        def macro_area(d):
            big = d.cell_fixed & (d.cell_w > 2.0)
            return float((d.cell_w[big] * d.cell_h[big]).sum())
        assert macro_area(macro[0]) > macro_area(hot[0])

    def test_register_and_prepare_custom_workload(self, cache_dir):
        @register_workload("tiny-custom", "test-only workload")
        def _tiny(config, count=1):
            return [generate_design(DesignSpec(name=f"custom{i}",
                                               seed=40 + i, num_movable=80,
                                               die_size=32.0))
                    for i in range(count)]
        try:
            graphs = prepare_workload("tiny-custom", tiny_config(), count=2)
            assert [g.name for g in graphs] == ["custom0", "custom1"]
        finally:
            pl.workloads._REGISTRY.pop("tiny-custom", None)

    def test_bookshelf_workload_roundtrip(self, cache_dir, tmp_path):
        from repro.circuit import write_design
        bs_dir = tmp_path / "bs"
        for i in range(2):
            d = generate_design(DesignSpec(name=f"bs{i}", seed=50 + i,
                                           num_movable=80, die_size=32.0))
            write_design(d, str(bs_dir))
        graphs = prepare_workload("bookshelf", tiny_config(),
                                  root=str(bs_dir))
        assert len(graphs) == 2
        assert all(g.congestion is not None for g in graphs)

    def test_bookshelf_requires_root(self):
        with pytest.raises(ValueError, match="root"):
            load_workload("bookshelf", tiny_config())


class TestManifestsAndLazyDataset:
    def test_manifest_written_and_reused(self, cache_dir):
        cfg = tiny_config()
        prepare_workload("hotspot", cfg, count=2)
        reset_stage_calls()
        lazy = prepare_workload("hotspot", cfg, count=2, lazy=True)
        assert isinstance(lazy, ManifestGraphs)
        assert STAGE_CALLS["place"] == 0 and STAGE_CALLS["route"] == 0
        assert lazy.names == ["hotspot0", "hotspot1"]

    def test_lazy_graphs_load_on_access_only(self, cache_dir):
        cfg = tiny_config()
        prepare_workload("hotspot", cfg, count=2)
        lazy = prepare_workload("hotspot", cfg, count=2, lazy=True)
        rates = lazy.congestion_rates(0)
        assert len(rates) == 2
        assert lazy._graphs == [None, None]  # metadata answered without I/O
        g = lazy[1]
        assert g.name == "hotspot1"
        assert lazy._graphs[0] is None  # sibling untouched
        assert lazy[1] is g  # memoised

    def test_cold_lazy_view_is_preseeded(self, cache_dir):
        lazy = prepare_workload("hotspot", tiny_config(), count=2, lazy=True)
        assert isinstance(lazy, ManifestGraphs)
        # The graphs just computed seed the memo: no re-deserialisation.
        assert all(g is not None for g in lazy._graphs)

    def test_corrupt_manifest_is_a_miss(self, cache_dir):
        import glob as globmod
        import json
        cfg = tiny_config()
        prepare_workload("hotspot", cfg, count=2)
        (manifest_path,) = globmod.glob(os.path.join(cache_dir, "manifests",
                                                     "*.json"))
        with open(manifest_path) as handle:
            payload = json.load(handle)
        payload["entries"][0]["renamed_field"] = payload["entries"][0].pop(
            "graph_key")  # schema drift → ManifestEntry(**e) TypeError
        with open(manifest_path, "w") as handle:
            json.dump(payload, handle)
        graphs = prepare_workload("hotspot", cfg, count=2)  # must not crash
        assert len(graphs) == 2

    def test_dataset_consumes_manifest_lazily(self, cache_dir):
        from repro.data import CongestionDataset
        cfg = tiny_config()
        prepare_workload("hotspot", cfg, count=4)
        lazy = prepare_workload("hotspot", cfg, count=4, lazy=True)
        ds = CongestionDataset(lazy, channels=1)
        assert lazy._graphs == [None] * 4  # construction loads nothing
        split = ds.split  # rates come from the manifest
        assert lazy._graphs == [None] * 4
        sample = ds.sample(0)
        assert sample.cls_target.shape[1] == 1
        assert sum(g is not None for g in lazy._graphs) == 1

    def test_dataset_still_validates_eager_lists(self, small_graph):
        from repro.data import CongestionDataset
        import dataclasses
        unlabelled = dataclasses.replace(small_graph, congestion=None,
                                         demand=None)
        with pytest.raises(ValueError, match="unlabelled"):
            CongestionDataset([unlabelled])
