"""Integration tests: the full netlist → LH-graph pipeline and caching."""

import numpy as np
import pytest

from repro.circuit import DesignSpec, generate_design
from repro.pipeline import PipelineConfig, default_cache_dir, prepare_design
from repro.placement import PlacementConfig
from repro.routing import RouterConfig


class TestPrepareDesign:
    def test_labelled_graph_produced(self, tiny_graph_suite):
        g = tiny_graph_suite[0]
        assert g.demand is not None
        assert g.congestion is not None
        assert g.metadata["num_segments"] > 0

    def test_grid_dimensions_respected(self, tiny_pipeline_config,
                                       tiny_graph_suite):
        g = tiny_graph_suite[0]
        assert g.nx == tiny_pipeline_config.grid_nx
        assert g.ny == tiny_pipeline_config.grid_ny

    def test_deterministic(self, tiny_pipeline_config):
        spec = DesignSpec(name="det", seed=71, num_movable=120, die_size=32.0)
        g1 = prepare_design(generate_design(spec), tiny_pipeline_config)
        g2 = prepare_design(generate_design(spec), tiny_pipeline_config)
        assert np.allclose(g1.vc, g2.vc)
        assert np.allclose(g1.demand, g2.demand)
        assert np.array_equal(g1.congestion, g2.congestion)

    def test_congestion_varies_with_capacity(self):
        spec = DesignSpec(name="capvar", seed=72, num_movable=150,
                          die_size=32.0, utilization=0.5)
        base = PlacementConfig(outer_iterations=2)
        lo = PipelineConfig(grid_nx=16, grid_ny=16, use_cache=False,
                            placement=base,
                            router=RouterConfig(capacity_h=5.0, capacity_v=5.0,
                                                rrr_iterations=1))
        hi = PipelineConfig(grid_nx=16, grid_ny=16, use_cache=False,
                            placement=base,
                            router=RouterConfig(capacity_h=20.0,
                                                capacity_v=20.0,
                                                rrr_iterations=1))
        g_lo = prepare_design(generate_design(spec), lo)
        g_hi = prepare_design(generate_design(spec), hi)
        assert g_lo.congestion_rate(0) >= g_hi.congestion_rate(0)

    def test_demand_nonnegative_and_finite(self, tiny_graph_suite):
        for g in tiny_graph_suite:
            assert np.isfinite(g.demand).all()
            assert (g.demand >= 0).all()


class TestPipelineConfig:
    def test_fingerprint_stable(self):
        assert (PipelineConfig().fingerprint()
                == PipelineConfig().fingerprint())

    def test_fingerprint_sensitive_to_params(self):
        a = PipelineConfig(grid_nx=32)
        b = PipelineConfig(grid_nx=16)
        assert a.fingerprint() != b.fingerprint()

    def test_fingerprint_recurses_into_nested_dataclasses(self):
        a = PipelineConfig(router=RouterConfig(rrr_iterations=4))
        b = PipelineConfig(router=RouterConfig(rrr_iterations=5))
        c = PipelineConfig(placement=PlacementConfig(anchor_weight=0.2))
        assert len({a.fingerprint(), b.fingerprint(), c.fingerprint()}) == 3

    def test_fingerprint_is_hex_digest(self):
        fp = PipelineConfig().fingerprint()
        assert len(fp) == 32
        int(fp, 16)  # raises if not hex

    def test_cache_dir_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert default_cache_dir() == str(tmp_path)


class TestSuiteCaching:
    def test_cache_roundtrip(self, monkeypatch, tmp_path):
        from repro.pipeline import prepare_suite
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        cfg = PipelineConfig(scale=0.15, grid_nx=8, grid_ny=8,
                             use_cache=True,
                             placement=PlacementConfig(outer_iterations=1),
                             router=RouterConfig(nx=8, ny=8,
                                                 rrr_iterations=1))
        # Patch the suite to only 2 designs for speed.
        import repro.pipeline as pl
        orig = pl.superblue_suite
        monkeypatch.setattr(pl, "superblue_suite",
                            lambda scale, base_seed: orig(scale, base_seed)[:2])
        first = pl.prepare_suite(cfg)
        second = pl.prepare_suite(cfg)  # from cache
        assert len(first) == len(second) == 2
        assert np.allclose(first[0].vc, second[0].vc)
