"""End-to-end learning test: the full experiment at miniature scale.

These are the repository's "does the science run" tests: prepare a small
suite, build the dataset with the balanced split, train each model family
briefly, and check the outputs are sane and the whole path from netlist to
metric is connected.
"""

import numpy as np
import pytest

from repro.data import CongestionDataset
from repro.models.lhnn import LHNNConfig
from repro.train import (TrainConfig, evaluate_lhnn, evaluate_mlp,
                         train_lhnn, train_mlp)


@pytest.fixture(scope="module")
def dataset(tiny_graph_suite):
    return CongestionDataset(tiny_graph_suite, channels=1)


class TestEndToEnd:
    def test_balanced_split_has_small_gap(self, dataset):
        # With 6 designs the best 4:2 split should be much better than the
        # worst one.
        rates = dataset.congestion_rates(0)
        worst_gap = abs(rates.max() - rates.min())
        assert dataset.split.rate_gap <= worst_gap

    def test_lhnn_beats_constant_predictor_on_train(self, dataset):
        tr = dataset.train_samples()
        model = train_lhnn(tr, TrainConfig(epochs=8, seed=0),
                           LHNNConfig(hidden=16))
        metrics = evaluate_lhnn(model, tr)
        # constant all-negative prediction gives F1 = 0
        assert metrics["f1"] > 0.0

    def test_duo_channel_end_to_end(self, tiny_graph_suite):
        ds = CongestionDataset(tiny_graph_suite, channels=2)
        tr = ds.train_samples()
        model = train_lhnn(tr, TrainConfig(epochs=3, seed=0),
                           LHNNConfig(hidden=8, channels=2))
        metrics = evaluate_lhnn(model, ds.test_samples())
        assert np.isfinite(metrics["f1"])

    def test_zero_feature_ablation_end_to_end(self, tiny_graph_suite):
        """LHNN must still run (and produce finite metrics) with G-cell
        features zeroed — the paper's last ablation row."""
        ds = CongestionDataset(tiny_graph_suite, channels=1,
                               zero_gcell_features=True)
        tr = ds.train_samples()
        model = train_lhnn(tr, TrainConfig(epochs=3, seed=0),
                           LHNNConfig(hidden=8))
        metrics = evaluate_lhnn(model, ds.test_samples())
        assert np.isfinite(metrics["f1"])

    def test_mlp_end_to_end(self, dataset):
        model = train_mlp(dataset.train_samples(),
                          TrainConfig(epochs=8, seed=0))
        metrics = evaluate_mlp(model, dataset.test_samples())
        assert metrics["acc"] > 40.0

    def test_visualization_from_model(self, dataset, tmp_path):
        from repro.eval import comparison_panel, write_pgm
        from repro.nn import Tensor
        tr = dataset.train_samples()
        te = dataset.test_samples()
        model = train_lhnn(tr, TrainConfig(epochs=2, seed=0),
                           LHNNConfig(hidden=8))
        sample = te[0]
        out = model(sample.graph, vc=Tensor(sample.features),
                    vn=Tensor(sample.net_features))
        g = sample.graph
        pred_map = g.map_to_grid(out.cls_prob.data[:, 0])
        truth_map = g.map_to_grid(sample.cls_target[:, 0])
        panel = comparison_panel(truth_map, {"LHNN": pred_map},
                                 title=sample.name)
        assert sample.name in panel
        path = write_pgm(pred_map, str(tmp_path / "pred.pgm"))
        assert path.endswith(".pgm")
