"""Smoke tests: the fast example scripts must run end to end.

``quickstart.py``, ``routability_flow.py`` and ``model_zoo.py`` train on
the full cached suite (minutes), so they are exercised by the benchmark
suite instead; the two examples below are self-contained and quick.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES = os.path.join(os.path.dirname(__file__), "..", "..", "examples")


def run_example(name: str, *args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, os.path.join(EXAMPLES, name), *args],
        capture_output=True, text=True, timeout=300)


class TestExamples:
    def test_feature_recovery_runs(self):
        result = run_example("feature_recovery.py")
        assert result.returncode == 0, result.stderr
        assert "topological one-hop reach" in result.stdout
        assert "0.00e+00" in result.stdout  # exact recovery

    def test_bookshelf_io_runs(self):
        result = run_example("bookshelf_io.py")
        assert result.returncode == 0, result.stderr
        assert "parsed demo_bs" in result.stdout
        assert "LH-graph" in result.stdout
        assert "forward pass OK" in result.stdout

    def test_serving_runs(self):
        result = run_example("serving.py")
        assert result.returncode == 0, result.stderr
        assert "no probing involved" in result.stdout
        assert "stage calls {}" in result.stdout  # warm queue: zero work
        assert "all cached: True" in result.stdout
        assert "client round trip" in result.stdout

    @pytest.mark.parametrize("name", ["quickstart.py", "routability_flow.py",
                                      "model_zoo.py", "bookshelf_io.py",
                                      "feature_recovery.py", "serving.py"])
    def test_examples_have_docstring_and_main(self, name):
        path = os.path.join(EXAMPLES, name)
        source = open(path).read()
        assert source.lstrip().startswith(('#!', '"""')), name
        assert '__main__' in source, name
