"""Tests for the synthetic superblue-like benchmark generator."""

import numpy as np
import pytest

from repro.circuit import (DesignSpec, SUPERBLUE_IDS, generate_design,
                           superblue_suite, validate_design)


class TestGenerateDesign:
    def test_deterministic_in_seed(self):
        a = generate_design(DesignSpec(seed=5, num_movable=100))
        b = generate_design(DesignSpec(seed=5, num_movable=100))
        assert np.allclose(a.cell_x, b.cell_x)
        assert np.array_equal(a.pin_cell, b.pin_cell)

    def test_different_seeds_differ(self):
        a = generate_design(DesignSpec(seed=5, num_movable=100))
        b = generate_design(DesignSpec(seed=6, num_movable=100))
        assert not np.allclose(a.cell_x, b.cell_x)

    def test_valid(self):
        d = generate_design(DesignSpec(seed=0, num_movable=150))
        assert validate_design(d) == []

    def test_counts_match_spec(self):
        spec = DesignSpec(seed=1, num_movable=200, num_terminals=24)
        d = generate_design(spec)
        assert d.num_movable == 200
        # terminals = pads + macros
        assert d.num_terminals >= 24

    def test_net_degrees_at_least_two(self):
        d = generate_design(DesignSpec(seed=2, num_movable=150))
        assert d.net_degree().min() >= 2

    def test_net_degrees_capped(self):
        spec = DesignSpec(seed=3, num_movable=300, max_degree=10)
        d = generate_design(spec)
        assert d.net_degree().max() <= 10

    def test_cells_inside_die(self):
        d = generate_design(DesignSpec(seed=4, num_movable=150))
        xl, yl, xh, yh = d.die
        assert np.all(d.cell_x >= xl - 1e-9)
        assert np.all(d.cell_y >= yl - 1e-9)
        assert np.all(d.cell_x + d.cell_w <= xh + 1e-9)

    def test_pin_offsets_inside_cells(self):
        d = generate_design(DesignSpec(seed=5, num_movable=150))
        assert np.all(d.pin_dx >= 0)
        assert np.all(d.pin_dx <= d.cell_w[d.pin_cell] + 1e-9)
        assert np.all(d.pin_dy <= d.cell_h[d.pin_cell] + 1e-9)

    def test_no_duplicate_pins_within_net(self):
        d = generate_design(DesignSpec(seed=6, num_movable=150))
        for net in range(d.num_nets):
            s = d.net_pin_slice(net)
            cells = d.pin_cell[s.start:s.stop]
            assert len(set(cells.tolist())) == len(cells)

    def test_capacity_factor_in_metadata(self):
        d = generate_design(DesignSpec(seed=7, capacity_factor=1.3))
        assert d.metadata["capacity_factor"] == pytest.approx(1.3)

    def test_utilization_respected(self):
        spec = DesignSpec(seed=8, num_movable=400, utilization=0.4,
                          die_size=64.0)
        d = generate_design(spec)
        movable_area = float((d.cell_w * d.cell_h)[~d.cell_fixed].sum())
        die_area = 64.0 * 64.0
        assert 0.25 < movable_area / die_area < 0.55


class TestSuite:
    def test_fifteen_designs(self):
        suite = superblue_suite(scale=0.2)
        assert len(suite) == 15
        assert len(SUPERBLUE_IDS) == 15

    def test_names_match_paper_ids(self):
        names = {d.name for d in superblue_suite(scale=0.2)}
        assert "superblue1" in names
        assert "superblue19" in names
        assert "superblue8" not in names  # not in the paper's 15

    def test_deterministic(self):
        a = superblue_suite(scale=0.2)
        b = superblue_suite(scale=0.2)
        assert all(np.allclose(x.cell_x, y.cell_x) for x, y in zip(a, b))

    def test_capacity_diversity(self):
        suite = superblue_suite(scale=0.2)
        factors = [d.metadata["capacity_factor"] for d in suite]
        assert max(factors) - min(factors) > 0.3

    def test_scale_changes_size(self):
        small = superblue_suite(scale=0.2)[0]
        large = superblue_suite(scale=1.0)[0]
        assert large.num_movable > small.num_movable
