"""Property-based tests on the circuit substrate."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.circuit import DesignSpec, generate_design, validate_design
from repro.placement.legalize import legalize, overlap_count


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000),
       n=st.integers(40, 160),
       clusters=st.integers(2, 8))
def test_generated_designs_always_valid(seed, n, clusters):
    spec = DesignSpec(seed=seed, num_movable=n, num_clusters=clusters,
                      num_terminals=8, num_macros=1, die_size=24.0)
    design = generate_design(spec)
    assert validate_design(design) == []
    assert design.net_degree().min() >= 2
    assert design.hpwl() >= 0.0


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_legalization_always_removes_overlaps(seed):
    spec = DesignSpec(seed=seed, num_movable=60, num_terminals=6,
                      num_macros=1, die_size=24.0, utilization=0.3)
    design = generate_design(spec)
    legalize(design)
    assert overlap_count(design) == 0


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_bookshelf_roundtrip_hpwl_invariant(seed, tmp_path_factory):
    from repro.circuit import read_design, write_design
    spec = DesignSpec(seed=seed, num_movable=40, num_terminals=4,
                      num_macros=0, die_size=16.0)
    design = generate_design(spec)
    directory = tmp_path_factory.mktemp(f"bs{seed}")
    aux = write_design(design, str(directory))
    loaded = read_design(aux)
    assert abs(loaded.hpwl() - design.hpwl()) < 1e-5
