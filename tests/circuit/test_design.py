"""Tests for Design containers and validation."""

import numpy as np
import pytest

from repro.circuit import Design, validate_design


def make_design() -> Design:
    """Hand-built 3-cell, 2-net design used across tests."""
    return Design(
        name="hand",
        cell_names=["a", "b", "t0"],
        cell_w=np.array([2.0, 2.0, 1.0]),
        cell_h=np.array([1.0, 1.0, 1.0]),
        cell_fixed=np.array([False, False, True]),
        cell_x=np.array([0.0, 4.0, 9.0]),
        cell_y=np.array([0.0, 2.0, 9.0]),
        net_names=["n0", "n1"],
        net_ptr=np.array([0, 2, 4]),
        pin_cell=np.array([0, 1, 1, 2]),
        pin_dx=np.array([1.0, 1.0, 0.0, 0.5]),
        pin_dy=np.array([0.5, 0.5, 0.5, 0.5]),
        die=(0.0, 0.0, 10.0, 10.0),
    )


class TestDesignBasics:
    def test_counts(self):
        d = make_design()
        assert d.num_cells == 3
        assert d.num_movable == 2
        assert d.num_terminals == 1
        assert d.num_nets == 2
        assert d.num_pins == 4

    def test_net_pin_slice(self):
        d = make_design()
        assert d.net_pin_slice(0) == slice(0, 2)
        assert d.net_pin_slice(1) == slice(2, 4)

    def test_net_degree(self):
        assert np.array_equal(make_design().net_degree(), [2, 2])

    def test_pin_positions(self):
        d = make_design()
        px, py = d.pin_positions()
        assert np.allclose(px, [1.0, 5.0, 4.0, 9.5])
        assert np.allclose(py, [0.5, 2.5, 2.5, 9.5])

    def test_bounding_boxes(self):
        d = make_design()
        boxes = d.net_bounding_boxes()
        assert np.allclose(boxes[0], [1.0, 0.5, 5.0, 2.5])
        assert np.allclose(boxes[1], [4.0, 2.5, 9.5, 9.5])

    def test_hpwl_value(self):
        d = make_design()
        # net0: (5-1) + (2.5-0.5) = 6; net1: (9.5-4) + (9.5-2.5) = 12.5
        assert d.hpwl() == pytest.approx(18.5)

    def test_stats_row(self):
        row = make_design().stats().as_row()
        assert row["#cells"] == 3
        assert row["avg_degree"] == 2.0

    def test_copy_is_deep_for_arrays(self):
        d = make_design()
        c = d.copy()
        c.cell_x[0] = 99.0
        assert d.cell_x[0] == 0.0


class TestValidation:
    def test_valid_design_passes(self):
        assert validate_design(make_design()) == []

    def test_bad_pin_index(self):
        d = make_design()
        d.pin_cell[0] = 10
        assert any("pin_cell" in p for p in validate_design(d))

    def test_bad_net_ptr(self):
        d = make_design()
        d.net_ptr[1] = 5
        assert validate_design(d)

    def test_degenerate_die(self):
        d = make_design()
        d.die = (0.0, 0.0, 0.0, 10.0)
        assert any("die" in p for p in validate_design(d))

    def test_nonpositive_cell_size(self):
        d = make_design()
        d.cell_w[0] = 0.0
        assert any("sizes" in p for p in validate_design(d))


class TestDegenerateNets:
    def test_single_pin_net_boxes(self):
        d = make_design()
        d.net_ptr = np.array([0, 1, 4])
        boxes = d.net_bounding_boxes()
        # Single-pin net collapses to a point.
        assert boxes[0, 0] == boxes[0, 2]

    def test_hpwl_ignores_degenerate(self):
        d = make_design()
        d.net_ptr = np.array([0, 1, 4])
        # only net1 with 3 pins counts
        assert d.hpwl() > 0
