"""Tests for Bookshelf reading/writing, including malformed input."""

import numpy as np
import pytest

from repro.circuit import (BookshelfError, DesignSpec, generate_design,
                           read_aux, read_design, write_design)


@pytest.fixture(scope="module")
def design():
    return generate_design(DesignSpec(name="bs", seed=11, num_movable=120,
                                      num_terminals=12, num_macros=2,
                                      die_size=32.0))


@pytest.fixture(scope="module")
def written(design, tmp_path_factory):
    directory = tmp_path_factory.mktemp("bookshelf")
    aux = write_design(design, str(directory))
    return aux


class TestRoundTrip:
    def test_counts_preserved(self, design, written):
        d2 = read_design(written)
        assert d2.num_cells == design.num_cells
        assert d2.num_nets == design.num_nets
        assert d2.num_pins == design.num_pins
        assert d2.num_terminals == design.num_terminals

    def test_positions_preserved(self, design, written):
        d2 = read_design(written)
        assert np.allclose(d2.cell_x, design.cell_x, atol=1e-6)
        assert np.allclose(d2.cell_y, design.cell_y, atol=1e-6)

    def test_pin_offsets_preserved(self, design, written):
        d2 = read_design(written)
        assert np.allclose(d2.pin_dx, design.pin_dx, atol=1e-6)
        assert np.allclose(d2.pin_dy, design.pin_dy, atol=1e-6)

    def test_connectivity_preserved(self, design, written):
        d2 = read_design(written)
        assert np.array_equal(d2.net_ptr, design.net_ptr)
        assert np.array_equal(d2.pin_cell, design.pin_cell)

    def test_hpwl_matches(self, design, written):
        d2 = read_design(written)
        assert d2.hpwl() == pytest.approx(design.hpwl(), rel=1e-6)

    def test_aux_mapping(self, written):
        files = read_aux(written)
        assert set(files) >= {"nodes", "nets", "pl", "scl"}


class TestMalformedInput:
    def test_missing_colon_in_aux(self, tmp_path):
        p = tmp_path / "bad.aux"
        p.write_text("RowBasedPlacement x.nodes\n")
        with pytest.raises(BookshelfError):
            read_aux(str(p))

    def test_missing_required_file_entry(self, tmp_path):
        p = tmp_path / "bad.aux"
        p.write_text("RowBasedPlacement : only.nodes\n")
        with pytest.raises(BookshelfError):
            read_aux(str(p))

    def test_unknown_cell_in_nets(self, tmp_path):
        (tmp_path / "d.nodes").write_text(
            "UCLA nodes 1.0\nNumNodes : 1\nNumTerminals : 0\na 1 1\n")
        (tmp_path / "d.nets").write_text(
            "UCLA nets 1.0\nNumNets : 1\nNumPins : 2\n"
            "NetDegree : 2 n0\n  a B : 0 0\n  ghost B : 0 0\n")
        (tmp_path / "d.pl").write_text("UCLA pl 1.0\na 0 0 : N\n")
        (tmp_path / "d.aux").write_text(
            "RowBasedPlacement : d.nodes d.nets d.pl\n")
        with pytest.raises(BookshelfError, match="unknown cell"):
            read_design(str(tmp_path / "d.aux"))

    def test_bad_node_line(self, tmp_path):
        (tmp_path / "d.nodes").write_text("UCLA nodes 1.0\njusttwo 1\n")
        (tmp_path / "d.nets").write_text("UCLA nets 1.0\n")
        (tmp_path / "d.pl").write_text("UCLA pl 1.0\n")
        (tmp_path / "d.aux").write_text(
            "RowBasedPlacement : d.nodes d.nets d.pl\n")
        with pytest.raises(BookshelfError):
            read_design(str(tmp_path / "d.aux"))

    def test_degree_mismatch(self, tmp_path):
        (tmp_path / "d.nodes").write_text(
            "UCLA nodes 1.0\na 1 1\nb 1 1\n")
        (tmp_path / "d.nets").write_text(
            "UCLA nets 1.0\nNetDegree : 3 n0\n  a B : 0 0\n  b B : 0 0\n"
            "NetDegree : 2 n1\n  a B : 0 0\n  b B : 0 0\n")
        (tmp_path / "d.pl").write_text("UCLA pl 1.0\na 0 0 : N\nb 1 1 : N\n")
        (tmp_path / "d.aux").write_text(
            "RowBasedPlacement : d.nodes d.nets d.pl\n")
        with pytest.raises(BookshelfError, match="declared"):
            read_design(str(tmp_path / "d.aux"))


class TestFixedHandling:
    def test_terminal_marker_read(self, tmp_path):
        (tmp_path / "d.nodes").write_text(
            "UCLA nodes 1.0\na 1 1\nt 2 2 terminal\n")
        (tmp_path / "d.nets").write_text(
            "UCLA nets 1.0\nNetDegree : 2 n0\n  a B : 0 0\n  t B : 0 0\n")
        (tmp_path / "d.pl").write_text("UCLA pl 1.0\na 0 0 : N\nt 5 5 : N\n")
        (tmp_path / "d.aux").write_text(
            "RowBasedPlacement : d.nodes d.nets d.pl\n")
        d = read_design(str(tmp_path / "d.aux"))
        assert d.cell_fixed[1]
        assert not d.cell_fixed[0]

    def test_fixed_suffix_in_pl(self, tmp_path):
        (tmp_path / "d.nodes").write_text("UCLA nodes 1.0\na 1 1\n")
        (tmp_path / "d.nets").write_text(
            "UCLA nets 1.0\nNetDegree : 1 n0\n  a B : 0 0\n")
        (tmp_path / "d.pl").write_text("UCLA pl 1.0\na 3 4 : N /FIXED\n")
        (tmp_path / "d.aux").write_text(
            "RowBasedPlacement : d.nodes d.nets d.pl\n")
        d = read_design(str(tmp_path / "d.aux"))
        assert d.cell_fixed[0]
