"""Shared fixtures: small designs, placed/routed pipelines, LH-graphs.

Everything is session-scoped and deterministic so the full suite stays
fast; pipeline products are computed once and shared read-only (tests that
mutate must copy).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuit import DesignSpec, generate_design
from repro.graph import build_lhgraph
from repro.pipeline import PipelineConfig, prepare_design
from repro.placement import PlacementConfig, place
from repro.routing import GlobalRouter, RouterConfig, extract_maps


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def small_spec():
    return DesignSpec(name="tiny", seed=3, num_movable=200, num_terminals=16,
                      num_macros=2, die_size=32.0, num_clusters=4)


@pytest.fixture(scope="session")
def small_design(small_spec):
    """A small unplaced design (do not mutate; copy first)."""
    return generate_design(small_spec)


@pytest.fixture(scope="session")
def placed_design(small_design):
    """The small design after full placement."""
    design = small_design.copy()
    place(design, PlacementConfig(outer_iterations=2))
    return design


@pytest.fixture(scope="session")
def router_config():
    return RouterConfig(nx=16, ny=16, capacity_h=10.0, capacity_v=10.0,
                        rrr_iterations=3)


@pytest.fixture(scope="session")
def routing_result(placed_design, router_config):
    """Routed small design."""
    return GlobalRouter(placed_design.copy(), router_config).run()


@pytest.fixture(scope="session")
def congestion_maps(routing_result):
    return extract_maps(routing_result.grid)


@pytest.fixture(scope="session")
def small_graph(placed_design, routing_result, congestion_maps):
    """Labelled LH-graph of the small design."""
    return build_lhgraph(placed_design, routing_result.grid, congestion_maps,
                         max_gnet_fraction=0.1)


@pytest.fixture(scope="session")
def tiny_pipeline_config():
    """Very small full-pipeline config used by integration tests."""
    return PipelineConfig(scale=0.25, grid_nx=16, grid_ny=16,
                          use_cache=False,
                          placement=PlacementConfig(outer_iterations=2),
                          router=RouterConfig(nx=16, ny=16,
                                              capacity_h=5.0, capacity_v=5.0,
                                              rrr_iterations=2))


@pytest.fixture(scope="session")
def tiny_graph_suite(tiny_pipeline_config):
    """Six labelled LH-graphs from fast, scaled-down pipeline runs."""
    from repro.circuit import superblue_suite
    designs = superblue_suite(scale=0.25)[:6]
    return [prepare_design(d, tiny_pipeline_config) for d in designs]
