"""Tests for calibration diagnostics."""

import numpy as np
import pytest

from repro.eval import (expected_calibration_error, rate_tracking_error,
                        reliability_bins)


class TestReliabilityBins:
    def test_perfectly_calibrated(self):
        rng = np.random.default_rng(0)
        prob = rng.random(200_00)
        target = (rng.random(200_00) < prob).astype(float)
        bins = reliability_bins(prob, target, num_bins=10)
        assert all(b.gap < 0.05 for b in bins)

    def test_bin_counts_sum(self):
        prob = np.linspace(0, 1, 101)
        target = np.zeros(101)
        bins = reliability_bins(prob, target)
        assert sum(b.count for b in bins) == 101

    def test_empty_bins_skipped(self):
        prob = np.full(10, 0.05)
        bins = reliability_bins(prob, np.zeros(10), num_bins=10)
        assert len(bins) == 1
        assert bins[0].lower == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            reliability_bins(np.zeros(3), np.zeros(4))

    def test_invalid_bins(self):
        with pytest.raises(ValueError):
            reliability_bins(np.zeros(3), np.zeros(3), num_bins=0)


class TestECE:
    def test_zero_for_perfect_confidence(self):
        prob = np.array([1.0, 1.0, 0.0, 0.0])
        target = np.array([1.0, 1.0, 0.0, 0.0])
        assert expected_calibration_error(prob, target) == pytest.approx(0.0)

    def test_maximal_for_confident_wrong(self):
        prob = np.array([1.0, 1.0])
        target = np.array([0.0, 0.0])
        assert expected_calibration_error(prob, target) == pytest.approx(1.0)

    def test_overconfident_half(self):
        prob = np.full(100, 0.9)
        target = np.concatenate([np.ones(50), np.zeros(50)])
        ece = expected_calibration_error(prob, target)
        assert ece == pytest.approx(0.4)

    def test_empty_input(self):
        assert expected_calibration_error(np.zeros(0), np.zeros(0)) == 0.0


class TestRateTracking:
    def test_perfect_tracking(self):
        probs = [np.array([0.9, 0.1]), np.array([0.9, 0.9])]
        targets = [np.array([1.0, 0.0]), np.array([1.0, 1.0])]
        assert rate_tracking_error(probs, targets) == pytest.approx(0.0)

    def test_averaged_predictor_penalised(self):
        """A model predicting ~20 % positives everywhere has high tracking
        error on designs with 0 % and 50 % true rates."""
        flat = [np.full(100, 0.6) * (np.arange(100) < 20)  # 20% above 0.5
                for _ in range(2)]
        targets = [np.zeros(100), np.concatenate([np.ones(50), np.zeros(50)])]
        err = rate_tracking_error(flat, targets)
        assert err == pytest.approx((0.2 + 0.3) / 2)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            rate_tracking_error([np.zeros(2)], [])

    def test_empty(self):
        assert rate_tracking_error([], []) == 0.0
