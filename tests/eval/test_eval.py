"""Tests for table formatting and visualisation."""

import os

import numpy as np
import pytest

from repro.eval import (ascii_heatmap, comparison_panel, format_table,
                        format_table2, format_table3, write_pgm)
from repro.train import MetricSummary


class TestAsciiHeatmap:
    def test_dimensions(self):
        art = ascii_heatmap(np.random.default_rng(0).random((8, 6)))
        lines = art.split("\n")
        assert len(lines) == 6          # ny rows
        assert all(len(l) == 8 for l in lines)

    def test_constant_array(self):
        art = ascii_heatmap(np.zeros((4, 4)))
        assert set(art.replace("\n", "")) == {" "}

    def test_hot_cell_is_densest_char(self):
        arr = np.zeros((3, 3))
        arr[1, 1] = 1.0
        art = ascii_heatmap(arr)
        assert "@" in art

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            ascii_heatmap(np.zeros(5))

    def test_downsampling(self):
        art = ascii_heatmap(np.random.default_rng(0).random((32, 32)),
                            width=8)
        assert len(art.split("\n")[0]) <= 16


class TestPGM:
    def test_write_and_header(self, tmp_path):
        path = str(tmp_path / "m.pgm")
        write_pgm(np.random.default_rng(0).random((8, 4)), path)
        with open(path, "rb") as f:
            header = f.readline().strip()
            dims = f.readline().split()
        assert header == b"P5"
        assert dims == [b"8", b"4"]
        assert os.path.getsize(path) > 8 * 4

    def test_rejects_non_2d(self, tmp_path):
        with pytest.raises(ValueError):
            write_pgm(np.zeros(5), str(tmp_path / "x.pgm"))


class TestTables:
    def test_format_table_alignment(self):
        rows = [{"a": 1, "b": "xx"}, {"a": 100, "b": "y"}]
        text = format_table(rows, title="T")
        lines = text.split("\n")
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        # title + header + separator + 2 body rows
        assert len(lines) == 5

    def test_empty_rows(self):
        assert format_table([], title="empty") == "empty"

    def test_format_table2(self):
        s = MetricSummary(40.89, 1.82, 95.46, 0.11)
        text = format_table2({"LHNN": {"uni": s}})
        assert "LHNN" in text
        assert "40.89±1.82" in text
        assert "duo F1" in text

    def test_format_table3_deltas(self):
        text = format_table3({"full": 40.0, "no_hypermp": 32.0})
        assert "-20.00" in text  # (32-40)/40 = -20%


class TestComparisonPanel:
    def test_contains_all_names(self):
        truth = np.random.default_rng(0).random((6, 6))
        preds = {"lhnn": truth * 0.5, "unet": truth * 0.2}
        panel = comparison_panel(truth, preds, title="superblue5")
        assert "superblue5" in panel
        assert "ground truth" in panel
        assert "lhnn" in panel and "unet" in panel

    def test_panels_aligned(self):
        truth = np.zeros((4, 4))
        panel = comparison_panel(truth, {"m": truth})
        lines = panel.split("\n")[2:]
        assert len({len(l) for l in lines if l}) <= 2
