"""Tests for per-design reporting."""

import numpy as np
import pytest

from repro.data import CongestionDataset
from repro.eval import markdown_table, per_design_report, predicted_rate_table
from repro.models.lhnn import LHNN, LHNNConfig
from repro.train import TrainConfig, train_lhnn


@pytest.fixture(scope="module")
def dataset(tiny_graph_suite):
    return CongestionDataset(tiny_graph_suite, channels=1)


@pytest.fixture(scope="module")
def model(dataset):
    return train_lhnn(dataset.train_samples(), TrainConfig(epochs=2, seed=0),
                      LHNNConfig(hidden=8))


class TestPerDesignReport:
    def test_one_row_per_design(self, model, dataset):
        samples = dataset.test_samples()
        rows = per_design_report(model, samples)
        assert len(rows) == len(samples)
        assert [r["design"] for r in rows] == [s.name for s in samples]

    def test_columns_and_ranges(self, model, dataset):
        rows = per_design_report(model, dataset.test_samples())
        for row in rows:
            assert 0 <= row["F1"] <= 100
            assert 0 <= row["precision"] <= 100
            assert 0 <= row["recall"] <= 100
            assert 0 <= row["true_rate_%"] <= 100

    def test_custom_predictor(self, dataset):
        samples = dataset.test_samples()
        rows = per_design_report(
            object(), samples,
            predict=lambda s: np.zeros_like(s.cls_target))
        # all-negative predictor → F1 = 0 everywhere
        assert all(r["F1"] == 0.0 for r in rows)
        assert all(r["pred_rate_%"] == 0.0 for r in rows)

    def test_table_render(self, model, dataset):
        rows = per_design_report(model, dataset.test_samples())
        text = predicted_rate_table(rows, title="X")
        assert text.startswith("X")
        assert "design" in text


class TestMarkdownTable:
    def test_structure(self):
        rows = [{"a": 1, "b": 2}]
        md = markdown_table(rows, title="T")
        lines = md.split("\n")
        assert lines[0] == "**T**"
        assert lines[2].startswith("| a | b |")
        assert lines[3] == "|---|---|"
        assert lines[4] == "| 1 | 2 |"

    def test_empty(self):
        assert markdown_table([], title="T") == "T"
