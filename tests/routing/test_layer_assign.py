"""Tests for 2-layer assignment and via analysis."""

import numpy as np
import pytest

from repro.routing import (GlobalRouter, RouterConfig, assign_layers,
                           via_map_of_paths)


class TestViaMapOfPaths:
    def test_straight_path_has_endpoint_vias_only(self):
        stats = via_map_of_paths([[(0, 0), (1, 0), (2, 0)]], 4, 4)
        assert stats.num_vias == 2          # two endpoints
        assert stats.horizontal_wirelength == 2
        assert stats.vertical_wirelength == 0

    def test_l_path_has_corner_via(self):
        stats = via_map_of_paths([[(0, 0), (1, 0), (1, 1)]], 4, 4)
        assert stats.num_vias == 3          # corner + two endpoints
        assert stats.via_map[1, 0] >= 1     # the corner G-cell

    def test_zigzag_counts_every_turn(self):
        path = [(0, 0), (1, 0), (1, 1), (2, 1), (2, 2)]
        stats = via_map_of_paths([path], 4, 4)
        assert stats.num_vias == 3 + 2      # 3 turns + endpoints

    def test_wirelength_split(self):
        path = [(0, 0), (1, 0), (1, 1), (1, 2)]
        stats = via_map_of_paths([path], 4, 4)
        assert stats.horizontal_wirelength == 1
        assert stats.vertical_wirelength == 2
        assert stats.total_wirelength == 3

    def test_empty_and_single_cell_paths(self):
        stats = via_map_of_paths([[], [(1, 1)]], 4, 4)
        assert stats.num_vias == 0
        assert stats.total_wirelength == 0
        assert stats.vias_per_unit_length == 0.0

    def test_rejects_diagonal(self):
        with pytest.raises(ValueError):
            via_map_of_paths([[(0, 0), (1, 1)]], 4, 4)


class TestAssignLayers:
    def test_on_routed_design(self, placed_design, router_config):
        router = GlobalRouter(placed_design.copy(), router_config)
        router.run()
        stats = assign_layers(router)
        assert stats.total_wirelength > 0
        assert stats.num_vias > 0
        assert stats.via_map.shape == (router.grid.nx, router.grid.ny)
        # Total assigned wirelength equals accumulated edge usage.
        usage = router.grid.h_usage.sum() + router.grid.v_usage.sum()
        assert stats.total_wirelength == pytest.approx(usage)

    def test_requires_run(self, placed_design, router_config):
        router = GlobalRouter(placed_design.copy(), router_config)
        with pytest.raises(ValueError):
            assign_layers(router)
