"""Property-based tests (hypothesis) on routing invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.routing import astar_route, decompose_net, l_paths, mst_edges
from repro.routing.pattern import path_cost

COORD = st.tuples(st.integers(0, 11), st.integers(0, 11))


def is_valid_path(path):
    for (ax, ay), (bx, by) in zip(path, path[1:]):
        if abs(ax - bx) + abs(ay - by) != 1:
            return False
    return True


@settings(max_examples=60, deadline=None)
@given(a=COORD, b=COORD)
def test_l_paths_connect_and_have_l1_length(a, b):
    for path in l_paths(a, b):
        assert path[0] == a and path[-1] == b
        assert is_valid_path(path)
        assert len(path) == abs(a[0] - b[0]) + abs(a[1] - b[1]) + 1


@settings(max_examples=40, deadline=None)
@given(a=COORD, b=COORD)
def test_astar_optimal_under_uniform_cost(a, b):
    h = np.ones((11, 12))
    v = np.ones((12, 11))
    path = astar_route(a, b, h, v, bbox_margin=None)
    assert path[0] == a and path[-1] == b
    assert is_valid_path(path)
    # Uniform costs → A* returns an L1-shortest path.
    assert len(path) == abs(a[0] - b[0]) + abs(a[1] - b[1]) + 1


@settings(max_examples=30, deadline=None)
@given(a=COORD, b=COORD, data=st.data())
def test_astar_never_worse_than_patterns(a, b, data):
    rng = np.random.default_rng(data.draw(st.integers(0, 10_000)))
    h = 1.0 + 3.0 * rng.random((11, 12))
    v = 1.0 + 3.0 * rng.random((12, 11))
    maze = astar_route(a, b, h, v, bbox_margin=None)
    for pattern in l_paths(a, b):
        assert (path_cost(maze, h, v)
                <= path_cost(pattern, h, v) + 1e-9)


@settings(max_examples=40, deadline=None)
@given(points=st.lists(COORD, min_size=2, max_size=10, unique=True))
def test_mst_spans_all_points(points):
    edges = mst_edges(points)
    assert len(edges) == len(points) - 1
    # union-find connectivity check
    parent = list(range(len(points)))

    def find(x):
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for i, j in edges:
        parent[find(i)] = find(j)
    assert len({find(k) for k in range(len(points))}) == 1


@settings(max_examples=40, deadline=None)
@given(points=st.lists(COORD, min_size=1, max_size=8, unique=True))
def test_decompose_segments_cover_terminals(points):
    segs = decompose_net(points)
    if len(points) < 2:
        assert segs == []
        return
    endpoints = {p for seg in segs for p in seg}
    assert endpoints == set(points)
