"""Tests for the global-routing substrate."""

import numpy as np
import pytest

from repro.circuit import DesignSpec, generate_design
from repro.placement import place
from repro.routing import (GlobalRouter, RouterConfig, RoutingGrid,
                           astar_route, best_pattern_path, congestion_rate,
                           decompose_net, extract_maps, l_paths, mst_edges,
                           path_cost, straight_path, z_paths)


@pytest.fixture(scope="module")
def placed():
    d = generate_design(DesignSpec(name="route-t", seed=31, num_movable=150,
                                   num_terminals=12, num_macros=2,
                                   die_size=32.0))
    place(d)
    return d


@pytest.fixture
def grid(placed):
    return RoutingGrid(placed, nx=16, ny=16, capacity_h=5.0, capacity_v=5.0)


class TestGrid:
    def test_gcell_mapping_corners(self, grid):
        assert grid.gcell_of(0.0, 0.0) == (0, 0)
        assert grid.gcell_of(31.999, 31.999) == (15, 15)

    def test_gcell_clipping(self, grid):
        assert grid.gcell_of(-5.0, 100.0) == (0, 15)

    def test_vectorized_matches_scalar(self, grid):
        xs = np.array([0.0, 10.0, 31.0])
        ys = np.array([5.0, 15.0, 0.5])
        gx, gy = grid.gcells_of(xs, ys)
        for i in range(3):
            assert (gx[i], gy[i]) == grid.gcell_of(xs[i], ys[i])

    def test_add_remove_path_roundtrip(self, grid):
        path = [(0, 0), (1, 0), (1, 1)]
        grid.add_path(path)
        assert grid.h_usage[0, 0] == 1.0
        assert grid.v_usage[1, 0] == 1.0
        grid.add_path(path, sign=-1.0)
        assert grid.h_usage.sum() == 0.0
        assert grid.v_usage.sum() == 0.0

    def test_add_path_rejects_diagonal(self, grid):
        with pytest.raises(ValueError):
            grid.add_path([(0, 0), (1, 1)])

    def test_overflow_accounting(self, grid):
        for _ in range(7):
            grid.add_path([(0, 0), (1, 0)])
        oh, _ = grid.edge_overflow()
        assert oh[0, 0] == pytest.approx(2.0)
        assert grid.total_overflow() == pytest.approx(2.0)

    def test_history_bumps_only_overflowed(self, grid):
        for _ in range(7):
            grid.add_path([(0, 0), (1, 0)])
        grid.bump_history(0.5)
        assert grid.h_history[0, 0] == 0.5
        assert grid.h_history[1, 0] == 0.0

    def test_macro_blockage_derates_capacity(self, placed):
        g = RoutingGrid(placed, nx=16, ny=16, capacity_h=5.0, capacity_v=5.0)
        # At least one edge must be derated (design has macros).
        assert g.h_capacity.min() < 5.0 or g.v_capacity.min() < 5.0

    def test_reset(self, grid):
        grid.add_path([(0, 0), (1, 0)])
        grid.bump_history()
        grid.reset_usage()
        assert grid.h_usage.sum() == 0
        assert grid.h_history.sum() == 0


class TestSteiner:
    def test_mst_edge_count(self):
        pts = [(0, 0), (5, 0), (0, 5), (5, 5)]
        assert len(mst_edges(pts)) == 3

    def test_mst_total_length_is_minimal_for_line(self):
        pts = [(0, 0), (2, 0), (1, 0)]
        edges = mst_edges(pts)
        total = sum(abs(pts[i][0] - pts[j][0]) for i, j in edges)
        assert total == 2  # chain, not star

    def test_decompose_small(self):
        assert decompose_net([(0, 0)]) == []
        assert len(decompose_net([(0, 0), (3, 3)])) == 1

    def test_decompose_connects_all(self):
        pts = [(0, 0), (4, 1), (2, 6), (7, 7), (1, 3)]
        segs = decompose_net(pts)
        assert len(segs) == len(pts) - 1
        touched = {p for seg in segs for p in seg}
        assert touched == set(pts)


class TestPattern:
    def test_straight_path_horizontal(self):
        p = straight_path((1, 2), (4, 2))
        assert p == [(1, 2), (2, 2), (3, 2), (4, 2)]

    def test_straight_path_reverse(self):
        p = straight_path((4, 2), (1, 2))
        assert p[0] == (4, 2) and p[-1] == (1, 2)

    def test_straight_rejects_diagonal(self):
        with pytest.raises(ValueError):
            straight_path((0, 0), (1, 1))

    def test_l_paths_two_options(self):
        paths = l_paths((0, 0), (3, 2))
        assert len(paths) == 2
        for p in paths:
            assert p[0] == (0, 0) and p[-1] == (3, 2)
            assert len(p) == 6  # L1 distance 5 → 6 cells

    def test_l_paths_aligned_single(self):
        assert len(l_paths((0, 0), (0, 4))) == 1

    def test_z_paths_have_jog(self):
        paths = z_paths((0, 0), (4, 4))
        assert paths
        for p in paths:
            assert p[0] == (0, 0) and p[-1] == (4, 4)

    def test_path_cost_uses_direction_arrays(self):
        h = np.ones((3, 4))
        v = np.full((4, 3), 10.0)
        p = [(0, 0), (1, 0), (1, 1)]
        assert path_cost(p, h, v) == pytest.approx(11.0)

    def test_best_pattern_avoids_congested(self):
        h = np.ones((4, 5))
        v = np.ones((5, 4))
        h[:, 0] = 100.0  # bottom row expensive
        best = best_pattern_path((0, 0), (3, 3), h, v)
        cost = path_cost(best, h, v)
        assert cost < 100.0  # went up first


class TestAStar:
    def test_shortest_path_uniform_cost(self):
        h = np.ones((7, 8))
        v = np.ones((8, 7))
        p = astar_route((0, 0), (5, 5), h, v)
        assert p[0] == (0, 0) and p[-1] == (5, 5)
        assert len(p) == 11  # L1 distance 10

    def test_detours_around_wall(self):
        h = np.ones((7, 8))
        v = np.ones((8, 7))
        v[0:7, 3] = 1000.0  # wall on vertical edges at y=3→4, x<7
        p = astar_route((0, 0), (0, 7), h, v, bbox_margin=None)
        # must pass through x=7 to cross the wall cheaply
        assert any(x == 7 for x, _ in p)

    def test_same_start_goal(self):
        h = np.ones((3, 4))
        v = np.ones((4, 3))
        assert astar_route((1, 1), (1, 1), h, v) == [(1, 1)]

    def test_path_cells_adjacent(self):
        h = np.ones((7, 8)) + np.random.default_rng(0).random((7, 8))
        v = np.ones((8, 7)) + np.random.default_rng(1).random((8, 7))
        p = astar_route((0, 0), (6, 6), h, v)
        for (ax, ay), (bx, by) in zip(p, p[1:]):
            assert abs(ax - bx) + abs(ay - by) == 1


class TestGlobalRouter:
    def test_run_produces_usage(self, placed):
        cfg = RouterConfig(nx=16, ny=16, capacity_h=8.0, capacity_v=8.0,
                           rrr_iterations=2)
        result = GlobalRouter(placed.copy(), cfg).run()
        grid = result.grid
        assert grid.h_usage.sum() + grid.v_usage.sum() > 0
        assert result.num_segments > 0

    def test_rrr_never_increases_overflow_much(self, placed):
        cfg = RouterConfig(nx=16, ny=16, capacity_h=6.0, capacity_v=6.0,
                           rrr_iterations=4)
        result = GlobalRouter(placed.copy(), cfg).run()
        history = result.overflow_history
        assert history[-1] <= history[0]

    def test_capacity_factor_scales(self, placed):
        d = placed.copy()
        d.metadata["capacity_factor"] = 2.0
        router = GlobalRouter(d, RouterConfig(nx=16, ny=16, capacity_h=5.0,
                                              capacity_v=5.0))
        assert router.grid.h_capacity.max() == pytest.approx(10.0)

    def test_maps_extraction(self, placed):
        cfg = RouterConfig(nx=16, ny=16, rrr_iterations=1)
        result = GlobalRouter(placed.copy(), cfg).run()
        maps = extract_maps(result.grid)
        assert maps.demand_h.shape == (16, 16)
        assert (maps.demand_h >= 0).all()
        assert maps.congestion_h.dtype == bool
        rate = congestion_rate(maps, "h")
        assert 0.0 <= rate <= 1.0
        assert congestion_rate(maps, "any") >= max(
            congestion_rate(maps, "h"), congestion_rate(maps, "v"))

    def test_congestion_rate_bad_channel(self, placed):
        cfg = RouterConfig(nx=16, ny=16, rrr_iterations=0)
        result = GlobalRouter(placed.copy(), cfg).run()
        maps = extract_maps(result.grid)
        with pytest.raises(ValueError):
            congestion_rate(maps, "x")

    def test_higher_capacity_less_congestion(self, placed):
        rates = []
        for cap in (4.0, 16.0):
            cfg = RouterConfig(nx=16, ny=16, capacity_h=cap, capacity_v=cap,
                               rrr_iterations=2, apply_capacity_factor=False)
            result = GlobalRouter(placed.copy(), cfg).run()
            rates.append(congestion_rate(extract_maps(result.grid), "h"))
        assert rates[1] <= rates[0]
