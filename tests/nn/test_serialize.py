"""Tests for model checkpointing."""

import numpy as np
import pytest

from repro.nn import (CheckpointError, MLP, Tensor, load_checkpoint,
                      save_checkpoint)


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestCheckpointRoundTrip:
    def test_parameters_restored(self, rng, tmp_path):
        m1 = MLP([4, 8, 2], rng)
        path = save_checkpoint(m1, str(tmp_path / "m.npz"))
        m2 = MLP([4, 8, 2], np.random.default_rng(99))
        load_checkpoint(m2, path)
        x = rng.normal(size=(5, 4))
        assert np.allclose(m1(Tensor(x)).data, m2(Tensor(x)).data)

    def test_metadata_roundtrip(self, rng, tmp_path):
        m = MLP([2, 4, 1], rng)
        path = save_checkpoint(m, str(tmp_path / "m.npz"),
                               metadata={"epochs": 20, "f1": 41.5})
        meta = load_checkpoint(m, path)
        assert meta == {"epochs": 20, "f1": 41.5}

    def test_extension_appended(self, rng, tmp_path):
        m = MLP([2, 4, 1], rng)
        path = save_checkpoint(m, str(tmp_path / "noext"))
        assert path.endswith(".npz")
        load_checkpoint(m, str(tmp_path / "noext"))  # finds .npz

    def test_lhnn_checkpoint(self, rng, tmp_path, small_graph):
        from repro.models.lhnn import LHNN, LHNNConfig
        m1 = LHNN(LHNNConfig(hidden=8), rng)
        path = save_checkpoint(m1, str(tmp_path / "lhnn.npz"))
        m2 = LHNN(LHNNConfig(hidden=8), np.random.default_rng(5))
        load_checkpoint(m2, path)
        out1 = m1(small_graph).cls_prob.data
        out2 = m2(small_graph).cls_prob.data
        assert np.allclose(out1, out2)


class TestCheckpointErrors:
    def test_architecture_mismatch(self, rng, tmp_path):
        m1 = MLP([4, 8, 2], rng)
        path = save_checkpoint(m1, str(tmp_path / "m.npz"))
        wrong = MLP([4, 16, 2], rng)
        with pytest.raises(CheckpointError):
            load_checkpoint(wrong, path)

    def test_non_checkpoint_file(self, rng, tmp_path):
        path = str(tmp_path / "junk.npz")
        np.savez(path, a=np.zeros(3))
        with pytest.raises(CheckpointError):
            load_checkpoint(MLP([2, 2], rng), path)
