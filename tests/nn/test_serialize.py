"""Tests for model checkpointing."""

import numpy as np
import pytest

from repro.nn import (CheckpointError, MLP, Tensor, load_checkpoint,
                      read_checkpoint_header, save_checkpoint)


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestCheckpointRoundTrip:
    def test_parameters_restored(self, rng, tmp_path):
        m1 = MLP([4, 8, 2], rng)
        path = save_checkpoint(m1, str(tmp_path / "m.npz"))
        m2 = MLP([4, 8, 2], np.random.default_rng(99))
        load_checkpoint(m2, path)
        x = rng.normal(size=(5, 4))
        assert np.allclose(m1(Tensor(x)).data, m2(Tensor(x)).data)

    def test_metadata_roundtrip(self, rng, tmp_path):
        m = MLP([2, 4, 1], rng)
        path = save_checkpoint(m, str(tmp_path / "m.npz"),
                               metadata={"epochs": 20, "f1": 41.5})
        meta = load_checkpoint(m, path)
        assert meta == {"epochs": 20, "f1": 41.5}

    def test_extension_appended(self, rng, tmp_path):
        m = MLP([2, 4, 1], rng)
        path = save_checkpoint(m, str(tmp_path / "noext"))
        assert path.endswith(".npz")
        load_checkpoint(m, str(tmp_path / "noext"))  # finds .npz

    def test_lhnn_checkpoint(self, rng, tmp_path, small_graph):
        from repro.models.lhnn import LHNN, LHNNConfig
        m1 = LHNN(LHNNConfig(hidden=8), rng)
        path = save_checkpoint(m1, str(tmp_path / "lhnn.npz"))
        m2 = LHNN(LHNNConfig(hidden=8), np.random.default_rng(5))
        load_checkpoint(m2, path)
        out1 = m1(small_graph).cls_prob.data
        out2 = m2(small_graph).cls_prob.data
        assert np.allclose(out1, out2)


class TestCheckpointErrors:
    def test_architecture_mismatch(self, rng, tmp_path):
        m1 = MLP([4, 8, 2], rng)
        path = save_checkpoint(m1, str(tmp_path / "m.npz"))
        wrong = MLP([4, 16, 2], rng)
        with pytest.raises(CheckpointError):
            load_checkpoint(wrong, path)

    def test_non_checkpoint_file(self, rng, tmp_path):
        path = str(tmp_path / "junk.npz")
        np.savez(path, a=np.zeros(3))
        with pytest.raises(CheckpointError):
            load_checkpoint(MLP([2, 2], rng), path)

    def test_missing_file(self, rng, tmp_path):
        with pytest.raises(CheckpointError, match="no such checkpoint"):
            load_checkpoint(MLP([2, 2], rng), str(tmp_path / "absent.npz"))

    def test_corrupted_bytes(self, rng, tmp_path):
        path = tmp_path / "garbage.npz"
        path.write_bytes(b"\x00definitely not a zip archive\xff" * 20)
        with pytest.raises(CheckpointError, match="unreadable"):
            load_checkpoint(MLP([2, 2], rng), str(path))

    def test_truncated_npz(self, rng, tmp_path):
        m = MLP([4, 8, 2], rng)
        path = tmp_path / "trunc.npz"
        save_checkpoint(m, str(path))
        blob = path.read_bytes()
        path.write_bytes(blob[:len(blob) // 2])
        with pytest.raises(CheckpointError, match="unreadable"):
            load_checkpoint(MLP([4, 8, 2], rng), str(path))
        with pytest.raises(CheckpointError, match="unreadable"):
            read_checkpoint_header(str(path))


def _family_instances(rng):
    """Small twin-constructible instances of all five model families."""
    from repro.models.lhnn import LHNN, LHNNConfig
    from repro.models.mlp_baseline import MLPBaseline
    from repro.models.pix2pix import Pix2Pix
    from repro.models.related import GridSAGE
    from repro.models.unet import UNet
    return {
        "lhnn": lambda: LHNN(LHNNConfig(hidden=8, channels=2), rng),
        "mlp": lambda: MLPBaseline(hidden=8, rng=rng),
        "gridsage": lambda: GridSAGE(hidden=8, num_layers=2, rng=rng),
        "unet": lambda: UNet(base_width=4, rng=rng),
        "pix2pix": lambda: Pix2Pix(base_width=4, rng=rng),
    }


class TestAllFamiliesRoundTrip:
    @pytest.mark.parametrize("family", ["lhnn", "mlp", "gridsage", "unet",
                                        "pix2pix"])
    def test_state_dict_round_trip(self, family, rng, tmp_path):
        make = _family_instances(rng)[family]
        m1 = make()
        path = save_checkpoint(m1, str(tmp_path / f"{family}.npz"))
        m2 = make()  # same shapes, fresh (different) weights
        load_checkpoint(m2, path)
        for name, value in m1.state_dict().items():
            assert np.array_equal(value, m2.state_dict()[name]), name

    @pytest.mark.parametrize("family", ["lhnn", "unet"])
    def test_wrong_architecture_rejected(self, family, rng, tmp_path):
        from repro.models.lhnn import LHNN, LHNNConfig
        from repro.models.unet import UNet
        m1 = _family_instances(rng)[family]()
        path = save_checkpoint(m1, str(tmp_path / "a.npz"))
        wrong = (LHNN(LHNNConfig(hidden=16, channels=2), rng)
                 if family == "lhnn" else UNet(base_width=8, rng=rng))
        with pytest.raises(CheckpointError):
            load_checkpoint(wrong, path)


class TestHeaderReader:
    def test_header_fields(self, rng, tmp_path):
        m = MLP([4, 8, 2], rng)
        path = save_checkpoint(m, str(tmp_path / "m.npz"),
                               metadata={"f1": 41.5})
        header = read_checkpoint_header(path)
        assert header["format"] == "repro-checkpoint-v1"
        assert header["num_parameters"] == m.num_parameters()
        assert header["metadata"] == {"f1": 41.5}
        assert sorted(header["parameter_names"]) == sorted(m.state_dict())

    def test_header_appends_extension(self, rng, tmp_path):
        m = MLP([2, 4, 1], rng)
        save_checkpoint(m, str(tmp_path / "noext"))
        assert read_checkpoint_header(str(tmp_path / "noext"))["format"] \
            == "repro-checkpoint-v1"
