"""Tests for the convolution stack: im2col, Conv2d, ConvTranspose2d, pooling,
batch-norm, upsampling."""

import numpy as np
import pytest

from repro.nn import (AvgPool2d, BatchNorm2d, Conv2d, ConvTranspose2d,
                      MaxPool2d, Tensor, UpsampleNearest2d)
from repro.nn.conv import col2im, conv_output_size, im2col


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestIm2Col:
    def test_output_size_formula(self):
        assert conv_output_size(32, 3, 1, 1) == 32
        assert conv_output_size(32, 4, 2, 1) == 16
        assert conv_output_size(5, 3, 1, 0) == 3

    def test_im2col_shape(self, rng):
        x = rng.normal(size=(2, 3, 8, 8))
        cols = im2col(x, 3, 3, 1, 1)
        assert cols.shape == (2, 3 * 9, 64)

    def test_im2col_identity_kernel(self, rng):
        x = rng.normal(size=(1, 1, 4, 4))
        cols = im2col(x, 1, 1, 1, 0)
        assert np.allclose(cols.reshape(4, 4), x[0, 0])

    def test_col2im_adjoint_of_im2col(self, rng):
        """col2im must be the exact adjoint: <im2col(x), y> == <x, col2im(y)>."""
        x = rng.normal(size=(1, 2, 6, 6))
        y = rng.normal(size=(1, 2 * 9, 36))
        lhs = float((im2col(x, 3, 3, 1, 1) * y).sum())
        rhs = float((x * col2im(y, x.shape, 3, 3, 1, 1)).sum())
        assert lhs == pytest.approx(rhs, rel=1e-10)


class TestConv2d:
    def test_forward_shape(self, rng):
        conv = Conv2d(3, 8, 3, rng, stride=1, padding=1)
        out = conv(Tensor(np.zeros((2, 3, 16, 16))))
        assert out.shape == (2, 8, 16, 16)

    def test_strided_shape(self, rng):
        conv = Conv2d(3, 8, 4, rng, stride=2, padding=1)
        out = conv(Tensor(np.zeros((1, 3, 16, 16))))
        assert out.shape == (1, 8, 8, 8)

    def test_known_convolution_value(self, rng):
        conv = Conv2d(1, 1, 3, rng, padding=0, bias=False)
        conv.weight.data[...] = np.ones((1, 1, 3, 3))
        x = np.ones((1, 1, 3, 3))
        out = conv(Tensor(x))
        assert out.data.reshape(()) == pytest.approx(9.0)

    def test_bias_added(self, rng):
        conv = Conv2d(1, 2, 1, rng)
        conv.weight.data[...] = 0.0
        conv.bias.data[...] = np.array([1.5, -2.0])
        out = conv(Tensor(np.zeros((1, 1, 2, 2)))).data
        assert np.allclose(out[0, 0], 1.5)
        assert np.allclose(out[0, 1], -2.0)

    def test_gradients_flow(self, rng):
        conv = Conv2d(2, 3, 3, rng, padding=1)
        x = Tensor(rng.normal(size=(1, 2, 4, 4)), requires_grad=True)
        conv(x).sum().backward()
        assert x.grad is not None and x.grad.shape == x.shape
        assert conv.weight.grad is not None
        assert conv.bias.grad is not None


class TestConvTranspose2d:
    def test_upsampling_shape(self, rng):
        ct = ConvTranspose2d(4, 2, 2, rng, stride=2)
        out = ct(Tensor(np.zeros((1, 4, 8, 8))))
        assert out.shape == (1, 2, 16, 16)

    def test_adjointness_with_conv(self, rng):
        """ConvT with the same weight is the adjoint of Conv (no bias)."""
        w = rng.normal(size=(3, 2, 2, 2))  # (in=3, out=2) for convT
        conv = Conv2d(2, 3, 2, rng, stride=2, padding=0, bias=False)
        conv.weight.data[...] = w
        ct = ConvTranspose2d(3, 2, 2, rng, stride=2, padding=0, bias=False)
        ct.weight.data[...] = w
        x = rng.normal(size=(1, 2, 8, 8))
        y = rng.normal(size=(1, 3, 4, 4))
        lhs = float((conv(Tensor(x)).data * y).sum())
        rhs = float((x * ct(Tensor(y)).data).sum())
        assert lhs == pytest.approx(rhs, rel=1e-10)

    def test_gradients_flow(self, rng):
        ct = ConvTranspose2d(2, 2, 2, rng, stride=2)
        x = Tensor(rng.normal(size=(1, 2, 3, 3)), requires_grad=True)
        ct(x).sum().backward()
        assert x.grad.shape == (1, 2, 3, 3)
        assert ct.weight.grad is not None


class TestPooling:
    def test_maxpool_value(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = MaxPool2d(2)(Tensor(x)).data
        assert np.allclose(out[0, 0], [[5, 7], [13, 15]])

    def test_maxpool_grad_routes_to_max(self):
        x = Tensor(np.arange(16.0).reshape(1, 1, 4, 4), requires_grad=True)
        MaxPool2d(2)(x).sum().backward()
        expected = np.zeros((4, 4))
        expected[1, 1] = expected[1, 3] = expected[3, 1] = expected[3, 3] = 1
        assert np.allclose(x.grad[0, 0], expected)

    def test_maxpool_tie_single_winner(self):
        x = Tensor(np.ones((1, 1, 2, 2)), requires_grad=True)
        MaxPool2d(2)(x).sum().backward()
        assert x.grad.sum() == pytest.approx(1.0)

    def test_maxpool_rejects_indivisible(self):
        with pytest.raises(ValueError):
            MaxPool2d(2)(Tensor(np.zeros((1, 1, 5, 4))))

    def test_avgpool_value_and_grad(self):
        x = Tensor(np.arange(4.0).reshape(1, 1, 2, 2), requires_grad=True)
        out = AvgPool2d(2)(x)
        assert out.data.reshape(()) == pytest.approx(1.5)
        out.sum().backward()
        assert np.allclose(x.grad, 0.25)

    def test_upsample_nearest(self):
        x = Tensor(np.array([[1.0, 2.0], [3.0, 4.0]]).reshape(1, 1, 2, 2),
                   requires_grad=True)
        out = UpsampleNearest2d(2)(x)
        assert out.shape == (1, 1, 4, 4)
        assert np.allclose(out.data[0, 0, :2, :2], 1.0)
        out.sum().backward()
        assert np.allclose(x.grad, 4.0)


class TestBatchNorm2d:
    def test_training_normalizes_batch(self, rng):
        bn = BatchNorm2d(3)
        x = rng.normal(5.0, 3.0, size=(8, 3, 4, 4))
        out = bn(Tensor(x)).data
        assert np.allclose(out.mean(axis=(0, 2, 3)), 0.0, atol=1e-10)
        assert np.allclose(out.std(axis=(0, 2, 3)), 1.0, atol=1e-3)

    def test_running_stats_updated(self, rng):
        bn = BatchNorm2d(2, momentum=1.0)
        x = rng.normal(2.0, 1.0, size=(16, 2, 4, 4))
        bn(Tensor(x))
        assert np.allclose(bn.running_mean, x.mean(axis=(0, 2, 3)), atol=1e-10)

    def test_eval_uses_running_stats(self, rng):
        bn = BatchNorm2d(2, momentum=1.0)
        x = rng.normal(size=(4, 2, 4, 4))
        bn(Tensor(x))
        bn.eval()
        y = rng.normal(size=(1, 2, 4, 4))
        out = bn(Tensor(y)).data
        expected = (y - bn.running_mean.reshape(1, -1, 1, 1)) / np.sqrt(
            bn.running_var.reshape(1, -1, 1, 1) + bn.eps)
        assert np.allclose(out, expected, atol=1e-10)

    def test_gamma_beta_trainable(self, rng):
        bn = BatchNorm2d(2)
        x = Tensor(rng.normal(size=(4, 2, 2, 2)), requires_grad=True)
        bn(x).sum().backward()
        assert bn.gamma.grad is not None
        assert bn.beta.grad is not None
