"""Unit tests for the autograd Tensor: ops, broadcasting, backward."""

import numpy as np
import pytest

from repro.nn import Tensor, as_tensor, no_grad, is_grad_enabled


def numgrad(f, x, eps=1e-6):
    """Central-difference numeric gradient of scalar-valued f wrt array x."""
    g = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    for _ in it:
        i = it.multi_index
        orig = x[i]
        x[i] = orig + eps
        fp = f()
        x[i] = orig - eps
        fm = f()
        x[i] = orig
        g[i] = (fp - fm) / (2 * eps)
    return g


class TestBasics:
    def test_construction_from_list(self):
        t = Tensor([[1.0, 2.0], [3.0, 4.0]])
        assert t.shape == (2, 2)
        assert t.dtype == np.float64

    def test_as_tensor_passthrough(self):
        t = Tensor([1.0])
        assert as_tensor(t) is t

    def test_as_tensor_scalar(self):
        t = as_tensor(3.5)
        assert t.item() == pytest.approx(3.5)

    def test_detach_cuts_graph(self):
        a = Tensor([2.0], requires_grad=True)
        b = (a * 3).detach()
        assert not b.requires_grad

    def test_item_single_element(self):
        assert Tensor([[7.0]]).item() == 7.0

    def test_len_and_size(self):
        t = Tensor(np.zeros((3, 4)))
        assert len(t) == 3
        assert t.size == 12


class TestArithmetic:
    def test_add_backward(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        (a + b).sum().backward()
        assert np.allclose(a.grad, [1, 1])
        assert np.allclose(b.grad, [1, 1])

    def test_radd_scalar(self):
        a = Tensor([1.0], requires_grad=True)
        (2.0 + a).backward(np.array([1.0]))
        assert np.allclose(a.grad, [1.0])

    def test_sub_backward(self):
        a = Tensor([5.0], requires_grad=True)
        b = Tensor([2.0], requires_grad=True)
        (a - b).backward(np.array([1.0]))
        assert a.grad[0] == 1.0
        assert b.grad[0] == -1.0

    def test_rsub(self):
        a = Tensor([2.0], requires_grad=True)
        (10.0 - a).backward(np.array([1.0]))
        assert a.grad[0] == -1.0

    def test_mul_backward(self):
        a = Tensor([3.0], requires_grad=True)
        b = Tensor([4.0], requires_grad=True)
        (a * b).backward(np.array([1.0]))
        assert a.grad[0] == 4.0
        assert b.grad[0] == 3.0

    def test_div_backward(self):
        a = Tensor([6.0], requires_grad=True)
        b = Tensor([3.0], requires_grad=True)
        (a / b).backward(np.array([1.0]))
        assert a.grad[0] == pytest.approx(1 / 3)
        assert b.grad[0] == pytest.approx(-6 / 9)

    def test_rtruediv(self):
        a = Tensor([4.0], requires_grad=True)
        (8.0 / a).backward(np.array([1.0]))
        assert a.grad[0] == pytest.approx(-8 / 16)

    def test_pow_backward(self):
        a = Tensor([3.0], requires_grad=True)
        (a ** 2).backward(np.array([1.0]))
        assert a.grad[0] == pytest.approx(6.0)

    def test_pow_rejects_tensor_exponent(self):
        with pytest.raises(TypeError):
            Tensor([1.0]) ** Tensor([2.0])

    def test_neg(self):
        a = Tensor([2.0], requires_grad=True)
        (-a).backward(np.array([1.0]))
        assert a.grad[0] == -1.0

    def test_broadcast_add_reduces_grad(self):
        a = Tensor(np.zeros((3, 4)), requires_grad=True)
        b = Tensor(np.zeros(4), requires_grad=True)
        (a + b).sum().backward()
        assert a.grad.shape == (3, 4)
        assert b.grad.shape == (4,)
        assert np.allclose(b.grad, 3.0)

    def test_broadcast_mul_numeric(self):
        rng = np.random.default_rng(0)
        a = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        b = Tensor(rng.normal(size=(3,)), requires_grad=True)
        (a * b).sum().backward()
        ng = numgrad(lambda: float((a.data * b.data).sum()), b.data)
        assert np.allclose(b.grad, ng, atol=1e-5)


class TestMatmul:
    def test_2d_matmul_grads(self):
        rng = np.random.default_rng(1)
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(4, 2)), requires_grad=True)
        (a @ b).sum().backward()
        nga = numgrad(lambda: float((a.data @ b.data).sum()), a.data)
        ngb = numgrad(lambda: float((a.data @ b.data).sum()), b.data)
        assert np.allclose(a.grad, nga, atol=1e-5)
        assert np.allclose(b.grad, ngb, atol=1e-5)

    def test_vector_inner_product(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        (a @ b).backward(np.array(1.0))
        assert np.allclose(a.grad, [3, 4])
        assert np.allclose(b.grad, [1, 2])

    def test_matrix_vector(self):
        rng = np.random.default_rng(2)
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        v = Tensor(rng.normal(size=4), requires_grad=True)
        (a @ v).sum().backward()
        ng = numgrad(lambda: float((a.data @ v.data).sum()), v.data)
        assert np.allclose(v.grad, ng, atol=1e-5)

    def test_vector_matrix(self):
        rng = np.random.default_rng(3)
        v = Tensor(rng.normal(size=3), requires_grad=True)
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        (v @ a).sum().backward()
        ng = numgrad(lambda: float((v.data @ a.data).sum()), v.data)
        assert np.allclose(v.grad, ng, atol=1e-5)


class TestShapeOps:
    def test_reshape_roundtrip_grad(self):
        a = Tensor(np.arange(6.0), requires_grad=True)
        a.reshape(2, 3).sum().backward()
        assert np.allclose(a.grad, np.ones(6))

    def test_transpose_grad(self):
        rng = np.random.default_rng(4)
        a = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        w = rng.normal(size=(3, 2))
        (a.T * Tensor(w)).sum().backward()
        assert np.allclose(a.grad, w.T)

    def test_transpose_with_axes(self):
        a = Tensor(np.zeros((2, 3, 4)), requires_grad=True)
        out = a.transpose((2, 0, 1))
        assert out.shape == (4, 2, 3)
        out.sum().backward()
        assert a.grad.shape == (2, 3, 4)

    def test_getitem_scatter_grad(self):
        a = Tensor(np.arange(5.0), requires_grad=True)
        a[1:3].sum().backward()
        assert np.allclose(a.grad, [0, 1, 1, 0, 0])

    def test_getitem_fancy_index_accumulates(self):
        a = Tensor(np.arange(4.0), requires_grad=True)
        idx = np.array([0, 0, 1])
        a[idx].sum().backward()
        assert np.allclose(a.grad, [2, 1, 0, 0])

    def test_concat_grad_split(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.ones((2, 3)), requires_grad=True)
        Tensor.concat([a, b], axis=1).sum().backward()
        assert a.grad.shape == (2, 2)
        assert b.grad.shape == (2, 3)

    def test_stack_grad(self):
        a = Tensor(np.ones(3), requires_grad=True)
        b = Tensor(np.ones(3), requires_grad=True)
        Tensor.stack([a, b]).sum().backward()
        assert np.allclose(a.grad, 1.0)
        assert np.allclose(b.grad, 1.0)


class TestReductions:
    def test_sum_axis_keepdims(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        out = a.sum(axis=1, keepdims=True)
        assert out.shape == (2, 1)
        out.sum().backward()
        assert np.allclose(a.grad, 1.0)

    def test_sum_axis_no_keepdims(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        a.sum(axis=0).sum().backward()
        assert np.allclose(a.grad, 1.0)

    def test_mean_grad(self):
        a = Tensor(np.ones((4,)), requires_grad=True)
        a.mean().backward()
        assert np.allclose(a.grad, 0.25)

    def test_mean_axis(self):
        a = Tensor(np.ones((2, 4)), requires_grad=True)
        a.mean(axis=1).sum().backward()
        assert np.allclose(a.grad, 0.25)

    def test_max_global(self):
        a = Tensor([1.0, 5.0, 3.0], requires_grad=True)
        a.max().backward()
        assert np.allclose(a.grad, [0, 1, 0])

    def test_max_axis(self):
        a = Tensor([[1.0, 5.0], [7.0, 3.0]], requires_grad=True)
        a.max(axis=1).sum().backward()
        assert np.allclose(a.grad, [[0, 1], [1, 0]])

    def test_max_ties_split_gradient(self):
        a = Tensor([2.0, 2.0], requires_grad=True)
        a.max().backward()
        assert np.allclose(a.grad, [0.5, 0.5])


class TestNonlinearities:
    @pytest.mark.parametrize("op", ["exp", "log", "sqrt", "relu",
                                    "sigmoid", "tanh", "abs"])
    def test_numeric_gradcheck(self, op):
        rng = np.random.default_rng(5)
        x = rng.uniform(0.2, 2.0, size=(3, 3))
        t = Tensor(x.copy(), requires_grad=True)
        getattr(t, op)().sum().backward()
        ng = numgrad(lambda: float(getattr(Tensor(t.data), op)().data.sum()),
                     t.data)
        assert np.allclose(t.grad, ng, atol=1e-5), op

    def test_leaky_relu_negative_slope(self):
        t = Tensor([-2.0, 3.0], requires_grad=True)
        t.leaky_relu(0.1).sum().backward()
        assert np.allclose(t.grad, [0.1, 1.0])

    def test_clip_gradient_masked(self):
        t = Tensor([-5.0, 0.5, 5.0], requires_grad=True)
        t.clip(0.0, 1.0).sum().backward()
        assert np.allclose(t.grad, [0, 1, 0])

    def test_sigmoid_extreme_values_stable(self):
        t = Tensor([-1000.0, 1000.0])
        out = t.sigmoid().data
        assert np.all(np.isfinite(out))
        assert out[0] == pytest.approx(0.0, abs=1e-12)
        assert out[1] == pytest.approx(1.0, abs=1e-12)

    def test_where_grads(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        Tensor.where(np.array([True, False]), a, b).sum().backward()
        assert np.allclose(a.grad, [1, 0])
        assert np.allclose(b.grad, [0, 1])


class TestBackwardMechanics:
    def test_backward_requires_scalar_without_grad(self):
        t = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(RuntimeError):
            (t * 2).backward()

    def test_grad_accumulates_across_backwards(self):
        a = Tensor([2.0], requires_grad=True)
        (a * 3).backward(np.array([1.0]))
        (a * 3).backward(np.array([1.0]))
        assert a.grad[0] == 6.0

    def test_diamond_graph_accumulation(self):
        a = Tensor([2.0], requires_grad=True)
        b = a * 3
        c = a * 4
        (b + c).backward(np.array([1.0]))
        assert a.grad[0] == 7.0

    def test_shared_subexpression(self):
        a = Tensor([2.0], requires_grad=True)
        b = a * a          # 4
        (b * b).backward(np.array([1.0]))  # a^4, d/da = 4 a^3 = 32
        assert a.grad[0] == pytest.approx(32.0)

    def test_no_grad_blocks_graph(self):
        a = Tensor([1.0], requires_grad=True)
        with no_grad():
            assert not is_grad_enabled()
            b = a * 2
        assert not b.requires_grad
        assert is_grad_enabled()

    def test_zero_grad(self):
        a = Tensor([1.0], requires_grad=True)
        (a * 2).backward(np.array([1.0]))
        a.zero_grad()
        assert a.grad is None

    def test_deep_chain_no_recursion_error(self):
        a = Tensor([1.0], requires_grad=True)
        x = a
        for _ in range(3000):
            x = x + 0.001
        x.backward(np.array([1.0]))
        assert a.grad[0] == pytest.approx(1.0)

    def test_retain_graph_allows_second_backward(self):
        a = Tensor([2.0], requires_grad=True)
        b = (a * a).sum()
        b.backward(retain_graph=True)
        b.backward()
        assert a.grad[0] == pytest.approx(8.0)
