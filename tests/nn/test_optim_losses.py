"""Tests for optimisers, schedules and loss functions."""

import numpy as np
import pytest

from repro.nn import (Adam, BCELoss, CosineLR, GammaWeightedBCE, GANLoss,
                      JointLoss, L1Loss, Linear, MLP, MSELoss, Parameter,
                      SGD, StepLR, Tensor, clip_grad_norm, two_phase_lr)
from repro.nn import functional as F


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestOptimizers:
    def test_sgd_step_direction(self):
        p = Parameter(np.array([1.0]))
        p.grad = np.array([0.5])
        SGD([p], lr=0.1).step()
        assert p.data[0] == pytest.approx(0.95)

    def test_sgd_momentum_accumulates(self):
        p = Parameter(np.array([0.0]))
        opt = SGD([p], lr=1.0, momentum=0.9)
        p.grad = np.array([1.0])
        opt.step()
        first = p.data.copy()
        p.grad = np.array([1.0])
        opt.step()
        assert (first[0] - p.data[0]) > 1.0  # second step larger

    def test_sgd_weight_decay(self):
        p = Parameter(np.array([1.0]))
        p.grad = np.array([0.0])
        SGD([p], lr=0.1, weight_decay=0.5).step()
        assert p.data[0] == pytest.approx(0.95)

    def test_adam_converges_quadratic(self):
        p = Parameter(np.array([5.0]))
        opt = Adam([p], lr=0.1)
        for _ in range(500):
            opt.zero_grad()
            p.grad = 2 * p.data  # d/dp p^2
            opt.step()
        assert abs(p.data[0]) < 1e-3

    def test_adam_skips_none_grads(self):
        p = Parameter(np.array([1.0]))
        Adam([p], lr=0.1).step()
        assert p.data[0] == 1.0

    def test_invalid_lr_rejected(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(1))], lr=0.0)

    def test_clip_grad_norm(self):
        p = Parameter(np.zeros(4))
        p.grad = np.full(4, 10.0)
        norm = clip_grad_norm([p], max_norm=1.0)
        assert norm == pytest.approx(20.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0)

    def test_clip_noop_when_small(self):
        p = Parameter(np.zeros(2))
        p.grad = np.array([0.1, 0.1])
        clip_grad_norm([p], max_norm=5.0)
        assert np.allclose(p.grad, 0.1)


class TestSchedules:
    def test_step_lr_decays(self):
        p = Parameter(np.zeros(1))
        opt = Adam([p], lr=1.0)
        sched = StepLR(opt, step_size=2, gamma=0.1)
        sched.step()
        assert opt.lr == pytest.approx(1.0)
        sched.step()
        assert opt.lr == pytest.approx(0.1)

    def test_cosine_lr_endpoints(self):
        p = Parameter(np.zeros(1))
        opt = Adam([p], lr=1.0)
        sched = CosineLR(opt, t_max=10, eta_min=0.0)
        for _ in range(10):
            sched.step()
        assert opt.lr == pytest.approx(0.0, abs=1e-12)

    def _two_phase_trace(self, epochs):
        """Per-epoch lr values as the trainer sees them (step at epoch end)."""
        opt = Adam([Parameter(np.zeros(1))], lr=2e-3)
        sched = two_phase_lr(opt, epochs=epochs, lr_final=5e-4)
        trace = []
        for _ in range(epochs):
            trace.append(opt.lr)
            sched.step()
        return trace

    def test_two_phase_pair_at_twenty_epochs(self):
        trace = self._two_phase_trace(20)
        assert trace[:10] == pytest.approx([2e-3] * 10)
        assert trace[10:] == pytest.approx([5e-4] * 10)

    def test_two_phase_single_epoch_trains_at_initial_lr(self):
        """Regression: epochs == 1 used to spend its only epoch at lr_final."""
        assert self._two_phase_trace(1) == pytest.approx([2e-3])

    def test_two_phase_odd_epochs_round_first_phase_up(self):
        assert self._two_phase_trace(3) == pytest.approx([2e-3, 2e-3, 5e-4])

    def test_two_phase_rejects_bad_args(self):
        opt = Adam([Parameter(np.zeros(1))], lr=2e-3)
        with pytest.raises(ValueError):
            two_phase_lr(opt, epochs=0, lr_final=5e-4)
        with pytest.raises(ValueError):
            two_phase_lr(opt, epochs=4, lr_final=0.0)


class TestLosses:
    def test_mse_value(self):
        loss = MSELoss()(Tensor(np.array([1.0, 3.0])), np.array([0.0, 0.0]))
        assert loss.item() == pytest.approx(5.0)

    def test_l1_value(self):
        loss = L1Loss()(Tensor(np.array([1.0, -3.0])), np.array([0.0, 0.0]))
        assert loss.item() == pytest.approx(2.0)

    def test_bce_perfect_prediction_near_zero(self):
        prob = Tensor(np.array([0.999999, 0.000001]))
        loss = BCELoss()(prob, np.array([1.0, 0.0]))
        assert loss.item() < 1e-4

    def test_gamma_bce_downweights_negatives(self):
        prob = Tensor(np.array([0.3]))
        target = np.array([0.0])
        full = GammaWeightedBCE(gamma=1.0)(prob, target).item()
        weak = GammaWeightedBCE(gamma=0.5)(prob, target).item()
        assert weak == pytest.approx(0.5 * full)

    def test_gamma_bce_keeps_positive_weight(self):
        prob = Tensor(np.array([0.3]))
        target = np.array([1.0])
        full = GammaWeightedBCE(gamma=1.0)(prob, target).item()
        weak = GammaWeightedBCE(gamma=0.1)(prob, target).item()
        assert weak == pytest.approx(full)

    def test_gamma_validation(self):
        with pytest.raises(ValueError):
            GammaWeightedBCE(gamma=0.0)
        with pytest.raises(ValueError):
            GammaWeightedBCE(gamma=1.5)

    def test_joint_loss_drops_regression(self):
        prob = Tensor(np.array([0.5]))
        reg = Tensor(np.array([10.0]))
        with_reg = JointLoss(use_regression=True)(
            prob, reg, np.array([1.0]), np.array([0.0]))
        without = JointLoss(use_regression=False)(
            prob, reg, np.array([1.0]), np.array([0.0]))
        assert with_reg.item() > without.item()

    def test_joint_loss_none_reg_pred(self):
        prob = Tensor(np.array([0.5]))
        loss = JointLoss(use_regression=True)(
            prob, None, np.array([1.0]), np.array([0.0]))
        assert np.isfinite(loss.item())

    def test_gan_loss_signs(self):
        real_logits = Tensor(np.array([5.0]))
        gl = GANLoss()
        assert gl(real_logits, True).item() < gl(real_logits, False).item()

    def test_gan_loss_gradient_direction(self):
        x = Tensor(np.array([0.0]), requires_grad=True)
        GANLoss()(x, True).backward()
        assert x.grad[0] < 0  # increase logit to look more real

    def test_gan_loss_stable_extremes(self):
        x = Tensor(np.array([-500.0, 500.0]))
        assert np.isfinite(GANLoss()(x, True).item())
        assert np.isfinite(GANLoss()(x, False).item())


class TestEndToEndTraining:
    def test_mlp_learns_xor(self, rng):
        X = np.array([[0, 0], [0, 1], [1, 0], [1, 1]], dtype=float)
        y = np.array([[0.0], [1.0], [1.0], [0.0]])
        model = MLP([2, 16, 1], rng)
        opt = Adam(model.parameters(), lr=5e-2)
        loss_fn = BCELoss()
        for _ in range(400):
            opt.zero_grad()
            prob = F.sigmoid(model(Tensor(X)))
            loss = loss_fn(prob, y)
            loss.backward()
            opt.step()
        pred = F.sigmoid(model(Tensor(X))).data > 0.5
        assert np.array_equal(pred.reshape(-1), y.reshape(-1) > 0.5)
