"""Tests for sparse message-passing primitives and the functional API."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.nn import SparseMatrix, Tensor, degree_vector, row_normalize, spmm
from repro.nn import functional as F


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestSparseMatrix:
    def test_from_dense(self):
        m = SparseMatrix(np.eye(3))
        assert m.shape == (3, 3)
        assert m.nnz == 3

    def test_from_coo_duplicates_summed(self):
        m = SparseMatrix.from_coo([0, 0], [1, 1], [1.0, 2.0], shape=(2, 2))
        assert m.toarray()[0, 1] == 3.0

    def test_row_col_sums(self):
        m = SparseMatrix(np.array([[1.0, 1.0], [0.0, 1.0]]))
        assert np.allclose(m.row_sums(), [2, 1])
        assert np.allclose(m.col_sums(), [1, 2])

    def test_transpose_cached(self):
        m = SparseMatrix(sp.random(5, 3, density=0.5, random_state=0))
        t1 = m.T
        t2 = m.T
        assert t1 is t2
        assert t1.shape == (3, 5)

    def test_degree_vector(self):
        m = SparseMatrix(np.array([[1.0, 1.0, 1.0], [1.0, 0.0, 0.0]]))
        assert np.allclose(degree_vector(m, axis=1), [3, 1])
        assert np.allclose(degree_vector(m, axis=0), [2, 1, 1])

    def test_pickle_round_trip_rebuilds_memos(self):
        import pickle
        m = SparseMatrix(sp.random(5, 3, density=0.5, random_state=0))
        m.T  # populate the (cyclic) transpose memo before pickling
        m.as_dtype(np.float32)
        restored = pickle.loads(pickle.dumps(m))
        assert np.allclose(restored.toarray(), m.toarray())
        assert restored.T.shape == (3, 5)
        assert restored.as_dtype(np.float32).dtype == np.float32

    def test_unpickle_pre_memo_state(self):
        """Stage-cache blobs pickled before the transpose/dtype memo
        attributes existed must restore to fully working operators."""
        m = SparseMatrix(np.eye(3))
        legacy = SparseMatrix.__new__(SparseMatrix)
        legacy.__setstate__({"mat": m.mat})     # pre-PR4 pickle payload
        assert legacy.T.shape == (3, 3)
        assert legacy.as_dtype(np.float32).dtype == np.float32


class TestRowNormalize:
    def test_rows_sum_to_one(self, rng):
        m = SparseMatrix(sp.random(10, 6, density=0.4, random_state=1,
                                   format="csr"))
        m.mat.data[:] = 1.0
        normed = row_normalize(m)
        sums = normed.row_sums()
        nonzero = m.row_sums() > 0
        assert np.allclose(sums[nonzero], 1.0)

    def test_zero_rows_stay_zero(self):
        m = SparseMatrix(np.array([[0.0, 0.0], [1.0, 1.0]]))
        normed = row_normalize(m)
        assert np.allclose(normed.toarray()[0], 0.0)
        assert np.allclose(normed.toarray()[1], 0.5)


class TestSpmm:
    def test_matches_dense(self, rng):
        a = sp.random(7, 4, density=0.5, random_state=2, format="csr")
        x = rng.normal(size=(4, 3))
        out = spmm(SparseMatrix(a), Tensor(x))
        assert np.allclose(out.data, a @ x)

    def test_backward_is_transpose(self, rng):
        a = SparseMatrix(sp.random(5, 4, density=0.6, random_state=3,
                                   format="csr"))
        x = Tensor(rng.normal(size=(4, 2)), requires_grad=True)
        w = rng.normal(size=(5, 2))
        (spmm(a, x) * Tensor(w)).sum().backward()
        assert np.allclose(x.grad, a.mat.T @ w)

    def test_accepts_raw_scipy(self, rng):
        a = sp.eye(3).tocsr()
        x = Tensor(rng.normal(size=(3, 2)))
        assert np.allclose(spmm(a, x).data, x.data)


class TestFunctional:
    def test_softmax_rows_sum_to_one(self, rng):
        x = Tensor(rng.normal(size=(4, 7)))
        out = F.softmax(x, axis=-1).data
        assert np.allclose(out.sum(axis=-1), 1.0)

    def test_softmax_shift_invariance(self, rng):
        x = rng.normal(size=(3, 5))
        a = F.softmax(Tensor(x)).data
        b = F.softmax(Tensor(x + 100.0)).data
        assert np.allclose(a, b)

    def test_log_softmax_consistency(self, rng):
        x = Tensor(rng.normal(size=(3, 5)))
        assert np.allclose(F.log_softmax(x).data,
                           np.log(F.softmax(x).data), atol=1e-10)

    def test_logsigmoid_matches_naive(self, rng):
        x = Tensor(rng.normal(size=10))
        assert np.allclose(F.logsigmoid(x).data,
                           np.log(1 / (1 + np.exp(-x.data))), atol=1e-10)

    def test_logsigmoid_stable_at_extremes(self):
        out = F.logsigmoid(Tensor(np.array([-800.0, 800.0]))).data
        assert np.isfinite(out).all()
        assert out[0] == pytest.approx(-800.0)

    def test_logsigmoid_gradient(self):
        x = Tensor(np.array([0.0]), requires_grad=True)
        F.logsigmoid(x).backward(np.array([1.0]))
        assert x.grad[0] == pytest.approx(0.5)

    def test_mse_helper(self):
        assert F.mse(Tensor(np.array([2.0])), np.array([0.0])).item() == 4.0

    def test_bce_helper_symmetric(self):
        a = F.binary_cross_entropy(Tensor(np.array([0.7])), np.array([1.0]))
        b = F.binary_cross_entropy(Tensor(np.array([0.3])), np.array([0.0]))
        assert a.item() == pytest.approx(b.item())

    def test_one_hot(self):
        out = F.one_hot(np.array([0, 2]), 3)
        assert np.allclose(out, [[1, 0, 0], [0, 0, 1]])

    def test_where_helper(self):
        out = F.where(np.array([True, False]),
                      Tensor(np.array([1.0, 1.0])),
                      Tensor(np.array([2.0, 2.0])))
        assert np.allclose(out.data, [1.0, 2.0])
