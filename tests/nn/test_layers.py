"""Tests for Module/Linear/MLP/ResidualMLP and friends."""

import numpy as np
import pytest

from repro.nn import (Activation, Dropout, Identity, LayerNorm, Linear,
                      MLP, Module, Parameter, ResidualMLP, Sequential, Tensor)


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestModule:
    def test_parameters_discovered(self, rng):
        lin = Linear(3, 4, rng)
        params = lin.parameters()
        assert len(params) == 2
        assert lin.num_parameters() == 3 * 4 + 4

    def test_nested_parameters(self, rng):
        mlp = MLP([3, 8, 2], rng)
        names = dict(mlp.named_parameters())
        assert "linears.0.weight" in names
        assert "linears.1.bias" in names

    def test_parameters_deduplicated(self, rng):
        class Shared(Module):
            def __init__(self):
                super().__init__()
                self.a = Linear(2, 2, rng)
                self.b = self.a

        assert len(Shared().parameters()) == 2

    def test_train_eval_propagates(self, rng):
        model = Sequential(Linear(2, 2, rng), Dropout(0.5))
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())

    def test_zero_grad_clears(self, rng):
        lin = Linear(2, 2, rng)
        out = lin(Tensor(np.ones((1, 2))))
        out.sum().backward()
        assert lin.weight.grad is not None
        lin.zero_grad()
        assert lin.weight.grad is None

    def test_state_dict_roundtrip(self, rng):
        m1 = MLP([3, 5, 2], rng)
        m2 = MLP([3, 5, 2], np.random.default_rng(99))
        m2.load_state_dict(m1.state_dict())
        x = np.random.default_rng(1).normal(size=(4, 3))
        assert np.allclose(m1(Tensor(x)).data, m2(Tensor(x)).data)

    def test_load_state_dict_rejects_mismatch(self, rng):
        m = Linear(2, 2, rng)
        with pytest.raises(KeyError):
            m.load_state_dict({"weight": np.zeros((2, 2))})

    def test_load_state_dict_rejects_bad_shape(self, rng):
        m = Linear(2, 2, rng)
        state = m.state_dict()
        state["weight"] = np.zeros((3, 3))
        with pytest.raises(ValueError):
            m.load_state_dict(state)


class TestLinear:
    def test_forward_shape(self, rng):
        lin = Linear(5, 3, rng)
        assert lin(Tensor(np.zeros((7, 5)))).shape == (7, 3)

    def test_no_bias(self, rng):
        lin = Linear(5, 3, rng, bias=False)
        assert lin.bias is None
        assert len(lin.parameters()) == 1

    def test_gradient_flows_to_both(self, rng):
        lin = Linear(2, 2, rng)
        lin(Tensor(np.ones((3, 2)))).sum().backward()
        assert lin.weight.grad is not None
        assert lin.bias.grad is not None
        assert np.allclose(lin.bias.grad, 3.0)


class TestActivation:
    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            Activation("swish")

    @pytest.mark.parametrize("name", ["relu", "leaky_relu", "sigmoid",
                                      "tanh", "identity"])
    def test_known_activations_run(self, name):
        act = Activation(name)
        out = act(Tensor(np.array([-1.0, 1.0])))
        assert out.shape == (2,)


class TestMLP:
    def test_requires_two_dims(self, rng):
        with pytest.raises(ValueError):
            MLP([4], rng)

    def test_final_activation_flag(self, rng):
        m = MLP([2, 4, 1], rng, activation="relu", final_activation=True)
        out = m(Tensor(np.random.default_rng(0).normal(size=(10, 2))))
        assert np.all(out.data >= 0)

    def test_depth(self, rng):
        m = MLP([2, 4, 4, 1], rng)
        assert len(m.linears) == 3


class TestResidualMLP:
    def test_identity_skip_when_same_width(self, rng):
        r = ResidualMLP(4, 8, 4, rng)
        assert isinstance(r.proj, Identity)

    def test_projection_skip_when_width_changes(self, rng):
        r = ResidualMLP(4, 8, 6, rng)
        assert isinstance(r.proj, Linear)
        assert r(Tensor(np.zeros((2, 4)))).shape == (2, 6)

    def test_residual_passes_input_at_zero_weights(self, rng):
        r = ResidualMLP(3, 3, 3, rng)
        for p in r.parameters():
            p.data[...] = 0.0
        x = np.random.default_rng(0).normal(size=(2, 3))
        assert np.allclose(r(Tensor(x)).data, x)


class TestLayerNormDropout:
    def test_layernorm_normalizes(self, rng):
        ln = LayerNorm(16)
        x = np.random.default_rng(0).normal(3.0, 5.0, size=(4, 16))
        out = ln(Tensor(x)).data
        assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-6)
        assert np.allclose(out.std(axis=-1), 1.0, atol=1e-2)

    def test_dropout_eval_is_identity(self):
        d = Dropout(0.9)
        d.eval()
        x = np.ones((5, 5))
        assert np.allclose(d(Tensor(x)).data, x)

    def test_dropout_training_scales(self):
        d = Dropout(0.5, rng=np.random.default_rng(0))
        out = d(Tensor(np.ones((100, 100)))).data
        kept = out[out > 0]
        assert np.allclose(kept, 2.0)
        assert 0.4 < (out > 0).mean() < 0.6

    def test_dropout_invalid_p(self):
        with pytest.raises(ValueError):
            Dropout(1.0)
