"""float32 ↔ float64 parity: the dtype drop must not change the science.

For every model family the engine serves (LHNN, MLP, GridSAGE, U-Net,
Pix2Pix) the float32 forward pass must agree with its float64 twin to
rounding tolerance, and a short training run must land at statistically
indistinguishable metrics.  Finite-difference gradient checks at
float32-appropriate tolerances guard the backward pass itself.
"""

import numpy as np
import pytest

from repro.data import CongestionDataset
from repro.models.lhnn import LHNN, LHNNConfig
from repro.models.mlp_baseline import MLPBaseline
from repro.models.pix2pix import Pix2Pix
from repro.models.related import GridSAGE
from repro.models.unet import UNet
from repro.nn import DtypeConfig, Tensor, no_grad
from repro.train import (TrainConfig, evaluate_lhnn, evaluate_mlp,
                         evaluate_pix2pix, evaluate_unet, train_lhnn,
                         train_mlp, train_pix2pix, train_unet)
from repro.train.trainer import (evaluate_gridsage, predict_probs,
                                 train_gridsage)


@pytest.fixture(scope="module")
def suite(tiny_graph_suite):
    return tiny_graph_suite


def _samples(graphs, dtype):
    """Materialise dataset samples under the given compute dtype."""
    with DtypeConfig(dtype):
        dataset = CongestionDataset(graphs, channels=1)
        return dataset.train_samples(), dataset.test_samples()


def _forward(model, sample):
    with no_grad():
        return predict_probs(model, sample)


# Model builders at a fixed seed; rebuilt under each DtypeConfig so the
# float32 model is the cast image of the float64 one (init draws in
# float64, then casts — see repro.nn.init).
_BUILDERS = {
    "lhnn": lambda s, rng: LHNN(LHNNConfig(hidden=8), rng),
    "mlp": lambda s, rng: MLPBaseline(in_features=s.features.shape[1],
                                      hidden=8, channels=1, rng=rng),
    "gridsage": lambda s, rng: GridSAGE(in_features=s.features.shape[1],
                                        hidden=8, channels=1, rng=rng),
    "unet": lambda s, rng: UNet(in_channels=s.image.shape[1],
                                out_channels=1, base_width=4, rng=rng),
    "pix2pix": lambda s, rng: Pix2Pix(in_channels=s.image.shape[1],
                                      out_channels=1, base_width=4, rng=rng),
}


class TestForwardParity:
    @pytest.mark.parametrize("family", sorted(_BUILDERS))
    def test_forward_outputs_match_across_dtypes(self, suite, family):
        build = _BUILDERS[family]
        probs = {}
        for dtype in (np.float64, np.float32):
            with DtypeConfig(dtype):
                train, _ = _samples(suite, dtype)
                sample = train[0]
                model = build(sample, np.random.default_rng(0))
                model.eval()
                probs[dtype] = np.asarray(_forward(model, sample),
                                          dtype=np.float64)
        # Sigmoid probabilities: float32 rounding through a few layers
        # stays well inside 1e-3 absolute.
        np.testing.assert_allclose(probs[np.float32], probs[np.float64],
                                   atol=2e-3)


_TRAINERS = {
    "lhnn": (lambda tr, cfg: train_lhnn(tr, cfg, LHNNConfig(hidden=8)),
             evaluate_lhnn),
    "mlp": (lambda tr, cfg: train_mlp(tr, cfg, hidden=8), evaluate_mlp),
    "gridsage": (lambda tr, cfg: train_gridsage(tr, cfg, hidden=8),
                 evaluate_gridsage),
    "unet": (lambda tr, cfg: train_unet(tr, cfg, base_width=4),
             evaluate_unet),
    "pix2pix": (lambda tr, cfg: train_pix2pix(tr, cfg, base_width=4),
                evaluate_pix2pix),
}


class TestTrainingParity:
    @pytest.mark.parametrize("family", sorted(_TRAINERS))
    def test_two_epoch_f1_within_noise(self, suite, family):
        train_fn, eval_fn = _TRAINERS[family]
        cfg = TrainConfig(epochs=2, seed=0)
        results = {}
        for dtype in (np.float64, np.float32):
            with DtypeConfig(dtype):
                train, test = _samples(suite, dtype)
                model = train_fn(train, cfg)
                results[dtype] = eval_fn(model, test)
        f1_64 = results[np.float64]["f1"]
        f1_32 = results[np.float32]["f1"]
        assert np.isfinite(f1_32) and np.isfinite(f1_64)
        # Two epochs on six tiny designs: identical seeds, so the only
        # divergence is float32 rounding along the trajectory.  Allow a
        # few F1 percentage points of accumulated drift.
        assert abs(f1_32 - f1_64) <= 5.0, results
        acc_64 = results[np.float64]["acc"]
        acc_32 = results[np.float32]["acc"]
        assert abs(acc_32 - acc_64) <= 5.0, results


def _fd_grad(loss_fn, x: np.ndarray, eps: float) -> np.ndarray:
    """Central finite differences of a scalar loss w.r.t. ``x``."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        hi = loss_fn()
        flat[i] = orig - eps
        lo = loss_fn()
        flat[i] = orig
        gflat[i] = (hi - lo) / (2.0 * eps)
    return grad


class TestFloat32GradChecks:
    """Finite-difference checks at float32-appropriate tolerances.

    Central differences at float32 are good to roughly cbrt(eps_f32)
    relative error, so eps is large (1e-2) and tolerances are loose
    compared to the float64 autograd property tests — the point is to
    catch dtype bugs (silent upcasts, wrong-dtype accumulation), not to
    re-prove the calculus.
    """

    EPS = 1e-2
    RTOL = 8e-2
    ATOL = 2e-3

    def _check(self, x32, forward):
        t = Tensor(x32, requires_grad=True)
        loss = forward(t)
        assert loss.dtype == np.float32
        loss.backward()
        analytic = np.asarray(t.grad, dtype=np.float64)
        fd = _fd_grad(lambda: float(forward(Tensor(x32)).item()),
                      x32, self.EPS)
        np.testing.assert_allclose(analytic, fd,
                                   rtol=self.RTOL, atol=self.ATOL)

    def test_linear_chain(self, ):
        rng = np.random.default_rng(1)
        x32 = (rng.standard_normal((4, 3)) + 0.5).astype(np.float32)
        w = Tensor(rng.standard_normal((3, 2)).astype(np.float32))

        def forward(t):
            return ((t @ w).tanh() * 0.5).sum()

        self._check(x32, forward)

    def test_sigmoid_bce_like(self):
        rng = np.random.default_rng(2)
        x32 = rng.standard_normal(12).astype(np.float32)
        target = (rng.random(12) > 0.5).astype(np.float32)

        def forward(t):
            prob = t.sigmoid().clip(1e-4, 1.0 - 1e-4)
            tt = Tensor(target)
            return -(tt * prob.log()
                     + (1.0 - tt) * (1.0 - prob).log()).mean()

        self._check(x32, forward)

    def test_spmm_chain(self):
        from repro.nn import SparseMatrix, spmm
        rng = np.random.default_rng(3)
        import scipy.sparse as sp
        op = SparseMatrix(sp.random(6, 6, density=0.5, random_state=0))
        x32 = rng.standard_normal((6, 2)).astype(np.float32)

        def forward(t):
            return spmm(op, t).tanh().sum()

        self._check(x32, forward)

    def test_conv2d(self):
        from repro.nn.conv import Conv2d
        rng = np.random.default_rng(4)
        with DtypeConfig(np.float32):
            conv = Conv2d(2, 2, 3, rng, padding=1)
        x32 = rng.standard_normal((1, 2, 5, 5)).astype(np.float32)

        def forward(t):
            return conv(t).tanh().mean()

        self._check(x32, forward)
