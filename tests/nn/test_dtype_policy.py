"""Dtype-policy tests: float32 stays float32 through the whole engine.

Covers the policy primitives (``set_default_dtype`` / ``DtypeConfig`` /
``as_tensor``), the dtype behaviour of initialisers, sparse operators and
optimizers, the cached conv lowering plans, and the autograd
buffer-reuse semantics the iterative backward relies on.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.nn import (Adam, DtypeConfig, Linear, Parameter, SGD,
                      SparseMatrix, Tensor, as_tensor, get_default_dtype,
                      set_default_dtype, spmm)
from repro.nn import init as init_mod
from repro.nn.conv import (Conv2d, _patch_indices, _scatter_plan, col2im,
                           im2col)
from repro.nn.layers import LayerNorm


@pytest.fixture
def rng():
    return np.random.default_rng(0)


@pytest.fixture(autouse=True)
def _restore_default_dtype():
    prev = get_default_dtype()
    yield
    set_default_dtype(prev)


class TestDefaultDtype:
    def test_default_is_float64(self):
        assert get_default_dtype() == np.float64

    def test_set_and_get(self):
        set_default_dtype(np.float32)
        assert get_default_dtype() == np.float32

    def test_string_accepted(self):
        set_default_dtype("float32")
        assert get_default_dtype() == np.float32

    def test_unsupported_rejected(self):
        with pytest.raises(ValueError):
            set_default_dtype(np.float16)
        with pytest.raises(ValueError):
            set_default_dtype(np.int64)

    def test_dtype_config_scopes(self):
        with DtypeConfig(np.float32):
            assert get_default_dtype() == np.float32
            with DtypeConfig(np.float64):
                assert get_default_dtype() == np.float64
            assert get_default_dtype() == np.float32
        assert get_default_dtype() == np.float64


class TestTensorDtype:
    def test_float32_payload_not_upcast(self):
        t = Tensor(np.zeros(3, dtype=np.float32))
        assert t.dtype == np.float32

    def test_as_tensor_preserves_float_dtype(self):
        assert as_tensor(np.zeros(2, dtype=np.float32)).dtype == np.float32
        assert as_tensor(np.zeros(2, dtype=np.float64)).dtype == np.float64

    def test_non_float_coerced_to_default(self):
        assert Tensor([1, 2, 3]).dtype == np.float64
        with DtypeConfig(np.float32):
            assert Tensor([1, 2, 3]).dtype == np.float32
            assert Tensor(np.arange(3)).dtype == np.float32

    def test_explicit_dtype_wins(self):
        t = Tensor(np.zeros(2, dtype=np.float32), dtype=np.float64)
        assert t.dtype == np.float64

    def test_ops_stay_float32(self):
        a = Tensor(np.ones(4, dtype=np.float32), requires_grad=True)
        out = ((a * 2.0 + 1.0) / 3.0).relu().sigmoid().sum()
        assert out.dtype == np.float32
        out.backward()
        assert a.grad.dtype == np.float32

    def test_where_scalar_branches_stay_float32(self):
        x = Tensor(np.ones(4, dtype=np.float32), requires_grad=True)
        cond = np.array([True, False, True, False])
        assert Tensor.where(cond, x, 0.0).dtype == np.float32
        assert Tensor.where(cond, 0.0, x).dtype == np.float32

    def test_matmul_scalar_chain_stays_float32(self):
        x = Tensor(np.ones((3, 3), dtype=np.float32), requires_grad=True)
        w = Tensor(np.ones((3, 2), dtype=np.float32), requires_grad=True)
        out = (x @ w).mean()
        assert out.dtype == np.float32
        out.backward()
        assert x.grad.dtype == np.float32
        assert w.grad.dtype == np.float32


class TestInitDtype:
    def test_initializers_follow_default(self, rng):
        with DtypeConfig(np.float32):
            assert init_mod.xavier_uniform((4, 4), rng).dtype == np.float32
            assert init_mod.kaiming_normal((4, 4), rng).dtype == np.float32
            assert init_mod.zeros(4).dtype == np.float32
            assert init_mod.ones(4).dtype == np.float32
            assert init_mod.normal((4,), rng).dtype == np.float32

    def test_same_seed_same_values_across_dtypes(self):
        draw64 = init_mod.xavier_uniform((8, 8), np.random.default_rng(5))
        with DtypeConfig(np.float32):
            draw32 = init_mod.xavier_uniform((8, 8),
                                             np.random.default_rng(5))
        np.testing.assert_allclose(draw32, draw64, atol=1e-7)

    def test_modules_build_in_default_dtype(self, rng):
        with DtypeConfig(np.float32):
            lin = Linear(4, 3, rng)
            norm = LayerNorm(3)
            conv = Conv2d(2, 3, 3, rng, padding=1)
        assert lin.weight.dtype == np.float32
        assert norm.gamma.dtype == np.float32
        assert conv.weight.dtype == np.float32

    def test_to_dtype_casts_params_and_buffers(self, rng):
        from repro.nn.conv import BatchNorm2d
        bn = BatchNorm2d(3)
        bn.to_dtype(np.float32)
        assert bn.gamma.dtype == np.float32
        assert bn.running_mean.dtype == np.float32
        lin = Linear(4, 3, rng).to_dtype(np.float32)
        assert lin.weight.dtype == np.float32
        assert lin.dtype() == np.float32


class TestSparseDtype:
    def test_transpose_returns_sparse_matrix(self):
        m = SparseMatrix(sp.random(5, 3, density=0.5, random_state=0))
        assert isinstance(m.T, SparseMatrix)
        assert m.T.shape == (3, 5)
        # Round trip is free and cached.
        assert m.T.T is m
        assert m.T is m.T

    def test_wrapping_a_sparse_matrix_unwraps(self):
        m = SparseMatrix(np.eye(3))
        again = SparseMatrix(m)
        assert again.mat is not None and again.shape == (3, 3)

    def test_matmul_operators(self):
        a = SparseMatrix(np.array([[1.0, 0.0], [1.0, 1.0]]))
        dense = a @ np.ones((2, 3))
        assert isinstance(dense, np.ndarray)
        prod = a @ a
        assert isinstance(prod, SparseMatrix)

    def test_as_dtype_memoised(self):
        m = SparseMatrix(np.eye(4))
        assert m.dtype == np.float64
        m32 = m.as_dtype(np.float32)
        assert m32.dtype == np.float32
        assert m.as_dtype(np.float32) is m32
        assert m.as_dtype(np.float64) is m

    def test_spmm_aligns_operator_dtype(self):
        a = SparseMatrix(np.eye(3))  # float64 operator
        x = Tensor(np.ones((3, 2), dtype=np.float32), requires_grad=True)
        out = spmm(a, x)
        assert out.dtype == np.float32
        out.sum().backward()
        assert x.grad.dtype == np.float32

    def test_non_float_matrix_uses_default(self):
        with DtypeConfig(np.float32):
            m = SparseMatrix(sp.csr_matrix(np.eye(3, dtype=np.int64)))
            assert m.dtype == np.float32

    def test_row_normalize_fused_matches_diag_product(self, rng):
        mat = sp.random(12, 7, density=0.4, random_state=2, format="csr")
        from repro.nn.sparse import row_normalize
        wrapped = SparseMatrix(mat)
        normed = row_normalize(wrapped)
        deg = np.asarray(mat.sum(axis=1)).reshape(-1)
        inv = np.where(deg > 0, 1.0 / np.maximum(deg, 1e-12), 0.0)
        reference = sp.diags(inv) @ mat
        np.testing.assert_allclose(normed.toarray(), reference.toarray(),
                                   atol=1e-12)


class TestConvLoweringCache:
    def test_patch_indices_cached_per_geometry(self):
        a = _patch_indices(3, 8, 8, 3, 3, 1, 1)
        b = _patch_indices(3, 8, 8, 3, 3, 1, 1)
        assert a[0] is b[0] and a[1] is b[1] and a[2] is b[2]
        c = _patch_indices(3, 8, 8, 3, 3, 2, 1)
        assert c[1] is not a[1]

    def test_scatter_plan_cached(self):
        p1 = _scatter_plan(2, 6, 6, 3, 3, 1, 1)
        p2 = _scatter_plan(2, 6, 6, 3, 3, 1, 1)
        assert p1[0] is p2[0]

    @pytest.mark.parametrize("stride,pad", [(1, 0), (1, 1), (2, 1)])
    def test_col2im_matches_add_at_reference(self, rng, stride, pad):
        n, c, h, w, k = 2, 3, 8, 8, 3
        cols = rng.standard_normal(
            (n, c * k * k,
             ((h + 2 * pad - k) // stride + 1)
             * ((w + 2 * pad - k) // stride + 1)))
        out = col2im(cols, (n, c, h, w), k, k, stride, pad)
        # Reference: the original np.add.at scatter.
        kk, ii, jj, _, _ = _patch_indices(c, h, w, k, k, stride, pad)
        x_pad = np.zeros((n, c, h + 2 * pad, w + 2 * pad))
        np.add.at(x_pad, (slice(None), kk, ii, jj), cols)
        expected = x_pad[:, :, pad:-pad, pad:-pad] if pad else x_pad
        np.testing.assert_allclose(out, expected, atol=1e-12)

    def test_col2im_roundtrips_im2col_gradient_dtype(self, rng):
        x = rng.standard_normal((1, 2, 6, 6)).astype(np.float32)
        cols = im2col(x, 3, 3, 1, 1)
        back = col2im(cols, x.shape, 3, 3, 1, 1)
        assert back.dtype == np.float32


class TestInPlaceOptimizers:
    """The fused out= kernels must match the textbook update rules."""

    def test_sgd_matches_reference(self, rng):
        data = rng.standard_normal(16)
        grad = rng.standard_normal(16)
        p = Parameter(data.copy())
        p.grad = grad.copy()
        opt = SGD([p], lr=0.05, momentum=0.9, weight_decay=0.01)
        for _ in range(3):
            opt.step()
        # Reference loop (allocating form).  step() consumes p.grad in
        # place when weight decay is on, so the reference carries the
        # same evolving gradient buffer.
        ref, vel = data.copy(), np.zeros_like(data)
        gbuf = grad.copy()
        for _ in range(3):
            gbuf = gbuf + 0.01 * ref
            vel = 0.9 * vel + gbuf
            ref = ref - 0.05 * vel
        np.testing.assert_allclose(p.data, ref, rtol=1e-12)

    def test_adam_matches_reference(self, rng):
        data = rng.standard_normal(32)
        p = Parameter(data.copy())
        opt = Adam([p], lr=0.01, betas=(0.9, 0.999), eps=1e-8,
                   weight_decay=0.02)
        ref = data.copy()
        m = np.zeros_like(ref)
        v = np.zeros_like(ref)
        for t in range(1, 6):
            g = 2.0 * p.data  # quadratic-loss gradient at current iterate
            gref = 2.0 * ref
            p.grad = g.copy()
            opt.step()
            m = 0.9 * m + 0.1 * gref
            v = 0.999 * v + 0.001 * gref * gref
            ref = ref - 0.01 * 0.02 * ref
            ref = ref - 0.01 * (m / (1 - 0.9 ** t)) / (
                np.sqrt(v / (1 - 0.999 ** t)) + 1e-8)
        np.testing.assert_allclose(p.data, ref, rtol=1e-10)

    def test_steps_do_not_allocate_after_warmup(self, rng):
        p = Parameter(rng.standard_normal(64))
        opt = Adam([p], lr=0.01)
        p.grad = rng.standard_normal(64)
        opt.step()
        buf_before = opt._scratch[0]
        m_before = opt._m[0]
        p.grad = rng.standard_normal(64)
        opt.step()
        assert opt._scratch[0] is buf_before
        assert opt._m[0] is m_before

    def test_float32_params_update_in_float32(self, rng):
        with DtypeConfig(np.float32):
            p = Parameter(init_mod.normal((8,), rng))
        p.grad = np.ones(8, dtype=np.float32)
        opt = Adam([p], lr=0.1)
        opt.step()
        assert p.data.dtype == np.float32
        assert opt._m[0].dtype == np.float32


class TestBackwardBufferReuse:
    def test_diamond_fanin_accumulates_correctly(self):
        x = Tensor(np.array([2.0, 3.0]), requires_grad=True)
        a = x * 2.0
        b = a * 3.0
        c = a * 4.0
        d = a * 5.0
        out = (b + c + d).sum()  # a receives three gradient contributions
        out.backward()
        np.testing.assert_allclose(x.grad, [24.0, 24.0])

    def test_repeated_operand_same_tensor(self):
        x = Tensor(np.array([1.5]), requires_grad=True)
        out = (x + x) * x  # d/dx (2x·x) = 4x
        out.backward()
        np.testing.assert_allclose(x.grad, [6.0])

    def test_incoming_gradient_buffer_not_mutated(self):
        x = Tensor(np.ones(3), requires_grad=True)
        y = x * 2.0
        seed = np.ones(3)
        y.backward(seed)
        # The caller's seed must not be written to by buffer reuse.
        np.testing.assert_allclose(seed, 1.0)
        np.testing.assert_allclose(x.grad, 2.0)

    def test_forward_data_not_corrupted_by_backward(self):
        x = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        y = x.reshape(2)        # backward returns a view-shaped gradient
        a = y * 1.0
        b = y * 1.0
        out = (a + b).sum()
        out.backward()
        np.testing.assert_allclose(x.grad, [2.0, 2.0])
        np.testing.assert_allclose(x.data, [1.0, 2.0])
