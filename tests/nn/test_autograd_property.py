"""Property-based gradient checks (hypothesis) for the autograd engine."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.nn import Tensor

SHAPES = st.tuples(st.integers(1, 4), st.integers(1, 4))


def finite_arrays(shape):
    return arrays(np.float64, shape,
                  elements=st.floats(-3.0, 3.0, allow_nan=False))


def numeric_grad(f, x, eps=1e-6):
    g = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    for _ in it:
        i = it.multi_index
        orig = x[i]
        x[i] = orig + eps
        fp = f()
        x[i] = orig - eps
        fm = f()
        x[i] = orig
        g[i] = (fp - fm) / (2 * eps)
    return g


@settings(max_examples=25, deadline=None)
@given(data=st.data(), shape=SHAPES)
def test_add_mul_chain_gradient(data, shape):
    a_val = data.draw(finite_arrays(shape))
    b_val = data.draw(finite_arrays(shape))
    a = Tensor(a_val.copy(), requires_grad=True)
    b = Tensor(b_val.copy(), requires_grad=True)
    ((a * b + a) * b).sum().backward()
    ng_a = numeric_grad(lambda: float(((a.data * b.data + a.data) * b.data).sum()),
                        a.data)
    assert np.allclose(a.grad, ng_a, atol=1e-4)


@settings(max_examples=25, deadline=None)
@given(data=st.data(), shape=SHAPES)
def test_tanh_sigmoid_composition_gradient(data, shape):
    x_val = data.draw(finite_arrays(shape))
    x = Tensor(x_val.copy(), requires_grad=True)
    x.tanh().sigmoid().sum().backward()
    ng = numeric_grad(
        lambda: float(Tensor(x.data).tanh().sigmoid().data.sum()), x.data)
    assert np.allclose(x.grad, ng, atol=1e-4)


@settings(max_examples=20, deadline=None)
@given(data=st.data(), n=st.integers(1, 4), k=st.integers(1, 4),
       m=st.integers(1, 4))
def test_matmul_gradient(data, n, k, m):
    a_val = data.draw(finite_arrays((n, k)))
    b_val = data.draw(finite_arrays((k, m)))
    a = Tensor(a_val.copy(), requires_grad=True)
    b = Tensor(b_val.copy(), requires_grad=True)
    (a @ b).sum().backward()
    ng_a = numeric_grad(lambda: float((a.data @ b.data).sum()), a.data)
    ng_b = numeric_grad(lambda: float((a.data @ b.data).sum()), b.data)
    assert np.allclose(a.grad, ng_a, atol=1e-4)
    assert np.allclose(b.grad, ng_b, atol=1e-4)


@settings(max_examples=25, deadline=None)
@given(data=st.data(), shape=SHAPES)
def test_sum_then_broadcast_consistency(data, shape):
    """sum(axis).backward distributes gradient uniformly along that axis."""
    x_val = data.draw(finite_arrays(shape))
    x = Tensor(x_val.copy(), requires_grad=True)
    x.sum(axis=0).sum().backward()
    assert np.allclose(x.grad, np.ones(shape))


@settings(max_examples=25, deadline=None)
@given(data=st.data(), shape=SHAPES)
def test_mean_gradient_scales(data, shape):
    x_val = data.draw(finite_arrays(shape))
    x = Tensor(x_val.copy(), requires_grad=True)
    x.mean().backward()
    assert np.allclose(x.grad, 1.0 / x.size)


@settings(max_examples=25, deadline=None)
@given(data=st.data(), shape=SHAPES)
def test_relu_gradient_is_mask(data, shape):
    x_val = data.draw(finite_arrays(shape))
    x = Tensor(x_val.copy(), requires_grad=True)
    x.relu().sum().backward()
    assert np.allclose(x.grad, (x.data > 0).astype(float))


@settings(max_examples=15, deadline=None)
@given(data=st.data(), shape=SHAPES)
def test_sigmoid_bounded_output(data, shape):
    x_val = data.draw(arrays(np.float64, shape,
                             elements=st.floats(-1e6, 1e6,
                                                allow_nan=False)))
    out = Tensor(x_val).sigmoid().data
    assert np.all(out >= 0.0) and np.all(out <= 1.0)
    assert np.isfinite(out).all()
