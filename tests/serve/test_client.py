"""Tests for client-side robustness: connect retry, timeouts, push demux."""

import io
import json
import socket as socketlib
import threading

import pytest

from repro.serve import ServeClient, ServeError
from repro.serve.client import _is_push


def free_port() -> int:
    with socketlib.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


class ScriptedReader:
    """A reader that replays canned lines, then EOF."""

    def __init__(self, lines):
        self._lines = [json.dumps(line) + "\n" for line in lines]

    def readline(self):
        return self._lines.pop(0) if self._lines else ""


class TestConnectRetry:
    def test_dead_server_fails_after_bounded_attempts(self, monkeypatch):
        sleeps = []
        monkeypatch.setattr("repro.serve.client.time.sleep", sleeps.append)
        port = free_port()  # nothing listens here
        with pytest.raises(ServeError, match="after 3 attempt"):
            ServeClient.connect(port, timeout=0.5, retries=2, backoff=0.1)
        assert sleeps == [0.1, 0.2]  # exponential backoff between tries

    def test_zero_retries_is_a_single_attempt(self, monkeypatch):
        sleeps = []
        monkeypatch.setattr("repro.serve.client.time.sleep", sleeps.append)
        with pytest.raises(ServeError, match="after 1 attempt"):
            ServeClient.connect(free_port(), timeout=0.5, retries=0)
        assert sleeps == []

    def test_connect_succeeds_on_a_later_attempt(self, monkeypatch):
        monkeypatch.setattr("repro.serve.client.time.sleep", lambda s: None)
        attempts = []
        real_create = socketlib.create_connection

        def flaky(address, timeout=None):
            attempts.append(address)
            if len(attempts) < 3:
                raise ConnectionRefusedError("not yet")
            return real_create(address, timeout=timeout)

        monkeypatch.setattr("repro.serve.client.socket.create_connection",
                            flaky)
        with socketlib.socket() as server:
            server.bind(("127.0.0.1", 0))
            server.listen(1)
            port = server.getsockname()[1]
            client = ServeClient.connect(port, timeout=5.0, retries=2)
            client.close()
        assert len(attempts) == 3


class TestReadTimeout:
    def test_read_timeout_becomes_serve_error(self):
        class StalledReader:
            def readline(self):
                raise TimeoutError("timed out")

        client = ServeClient(StalledReader(), io.StringIO())
        client._timeout = 0.5
        with pytest.raises(ServeError, match="timed out after 0.5s"):
            client.ping()

    def test_real_socket_read_timeout(self):
        # A server that accepts but never replies must not block forever.
        server = socketlib.socket()
        server.bind(("127.0.0.1", 0))
        server.listen(1)
        port = server.getsockname()[1]
        accepted = []
        thread = threading.Thread(
            target=lambda: accepted.append(server.accept()), daemon=True)
        thread.start()
        client = ServeClient.connect(port, timeout=0.3, retries=0)
        try:
            with pytest.raises(ServeError, match="timed out"):
                client.ping()
        finally:
            client.close()
            server.close()


class TestPushDemux:
    def test_is_push_recognises_results_and_failures(self):
        assert _is_push({"ok": True, "id": 1, "result": {}})
        assert _is_push({"ok": False, "id": 2, "status": "failed",
                         "error": "x"})
        assert not _is_push({"ok": True, "status": "queued"})
        assert not _is_push({"ok": True, "status": "flushed", "count": 0})
        assert not _is_push({"ok": True, "status": "pong"})

    def test_interleaved_pushes_are_stashed_until_flush(self):
        # v2 service behaviour: results pushed before the flush op.
        reader = ScriptedReader([
            {"ok": True, "id": 1, "status": "queued"},
            {"ok": True, "id": 1, "result": {"name": "early"}},  # pushed
            {"ok": True, "status": "pong"},
            {"ok": False, "id": 2, "status": "failed", "error": "boom"},
            {"ok": True, "status": "flushed", "count": 2},
        ])
        client = ServeClient(reader, io.StringIO())
        ack = client.predict(design="d")
        assert ack["status"] == "queued"
        assert client.ping()  # the pushed result did not eat the pong
        results = client.flush()
        # Both the early push and the per-request failure come back;
        # failures are returned, not raised — they must not hide the
        # other results.
        assert [r.get("id") for r in results] == [1, 2]
        assert results[0]["result"]["name"] == "early"
        assert not results[1]["ok"]

    def test_server_eof_raises(self):
        client = ServeClient(ScriptedReader([]), io.StringIO())
        with pytest.raises(ServeError, match="closed the connection"):
            client.ping()
