"""Tests for the asyncio multi-worker serving service.

Two layers:

* **Fake-supervisor units** — a scriptable in-process supervisor makes
  queueing semantics deterministic: backpressure replies, warm-lane
  priority, auto-flush deadlines, crash retry accounting, drain and
  reload barriers, admin scoping, protocol fuzz.
* **Real end-to-end** — a real :class:`~repro.serve.Supervisor` with
  worker processes behind the real TCP front end, driven by
  :class:`~repro.serve.AsyncServeClient`: the graceful-reload
  (zero-drop, new-checkpoint) and worker-kill-mid-batch acceptance
  paths.
"""

import asyncio
import contextlib
import json
import threading
import time

import numpy as np
import pytest

from repro.models.mlp_baseline import MLPBaseline
from repro.pipeline import PipelineConfig
from repro.placement import PlacementConfig
from repro.routing import RouterConfig
from repro.serve import (AsyncServeClient, ServeConfig, ServeService,
                         ServiceConfig, WorkerCrashed, save_model)

SPEC_A = {"name": "svc-a", "seed": 3, "num_movable": 60, "die_size": 32.0}
SPEC_B = {"name": "svc-b", "seed": 4, "num_movable": 60, "die_size": 32.0}
SPEC_C = {"name": "svc-c", "seed": 5, "num_movable": 60, "die_size": 32.0}


def small_pipeline():
    return PipelineConfig(grid_nx=8, grid_ny=8,
                          placement=PlacementConfig(outer_iterations=2),
                          router=RouterConfig(nx=8, ny=8, capacity_h=10.0,
                                              capacity_v=10.0,
                                              rrr_iterations=2))


class FakeSupervisor:
    """Scriptable stand-in satisfying the service's supervisor contract."""

    def __init__(self, num_workers=1):
        self.num_workers = num_workers
        self.restarts = 0
        self.checkpoint = "ckpt-0"
        self.batches = []        # payload lists, in dispatch order
        self.calls = []          # (worker_id, op), recorded pre-block
        self.block = None        # threading.Event gating every dispatch
        self.crash_next = 0      # raise WorkerCrashed for the next N batches
        self._lock = threading.Lock()

    def start(self):
        pass

    def stop(self):
        pass

    def dispatch(self, worker_id, op, payload=None):
        with self._lock:
            self.calls.append((worker_id, op))
        if self.block is not None:
            self.block.wait()
        with self._lock:
            if op == "predict_batch":
                self.batches.append(list(payload))
                if self.crash_next > 0:
                    self.crash_next -= 1
                    self.restarts += 1
                    raise WorkerCrashed(worker_id, "died (scripted)")
                return [{"ok": True, "id": p.get("id"),
                         "result": {"name": p.get("spec", {}).get("name"),
                                    "checkpoint": self.checkpoint}}
                        for p in payload]
            if op == "ping":
                return "pong"
            if op == "stats":
                return {"model_family": "fake"}
            raise AssertionError(f"unexpected op {op!r}")

    def reload(self, checkpoint):
        self.checkpoint = checkpoint
        return [{"status": "reloaded", "checkpoint": checkpoint}
                for _ in range(self.num_workers)]

    def stats(self):
        return [{"model_family": "fake"}
                for _ in range(self.num_workers)]


@contextlib.asynccontextmanager
async def running(service):
    """The service bound to an ephemeral port, torn down afterwards."""
    ready = asyncio.get_running_loop().create_future()
    task = asyncio.create_task(
        service.run("127.0.0.1", 0, ready_callback=ready.set_result))
    port = await asyncio.wait_for(asyncio.shield(ready), 120)
    try:
        yield port
    finally:
        service._stopped.set()
        await asyncio.wait_for(task, 120)


def fake_service(config=None, num_workers=1):
    config = config or ServiceConfig(workers=num_workers)
    config.workers = num_workers
    supervisor = FakeSupervisor(num_workers=num_workers)
    service = ServeService(checkpoint="ckpt-0", config=config,
                           supervisor=supervisor)
    return service, supervisor


class TestFakeSupervisorUnits:
    def test_predict_ack_and_pushed_result(self):
        async def main():
            service, supervisor = fake_service()
            async with running(service) as port:
                async with await AsyncServeClient.connect(port) as client:
                    ack, future = await client.predict(spec=SPEC_A,
                                                       wait=False)
                    assert ack["status"] == "queued"
                    assert ack["lane"] == "cold" and ack["worker"] == 0
                    reply = await asyncio.wait_for(future, 30)
                    assert reply["ok"]
                    assert reply["result"]["name"] == "svc-a"
                    stats = (await client.stats())["service"]
                    assert stats["admitted"] == 1
                    assert stats["delivered"] == 1
                    assert stats["queued"] == 0
        asyncio.run(main())

    def test_global_backpressure_rejects_with_overloaded(self):
        async def main():
            service, supervisor = fake_service(
                ServiceConfig(max_queue=2, max_queue_per_conn=64))
            supervisor.block = threading.Event()
            async with running(service) as port:
                async with await AsyncServeClient.connect(port) as client:
                    ack1, f1 = await client.predict(spec=SPEC_A, wait=False)
                    ack2, f2 = await client.predict(spec=SPEC_B, wait=False)
                    assert ack1["ok"] and ack2["ok"]
                    rejected = await client.predict(spec=SPEC_C)
                    assert not rejected["ok"]
                    assert rejected["status"] == "overloaded"
                    assert "backpressure" in rejected["error"]
                    supervisor.block.set()
                    await asyncio.wait_for(asyncio.gather(f1, f2), 30)
                    stats = (await client.stats())["service"]
                    assert stats["rejected"] == 1
                    assert stats["delivered"] == 2
        asyncio.run(main())

    def test_per_connection_backpressure(self):
        async def main():
            service, supervisor = fake_service(
                ServiceConfig(max_queue=256, max_queue_per_conn=1))
            supervisor.block = threading.Event()
            async with running(service) as port:
                async with await AsyncServeClient.connect(port) as client:
                    ack, future = await client.predict(spec=SPEC_A,
                                                       wait=False)
                    assert ack["ok"]
                    rejected = await client.predict(spec=SPEC_B)
                    assert not rejected["ok"]
                    assert rejected["status"] == "overloaded"
                    assert "connection queue" in rejected["error"]
                    # A second connection has its own budget.
                    async with await AsyncServeClient.connect(port) as other:
                        ack2, f2 = await other.predict(spec=SPEC_C,
                                                       wait=False)
                        assert ack2["ok"]
                        supervisor.block.set()
                        await asyncio.wait_for(
                            asyncio.gather(future, f2), 30)
        asyncio.run(main())

    def test_crash_is_retried_once_then_answered(self):
        async def main():
            service, supervisor = fake_service()
            supervisor.crash_next = 1
            async with running(service) as port:
                async with await AsyncServeClient.connect(port) as client:
                    reply = await asyncio.wait_for(
                        client.predict(spec=SPEC_A), 30)
                    assert reply["ok"]
                    stats = (await client.stats())["service"]
                    assert stats["retried"] == 1
                    assert stats["failed"] == 0
                    assert stats["worker_restarts"] == 1
            assert len(supervisor.batches) == 2  # crashed run + retry
        asyncio.run(main())

    def test_crash_past_retry_budget_fails_explicitly(self):
        async def main():
            service, supervisor = fake_service()
            supervisor.crash_next = 10  # outlives max_retries=1
            async with running(service) as port:
                async with await AsyncServeClient.connect(port) as client:
                    reply = await asyncio.wait_for(
                        client.predict(spec=SPEC_A), 30)
                    assert not reply["ok"]
                    assert reply["status"] == "failed"
                    assert "worker 0" in reply["error"]
                    assert "retr" in reply["error"]
                    stats = (await client.stats())["service"]
                    assert stats["failed"] == 1
                    assert stats["queued"] == 0  # answered, not hung
        asyncio.run(main())

    def test_warm_lane_has_priority_over_cold_backlog(self):
        async def main():
            service, supervisor = fake_service(
                ServiceConfig(max_batch=2, flush_deadline_ms=60000.0))
            async with running(service) as port:
                async with await AsyncServeClient.connect(port) as client:
                    # Teach the router that SPEC_A is warm.
                    await asyncio.wait_for(client.predict(spec=SPEC_A), 30)
                    supervisor.block = threading.Event()
                    # A cold request occupies the worker...
                    _, f_b = await client.predict(spec=SPEC_B, wait=False)
                    while len(supervisor.calls) < 2:  # its dispatch began
                        await asyncio.sleep(0.01)
                    # ...a second cold one queues behind it...
                    ack_c, f_c = await client.predict(spec=SPEC_C,
                                                      wait=False)
                    # ...and two warm arrivals make a due warm batch.
                    _, f_a1 = await client.predict(spec=SPEC_A, wait=False)
                    _, f_a2 = await client.predict(spec=SPEC_A, wait=False)
                    assert ack_c["lane"] == "cold"
                    supervisor.block.set()
                    await asyncio.wait_for(
                        asyncio.gather(f_b, f_c, f_a1, f_a2), 30)
            names = [[p.get("spec", {}).get("name") for p in batch]
                     for batch in supervisor.batches]
            # The due warm batch overtook the queued cold request.
            assert names == [["svc-a"], ["svc-b"], ["svc-a", "svc-a"],
                             ["svc-c"]]
        asyncio.run(main())

    def test_deadline_auto_flushes_a_partial_batch(self):
        async def main():
            service, supervisor = fake_service(
                ServiceConfig(max_batch=100, flush_deadline_ms=300.0))
            async with running(service) as port:
                async with await AsyncServeClient.connect(port) as client:
                    await asyncio.wait_for(client.predict(spec=SPEC_A), 30)
                    started = time.monotonic()
                    futures = [
                        (await client.predict(spec=SPEC_A,
                                              wait=False))[1]
                        for _ in range(3)]
                    # No explicit flush: the deadline must fire.
                    await asyncio.wait_for(asyncio.gather(*futures), 30)
                    elapsed = time.monotonic() - started
                    assert elapsed >= 0.15  # waited for the deadline...
            # ...and the three buffered requests shared one dispatch.
            assert [len(b) for b in supervisor.batches] == [1, 3]
        asyncio.run(main())

    def test_flush_forces_buffered_batches_immediately(self):
        async def main():
            service, supervisor = fake_service(
                ServiceConfig(max_batch=100, flush_deadline_ms=60000.0))
            async with running(service) as port:
                async with await AsyncServeClient.connect(port) as client:
                    await asyncio.wait_for(client.predict(spec=SPEC_A), 30)
                    futures = [
                        (await client.predict(spec=SPEC_A,
                                              wait=False))[1]
                        for _ in range(2)]
                    summary = await asyncio.wait_for(client.flush(), 30)
                    assert summary["status"] == "flushed"
                    assert summary["count"] == 2
                    for future in futures:  # resolved by the flush barrier
                        assert future.done() and future.result()["ok"]
        asyncio.run(main())

    def test_reload_swaps_checkpoint_and_forgets_warm_homes(self):
        async def main():
            service, supervisor = fake_service()
            async with running(service) as port:
                async with await AsyncServeClient.connect(port) as client:
                    await asyncio.wait_for(client.predict(spec=SPEC_A), 30)
                    warm_ack, wf = await client.predict(spec=SPEC_A,
                                                        wait=False)
                    assert warm_ack["lane"] == "warm"
                    await asyncio.wait_for(wf, 30)
                    reply = await asyncio.wait_for(
                        client.reload("ckpt-1"), 30)
                    assert reply["ok"] and reply["status"] == "reloaded"
                    assert reply["workers"] == [
                        {"status": "reloaded", "checkpoint": "ckpt-1"}]
                    # The reload dropped the warm homes: same key is cold.
                    ack, future = await client.predict(spec=SPEC_A,
                                                       wait=False)
                    assert ack["lane"] == "cold"
                    result = await asyncio.wait_for(future, 30)
                    assert result["result"]["checkpoint"] == "ckpt-1"
                    stats = (await client.stats())["service"]
                    assert stats["reloads"] == 1
                    assert stats["checkpoint"] == "ckpt-1"
        asyncio.run(main())

    def test_shutdown_drains_queued_requests_and_rejects_new(self):
        async def main():
            service, supervisor = fake_service(
                ServiceConfig(max_batch=100, flush_deadline_ms=60000.0))
            async with running(service) as port:
                client = await AsyncServeClient.connect(port)
                admin = await AsyncServeClient.connect(port)
                await asyncio.wait_for(client.predict(spec=SPEC_A), 30)
                supervisor.block = threading.Event()
                futures = [
                    (await client.predict(spec=SPEC_A, wait=False))[1]
                    for _ in range(2)]
                shutdown_task = asyncio.create_task(admin.shutdown())
                while not service._draining:
                    await asyncio.sleep(0.01)
                rejected = await client.predict(spec=SPEC_B)
                assert not rejected["ok"]
                assert rejected["status"] == "draining"
                supervisor.block.set()
                reply = await asyncio.wait_for(shutdown_task, 30)
                assert reply["ok"] and reply["drained"] == 2
                # Drained means *answered*, not dropped.
                replies = await asyncio.wait_for(
                    asyncio.gather(*futures), 30)
                assert all(r["ok"] for r in replies)
                await client.close()
                await admin.close()
        asyncio.run(main())

    def test_admin_token_gates_reload_and_shutdown(self):
        async def main():
            service, supervisor = fake_service(
                ServiceConfig(admin_token="sekrit"))
            async with running(service) as port:
                async with await AsyncServeClient.connect(port) as client:
                    denied = await client.reload("ckpt-1")
                    assert not denied["ok"] and "token" in denied["error"]
                    denied = await client.shutdown()
                    assert not denied["ok"] and "token" in denied["error"]
                    pong = await client.ping()  # still serving
                    assert pong["status"] == "pong"
                    allowed = await client.reload("ckpt-1", token="sekrit")
                    assert allowed["ok"]
                    reply = await client.shutdown(token="sekrit")
                    assert reply["ok"]
        asyncio.run(main())


class TestServiceProtocol:
    def test_identity_version_and_malformed_lines(self):
        async def main():
            service, supervisor = fake_service(
                ServiceConfig(max_line_bytes=1024))
            async with running(service) as port:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", port, limit=1024)

                async def exchange(line: bytes) -> dict:
                    writer.write(line + b"\n")
                    await writer.drain()
                    return json.loads(await asyncio.wait_for(
                        reader.readline(), 30))

                pong = await exchange(b'{"op": "ping"}')
                assert pong["server"]["mode"] == "service"
                assert pong["server"]["protocol_version"] == 2
                reply = await exchange(
                    b'{"op": "ping", "protocol_version": 99}')
                assert not reply["ok"]
                assert "newer than this server's" in reply["error"]
                reply = await exchange(b"not json")
                assert not reply["ok"] and "invalid JSON" in reply["error"]
                reply = await exchange(b"[1, 2]")
                assert not reply["ok"] and "JSON object" in reply["error"]
                reply = await exchange(b'{"op": "dance"}')
                assert not reply["ok"] and "unknown op" in reply["error"]
                reply = await exchange(
                    b'{"op": "predict", "spec": {"name": "x"}, '
                    b'"channel": "zz"}')
                assert not reply["ok"] and "channel" in reply["error"]
                reply = await exchange(b'{"op": "predict"}')
                assert not reply["ok"] and "needs 'design'" in reply["error"]
                # An oversized line gets an error and ends this session
                # (framing is unrecoverable) but not the server.
                big = b'{"op": "ping", "pad": "' + b"x" * 2048 + b'"}'
                reply = await exchange(big)
                assert not reply["ok"] and "exceeds" in reply["error"]
                assert await reader.readline() == b""  # session over
                writer.close()
                async with await AsyncServeClient.connect(port) as client:
                    assert (await client.ping())["status"] == "pong"
        asyncio.run(main())

    def test_mid_line_disconnect_leaves_service_serving(self):
        async def main():
            service, supervisor = fake_service()
            async with running(service) as port:
                for fragment in (b'{"op": "pred', b'{"op": "ping"}\n{"tr'):
                    _, writer = await asyncio.open_connection(
                        "127.0.0.1", port)
                    writer.write(fragment)
                    await writer.drain()
                    writer.close()
                async with await AsyncServeClient.connect(port) as client:
                    assert (await client.ping())["status"] == "pong"
                    reply = await asyncio.wait_for(
                        client.predict(spec=SPEC_A), 30)
                    assert reply["ok"]
        asyncio.run(main())

    def test_vanished_client_results_are_discarded_not_leaked(self):
        async def main():
            service, supervisor = fake_service()
            supervisor.block = threading.Event()
            async with running(service) as port:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", port)
                writer.write((json.dumps(
                    {"op": "predict", "id": 1, "spec": SPEC_A})
                    + "\n").encode())
                await writer.drain()
                await asyncio.wait_for(reader.readline(), 30)  # the ack
                writer.close()  # vanish before the result exists
                await asyncio.sleep(0.05)
                supervisor.block.set()
                async with await AsyncServeClient.connect(port) as client:
                    for _ in range(100):
                        stats = (await client.stats())["service"]
                        if stats["discarded"] or stats["delivered"]:
                            break
                        await asyncio.sleep(0.05)
                    assert stats["discarded"] == 1
                    assert stats["queued"] == 0
        asyncio.run(main())


@pytest.fixture(scope="module")
def checkpoints(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("service")
    first = save_model(MLPBaseline(hidden=8, rng=np.random.default_rng(0)),
                       str(tmp / "mlp-a.npz"))
    second = save_model(MLPBaseline(hidden=8, rng=np.random.default_rng(9)),
                        str(tmp / "mlp-b.npz"))
    return first, second


class TestEndToEnd:
    """Real worker processes behind the real TCP front end."""

    def test_reload_with_queued_requests_drops_nothing(self, checkpoints,
                                                       tmp_path):
        async def main():
            service = ServeService(
                checkpoints[0],
                serve=ServeConfig(pipeline=small_pipeline(),
                                  cache_dir=str(tmp_path / "cache")),
                config=ServiceConfig(workers=1, max_batch=100,
                                     flush_deadline_ms=60000.0))
            async with running(service) as port:
                async with await AsyncServeClient.connect(port) as client:
                    before = await asyncio.wait_for(
                        client.predict(spec=SPEC_A), 120)
                    assert before["ok"]
                    # Buffer warm requests the (long) deadline will not
                    # release, then reload underneath them.
                    futures = []
                    for _ in range(3):
                        ack, future = await client.predict(spec=SPEC_A,
                                                           wait=False)
                        assert ack["lane"] == "warm"
                        futures.append(future)
                    reply = await asyncio.wait_for(
                        client.reload(checkpoints[1]), 120)
                    assert reply["ok"]
                    await asyncio.wait_for(client.flush(), 120)
                    replies = [f.result() for f in futures]
                    assert all(r["ok"] for r in replies)
                    old = np.array(before["result"]["grids"]["h"])
                    for r in replies:  # answered by the NEW checkpoint
                        new = np.array(r["result"]["grids"]["h"])
                        assert not np.allclose(old, new)
                    stats = (await client.stats())["service"]
                    assert stats["admitted"] == 4
                    assert stats["delivered"] == 4
                    assert stats["discarded"] == 0
                    assert stats["checkpoint"] == checkpoints[1]
        asyncio.run(main())

    def test_worker_killed_mid_batch_is_restarted_and_retried(
            self, checkpoints, tmp_path):
        async def main():
            service = ServeService(
                checkpoints[0],
                serve=ServeConfig(pipeline=small_pipeline(),
                                  cache_dir=str(tmp_path / "cache")),
                config=ServiceConfig(workers=1))
            async with running(service) as port:
                async with await AsyncServeClient.connect(port) as client:
                    ack, future = await client.predict(spec=SPEC_A,
                                                       wait=False)
                    assert ack["ok"]
                    while service._inflight == 0:  # batch is dispatching
                        await asyncio.sleep(0.01)
                    service.supervisor._workers[0].process.kill()
                    # Never hangs: detected, restarted, retried, answered.
                    reply = await asyncio.wait_for(future, 120)
                    assert reply["ok"]
                    assert reply["result"]["name"] == "svc-a"
                    stats = (await client.stats())["service"]
                    assert stats["retried"] == 1
                    assert stats["worker_restarts"] == 1
                    assert stats["queued"] == 0
        asyncio.run(main())
