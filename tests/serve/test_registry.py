"""Tests for the model registry: typed metadata, deterministic restore."""

import numpy as np
import pytest

from repro.models.lhnn import LHNN, LHNNConfig
from repro.models.mlp_baseline import MLPBaseline
from repro.models.pix2pix import Pix2Pix
from repro.models.related import GridSAGE
from repro.models.unet import UNet
from repro.nn import CheckpointError, Tensor, no_grad, save_checkpoint
from repro.serve.registry import (build_model, family_of, get_family,
                                  list_families, model_spec,
                                  output_channels, restore_model,
                                  save_model)


@pytest.fixture
def rng():
    return np.random.default_rng(7)


def _forward(model, graph, rng):
    """A deterministic output fingerprint for any family."""
    with no_grad():
        if isinstance(model, LHNN):
            return model(graph).cls_prob.data
        if isinstance(model, GridSAGE):
            return model(graph).data
        if isinstance(model, MLPBaseline):
            return model(Tensor(graph.vc)).data
        image = Tensor(rng.normal(size=(1, 4, 16, 16)))
        if isinstance(model, Pix2Pix):
            return model.generator(image).data
        return model(image).data


def _factories(rng):
    return {
        "lhnn": lambda: LHNN(LHNNConfig(hidden=8, channels=2), rng),
        "mlp": lambda: MLPBaseline(hidden=8, channels=2, rng=rng),
        "gridsage": lambda: GridSAGE(hidden=8, channels=2, num_layers=2,
                                     rng=rng),
        "unet": lambda: UNet(base_width=4, out_channels=2, rng=rng),
        "pix2pix": lambda: Pix2Pix(base_width=4, out_channels=2, rng=rng),
    }


class TestRegistry:
    def test_all_five_families_registered(self):
        assert list_families() == ["gridsage", "lhnn", "mlp", "pix2pix",
                                   "unet"]

    @pytest.mark.parametrize("family", ["lhnn", "mlp", "gridsage", "unet",
                                        "pix2pix"])
    def test_spec_round_trip(self, family, rng):
        model = _factories(rng)[family]()
        spec = model_spec(model)
        assert spec["family"] == family
        rebuilt = build_model(spec)
        # Same architecture: identical parameter names and shapes.
        assert {k: v.shape for k, v in model.state_dict().items()} \
            == {k: v.shape for k, v in rebuilt.state_dict().items()}

    def test_family_of_unregistered_type(self, rng):
        from repro.nn import MLP
        with pytest.raises(CheckpointError, match="not a registered"):
            family_of(MLP([2, 2], rng))

    def test_get_family_unknown_name(self):
        with pytest.raises(CheckpointError, match="unknown model family"):
            get_family("transformer")

    def test_build_model_malformed_spec(self):
        with pytest.raises(CheckpointError, match="malformed"):
            build_model({"config": {}})

    def test_build_model_bad_config(self):
        with pytest.raises(CheckpointError, match="cannot build"):
            build_model({"family": "mlp", "config": {"bogus_knob": 3}})

    def test_output_channels(self, rng):
        assert output_channels(LHNN(LHNNConfig(hidden=8, channels=2),
                                    rng)) == 2
        assert output_channels(MLPBaseline(rng=rng)) == 1
        assert output_channels(UNet(out_channels=2, base_width=4,
                                    rng=rng)) == 2


class TestSaveRestore:
    @pytest.mark.parametrize("family", ["lhnn", "mlp", "gridsage", "unet",
                                        "pix2pix"])
    def test_restore_reproduces_forward(self, family, rng, small_graph,
                                        tmp_path):
        model = _factories(rng)[family]()
        model.eval()
        path = save_model(model, str(tmp_path / f"{family}.npz"),
                          metadata={"note": "t"})
        restored, metadata = restore_model(path)
        restored.eval()
        assert metadata["note"] == "t"
        assert metadata["model"]["family"] == family
        probe_rng = np.random.default_rng(0)
        expected = _forward(model, small_graph, np.random.default_rng(0))
        actual = _forward(restored, small_graph, probe_rng)
        assert np.allclose(expected, actual)

    def test_restore_without_probing(self, rng, tmp_path):
        # A duo-channel LHNN restores from the spec alone — the old
        # try/except channel probing is gone.
        model = LHNN(LHNNConfig(hidden=8, channels=2), rng)
        path = save_model(model, str(tmp_path / "duo.npz"))
        restored, _ = restore_model(path)
        assert restored.config.channels == 2
        assert restored.config.hidden == 8

    def test_legacy_checkpoint_with_channels(self, rng, tmp_path):
        # Pre-registry layout: plain save_checkpoint + 'channels' key.
        model = LHNN(LHNNConfig(channels=2), rng)
        path = save_checkpoint(model, str(tmp_path / "legacy.npz"),
                               metadata={"channels": 2})
        restored, _ = restore_model(path)
        assert restored.config.channels == 2

    def test_legacy_checkpoint_without_metadata(self, rng, tmp_path):
        model = MLPBaseline(rng=rng)
        path = save_checkpoint(model, str(tmp_path / "bare.npz"))
        with pytest.raises(CheckpointError, match="no architecture"):
            restore_model(path)

    def test_spec_mismatching_arrays_is_corruption(self, rng, tmp_path):
        # Metadata promises hidden=16 but the arrays are hidden=8: a
        # clear CheckpointError, not a silent retry.
        model = LHNN(LHNNConfig(hidden=8), rng)
        spec = {"family": "lhnn", "config": {"hidden": 16}}
        path = save_checkpoint(model, str(tmp_path / "bad.npz"),
                               metadata={"model": spec})
        with pytest.raises(CheckpointError):
            restore_model(path)
