"""Chaos suite for serving: crash loops, breakers, mid-reload kills.

Deterministic faults from :mod:`repro.testing.faults` ride into spawned
worker processes via the ``REPRO_FAULTS`` environment variable (set
before ``Process.start()``, inherited by the child).  Marked ``chaos``
and excluded from tier-1; the nightly CI job runs ``-m chaos``.
"""

import asyncio
import contextlib

import numpy as np
import pytest

from repro.models.mlp_baseline import MLPBaseline
from repro.pipeline import PipelineConfig
from repro.placement import PlacementConfig
from repro.routing import RouterConfig
from repro.serve import (AsyncServeClient, ServeConfig, ServeService,
                         ServiceConfig, Supervisor, WorkerCrashed,
                         WorkerSpec, save_model)
from repro.testing import FaultInjector, FaultRule, clear_faults
from repro.testing.faults import FAULTS_ENV

pytestmark = pytest.mark.chaos


@contextlib.asynccontextmanager
async def running(service):
    """The service bound to an ephemeral port, torn down afterwards."""
    ready = asyncio.get_running_loop().create_future()
    task = asyncio.create_task(
        service.run("127.0.0.1", 0, ready_callback=ready.set_result))
    port = await asyncio.wait_for(asyncio.shield(ready), 120)
    try:
        yield port
    finally:
        service._stopped.set()
        await asyncio.wait_for(task, 120)

SPEC_A = {"name": "chaos-a", "seed": 3, "num_movable": 60, "die_size": 32.0}


@pytest.fixture(autouse=True)
def _isolated_faults(monkeypatch):
    monkeypatch.delenv(FAULTS_ENV, raising=False)
    clear_faults()
    yield
    clear_faults()


def small_pipeline():
    return PipelineConfig(grid_nx=8, grid_ny=8,
                          placement=PlacementConfig(outer_iterations=2),
                          router=RouterConfig(nx=8, ny=8, capacity_h=10.0,
                                              capacity_v=10.0,
                                              rrr_iterations=2))


def eio_forever_plan() -> str:
    """Every checkpoint read in a (future) worker fails past all retries."""
    return FaultInjector([FaultRule(point="checkpoint.read", action="eio",
                                    count=-1)]).to_env()


def kill_on_reload_plan() -> str:
    """SIGKILL on the 3rd checkpoint read: boot restore survives (hits
    1-2), the next in-process reload dies mid-restore (hit 3)."""
    return FaultInjector([FaultRule(point="checkpoint.read", action="kill",
                                    nth=3)]).to_env()


@pytest.fixture(scope="module")
def checkpoints(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("chaos")
    first = save_model(MLPBaseline(hidden=8, rng=np.random.default_rng(0)),
                       str(tmp / "mlp-a.npz"))
    second = save_model(MLPBaseline(hidden=8, rng=np.random.default_rng(9)),
                        str(tmp / "mlp-b.npz"))
    return first, second


@pytest.fixture()
def spec(checkpoints, tmp_path):
    return WorkerSpec(checkpoint=checkpoints[0],
                      serve=ServeConfig(pipeline=small_pipeline(),
                                        cache_dir=str(tmp_path / "cache")))


class TestCrashLoopBreaker:
    def test_breaker_opens_after_repeated_boot_deaths_and_reload_revives(
            self, spec, checkpoints, monkeypatch):
        with Supervisor(spec, num_workers=1, job_timeout_s=30.0,
                        restart_backoff_s=0.01, max_restarts=2,
                        restart_window_s=60.0) as sup:
            assert sup.dispatch(0, "ping") == "pong"

            # From now on every *fresh* worker dies restoring its model.
            monkeypatch.setenv(FAULTS_ENV, eio_forever_plan())
            sup._workers[0].process.kill()

            # Crash -> restart -> boot-dead -> crash ... deterministically
            # converges to an open breaker instead of a fork bomb.
            reasons = []
            for _ in range(4):
                with pytest.raises(WorkerCrashed) as info:
                    sup.dispatch(0, "ping")
                reasons.append(info.value.reason)
                if "circuit breaker open" in info.value.reason:
                    break
            assert any("circuit breaker open" in r for r in reasons)
            assert sup.degraded
            assert 0 in sup.broken_workers()
            # Jobs fail *immediately* now: no process was respawned.
            with pytest.raises(WorkerCrashed, match="circuit breaker"):
                sup.dispatch(0, "ping")
            stats = sup.stats()
            assert stats[0]["broken"]
            assert "circuit breaker" in stats[0]["error"]

            # Recovery path: reload with a good checkpoint (and a clean
            # environment) revives the broken worker.
            monkeypatch.delenv(FAULTS_ENV)
            acks = sup.reload(checkpoints[1])
            assert acks == [{"status": "revived",
                             "checkpoint": checkpoints[1]}]
            assert not sup.degraded
            assert sup.broken_workers() == {}
            assert sup.dispatch(0, "ping") == "pong"
            assert sup.dispatch(0, "stats")["model_family"] == "mlp"


class TestKillMidReload:
    def test_worker_killed_mid_reload_comes_back_on_new_checkpoint(
            self, spec, checkpoints, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, kill_on_reload_plan())
        with Supervisor(spec, num_workers=1, job_timeout_s=60.0,
                        restart_backoff_s=0.01) as sup:
            before = sup.dispatch(0, "predict_batch",
                                  [{"id": 1, "spec": SPEC_A}])
            assert before[0]["ok"]

            # The reload's restore is the 3rd checkpoint read: SIGKILL
            # lands inside the worker mid-reload.  The supervisor must
            # detect it and bring a fresh worker up on the NEW spec.
            acks = sup.reload(checkpoints[1])
            assert acks == [{"status": "restarted",
                             "checkpoint": checkpoints[1]}]
            assert sup.restarts == 1
            assert sup.spec.checkpoint == checkpoints[1]
            assert sup.alive() == [True]

            after = sup.dispatch(0, "predict_batch",
                                 [{"id": 1, "spec": SPEC_A}])
            assert after[0]["ok"]
            old = np.array(before[0]["result"]["grids"]["h"])
            new = np.array(after[0]["result"]["grids"]["h"])
            assert not np.allclose(old, new)  # really the new weights


class TestServiceNeverDropsRequests:
    def test_requests_fail_explicitly_and_service_recovers(
            self, spec, checkpoints, monkeypatch):
        """Kill + boot-EIO: every request is answered, never dropped,
        the pool converges to circuit-broken, and reload heals it."""
        supervisor = Supervisor(spec, num_workers=1, job_timeout_s=30.0,
                                restart_backoff_s=0.01, max_restarts=2,
                                restart_window_s=60.0)
        service = ServeService(checkpoint=checkpoints[0],
                               config=ServiceConfig(workers=1),
                               supervisor=supervisor)

        async def main():
            async with running(service) as port:
                async with await AsyncServeClient.connect(port) as client:
                    healthy = await asyncio.wait_for(
                        client.predict(spec=SPEC_A), 120)
                    assert healthy["ok"]

                    # Poison future boots, then kill the worker: the
                    # next request finds a dead process, is retried
                    # once on the (dead-on-arrival) replacement, and is
                    # answered as an explicit failure — never dropped.
                    monkeypatch.setenv(FAULTS_ENV, eio_forever_plan())
                    supervisor._workers[0].process.kill()
                    reply = await asyncio.wait_for(
                        client.predict(spec=SPEC_A), 120)
                    assert not reply["ok"]
                    assert reply["status"] == "failed"
                    assert "worker 0" in reply["error"]
                    assert "retr" in reply["error"]

                    # Keep poking until the breaker is open: each reply
                    # still arrives (failed), nothing hangs or drops.
                    for _ in range(3):
                        stats = await client.stats()
                        if stats["service"]["degraded"]:
                            break
                        reply = await asyncio.wait_for(
                            client.predict(spec=SPEC_A), 120)
                        assert not reply["ok"]
                        assert reply["status"] == "failed"
                    stats = await client.stats(workers=True)
                    assert stats["service"]["degraded"]
                    assert stats["service"]["queued"] == 0  # all answered
                    assert stats["workers"][0]["broken"]

                    # Heal: clean environment + reload a good checkpoint.
                    monkeypatch.delenv(FAULTS_ENV)
                    reply = await asyncio.wait_for(
                        client.reload(checkpoints[1]), 120)
                    assert reply["ok"]
                    assert reply["workers"] == [{
                        "status": "revived", "checkpoint": checkpoints[1]}]
                    served = await asyncio.wait_for(
                        client.predict(spec=SPEC_A), 120)
                    assert served["ok"]
                    stats = await client.stats()
                    assert not stats["service"]["degraded"]

        asyncio.run(main())
