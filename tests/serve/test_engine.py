"""Tests for the micro-batching inference engine and its caches."""

import numpy as np
import pytest

from repro.circuit import DesignSpec, generate_design
from repro.models.lhnn import LHNN, LHNNConfig
from repro.models.mlp_baseline import MLPBaseline
from repro.pipeline import PipelineConfig
from repro.pipeline.stages import STAGE_CALLS, reset_stage_calls
from repro.placement import PlacementConfig
from repro.routing import RouterConfig
from repro.serve import (InferenceEngine, PredictRequest, SampleCache,
                         ServeConfig)


@pytest.fixture(autouse=True)
def isolated_cache(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))


@pytest.fixture(scope="module")
def serve_designs():
    return [generate_design(DesignSpec(name=f"serve{i}", seed=40 + i,
                                       num_movable=120, die_size=32.0))
            for i in range(3)]


def _fast_pipeline() -> PipelineConfig:
    return PipelineConfig(grid_nx=16, grid_ny=16,
                          placement=PlacementConfig(outer_iterations=2),
                          router=RouterConfig(nx=16, ny=16,
                                              rrr_iterations=2))


def _engine(channels: int = 2, **kwargs) -> InferenceEngine:
    model = LHNN(LHNNConfig(hidden=8, channels=channels),
                 np.random.default_rng(0))
    return InferenceEngine(model, ServeConfig(pipeline=_fast_pipeline(),
                                              **kwargs))


class TestMicroBatching:
    def test_batched_matches_per_design(self, serve_designs):
        engine = _engine()
        batched = engine.predict_many(
            [PredictRequest(design=d, channel="both")
             for d in serve_designs])
        assert [r.batch_members for r in batched] == [3, 3, 3]
        for design, result in zip(serve_designs, batched):
            single = _engine().predict(
                PredictRequest(design=design, channel="both"))
            assert single.batch_members == 1
            for channel in ("h", "v"):
                assert np.allclose(result.grids[channel],
                                   single.grids[channel])

    def test_results_in_submission_order(self, serve_designs):
        engine = _engine()
        for i, design in enumerate(serve_designs):
            engine.submit(PredictRequest(design=design, request_id=i))
        results = engine.flush()
        assert [r.request_id for r in results] == [0, 1, 2]
        assert [r.name for r in results] == [d.name for d in serve_designs]

    def test_max_batch_bounds_forward_passes(self, serve_designs):
        engine = _engine(max_batch=2)
        results = engine.predict_many(list(serve_designs))
        assert sorted(r.batch_members for r in results) == [1, 2, 2]
        assert engine.stats()["forward_passes"] == 2

    def test_flush_empty_queue(self):
        assert _engine().flush() == []

    def test_truth_maps_present_for_pipeline_designs(self, serve_designs):
        result = _engine().predict(serve_designs[0])
        assert result.truth is not None
        assert result.truth["h"].shape == result.grids["h"].shape
        assert set(np.unique(result.truth["h"])) <= {0.0, 1.0}


class TestWarmCache:
    def test_warm_request_does_zero_stage_work(self, serve_designs):
        engine = _engine()
        reset_stage_calls()
        cold = engine.predict(serve_designs[0])
        assert not cold.cached
        assert STAGE_CALLS["place"] == 1 and STAGE_CALLS["route"] == 1
        reset_stage_calls()
        warm = engine.predict(serve_designs[0])
        assert warm.cached
        assert sum(STAGE_CALLS.values()) == 0
        assert np.allclose(cold.grids["h"], warm.grids["h"])

    def test_collation_memo_survives_sample_eviction(self, serve_designs):
        # The composition memo is keyed by content-addressed graph keys,
        # so it stays correct even when the SampleCache thrashes and the
        # original sample objects are gone (id()s may be recycled).
        engine = _engine(sample_cache=1)
        expected = {d.name: _engine().predict(
            PredictRequest(design=d, channel="both")).grids
            for d in serve_designs}
        for _ in range(3):
            results = engine.predict_many(
                [PredictRequest(design=d, channel="both")
                 for d in serve_designs])
            for result in results:
                assert np.allclose(result.grids["h"],
                                   expected[result.name]["h"])
                assert np.allclose(result.grids["v"],
                                   expected[result.name]["v"])
        assert engine.stats()["batch_cache"]["hits"] >= 1

    def test_discard_pending(self, serve_designs):
        engine = _engine()
        engine.submit(PredictRequest(design=serve_designs[0]))
        engine.submit(PredictRequest(design=serve_designs[1]))
        assert engine.discard_pending() == 2
        assert engine.pending == 0
        assert engine.flush() == []

    def test_disk_cache_spans_engines(self, serve_designs):
        # A second engine has a cold SampleCache but hits the staged
        # on-disk pipeline cache: no placement/routing re-runs.
        _engine().predict(serve_designs[1])
        reset_stage_calls()
        result = _engine().predict(serve_designs[1])
        assert not result.cached  # in-memory tier was cold...
        assert sum(STAGE_CALLS.values()) == 0  # ...but no stage re-ran

    def test_lru_eviction(self):
        cache = SampleCache(capacity=2)
        cache.put("a", "sa")
        cache.put("b", "sb")
        assert cache.get("a") == "sa"  # refreshes a
        cache.put("c", "sc")  # evicts b
        assert cache.get("b") is None
        assert cache.get("a") == "sa" and cache.get("c") == "sc"
        assert cache.stats()["entries"] == 2

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            SampleCache(capacity=0)


class TestRequestValidation:
    def test_needs_exactly_one_payload(self, serve_designs, small_graph):
        engine = _engine()
        with pytest.raises(ValueError, match="exactly one"):
            engine.submit(PredictRequest())
        with pytest.raises(ValueError, match="exactly one"):
            engine.submit(PredictRequest(design=serve_designs[0],
                                         graph=small_graph))
        assert engine.pending == 0

    def test_uni_channel_rejects_v(self, serve_designs):
        engine = _engine(channels=1)
        with pytest.raises(ValueError, match="duo-channel"):
            engine.submit(PredictRequest(design=serve_designs[0],
                                         channel="v"))

    def test_uni_channel_both_degrades_to_h(self, serve_designs):
        result = _engine(channels=1).predict(
            PredictRequest(design=serve_designs[0], channel="both"))
        assert sorted(result.grids) == ["h"]

    def test_unknown_channel(self, serve_designs):
        with pytest.raises(ValueError, match="unknown channel"):
            _engine().submit(PredictRequest(design=serve_designs[0],
                                            channel="x"))

    def test_predict_refuses_shared_queue(self, serve_designs):
        engine = _engine()
        engine.submit(PredictRequest(design=serve_designs[0]))
        with pytest.raises(RuntimeError, match="non-empty queue"):
            engine.predict(serve_designs[1])


class TestPreparedGraphRequests:
    def test_prepared_graph_bypasses_pipeline(self, small_graph):
        engine = _engine(channels=1)
        reset_stage_calls()
        result = engine.predict(PredictRequest(graph=small_graph))
        assert sum(STAGE_CALLS.values()) == 0
        assert not result.cached
        assert result.grids["h"].shape == (small_graph.nx, small_graph.ny)

    def test_mlp_family_serves_too(self, small_graph):
        model = MLPBaseline(hidden=8, rng=np.random.default_rng(1))
        engine = InferenceEngine(model,
                                 ServeConfig(pipeline=_fast_pipeline()))
        result = engine.predict(PredictRequest(graph=small_graph))
        assert engine.family == "mlp"
        assert np.all((result.grids["h"] >= 0) & (result.grids["h"] <= 1))


class TestConvFamiliesServePerDesign:
    def test_unet_never_image_batched(self, serve_designs):
        # A conv forward over the collated side-by-side image would read
        # across the die seam; the engine must therefore answer CNN
        # requests one forward pass each, and batched submission must
        # exactly match per-request prediction.
        from repro.models.unet import UNet
        model = UNet(base_width=4, rng=np.random.default_rng(2))
        engine = InferenceEngine(model,
                                 ServeConfig(pipeline=_fast_pipeline()))
        batched = engine.predict_many(list(serve_designs))
        assert all(r.batch_members == 1 for r in batched)
        for design, result in zip(serve_designs, batched):
            single = engine.predict(PredictRequest(design=design))
            assert np.allclose(result.grids["h"], single.grids["h"])


class TestPredictManyAtomicity:
    def test_invalid_request_rolls_back_the_batch(self, serve_designs):
        engine = _engine(channels=1)
        good = [PredictRequest(design=d) for d in serve_designs[:2]]
        bad = PredictRequest(design=serve_designs[2], channel="v")
        with pytest.raises(ValueError, match="duo-channel"):
            engine.predict_many([*good, bad])
        assert engine.pending == 0
        # A clean retry answers exactly the retried requests.
        results = engine.predict_many(good)
        assert [r.name for r in results] == [d.name for d in serve_designs[:2]]


class TestStats:
    def test_counters(self, serve_designs):
        engine = _engine()
        engine.predict_many(list(serve_designs))
        engine.predict_many(list(serve_designs))
        stats = engine.stats()
        assert stats["requests"] == 6
        assert stats["designs_prepared"] == 3
        assert stats["sample_cache"]["hits"] == 3
        assert stats["model_family"] == "lhnn"
        assert stats["pending"] == 0
