"""Tests for worker-process supervision: dispatch, crash, watchdog, reload.

These spawn real worker processes (``spawn`` start method, same as
production) — kept cheap with a tiny MLP checkpoint, a small pipeline
and a shared per-module supervisor where the test doesn't mutate pool
state.
"""

import numpy as np
import pytest

from repro.models.mlp_baseline import MLPBaseline
from repro.pipeline import PipelineConfig
from repro.placement import PlacementConfig
from repro.routing import RouterConfig
from repro.serve import (ServeConfig, Supervisor, WorkerCrashed,
                         WorkerError, WorkerSpec, save_model)

SPEC_A = {"name": "sup-a", "seed": 3, "num_movable": 60, "die_size": 32.0}
SPEC_B = {"name": "sup-b", "seed": 4, "num_movable": 60, "die_size": 32.0}


def small_pipeline():
    return PipelineConfig(grid_nx=8, grid_ny=8,
                          placement=PlacementConfig(outer_iterations=2),
                          router=RouterConfig(nx=8, ny=8, capacity_h=10.0,
                                              capacity_v=10.0,
                                              rrr_iterations=2))


@pytest.fixture(scope="module")
def checkpoints(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("supervisor")
    first = save_model(MLPBaseline(hidden=8, rng=np.random.default_rng(0)),
                       str(tmp / "mlp-a.npz"))
    second = save_model(MLPBaseline(hidden=8, rng=np.random.default_rng(9)),
                        str(tmp / "mlp-b.npz"))
    return first, second


@pytest.fixture(scope="module")
def spec(checkpoints, tmp_path_factory):
    cache = tmp_path_factory.mktemp("supervisor-cache")
    return WorkerSpec(checkpoint=checkpoints[0],
                      serve=ServeConfig(pipeline=small_pipeline(),
                                        cache_dir=str(cache)))


@pytest.fixture(scope="module")
def supervisor(spec):
    """One shared single-worker supervisor for non-destructive tests."""
    with Supervisor(spec, num_workers=1) as sup:
        yield sup


class TestDispatch:
    def test_ping(self, supervisor):
        assert supervisor.dispatch(0, "ping") == "pong"

    def test_predict_batch_order_and_per_request_errors(self, supervisor):
        replies = supervisor.dispatch(0, "predict_batch", [
            {"id": 1, "spec": SPEC_A},
            {"id": 2},  # references nothing: per-request failure
            {"id": 3, "spec": SPEC_B},
        ])
        assert [r["id"] for r in replies] == [1, 2, 3]
        assert replies[0]["ok"] and replies[2]["ok"]
        assert replies[0]["result"]["name"] == "sup-a"
        assert not replies[1]["ok"]
        assert replies[1]["status"] == "failed"
        assert "needs 'design'" in replies[1]["error"]
        # The two valid requests shared one micro-batched flush.
        assert replies[0]["result"]["batch_members"] == 2

    def test_stats(self, supervisor):
        stats = supervisor.dispatch(0, "stats")
        assert stats["model_family"] == "mlp"

    def test_unknown_op_is_worker_error_not_crash(self, supervisor):
        with pytest.raises(WorkerError, match="unknown worker op"):
            supervisor.dispatch(0, "dance")
        assert supervisor.dispatch(0, "ping") == "pong"
        assert supervisor.restarts == 0

    def test_dispatch_before_start(self, spec):
        with pytest.raises(RuntimeError, match="before start"):
            Supervisor(spec, num_workers=1).dispatch(0, "ping")


class TestCrashRecovery:
    def test_killed_worker_is_detected_and_restarted(self, spec):
        with Supervisor(spec, num_workers=1) as sup:
            assert sup.dispatch(0, "ping") == "pong"
            sup._workers[0].process.kill()
            with pytest.raises(WorkerCrashed, match="worker 0"):
                sup.dispatch(0, "ping")
            # By the time WorkerCrashed propagated, the replacement is
            # already up — retrying immediately works.
            assert sup.restarts == 1
            assert sup.alive() == [True]
            assert sup.dispatch(0, "ping") == "pong"

    def test_hung_worker_trips_watchdog(self, spec):
        with Supervisor(spec, num_workers=1) as sup:
            # First ping uses the default watchdog: worker boot time
            # (model restore) legitimately counts against the first job.
            assert sup.dispatch(0, "ping") == "pong"
            with pytest.raises(WorkerCrashed, match="hung past"):
                sup.dispatch(0, "_sleep", 30.0, timeout=0.5)
            assert sup.restarts == 1
            assert sup.dispatch(0, "ping") == "pong"


class TestReload:
    def test_reload_swaps_model_weights(self, checkpoints, spec):
        with Supervisor(spec, num_workers=1) as sup:
            before = sup.dispatch(0, "predict_batch",
                                  [{"id": 1, "spec": SPEC_A}])
            acks = sup.reload(checkpoints[1])
            assert acks == [{"status": "reloaded",
                             "checkpoint": checkpoints[1]}]
            assert sup.spec.checkpoint == checkpoints[1]
            after = sup.dispatch(0, "predict_batch",
                                 [{"id": 1, "spec": SPEC_A}])
            old = np.array(before[0]["result"]["grids"]["h"])
            new = np.array(after[0]["result"]["grids"]["h"])
            # Same design, different weights: the answer must change.
            assert not np.allclose(old, new)
            assert sup.restarts == 0


class TestLifecycle:
    def test_stop_terminates_processes(self, spec):
        sup = Supervisor(spec, num_workers=2)
        sup.start()
        processes = [h.process for h in sup._workers]
        assert sup.alive() == [True, True]
        sup.stop()
        assert all(not p.is_alive() for p in processes)
        assert sup.alive() == [False, False]
