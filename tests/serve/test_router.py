"""Tests for the sticky two-lane request router."""

import pytest

from repro.serve import Route, Router, routing_key


class TestRoutingKey:
    def test_spec_key_is_order_independent(self):
        a = routing_key({"spec": {"name": "x", "seed": 1}})
        b = routing_key({"spec": {"seed": 1, "name": "x"}})
        assert a == b
        assert a.startswith("spec:")

    def test_different_specs_different_keys(self):
        a = routing_key({"spec": {"name": "x", "seed": 1}})
        b = routing_key({"spec": {"name": "x", "seed": 2}})
        assert a != b

    def test_design_key_includes_suite(self):
        key = routing_key({"design": "superblue5", "suite": "superblue"})
        assert key == "design:superblue/superblue5"
        other = routing_key({"design": "superblue5", "suite": "other"})
        assert key != other

    def test_design_key_uses_default_suite(self):
        key = routing_key({"design": "d", "_default_suite": "superblue"})
        assert key == "design:superblue/d"

    def test_spec_wins_over_design(self):
        # Same precedence as DesignResolver.resolve.
        key = routing_key({"spec": {"name": "x"}, "design": "d"})
        assert key.startswith("spec:")

    def test_missing_reference_raises(self):
        with pytest.raises(ValueError, match="needs 'design'"):
            routing_key({})
        with pytest.raises(ValueError, match="needs 'design'"):
            routing_key({"design": ""})

    def test_non_object_spec_raises(self):
        with pytest.raises(ValueError, match="must be an object"):
            routing_key({"spec": [1, 2]})


class TestRouter:
    def test_first_seen_is_cold_round_robin(self):
        router = Router(num_workers=3)
        routes = [router.route({"design": f"d{i}"}) for i in range(6)]
        assert [r.lane for r in routes] == ["cold"] * 6
        assert [r.worker for r in routes] == [0, 1, 2, 0, 1, 2]

    def test_repeat_is_warm_and_sticky(self):
        router = Router(num_workers=4)
        first = router.route({"design": "a"})
        router.route({"design": "b"})  # advances the cursor
        again = router.route({"design": "a"})
        assert first.lane == "cold" and again.lane == "warm"
        assert again.worker == first.worker
        assert again.key == first.key

    def test_forget_makes_keys_cold_again(self):
        router = Router(num_workers=2)
        router.route({"design": "a"})
        assert router.route({"design": "a"}).lane == "warm"
        router.forget()
        assert router.route({"design": "a"}).lane == "cold"

    def test_stats_counters(self):
        router = Router(num_workers=2)
        router.route({"design": "a"})
        router.route({"design": "a"})
        router.route({"design": "b"})
        stats = router.stats()
        assert stats == {"workers": 2, "known_keys": 2,
                         "warm_routed": 1, "cold_routed": 2}

    def test_invalid_payload_propagates(self):
        router = Router(num_workers=1)
        with pytest.raises(ValueError):
            router.route({})

    def test_route_is_frozen(self):
        route = Router(num_workers=1).route({"design": "a"})
        assert isinstance(route, Route)
        with pytest.raises(AttributeError):
            route.worker = 5

    def test_zero_workers_rejected(self):
        with pytest.raises(ValueError, match=">= 1"):
            Router(num_workers=0)
