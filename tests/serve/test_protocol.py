"""Tests for the JSON-lines serving protocol, socket front end and clients."""

import io
import json
import threading

import numpy as np
import pytest

from repro.models.mlp_baseline import MLPBaseline
from repro.pipeline import PipelineConfig
from repro.serve import (PROTOCOL_VERSION, DesignResolver,
                         FlushDeliveryError, InferenceEngine, LocalClient,
                         ServeClient, ServeConfig, ServeError,
                         serve_forever, serve_socket)

TINY_SPEC = {"name": "wire-a", "seed": 5, "num_movable": 90,
             "die_size": 32.0}
TINY_SPEC_B = {"name": "wire-b", "seed": 6, "num_movable": 90,
               "die_size": 32.0}


@pytest.fixture(autouse=True)
def isolated_cache(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))


@pytest.fixture
def engine():
    model = MLPBaseline(hidden=8, rng=np.random.default_rng(0))
    return InferenceEngine(model, ServeConfig())


@pytest.fixture
def resolver():
    return DesignResolver(PipelineConfig())


def run_protocol(engine, resolver, payloads):
    """Feed payload dicts (or raw strings) through one serving session."""
    lines = [p if isinstance(p, str) else json.dumps(p) for p in payloads]
    out = io.StringIO()
    shutdown = serve_forever(engine, resolver,
                             iter(line + "\n" for line in lines), out)
    replies = [json.loads(line) for line in out.getvalue().splitlines()]
    return replies, shutdown


class TestLineProtocol:
    def test_ping(self, engine, resolver):
        replies, shutdown = run_protocol(engine, resolver, [{"op": "ping"}])
        assert replies[0]["ok"] and replies[0]["status"] == "pong"
        assert not shutdown  # EOF, not shutdown

    def test_queue_then_flush(self, engine, resolver):
        replies, _ = run_protocol(engine, resolver, [
            {"op": "predict", "id": 1, "spec": TINY_SPEC},
            {"op": "predict", "id": 2, "spec": TINY_SPEC_B},
            {"op": "flush"},
        ])
        acks, results, summary = replies[:2], replies[2:4], replies[4]
        assert [a["status"] for a in acks] == ["queued", "queued"]
        assert [a["pending"] for a in acks] == [1, 2]
        assert [r["id"] for r in results] == [1, 2]
        # Both requests shared one micro-batched forward pass.
        assert [r["result"]["batch_members"] for r in results] == [2, 2]
        grid = np.array(results[0]["result"]["grids"]["h"])
        assert grid.shape == (32, 32)
        assert summary == {"ok": True, "status": "flushed", "count": 2}

    def test_flush_without_queue(self, engine, resolver):
        replies, _ = run_protocol(engine, resolver, [{"op": "flush"}])
        assert replies == [{"ok": True, "status": "flushed", "count": 0}]

    def test_stats(self, engine, resolver):
        replies, _ = run_protocol(engine, resolver, [{"op": "stats"}])
        assert replies[0]["ok"]
        assert replies[0]["stats"]["model_family"] == "mlp"

    def test_unknown_design_is_per_request_error(self, engine, resolver):
        replies, _ = run_protocol(engine, resolver, [
            {"op": "predict", "id": 9, "design": "nope"},
            {"op": "ping"},
        ])
        assert not replies[0]["ok"] and replies[0]["id"] == 9
        assert "unknown design" in replies[0]["error"]
        assert replies[1]["status"] == "pong"  # loop survived

    def test_bad_spec_is_per_request_error(self, engine, resolver):
        replies, _ = run_protocol(engine, resolver, [
            {"op": "predict", "spec": {"bogus": 1}}])
        assert not replies[0]["ok"]
        assert "bad design spec" in replies[0]["error"]

    def test_invalid_json_and_non_object(self, engine, resolver):
        replies, _ = run_protocol(engine, resolver, ["not json", "[1, 2]"])
        assert not replies[0]["ok"] and "invalid JSON" in replies[0]["error"]
        assert not replies[1]["ok"] and "JSON object" in replies[1]["error"]

    def test_unknown_op(self, engine, resolver):
        replies, _ = run_protocol(engine, resolver, [{"op": "dance"}])
        assert not replies[0]["ok"] and "unknown op" in replies[0]["error"]

    def test_shutdown_ends_loop(self, engine, resolver):
        replies, shutdown = run_protocol(engine, resolver, [
            {"op": "shutdown"}, {"op": "ping"}])
        assert shutdown
        assert len(replies) == 1  # nothing after shutdown is processed


class TestProtocolVersion:
    def test_ping_and_stats_carry_server_identity(self, engine, resolver):
        import repro
        replies, _ = run_protocol(engine, resolver,
                                  [{"op": "ping"}, {"op": "stats"}])
        for reply in replies:
            server = reply["server"]
            assert server["name"] == "repro-serve"
            assert server["version"] == repro.__version__
            assert server["protocol_version"] == PROTOCOL_VERSION
            assert server["mode"] == "engine"

    def test_current_and_older_versions_accepted(self, engine, resolver):
        replies, _ = run_protocol(engine, resolver, [
            {"op": "ping", "protocol_version": PROTOCOL_VERSION},
            {"op": "ping", "protocol_version": 1},
        ])
        assert all(r["status"] == "pong" for r in replies)

    def test_newer_version_rejected_per_request(self, engine, resolver):
        replies, _ = run_protocol(engine, resolver, [
            {"op": "predict", "id": 4, "spec": TINY_SPEC,
             "protocol_version": PROTOCOL_VERSION + 1},
            {"op": "ping"},
        ])
        assert not replies[0]["ok"] and replies[0]["id"] == 4
        assert "newer than this server's" in replies[0]["error"]
        assert replies[1]["status"] == "pong"  # loop survived

    def test_non_integer_version_rejected(self, engine, resolver):
        for bad in ("2", 2.5, True):
            replies, _ = run_protocol(engine, resolver, [
                {"op": "ping", "protocol_version": bad}])
            assert not replies[0]["ok"]
            assert "must be an integer" in replies[0]["error"]


class TestOversizedLines:
    def test_oversized_line_is_rejected_not_buffered(self, engine, resolver):
        lines = [json.dumps({"op": "ping", "pad": "x" * 4096}),
                 json.dumps({"op": "ping"})]
        out = io.StringIO()
        serve_forever(engine, resolver, iter(line + "\n" for line in lines),
                      out, max_line_bytes=1024)
        replies = [json.loads(line) for line in out.getvalue().splitlines()]
        assert not replies[0]["ok"]
        assert "exceeds 1024 bytes" in replies[0]["error"]
        assert replies[1]["status"] == "pong"  # session survived


class BrokenWriter:
    """A writer whose pipe dies after ``survive`` successful writes."""

    def __init__(self, survive: int):
        self.survive = survive
        self.lines: list[str] = []

    def write(self, text: str) -> None:
        if len(self.lines) >= self.survive:
            raise OSError("broken pipe")
        self.lines.append(text)

    def flush(self) -> None:
        pass


class TestFlushDelivery:
    def queue_two(self, engine, resolver, writer):
        lines = [json.dumps({"op": "predict", "id": i, "spec": spec})
                 for i, spec in ((1, TINY_SPEC), (2, TINY_SPEC_B))]
        lines.append(json.dumps({"op": "flush"}))
        return iter(line + "\n" for line in lines), writer

    def test_mid_flush_death_accounts_for_results(self, engine, resolver):
        # 2 acks survive, then the pipe dies delivering the 1st result.
        reader, writer = self.queue_two(engine, resolver, BrokenWriter(2))
        with pytest.raises(FlushDeliveryError) as excinfo:
            serve_forever(engine, resolver, reader, writer)
        error = excinfo.value
        assert error.delivered == 0
        assert error.discarded == 2
        # Both computed results (plus the summary) are carried along
        # for the front end to log or spool.
        assert [r.get("id") for r in error.undelivered[:2]] == [1, 2]
        assert error.undelivered[-1]["status"] == "flushed"
        assert "2 computed result(s) discarded" in str(error)

    def test_partial_delivery_counts_delivered(self, engine, resolver):
        # 2 acks + 1 result make it out; the 2nd result does not.
        reader, writer = self.queue_two(engine, resolver, BrokenWriter(3))
        with pytest.raises(FlushDeliveryError) as excinfo:
            serve_forever(engine, resolver, reader, writer)
        error = excinfo.value
        assert error.delivered == 1
        assert error.discarded == 1
        assert error.undelivered[0]["id"] == 2

    def test_engine_queue_is_clean_after_delivery_failure(self, engine,
                                                          resolver):
        reader, writer = self.queue_two(engine, resolver, BrokenWriter(2))
        with pytest.raises(FlushDeliveryError):
            serve_forever(engine, resolver, reader, writer)
        # The flush consumed the queue: a later session must not inherit
        # the dead client's requests.
        replies, _ = run_protocol(engine, resolver, [{"op": "flush"}])
        assert replies[0] == {"ok": True, "status": "flushed", "count": 0}


class TestFuzzSessions:
    """Malformed traffic has session-only blast radius."""

    GARBAGE = ["not json", "[1, 2]", '"just a string"', "42", "null",
               "{}", '{"op": []}', '{"op": "predict", "spec": 7}',
               '{"op": "predict", "channel": {"a": 1}}',
               '{"op": "dance"}', '{"op": ""}',
               '{"op": "predict", "spec": {"bogus": true}}',
               '{"id": 1}', "\x00\x01\x02", "{" * 200]

    def test_garbage_lines_never_kill_the_loop(self, engine, resolver):
        replies, shutdown = run_protocol(
            engine, resolver, self.GARBAGE + [{"op": "ping"}])
        assert not shutdown
        assert replies[-1]["status"] == "pong"
        for reply in replies[:-1]:
            assert reply["ok"] is False and reply["error"]

    def test_mid_line_disconnect_only_kills_its_session(self, engine,
                                                        resolver):
        import socket as socketlib
        ready = threading.Event()
        bound = {}

        def on_ready(port):
            bound["port"] = port
            ready.set()

        thread = threading.Thread(
            target=serve_socket, args=(engine, resolver, 0),
            kwargs={"ready_callback": on_ready}, daemon=True)
        thread.start()
        assert ready.wait(10)
        # A client that dies mid-line (no newline, no valid JSON prefix).
        for fragment in (b'{"op": "pred', b'{"op": "ping"}\n{"x'):
            rude = socketlib.create_connection(
                ("127.0.0.1", bound["port"]), timeout=10)
            rude.sendall(fragment)
            rude.close()
        with ServeClient.connect(port=bound["port"]) as client:
            assert client.ping()
            client.shutdown()
        thread.join(10)
        assert not thread.is_alive()


class TestResolver:
    def test_suite_design_resolution(self, resolver):
        design = resolver.resolve({"design": "superblue5"})
        assert design.name == "superblue5"
        # Suites are instantiated once and indexed.
        assert resolver.resolve({"design": "superblue5"}) is design

    def test_missing_reference(self, resolver):
        with pytest.raises(ValueError, match="needs 'design'"):
            resolver.resolve({})

    def test_unknown_suite(self, resolver):
        with pytest.raises(ValueError, match="unknown workload"):
            resolver.resolve({"suite": "nope", "design": "x"})


class TestSocketRoundTrip:
    def test_client_server_session(self, engine, resolver):
        ready = threading.Event()
        bound = {}

        def on_ready(port):
            bound["port"] = port
            ready.set()

        thread = threading.Thread(
            target=serve_socket, args=(engine, resolver, 0),
            kwargs={"ready_callback": on_ready}, daemon=True)
        thread.start()
        assert ready.wait(10)
        with ServeClient.connect(port=bound["port"]) as client:
            assert client.ping()
            ack = client.predict(spec=TINY_SPEC)
            assert ack["status"] == "queued"
            results = client.flush()
            assert len(results) == 1
            assert results[0]["result"]["name"] == "wire-a"
            assert client.stats()["requests"] == 1
            with pytest.raises(ServeError, match="unknown design"):
                client.predict(design="nope")
            # Queue a request and disconnect without flushing: it must
            # not leak into the next connection's flush.
            client.predict(spec=TINY_SPEC_B)
            client.close()
        # A client that fires requests and vanishes without reading its
        # replies must not take the server down.
        import socket as socketlib
        rude = socketlib.create_connection(("127.0.0.1", bound["port"]),
                                           timeout=10)
        rude.sendall((json.dumps({"op": "predict", "spec": TINY_SPEC})
                      + "\n" + json.dumps({"op": "flush"}) + "\n").encode())
        rude.close()
        with ServeClient.connect(port=bound["port"]) as client:
            assert client.ping()
            assert client.flush() == []
            client.shutdown()
        thread.join(10)
        assert not thread.is_alive()


class TestLocalClient:
    def test_same_surface_as_wire_client(self, engine, resolver):
        client = LocalClient(engine, resolver)
        assert client.ping()
        ack = client.predict(spec=TINY_SPEC)
        assert ack["status"] == "queued" and ack["pending"] == 1
        results = client.flush()
        assert results[0]["result"]["name"] == "wire-a"
        assert results[0]["result"]["cached"] is False
        # Warm repeat comes from the sample cache.
        client.predict(spec=TINY_SPEC)
        assert client.flush()[0]["result"]["cached"] is True
        assert client.stats()["requests"] == 2
