"""Tests for the MLP, U-Net and Pix2Pix baselines."""

import numpy as np
import pytest

from repro.models import (MLPBaseline, PatchDiscriminator, Pix2Pix, UNet)
from repro.nn import Tensor


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestMLPBaseline:
    def test_output_shape_and_range(self, rng):
        m = MLPBaseline(in_features=4, hidden=16, channels=1, rng=rng)
        out = m(Tensor(rng.normal(size=(50, 4))))
        assert out.shape == (50, 1)
        assert (out.data >= 0).all() and (out.data <= 1).all()

    def test_duo_channel(self, rng):
        m = MLPBaseline(channels=2, rng=rng)
        assert m(Tensor(rng.normal(size=(10, 4)))).shape == (10, 2)

    def test_is_strictly_local(self, rng):
        """Changing one row's features must not affect other rows."""
        m = MLPBaseline(rng=rng)
        x = rng.normal(size=(10, 4))
        base = m(Tensor(x)).data
        x2 = x.copy()
        x2[0] += 10.0
        out = m(Tensor(x2)).data
        assert not np.allclose(out[0], base[0])
        assert np.allclose(out[1:], base[1:])

    def test_four_layers(self, rng):
        m = MLPBaseline(rng=rng)
        # input + 3 residual blocks + head = 4 weight layers deep (paper)
        assert len(m.blocks) == 3


class TestUNet:
    def test_output_shape(self, rng):
        m = UNet(in_channels=4, out_channels=1, base_width=4, rng=rng)
        out = m(Tensor(rng.normal(size=(1, 4, 16, 16))))
        assert out.shape == (1, 1, 16, 16)

    def test_output_is_probability(self, rng):
        m = UNet(base_width=4, rng=rng)
        out = m(Tensor(rng.normal(size=(1, 4, 16, 16)))).data
        assert (out >= 0).all() and (out <= 1).all()

    def test_no_sigmoid_mode(self, rng):
        m = UNet(base_width=4, rng=rng, final_sigmoid=False)
        out = m(Tensor(rng.normal(size=(1, 4, 16, 16)))).data
        assert out.min() < 0 or out.max() > 1

    def test_receptive_field_is_geometric(self, rng):
        """U-Net output responds to distant pixels only through pooling —
        but never to pixels in other images of the batch."""
        m = UNet(base_width=4, rng=rng)
        m.eval()
        x = rng.normal(size=(2, 4, 16, 16))
        base = m(Tensor(x)).data
        x2 = x.copy()
        x2[1] += 5.0
        out = m(Tensor(x2)).data
        assert np.allclose(out[0], base[0], atol=1e-10)
        assert not np.allclose(out[1], base[1])

    def test_gradients_reach_all_params(self, rng):
        m = UNet(base_width=4, rng=rng)
        m(Tensor(rng.normal(size=(1, 4, 8, 8)))).sum().backward()
        missing = [n for n, p in m.named_parameters() if p.grad is None]
        assert missing == []


class TestPix2Pix:
    def test_generator_shape(self, rng):
        m = Pix2Pix(in_channels=4, out_channels=1, base_width=4, rng=rng)
        out = m(Tensor(rng.normal(size=(1, 4, 16, 16))))
        assert out.shape == (1, 1, 16, 16)

    def test_discriminator_patch_output(self, rng):
        m = Pix2Pix(base_width=4, rng=rng)
        x = Tensor(rng.normal(size=(1, 4, 16, 16)))
        y = Tensor(rng.normal(size=(1, 1, 16, 16)))
        logits = m.discriminate(x, y)
        assert logits.ndim == 4
        assert logits.shape[1] == 1
        assert logits.shape[2] < 16  # patch-level, not pixel-level

    def test_patch_discriminator_standalone(self, rng):
        d = PatchDiscriminator(5, rng, base_width=4)
        out = d(Tensor(rng.normal(size=(2, 5, 16, 16))))
        assert out.shape[0] == 2

    def test_gan_parameters_disjoint(self, rng):
        m = Pix2Pix(base_width=4, rng=rng)
        gen = {id(p) for p in m.generator.parameters()}
        dis = {id(p) for p in m.discriminator.parameters()}
        assert not gen & dis
