"""Tests for attention machinery and the related-work GNN baselines."""

import numpy as np
import pytest

from repro.circuit import (DesignSpec, build_cell_graph, cell_features,
                           cells_to_gcells, generate_design)
from repro.models import (CongestionNet, EdgeList, GATLayer, GridSAGE,
                          SAGELayer, segment_softmax)
from repro.nn import Tensor


@pytest.fixture
def rng():
    return np.random.default_rng(0)


@pytest.fixture(scope="module")
def design():
    return generate_design(DesignSpec(name="rel", seed=61, num_movable=100,
                                      die_size=32.0))


class TestEdgeList:
    def test_scatter_sums_onto_destinations(self):
        edges = EdgeList(np.array([0, 1, 2]), np.array([1, 1, 0]), 3)
        from repro.nn import spmm
        vals = Tensor(np.array([[1.0], [2.0], [4.0]]))
        out = spmm(edges.scatter, vals).data
        assert np.allclose(out.reshape(-1), [4.0, 3.0, 0.0])

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            EdgeList(np.array([0]), np.array([0, 1]), 2)

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            EdgeList(np.array([0]), np.array([5]), 2)

    def test_self_loops_added(self):
        edges = EdgeList.with_self_loops(np.array([0]), np.array([1]), 3)
        assert edges.num_edges == 4


class TestSegmentSoftmax:
    def test_normalised_per_destination(self, rng):
        edges = EdgeList(np.array([0, 1, 2, 0]), np.array([0, 0, 1, 1]), 3)
        scores = Tensor(rng.normal(size=4))
        alpha = segment_softmax(scores, edges).data
        assert alpha[0] + alpha[1] == pytest.approx(1.0)
        assert alpha[2] + alpha[3] == pytest.approx(1.0)

    def test_stable_with_large_scores(self):
        edges = EdgeList(np.array([0, 1]), np.array([0, 0]), 2)
        alpha = segment_softmax(Tensor(np.array([1000.0, 999.0])), edges).data
        assert np.isfinite(alpha).all()
        assert alpha.sum() == pytest.approx(1.0)

    def test_gradient_flows(self):
        edges = EdgeList(np.array([0, 1]), np.array([0, 0]), 2)
        scores = Tensor(np.array([0.5, -0.5]), requires_grad=True)
        segment_softmax(scores, edges)[0].backward(np.array(1.0))
        assert scores.grad is not None
        assert abs(scores.grad).sum() > 0


class TestGATLayer:
    def test_output_shape(self, rng):
        edges = EdgeList.with_self_loops(np.array([0, 1]), np.array([1, 2]), 4)
        layer = GATLayer(3, 5, rng)
        out = layer(Tensor(rng.normal(size=(4, 3))), edges)
        assert out.shape == (4, 5)

    def test_gradients_reach_parameters(self, rng):
        edges = EdgeList.with_self_loops(np.array([0]), np.array([1]), 3)
        layer = GATLayer(2, 4, rng)
        x = Tensor(rng.normal(size=(3, 2)), requires_grad=True)
        layer(x, edges).sum().backward()
        assert layer.w.weight.grad is not None
        assert layer.attn_src.grad is not None
        assert x.grad is not None


class TestCellGraph:
    def test_symmetric(self, design):
        cg = build_cell_graph(design)
        pairs = set(zip(cg.src.tolist(), cg.dst.tolist()))
        assert all((b, a) in pairs for a, b in pairs)

    def test_no_self_edges(self, design):
        cg = build_cell_graph(design)
        assert not np.any(cg.src == cg.dst)

    def test_features_shape(self, design):
        feats = cell_features(design)
        assert feats.shape == (design.num_cells, 7)
        assert np.allclose(feats[:, 2].sum(), design.num_pins)

    def test_cells_to_gcells_max(self, design):
        from repro.routing import RoutingGrid
        grid = RoutingGrid(design, nx=8, ny=8)
        values = np.arange(design.num_cells, dtype=float)
        out = cells_to_gcells(design, grid, values, reduce="max")
        assert out.shape == (8, 8)
        assert out.max() <= values.max()

    def test_cells_to_gcells_mean(self, design):
        from repro.routing import RoutingGrid
        grid = RoutingGrid(design, nx=8, ny=8)
        out = cells_to_gcells(design, grid,
                              np.ones(design.num_cells), reduce="mean")
        assert set(np.unique(out)).issubset({0.0, 1.0})

    def test_bad_reduce(self, design):
        from repro.routing import RoutingGrid
        grid = RoutingGrid(design, nx=8, ny=8)
        with pytest.raises(ValueError):
            cells_to_gcells(design, grid, np.ones(design.num_cells),
                            reduce="median")


class TestCongestionNet:
    def test_end_to_end_shapes(self, design, rng):
        cg = build_cell_graph(design)
        edges = EdgeList.with_self_loops(cg.src, cg.dst, design.num_cells)
        feats = cell_features(design)
        model = CongestionNet(in_features=feats.shape[1], hidden=8, rng=rng,
                              num_layers=2)
        out = model(Tensor(feats), edges)
        assert out.shape == (design.num_cells, 1)
        assert (out.data >= 0).all() and (out.data <= 1).all()

    def test_rejects_zero_layers(self, rng):
        with pytest.raises(ValueError):
            CongestionNet(4, 8, rng, num_layers=0)


class TestGridSAGE:
    def test_forward_on_lhgraph(self, small_graph, rng):
        model = GridSAGE(hidden=8, rng=rng)
        out = model(small_graph)
        assert out.shape == (small_graph.num_gcells, 1)

    def test_feature_override(self, small_graph, rng):
        model = GridSAGE(hidden=8, rng=rng)
        a = model(small_graph).data
        b = model(small_graph,
                  vc=Tensor(np.zeros_like(small_graph.vc))).data
        assert not np.allclose(a, b)

    def test_sage_layer_aggregates_neighbours(self, small_graph, rng):
        layer = SAGELayer(4, 4, rng)
        x = Tensor(np.random.default_rng(1).normal(
            size=(small_graph.num_gcells, 4)), requires_grad=True)
        out = layer(x, small_graph.op_cc_mean)
        ny = small_graph.ny
        centre = (small_graph.nx // 2) * ny + ny // 2
        out[centre].sum().backward()
        touched = set(np.flatnonzero(np.abs(x.grad).sum(axis=1)).tolist())
        assert centre in touched
        assert len(touched) > 1  # at least one neighbour contributes

    def test_trains_with_trainer(self, tiny_graph_suite):
        from repro.data import CongestionDataset
        from repro.train import (TrainConfig, evaluate_gridsage,
                                 train_gridsage)
        ds = CongestionDataset(tiny_graph_suite, channels=1)
        model = train_gridsage(ds.train_samples(),
                               TrainConfig(epochs=2, seed=0), hidden=8)
        metrics = evaluate_gridsage(model, ds.test_samples())
        assert np.isfinite(metrics["f1"])
