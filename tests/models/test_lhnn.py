"""Tests for LHNN blocks and the full architecture."""

import numpy as np
import pytest

from repro.models import (FeatureGenBlock, HyperMPBlock, LHNN, LHNNConfig,
                          LatticeMPBlock)
from repro.nn import Tensor, SparseMatrix


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestFeatureGenBlock:
    def test_output_shapes(self, small_graph, rng):
        block = FeatureGenBlock(4, 4, 16, rng)
        vc1, vn1 = block(Tensor(small_graph.vc), Tensor(small_graph.vn),
                         small_graph.op_nc_scaled_sum)
        assert vc1.shape == (small_graph.num_gcells, 16)
        assert vn1.shape == (small_graph.num_gnets, 16)

    def test_edges_disabled_still_runs(self, small_graph, rng):
        block = FeatureGenBlock(4, 4, 16, rng, edges_enabled=False)
        vc1, vn1 = block(Tensor(small_graph.vc), Tensor(small_graph.vn),
                         small_graph.op_nc_scaled_sum)
        assert np.isfinite(vc1.data).all()

    def test_edges_matter(self, small_graph, rng):
        on = FeatureGenBlock(4, 4, 16, np.random.default_rng(3))
        off = FeatureGenBlock(4, 4, 16, np.random.default_rng(3),
                              edges_enabled=False)
        vc_on, _ = on(Tensor(small_graph.vc), Tensor(small_graph.vn),
                      small_graph.op_nc_scaled_sum)
        vc_off, _ = off(Tensor(small_graph.vc), Tensor(small_graph.vn),
                        small_graph.op_nc_scaled_sum)
        assert not np.allclose(vc_on.data, vc_off.data)


class TestHyperMPBlock:
    def test_shapes_preserved(self, small_graph, rng):
        h = 16
        fg = FeatureGenBlock(4, 4, h, rng)
        vc1, vn1 = fg(Tensor(small_graph.vc), Tensor(small_graph.vn),
                      small_graph.op_nc_scaled_sum)
        block = HyperMPBlock(h, rng)
        vc, vn = block(vc1, vn1, vc1, vn1, small_graph.op_cn_mean,
                       small_graph.op_nc_mean)
        assert vc.shape == vc1.shape
        assert vn.shape == vn1.shape

    def test_topological_reach(self, small_graph, rng):
        """A G-cell's update must depend on other cells of its G-net."""
        h = 8
        g = small_graph
        data_rng = np.random.default_rng(9)
        vc = Tensor(data_rng.normal(size=(g.num_gcells, h)),
                    requires_grad=True)
        vn = Tensor(data_rng.normal(size=(g.num_gnets, h)))
        block = HyperMPBlock(h, rng)
        out_c, _ = block(vc, vn,
                         Tensor(data_rng.normal(size=(g.num_gcells, h))),
                         Tensor(data_rng.normal(size=(g.num_gnets, h))),
                         g.op_cn_mean, g.op_nc_mean)
        # Pick a G-net with area >= 2 and check cross-cell gradient.
        areas = g.incidence.col_sums()
        net = int(np.argmax(areas))
        cells = g.incidence.mat[:, net].nonzero()[0]
        src, dst = int(cells[0]), int(cells[-1])
        assert src != dst
        out_c[dst].sum().backward()
        assert np.abs(vc.grad[src]).sum() > 0


class TestLatticeMPBlock:
    def test_skip_connection_at_zero_weights(self, small_graph, rng):
        block = LatticeMPBlock(8, rng)
        for p in block.parameters():
            p.data[...] = 0.0
        x = np.random.default_rng(1).normal(size=(small_graph.num_gcells, 8))
        out = block(Tensor(x), small_graph.op_cc_mean)
        assert np.allclose(out.data, x)

    def test_geometric_reach_is_one_hop(self, small_graph, rng):
        g = small_graph
        block = LatticeMPBlock(4, rng)
        data_rng = np.random.default_rng(9)
        x = Tensor(data_rng.normal(size=(g.num_gcells, 4)),
                   requires_grad=True)
        out = block(x, g.op_cc_mean)
        ny = g.ny
        centre = (g.nx // 2) * ny + (g.ny // 2)
        out[centre].sum().backward()
        touched = set(np.flatnonzero(np.abs(x.grad).sum(axis=1)).tolist())
        # gradient reaches at most the centre and its 4 lattice neighbours
        allowed = {centre, centre - 1, centre + 1, centre - ny, centre + ny}
        assert centre in touched
        assert touched <= allowed
        assert len(touched) > 1  # some neighbour actually contributes


class TestLHNN:
    def test_forward_shapes_uni(self, small_graph, rng):
        model = LHNN(LHNNConfig(hidden=16, channels=1), rng)
        out = model(small_graph)
        assert out.cls_prob.shape == (small_graph.num_gcells, 1)
        assert out.reg_pred.shape == (small_graph.num_gcells, 1)

    def test_forward_shapes_duo(self, small_graph, rng):
        model = LHNN(LHNNConfig(hidden=16, channels=2), rng)
        out = model(small_graph)
        assert out.cls_prob.shape == (small_graph.num_gcells, 2)

    def test_probabilities_in_unit_interval(self, small_graph, rng):
        model = LHNN(LHNNConfig(hidden=16), rng)
        out = model(small_graph)
        assert (out.cls_prob.data >= 0).all()
        assert (out.cls_prob.data <= 1).all()

    def test_no_jointing_drops_reg(self, small_graph, rng):
        model = LHNN(LHNNConfig(hidden=16, use_jointing=False), rng)
        out = model(small_graph)
        assert out.reg_pred is None
        assert model.head_reg is None

    def test_feature_override(self, small_graph, rng):
        model = LHNN(LHNNConfig(hidden=16), rng)
        base = model(small_graph).cls_prob.data
        zeros = model(small_graph,
                      vc=Tensor(np.zeros_like(small_graph.vc)),
                      vn=Tensor(np.zeros_like(small_graph.vn))).cls_prob.data
        assert not np.allclose(base, zeros)

    def test_ablation_flags_change_output(self, small_graph):
        base = LHNN(LHNNConfig(hidden=16), np.random.default_rng(5))
        out_full = base(small_graph).cls_prob.data
        for flag in ("use_featuregen_edges", "use_hypermp_edges",
                     "use_latticemp_edges"):
            cfg = LHNNConfig(hidden=16, **{flag: False})
            ablated = LHNN(cfg, np.random.default_rng(5))
            out_ab = ablated(small_graph).cls_prob.data
            assert not np.allclose(out_full, out_ab), flag

    def test_parameter_count_stable_under_edge_ablation(self, small_graph):
        """Paper keeps depth/parameters ~same when removing edges."""
        full = LHNN(LHNNConfig(hidden=16), np.random.default_rng(0))
        ablated = LHNN(LHNNConfig(hidden=16, use_hypermp_edges=False),
                       np.random.default_rng(0))
        assert full.num_parameters() == ablated.num_parameters()

    def test_gradients_reach_all_parameters(self, small_graph, rng):
        model = LHNN(LHNNConfig(hidden=8), rng)
        out = model(small_graph)
        (out.cls_prob.sum() + out.reg_pred.sum()).backward()
        missing = [n for n, p in model.named_parameters() if p.grad is None]
        assert missing == []

    def test_sampled_operators_accepted(self, small_graph, rng):
        from repro.graph import sampled_operators
        model = LHNN(LHNNConfig(hidden=8), rng)
        ops = sampled_operators(small_graph,
                                {"featuregen": 6, "hypermp": 3,
                                 "latticemp": 2}, rng)
        out = model(small_graph, operators=ops)
        assert np.isfinite(out.cls_prob.data).all()
