"""Spec layer: load, override, validate, fingerprint."""

import json

import pytest

from repro.api import (ExperimentSpec, SpecError, apply_overrides,
                       dumps_spec, load_spec, spec_fingerprint,
                       spec_from_dict, spec_to_dict)


class TestDefaultsAndRoundTrip:
    def test_defaults(self):
        spec = ExperimentSpec()
        assert spec.model.family == "lhnn"
        assert spec.workload.suite == "superblue"
        assert spec.train.epochs == 20
        assert spec.compute.dtype == "float32"

    def test_dict_round_trip(self):
        spec = ExperimentSpec()
        assert spec_from_dict(spec_to_dict(spec)) == spec

    def test_partial_dict_takes_defaults(self):
        spec = spec_from_dict({"train": {"epochs": 3}})
        assert spec.train.epochs == 3
        assert spec.train.batch_size == 1
        assert spec.model.family == "lhnn"

    def test_derived_output_paths(self):
        spec = spec_from_dict({"model": {"family": "unet"},
                               "workload": {"suite": "hotspot"}})
        assert spec.experiment_name() == "unet-hotspot"
        assert spec.checkpoint_path().endswith("unet-hotspot.npz")
        # Manifests are fingerprint-named (never name-collidable), so
        # concurrent grid points can share one artifacts_dir.
        assert spec.manifest_path().endswith(
            f"experiments/{spec_fingerprint(spec)}.json")

    def test_manifest_path_honours_explicit_override(self):
        spec = spec_from_dict({"output": {"manifest": "out/custom.json"}})
        assert spec.manifest_path() == "out/custom.json"

    def test_dumps_is_canonical_json(self):
        payload = json.loads(dumps_spec(ExperimentSpec()))
        assert set(payload) == {"workload", "model", "train", "compute",
                                "output"}


class TestFileLoading:
    def test_load_toml(self, tmp_path):
        path = tmp_path / "spec.toml"
        path.write_text("[model]\nfamily = 'gridsage'\n"
                        "[model.params]\nhidden = 16\n"
                        "[train]\nepochs = 2\n")
        spec = load_spec(str(path))
        assert spec.model.family == "gridsage"
        assert spec.model.params == {"hidden": 16}
        assert spec.train.epochs == 2

    def test_load_json(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps({"workload": {"suite": "hotspot",
                                                 "count": 2}}))
        spec = load_spec(str(path))
        assert spec.workload.suite == "hotspot"
        assert spec.workload.count == 2

    def test_unsupported_extension(self, tmp_path):
        path = tmp_path / "spec.yaml"
        path.write_text("a: 1\n")
        with pytest.raises(SpecError, match="unsupported spec format"):
            load_spec(str(path))

    def test_missing_file(self, tmp_path):
        with pytest.raises(SpecError, match="cannot read spec"):
            load_spec(str(tmp_path / "absent.toml"))

    def test_malformed_toml(self, tmp_path):
        path = tmp_path / "bad.toml"
        path.write_text("[model\nfamily=")
        with pytest.raises(SpecError, match="cannot parse spec"):
            load_spec(str(path))

    def test_error_names_the_file(self, tmp_path):
        path = tmp_path / "bad.toml"
        path.write_text("[model]\nfamily = 'nope'\n")
        with pytest.raises(SpecError, match="bad.toml"):
            load_spec(str(path))


class TestValidation:
    def test_unknown_section(self):
        with pytest.raises(SpecError, match=r"unknown section \[models\]"):
            spec_from_dict({"models": {}})

    def test_unknown_key(self):
        with pytest.raises(SpecError, match="train.'epoch'|epoch"):
            spec_from_dict({"train": {"epoch": 5}})

    def test_wrong_type(self):
        with pytest.raises(SpecError, match="train.epochs must be int"):
            spec_from_dict({"train": {"epochs": "ten"}})

    def test_bool_is_not_an_int(self):
        with pytest.raises(SpecError, match="got bool"):
            spec_from_dict({"train": {"epochs": True}})

    def test_int_accepted_where_float_declared(self):
        spec = spec_from_dict({"workload": {"scale": 1}})
        assert spec.workload.scale == 1.0

    def test_unknown_family_lists_registered(self):
        with pytest.raises(SpecError, match="unknown model family 'resnet'"):
            spec_from_dict({"model": {"family": "resnet"}})

    def test_unknown_suite_lists_registered(self):
        with pytest.raises(SpecError, match="unknown workload 'ispd'"):
            spec_from_dict({"workload": {"suite": "ispd"}})

    def test_bad_channels(self):
        with pytest.raises(SpecError, match="channels must be 1"):
            spec_from_dict({"model": {"channels": 3}})

    def test_bad_dtype(self):
        with pytest.raises(SpecError, match="compute.dtype"):
            spec_from_dict({"compute": {"dtype": "float16"}})

    def test_bad_ranges(self):
        with pytest.raises(SpecError, match="train.epochs must be >= 1"):
            spec_from_dict({"train": {"epochs": 0}})
        with pytest.raises(SpecError, match="workload.scale must be > 0"):
            spec_from_dict({"workload": {"scale": 0.0}})

    def test_params_must_be_table(self):
        with pytest.raises(SpecError, match="model.params must be a table"):
            spec_from_dict({"model": {"params": 5}})

    def test_params_cannot_smuggle_channels(self):
        """channels lives in model.channels (the dataset is built from
        it); a params override would desync model from targets."""
        with pytest.raises(SpecError, match="model.params.channels"):
            spec_from_dict({"model": {"params": {"channels": 2}}})
        with pytest.raises(SpecError, match="model.params.channels"):
            apply_overrides(ExperimentSpec(), ["model.params.channels=2"])


class TestOverrides:
    def test_scalar_overrides(self):
        spec = apply_overrides(ExperimentSpec(), [
            "train.epochs=5", "workload.scale=0.5", "model.family=unet",
            "train.verbose=true", "train.crop=null"])
        assert spec.train.epochs == 5
        assert spec.workload.scale == 0.5
        assert spec.model.family == "unet"
        assert spec.train.verbose is True
        assert spec.train.crop is None

    def test_params_namespace_is_open(self):
        spec = apply_overrides(ExperimentSpec(),
                               ["model.params.hidden=16",
                                "model.params.use_jointing=false"])
        assert spec.model.params == {"hidden": 16, "use_jointing": False}

    def test_deep_path_through_scalar_param_rejected(self):
        """model.params.hidden.units=8 must not silently turn the scalar
        'hidden' into a table — it must fail at spec time."""
        spec = apply_overrides(ExperimentSpec(), ["model.params.hidden=16"])
        with pytest.raises(SpecError, match="'hidden' is not a table"):
            apply_overrides(spec, ["model.params.hidden.units=8"])

    def test_string_values_need_no_quoting(self):
        spec = apply_overrides(ExperimentSpec(),
                               ["output.checkpoint=artifacts/x.npz"])
        assert spec.output.checkpoint == "artifacts/x.npz"

    def test_input_spec_is_untouched(self):
        spec = ExperimentSpec()
        apply_overrides(spec, ["train.epochs=7"])
        assert spec.train.epochs == 20

    def test_malformed_assignment(self):
        with pytest.raises(SpecError, match="must look like"):
            apply_overrides(ExperimentSpec(), ["train.epochs"])

    def test_undotted_path(self):
        with pytest.raises(SpecError, match="must be dotted"):
            apply_overrides(ExperimentSpec(), ["epochs=5"])

    def test_unknown_path(self):
        with pytest.raises(SpecError, match="unknown path component"):
            apply_overrides(ExperimentSpec(), ["nope.epochs=5"])

    def test_unknown_key(self):
        with pytest.raises(SpecError, match="unknown key"):
            apply_overrides(ExperimentSpec(), ["train.nope=5"])

    def test_override_type_error_is_validated(self):
        with pytest.raises(SpecError, match="must be int"):
            apply_overrides(ExperimentSpec(), ["train.epochs=many"])


class TestFingerprint:
    def test_stable_and_sensitive(self):
        a = ExperimentSpec()
        b = ExperimentSpec()
        assert spec_fingerprint(a) == spec_fingerprint(b)
        c = apply_overrides(a, ["train.epochs=21"])
        assert spec_fingerprint(c) != spec_fingerprint(a)

    def test_output_paths_do_not_change_fingerprint(self):
        a = ExperimentSpec()
        b = apply_overrides(a, ["output.name=elsewhere",
                                "output.checkpoint=/tmp/x.npz"])
        assert spec_fingerprint(a) == spec_fingerprint(b)

    def test_execution_only_knobs_do_not_change_fingerprint(self):
        """verbose / workers / use_cache change how a run executes, not
        what it computes (workers is bit-identical by the PR 2
        parallel-equivalence guarantee)."""
        a = ExperimentSpec()
        b = apply_overrides(a, ["train.verbose=true",
                                "workload.workers=4",
                                "workload.use_cache=false"])
        assert spec_fingerprint(a) == spec_fingerprint(b)

    def test_key_order_independent(self):
        a = spec_from_dict({"train": {"epochs": 3, "seed": 1}})
        b = spec_from_dict({"train": {"seed": 1, "epochs": 3}})
        assert spec_fingerprint(a) == spec_fingerprint(b)
