"""CLI round trip per family: train --config/--model → evaluate → predict.

The whole matrix drives a 2-design superblue workload at a small scale
(the same trick as ``tests/test_cli.py``); the stage cache is shared
across the module, so place-and-route runs once for all five families.
"""

import json

import pytest

from repro import cli

FAMILIES = ("lhnn", "mlp", "gridsage", "unet", "pix2pix")

#: Tiny per-family construction knobs (see FAMILY_PARAMS in
#: test_experiment.py) so each 1-epoch CLI training stays fast.
FAMILY_SET = {
    "lhnn": ["--set", "model.params.hidden=8"],
    "mlp": ["--set", "model.params.hidden=8"],
    "gridsage": ["--set", "model.params.hidden=8"],
    "unet": ["--set", "model.params.base_width=4"],
    "pix2pix": ["--set", "model.params.base_width=4"],
}


@pytest.fixture(autouse=True)
def tiny_superblue(monkeypatch, tmp_path_factory):
    """Trim the superblue suite to 2 designs and share one stage cache."""
    import repro.pipeline as pl
    orig = pl.superblue_suite
    monkeypatch.setattr(
        pl, "superblue_suite",
        lambda scale, base_seed=2022: orig(scale=scale,
                                           base_seed=base_seed)[:2])
    cache = tmp_path_factory.getbasetemp() / "roundtrip-cache"
    monkeypatch.setenv("REPRO_CACHE_DIR", str(cache))


@pytest.mark.parametrize("family", FAMILIES)
def test_train_evaluate_predict_round_trip(family, tmp_path, capsys):
    ckpt = str(tmp_path / f"{family}.npz")
    rc = cli.main(["train", "--model", family, "--suite", "superblue",
                   "--scale", "0.15", "--epochs", "1",
                   "--out", ckpt,
                   "--set", f"output.artifacts_dir={tmp_path}",
                   *FAMILY_SET[family]])
    assert rc == 0
    out = capsys.readouterr().out
    assert "held-out F1" in out
    assert ckpt in out

    # The manifest landed under experiments/ (fingerprint-named) and
    # validates; the back-compat finder locates it by fingerprint.
    from repro.api import find_result_manifest, validate_result_manifest
    (manifest_path,) = (tmp_path / "experiments").glob("*.json")
    manifest = validate_result_manifest(json.load(open(manifest_path)))
    found = find_result_manifest(str(tmp_path), manifest["fingerprint"])
    assert found is not None and found[0] == str(manifest_path)
    assert manifest["experiment"]["model"]["family"] == family
    assert manifest["experiment"]["workload"]["scale"] == 0.15
    # CLI runs prepare their own workload, so the manifest is replayable.
    assert manifest["workload"]["dataset_injected"] is False

    rc = cli.main(["evaluate", "--checkpoint", ckpt, "--suite", "superblue",
                   "--scale", "0.15"])
    assert rc == 0
    assert "mean F1" in capsys.readouterr().out

    rc = cli.main(["predict", "--checkpoint", ckpt,
                   "--design", "superblue1", "--suite", "superblue",
                   "--scale", "0.15"])
    assert rc == 0
    assert "congestion rate" in capsys.readouterr().out


def test_train_from_config_file(tmp_path, capsys):
    """`train --config spec.toml` + flag + --set precedence."""
    spec_path = tmp_path / "exp.toml"
    spec_path.write_text(
        "[model]\nfamily = 'mlp'\n"
        "[model.params]\nhidden = 8\n"
        "[train]\nepochs = 3\n"
        "[workload]\nsuite = 'superblue'\nscale = 0.15\n"
        f"[output]\nartifacts_dir = '{tmp_path}'\n")
    rc = cli.main(["train", "--config", str(spec_path),
                   "--epochs", "1",                    # flag beats file
                   "--set", "train.seed=5"])           # --set beats both
    assert rc == 0
    (manifest_path,) = (tmp_path / "experiments").glob("*.json")
    manifest = json.load(open(manifest_path))
    assert manifest["experiment"]["train"]["epochs"] == 1
    assert manifest["experiment"]["train"]["seed"] == 5
    assert manifest["experiment"]["model"]["params"]["hidden"] == 8


def test_experiment_subcommand_end_to_end(tmp_path, capsys):
    spec_path = tmp_path / "exp.toml"
    spec_path.write_text(
        "[model]\nfamily = 'gridsage'\n"
        "[model.params]\nhidden = 8\n"
        "[train]\nepochs = 1\n"
        "[workload]\nsuite = 'superblue'\nscale = 0.15\n"
        f"[output]\nartifacts_dir = '{tmp_path}'\nname = 'smoke-gs'\n")
    rc = cli.main(["experiment", "--config", str(spec_path)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "experiment smoke-gs" in out
    assert "result manifest written to" in out
    from repro.api import validate_result_manifest
    (manifest_path,) = (tmp_path / "experiments").glob("*.json")
    validate_result_manifest(json.load(open(manifest_path)))


def test_stats_takes_suite_and_scale(capsys):
    rc = cli.main(["stats", "--suite", "superblue", "--scale", "0.15"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "Dataset information" in out
    assert "Per-design congestion rates" in out


def test_evaluate_unknown_suite_fails_cleanly(tmp_path, capsys):
    rc = cli.main(["stats", "--suite", "nope"])
    assert rc == 2
    assert "unknown workload" in capsys.readouterr().err
