"""`run_experiment`: the five-family smoke matrix and its artifacts."""

import json
import warnings

import numpy as np
import pytest

from repro.api import (ExperimentSpec, SpecError, apply_overrides,
                       run_experiment, spec_fingerprint,
                       validate_result_manifest)
from repro.data import CongestionDataset

#: Per-family tiny construction knobs so the smoke matrix stays fast.
FAMILY_PARAMS = {
    "lhnn": ["model.params.hidden=8"],
    "mlp": ["model.params.hidden=8"],
    "gridsage": ["model.params.hidden=8"],
    "unet": ["model.params.base_width=4"],
    "pix2pix": ["model.params.base_width=4"],
}


@pytest.fixture(scope="module")
def dataset(tiny_graph_suite):
    """A 2-design workload (1 train / 1 test after the balanced split)."""
    return CongestionDataset(tiny_graph_suite[:2], channels=1)


def tiny_spec(family: str, tmp_path, extra: list[str] = ()) -> ExperimentSpec:
    return apply_overrides(ExperimentSpec(), [
        f"model.family={family}", "train.epochs=2",
        f"output.artifacts_dir={tmp_path}",
        *FAMILY_PARAMS[family], *extra])


class TestFiveFamilyMatrix:
    @pytest.mark.parametrize("family", sorted(FAMILY_PARAMS))
    def test_train_evaluate_checkpoint_restore(self, family, dataset,
                                               tmp_path):
        from repro.serve.registry import get_family, restore_model
        result = run_experiment(tiny_spec(family, tmp_path), dataset=dataset)

        assert set(result.metrics) == {"f1", "acc"}
        assert np.isfinite(result.metrics["f1"])
        assert 0 <= result.metrics["acc"] <= 100

        # The checkpoint restores to the same family via the registry.
        model, meta = restore_model(result.checkpoint_path)
        assert isinstance(model, get_family(family).model_type)
        assert meta["model"]["family"] == family

        # Spec-derived metadata: full spec + fingerprint ride along.
        assert meta["spec_fingerprint"] == result.fingerprint
        assert meta["experiment"]["model"]["family"] == family
        assert meta["experiment"]["train"]["epochs"] == 2
        assert meta["dtype"] == "float32"

        # The result manifest on disk validates against its schema.
        manifest = json.load(open(result.manifest_path))
        validate_result_manifest(manifest)
        assert manifest["fingerprint"] == result.fingerprint
        assert manifest["metrics"]["f1"] == pytest.approx(
            result.metrics["f1"])
        assert len(manifest["workload"]["test_designs"]) == 1
        # Provenance: these metrics came from the injected fixture
        # dataset, not from preparing spec.workload.
        assert manifest["workload"]["dataset_injected"] is True


class TestLegacyParity:
    """run_experiment must reproduce the legacy call-paths exactly."""

    def test_lhnn_matches_train_lhnn(self, dataset, tmp_path):
        from repro.models.lhnn import LHNNConfig
        from repro.train import TrainConfig, evaluate_lhnn, train_lhnn
        result = run_experiment(tiny_spec("lhnn", tmp_path),
                                dataset=dataset, save=False)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            model = train_lhnn(dataset.train_samples(),
                               TrainConfig(epochs=2),
                               LHNNConfig(hidden=8))
            legacy = evaluate_lhnn(model, dataset.test_samples())
        assert result.metrics == legacy

    def test_mlp_matches_train_mlp(self, dataset, tmp_path):
        from repro.train import TrainConfig, evaluate_mlp, train_mlp
        result = run_experiment(tiny_spec("mlp", tmp_path),
                                dataset=dataset, save=False)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            model = train_mlp(dataset.train_samples(), TrainConfig(epochs=2),
                              hidden=8)
            legacy = evaluate_mlp(model, dataset.test_samples())
        assert result.metrics == legacy

    def test_legacy_shims_warn(self, dataset):
        from repro.train import TrainConfig, evaluate_mlp, train_mlp
        with pytest.warns(DeprecationWarning, match="train_mlp"):
            model = train_mlp(dataset.train_samples(), TrainConfig(epochs=1),
                              hidden=4)
        with pytest.warns(DeprecationWarning, match="evaluate_mlp"):
            evaluate_mlp(model, dataset.test_samples())


class TestRunnerBehaviour:
    def test_save_false_writes_nothing(self, dataset, tmp_path):
        result = run_experiment(tiny_spec("mlp", tmp_path), dataset=dataset,
                                save=False)
        assert result.checkpoint_path == ""
        assert result.manifest_path == ""
        assert not list(tmp_path.iterdir())

    def test_bad_params_fail_before_training(self, dataset, tmp_path):
        spec = apply_overrides(
            ExperimentSpec(),
            ["model.family=mlp", "train.epochs=1",
             f"output.artifacts_dir={tmp_path}", "model.params.nope=1"])
        with pytest.raises(SpecError,
                           match=r"\['nope'\] unknown for family 'mlp'"):
            run_experiment(spec, dataset=dataset, save=False)

    def test_mistyped_param_value_fails_before_training(self, dataset,
                                                        tmp_path):
        """--set model.params.hidden.units=8 from an empty params table
        creates hidden={'units': 8}; the type check against the knob's
        registered default must reject it before any training."""
        spec = apply_overrides(
            ExperimentSpec(),
            ["train.epochs=1", f"output.artifacts_dir={tmp_path}",
             "model.params.hidden.units=8"])
        with pytest.raises(SpecError,
                           match="model.params.hidden must be int"):
            run_experiment(spec, dataset=dataset, save=False)

    def test_lhnn_params_cover_config_fields(self, dataset, tmp_path):
        spec = tiny_spec("lhnn", tmp_path, ["model.params.use_jointing=false"])
        result = run_experiment(spec, dataset=dataset, save=False)
        assert result.model.head_reg is None

    def test_channel_mismatch_with_injected_dataset(self, dataset, tmp_path):
        spec = tiny_spec("mlp", tmp_path, ["model.channels=2"])
        with pytest.raises(SpecError, match="1 channel"):
            run_experiment(spec, dataset=dataset, save=False)

    def test_programmatic_params_channels_rejected(self, dataset, tmp_path):
        """Dataclass-built specs never pass through spec_from_dict; the
        runner must still reject the channels smuggle with a SpecError."""
        spec = tiny_spec("mlp", tmp_path)
        spec.model.params["channels"] = 2
        with pytest.raises(SpecError, match="model.params.channels"):
            run_experiment(spec, dataset=dataset, save=False)

    def test_report_crop_matches_runtime_evaluator(self, dataset, tmp_path):
        """cli evaluate's per-design report (crop from the checkpoint's
        spec metadata) must agree with the runtime evaluator's F1."""
        import numpy as np
        from repro.eval.reporting import per_design_report
        spec = tiny_spec("unet", tmp_path, ["train.crop=8"])
        result = run_experiment(spec, dataset=dataset, save=False)
        rows = per_design_report(result.model, dataset.test_samples(),
                                 crop=8)
        # report rows round to 2 decimals; the values must agree there
        assert np.mean([r["F1"] for r in rows]) == pytest.approx(
            result.metrics["f1"], abs=0.005)

    def test_fingerprint_in_manifest_matches_spec(self, dataset, tmp_path):
        spec = tiny_spec("mlp", tmp_path)
        result = run_experiment(spec, dataset=dataset, save=False)
        assert result.fingerprint == spec_fingerprint(spec)

    def test_duo_channel_experiment(self, tiny_graph_suite, tmp_path):
        duo = CongestionDataset(tiny_graph_suite[:2], channels=2)
        result = run_experiment(
            tiny_spec("mlp", tmp_path, ["model.channels=2"]), dataset=duo)
        from repro.serve.registry import output_channels, restore_model
        model, _ = restore_model(result.checkpoint_path)
        assert output_channels(model) == 2


class TestManifestValidation:
    def make_valid(self, dataset, tmp_path):
        return run_experiment(tiny_spec("mlp", tmp_path),
                              dataset=dataset, save=False).manifest

    def test_valid_manifest_passes(self, dataset, tmp_path):
        validate_result_manifest(self.make_valid(dataset, tmp_path))

    def test_wrong_schema_rejected(self, dataset, tmp_path):
        manifest = dict(self.make_valid(dataset, tmp_path), schema="v0")
        with pytest.raises(SpecError, match="schema"):
            validate_result_manifest(manifest)

    def test_missing_metrics_rejected(self, dataset, tmp_path):
        manifest = dict(self.make_valid(dataset, tmp_path))
        manifest["metrics"] = {"f1": 12.0}
        with pytest.raises(SpecError, match="acc"):
            validate_result_manifest(manifest)

    def test_out_of_range_metric_rejected(self, dataset, tmp_path):
        manifest = dict(self.make_valid(dataset, tmp_path))
        manifest["metrics"] = {"f1": 123.0, "acc": 50.0}
        with pytest.raises(SpecError, match="f1"):
            validate_result_manifest(manifest)

    def test_embedded_spec_must_replay(self, dataset, tmp_path):
        manifest = dict(self.make_valid(dataset, tmp_path))
        manifest["experiment"] = {"model": {"family": "nope"}}
        with pytest.raises(SpecError, match="unknown model family"):
            validate_result_manifest(manifest)
