"""API-test fixtures.

``run_experiment`` intentionally sets the process-wide compute dtype
(exactly like the CLI train path); restore it around every test here so
the dtype-policy suites still see the library's float64 default.
"""

import pytest

from repro.nn import get_default_dtype, set_default_dtype


@pytest.fixture(autouse=True)
def restore_default_dtype():
    prev = get_default_dtype()
    yield
    set_default_dtype(prev)
