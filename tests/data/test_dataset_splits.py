"""Tests for dataset views and split selection."""

import numpy as np
import pytest

from repro.data import (CongestionDataset, SplitResult, enumerate_splits,
                        select_balanced_split)
from repro.data.dataset import standardize


class TestSplits:
    def test_enumerate_count(self):
        splits = list(enumerate_splits(6, test_size=2))
        assert len(splits) == 15  # C(6,2)

    def test_enumerate_partition(self):
        for train, test in enumerate_splits(5, 2):
            assert sorted(train + test) == [0, 1, 2, 3, 4]
            assert not set(train) & set(test)

    def test_balanced_split_minimises_gap(self):
        rates = np.array([0.1, 0.1, 0.1, 0.5, 0.5, 0.5])
        best = select_balanced_split(rates, test_size=2)
        # brute-force check nothing is better
        for train, test in enumerate_splits(6, 2):
            gap = abs(rates[list(train)].mean() - rates[list(test)].mean())
            assert best.rate_gap <= gap + 1e-12

    def test_equal_rates_give_zero_gap(self):
        rates = np.full(6, 0.2)
        best = select_balanced_split(rates, test_size=2)
        assert best.rate_gap == pytest.approx(0.0)

    def test_invalid_test_size(self):
        with pytest.raises(ValueError):
            select_balanced_split(np.ones(4), test_size=4)

    def test_paper_scale_split_shape(self):
        """15 designs, 5 test → 3003 candidate splits; pick one, sizes hold."""
        rng = np.random.default_rng(0)
        rates = rng.uniform(0.0, 0.5, size=15)
        best = select_balanced_split(rates, test_size=5)
        assert len(best.train_indices) == 10
        assert len(best.test_indices) == 5


class TestStandardize:
    def test_zero_mean_unit_std(self):
        rng = np.random.default_rng(0)
        x = rng.normal(5.0, 2.0, size=(200, 3))
        z = standardize(x)
        assert np.allclose(z.mean(axis=0), 0.0, atol=1e-12)
        assert np.allclose(z.std(axis=0), 1.0, atol=1e-12)

    def test_constant_channel_stays_zero(self):
        x = np.ones((10, 2))
        x[:, 1] = np.arange(10)
        z = standardize(x)
        assert np.allclose(z[:, 0], 0.0)


class TestDataset:
    def test_rejects_unlabelled(self, placed_design, routing_result):
        from repro.graph import build_lhgraph
        g = build_lhgraph(placed_design, routing_result.grid, maps=None)
        with pytest.raises(ValueError):
            CongestionDataset([g])

    def test_rejects_bad_channels(self, tiny_graph_suite):
        with pytest.raises(ValueError):
            CongestionDataset(tiny_graph_suite, channels=3)

    def test_uni_channel_shapes(self, tiny_graph_suite):
        ds = CongestionDataset(tiny_graph_suite, channels=1)
        s = ds.sample(0)
        nc = tiny_graph_suite[0].num_gcells
        assert s.features.shape == (nc, 4)
        assert s.cls_target.shape == (nc, 1)
        assert s.image.shape[1] == 4
        assert s.cls_image.shape[1] == 1

    def test_duo_channel_shapes(self, tiny_graph_suite):
        ds = CongestionDataset(tiny_graph_suite, channels=2)
        s = ds.sample(0)
        assert s.cls_target.shape[1] == 2
        assert s.reg_image.shape[1] == 2

    def test_image_matches_features(self, tiny_graph_suite):
        ds = CongestionDataset(tiny_graph_suite)
        s = ds.sample(0)
        g = tiny_graph_suite[0]
        assert np.allclose(
            s.image[0].transpose(1, 2, 0).reshape(g.num_gcells, -1),
            s.features)

    def test_zero_gcell_features_ablation(self, tiny_graph_suite):
        ds = CongestionDataset(tiny_graph_suite, zero_gcell_features=True)
        s = ds.sample(0)
        assert np.allclose(s.features[:, 0:3], 0.0)
        # terminal-mask channel survives
        assert np.abs(s.features[:, 3]).sum() > 0

    def test_split_partition(self, tiny_graph_suite):
        ds = CongestionDataset(tiny_graph_suite)
        split = ds.split
        all_idx = sorted(split.train_indices + split.test_indices)
        assert all_idx == list(range(len(tiny_graph_suite)))

    def test_train_test_samples(self, tiny_graph_suite):
        ds = CongestionDataset(tiny_graph_suite)
        assert len(ds.train_samples()) == len(ds.split.train_indices)
        assert len(ds.test_samples()) == len(ds.split.test_indices)

    def test_table1_rows(self, tiny_graph_suite):
        ds = CongestionDataset(tiny_graph_suite)
        rows = ds.table1_rows()
        assert [r["split"] for r in rows] == ["Training", "Testing", "Total"]
        for row in rows:
            assert row["congestion_rate_%"] >= 0

    def test_congestion_rates_vector(self, tiny_graph_suite):
        ds = CongestionDataset(tiny_graph_suite)
        rates = ds.congestion_rates(0)
        assert len(rates) == len(tiny_graph_suite)
        assert (rates >= 0).all() and (rates <= 1).all()
