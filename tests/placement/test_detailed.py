"""Tests for the detailed-placement swap refinement."""

import numpy as np
import pytest

from repro.circuit import DesignSpec, generate_design
from repro.placement import (detailed_place, hpwl, legalize, overlap_count,
                             place)


@pytest.fixture
def legal_design():
    d = generate_design(DesignSpec(name="dp", seed=81, num_movable=120,
                                   num_terminals=10, num_macros=1,
                                   die_size=32.0))
    place(d)
    return d


class TestDetailedPlace:
    def test_never_increases_hpwl(self, legal_design):
        d = legal_design.copy()
        result = detailed_place(d)
        assert result.hpwl_after <= result.hpwl_before + 1e-9
        assert result.improvement >= 0.0

    def test_preserves_legality(self, legal_design):
        d = legal_design.copy()
        detailed_place(d)
        assert overlap_count(d) == 0

    def test_fixed_cells_untouched(self, legal_design):
        d = legal_design.copy()
        fx = d.cell_x[d.cell_fixed].copy()
        detailed_place(d)
        assert np.allclose(d.cell_x[d.cell_fixed], fx)

    def test_rows_preserved(self, legal_design):
        d = legal_design.copy()
        ys = d.cell_y.copy()
        detailed_place(d)
        assert np.allclose(d.cell_y, ys)  # swaps are horizontal only

    def test_hpwl_consistency(self, legal_design):
        d = legal_design.copy()
        result = detailed_place(d)
        assert result.hpwl_after == pytest.approx(hpwl(d))

    def test_converges_early_when_no_improvement(self, legal_design):
        d = legal_design.copy()
        detailed_place(d, max_passes=5)
        again = detailed_place(d, max_passes=5)
        assert again.swaps_applied == 0
        assert again.passes == 1
