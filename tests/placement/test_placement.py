"""Tests for the placement substrate: quadratic solve, spreading, legalise."""

import numpy as np
import pytest

from repro.circuit import Design, DesignSpec, generate_design
from repro.placement import (PlacementConfig, QuadraticPlacer, SpreadingConfig,
                             compute_bin_density, density_map, hpwl, legalize,
                             overlap_count, per_net_hpwl, place, row_segments,
                             solve_quadratic, spread)


@pytest.fixture
def design():
    return generate_design(DesignSpec(name="place-t", seed=21,
                                      num_movable=150, num_terminals=16,
                                      num_macros=2, die_size=32.0))


def two_cell_design():
    """One movable cell between two fixed anchors."""
    return Design(
        name="anchors",
        cell_names=["m", "f0", "f1"],
        cell_w=np.array([1.0, 1.0, 1.0]),
        cell_h=np.array([1.0, 1.0, 1.0]),
        cell_fixed=np.array([False, True, True]),
        cell_x=np.array([0.0, 0.0, 8.0]),
        cell_y=np.array([0.0, 4.0, 4.0]),
        net_names=["l", "r"],
        net_ptr=np.array([0, 2, 4]),
        pin_cell=np.array([0, 1, 0, 2]),
        pin_dx=np.array([0.5, 0.5, 0.5, 0.5]),
        pin_dy=np.array([0.5, 0.5, 0.5, 0.5]),
        die=(0.0, 0.0, 10.0, 10.0),
    )


class TestQuadratic:
    def test_movable_pulled_to_midpoint(self):
        d = two_cell_design()
        x, y = QuadraticPlacer(d).solve()
        # centre of movable = average of fixed anchors (4.5, 4.5)
        assert x[0] + 0.5 == pytest.approx(4.5, abs=1e-4)
        assert y[0] + 0.5 == pytest.approx(4.5, abs=1e-4)

    def test_reduces_hpwl(self, design):
        d = design.copy()
        before = hpwl(d)
        solve_quadratic(d)
        assert hpwl(d) < before

    def test_fixed_cells_untouched(self, design):
        d = design.copy()
        fixed_x = d.cell_x[d.cell_fixed].copy()
        solve_quadratic(d)
        assert np.allclose(d.cell_x[d.cell_fixed], fixed_x)

    def test_anchor_pull(self):
        d = two_cell_design()
        solver = QuadraticPlacer(d)
        anchors_x = np.array([9.0])
        anchors_y = np.array([9.0])
        x_weak, _ = solver.solve(anchors_x, anchors_y, anchor_weight=0.01)
        x_strong, _ = solver.solve(anchors_x, anchors_y, anchor_weight=100.0)
        assert x_strong[0] > x_weak[0]
        assert x_strong[0] + 0.5 == pytest.approx(9.0, abs=0.1)

    def test_star_model_for_large_nets(self, design):
        solver = QuadraticPlacer(design)
        deg = design.net_degree()
        if (deg > 4).any():
            assert solver._num_star == int((deg > 4).sum())

    def test_solutions_inside_die(self, design):
        d = design.copy()
        solve_quadratic(d)
        xl, yl, xh, yh = d.die
        mv = ~d.cell_fixed
        assert np.all(d.cell_x[mv] >= xl - 1e-9)
        assert np.all(d.cell_x[mv] + d.cell_w[mv] <= xh + 1e-9)


class TestSpreading:
    def test_reduces_peak_density(self, design):
        d = design.copy()
        solve_quadratic(d)  # collapses cells → dense bins
        before = compute_bin_density(d, 8, 8).max()
        spread(d, SpreadingConfig(bins_x=8, bins_y=8, iterations=20), seed=0)
        after = compute_bin_density(d, 8, 8).max()
        assert after <= before

    def test_blockage_reduces_capacity(self, design):
        density = compute_bin_density(design, 8, 8)
        assert np.isfinite(density).all()

    def test_cells_stay_inside_die(self, design):
        d = design.copy()
        spread(d, SpreadingConfig(iterations=10), seed=1)
        xl, yl, xh, yh = d.die
        mv = ~d.cell_fixed
        assert np.all(d.cell_x[mv] + d.cell_w[mv] <= xh + 1e-9)
        assert np.all(d.cell_y[mv] >= yl - 1e-9)


class TestLegalize:
    def test_no_overlaps_after(self, design):
        d = design.copy()
        solve_quadratic(d)
        legalize(d)
        assert overlap_count(d) == 0

    def test_cells_on_rows(self, design):
        d = design.copy()
        legalize(d)
        mv = ~d.cell_fixed
        offs = (d.cell_y[mv] - d.die[1]) / d.row_height
        assert np.allclose(offs, np.round(offs), atol=1e-9)

    def test_row_segments_exclude_macros(self, design):
        segments = row_segments(design)
        xl, _, xh, _ = design.die
        total_free = sum(s1 - s0 for row in segments for s0, s1 in row)
        full = len(segments) * (xh - xl)
        assert total_free < full  # macros removed some span

    def test_no_overlaps_when_rows_overfill(self):
        """Regression (hypothesis seed 122): the old overfill fallback
        blind-stacked cells at the die edge, overlapping seated cells."""
        spec = DesignSpec(seed=122, num_movable=60, num_terminals=6,
                          num_macros=1, die_size=24.0, utilization=0.3)
        d = generate_design(spec)
        legalize(d)
        assert overlap_count(d) == 0

    def test_no_overlaps_under_extreme_overfill(self):
        for seed in (4, 10, 14):  # previously-failing dense configs
            spec = DesignSpec(seed=seed, num_movable=120, num_terminals=8,
                              num_macros=2, die_size=16.0, utilization=0.6)
            d = generate_design(spec)
            legalize(d)
            assert overlap_count(d) == 0


class TestDriver:
    def test_place_end_to_end(self, design):
        d = design.copy()
        result = place(d, PlacementConfig(outer_iterations=2))
        assert result.hpwl_global <= result.hpwl_initial
        assert overlap_count(d) == 0
        assert result.hpwl_final > 0

    def test_metrics_helpers(self, design):
        values = per_net_hpwl(design)
        assert len(values) == design.num_nets
        assert hpwl(design) == pytest.approx(
            float(values[design.net_degree() >= 2].sum()))

    def test_density_map_mass_conservation(self, design):
        dm = density_map(design, 8, 8)
        xl, yl, xh, yh = design.die
        bin_area = ((xh - xl) / 8) * ((yh - yl) / 8)
        total_cell_area = float((design.cell_w * design.cell_h).sum())
        assert dm.sum() * bin_area == pytest.approx(total_cell_area, rel=0.02)
