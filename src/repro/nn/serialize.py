"""Model checkpointing: save/load Module parameters as ``.npz`` archives.

The autograd engine stores parameters as plain numpy arrays, so a
checkpoint is just a compressed npz of the state dict plus a small JSON
header describing the architecture for sanity checks at load time.
"""

from __future__ import annotations

import json
import os
import zipfile

import numpy as np

from .layers import Module

__all__ = ["save_checkpoint", "load_checkpoint", "read_checkpoint_header",
           "CheckpointError"]

_HEADER_KEY = "__repro_header__"


class CheckpointError(RuntimeError):
    """Raised when a checkpoint is malformed or mismatches the model."""


def save_checkpoint(model: Module, path: str,
                    metadata: dict | None = None) -> str:
    """Write ``model``'s parameters (and optional metadata) to ``path``.

    The file is a standard ``.npz``; parameter names become array keys
    (dots replaced since npz keys allow them as-is) and a JSON header
    records parameter count and user metadata.
    """
    state = model.state_dict()
    header = {
        "format": "repro-checkpoint-v1",
        "num_parameters": int(model.num_parameters()),
        "parameter_names": sorted(state),
        "metadata": metadata or {},
    }
    payload = dict(state)
    payload[_HEADER_KEY] = np.frombuffer(
        json.dumps(header).encode(), dtype=np.uint8)
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    np.savez_compressed(path, **payload)
    # numpy appends .npz when missing; normalise the reported path.
    return path if path.endswith(".npz") else path + ".npz"


def _resolve_path(path: str) -> str:
    if not os.path.exists(path) and os.path.exists(path + ".npz"):
        return path + ".npz"
    return path


def _read_archive(path: str,
                  with_state: bool = True) -> tuple[dict, dict | None]:
    """Read ``(header, state)`` from ``path``.

    ``with_state=False`` decompresses only the header member — the cheap
    path for metadata-only readers like
    :func:`read_checkpoint_header`.  Corrupt, truncated or non-npz files
    surface as :class:`CheckpointError` (numpy raises a zoo of
    ``BadZipFile`` / ``OSError`` / ``ValueError`` depending on *how* the
    bytes are wrong).
    """
    if not os.path.exists(path):
        raise CheckpointError(f"{path}: no such checkpoint")
    try:
        with np.load(path) as archive:
            if _HEADER_KEY not in archive:
                raise CheckpointError(f"{path}: not a repro checkpoint")
            header = json.loads(
                bytes(archive[_HEADER_KEY].tobytes()).decode())
            state = ({k: archive[k] for k in archive.files
                      if k != _HEADER_KEY} if with_state else None)
    except (zipfile.BadZipFile, OSError, ValueError, EOFError,
            json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise CheckpointError(
            f"{path}: unreadable checkpoint ({exc})") from exc
    if header.get("format") != "repro-checkpoint-v1":
        raise CheckpointError(f"{path}: unknown format "
                              f"{header.get('format')!r}")
    return header, state


def read_checkpoint_header(path: str) -> dict:
    """Return the JSON header of a checkpoint without needing a model.

    The header carries ``format``, ``num_parameters``,
    ``parameter_names`` and ``metadata`` (where
    :func:`repro.serve.registry.save_model` records the typed
    architecture description).  Only the header member is decompressed —
    parameter arrays are left untouched.  Raises
    :class:`CheckpointError` on any malformed file.
    """
    header, _ = _read_archive(_resolve_path(path), with_state=False)
    return header


def load_checkpoint(model: Module, path: str) -> dict:
    """Load parameters from ``path`` into ``model``; returns the metadata.

    Raises :class:`CheckpointError` on an unreadable file, missing
    header, parameter-name mismatch or shape mismatch (the latter two
    delegated to ``load_state_dict``).
    """
    path = _resolve_path(path)
    header, state = _read_archive(path)
    try:
        model.load_state_dict(state)
    except (KeyError, ValueError) as exc:
        raise CheckpointError(f"{path}: {exc}") from exc
    return header.get("metadata", {})
