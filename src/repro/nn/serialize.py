"""Model checkpointing: save/load Module parameters as ``.npz`` archives.

The autograd engine stores parameters as plain numpy arrays, so a
checkpoint is just a compressed npz of the state dict plus a small JSON
header describing the architecture for sanity checks at load time.

Durability (via :mod:`repro.store` primitives):

* **Atomic save** — the archive is built in memory and lands on disk
  through tmp + fsync + rename, so a crash mid-save leaves the previous
  checkpoint intact, never a torn file.
* **Checksum sidecar** — ``<file>.sha256`` records the archive's size
  and SHA-256.  A footer *inside* the file would break the zip
  end-of-central-directory scan, so checkpoints use a sidecar where
  pickled blobs use an in-file footer.  On read, a digest mismatch at
  matching size raises a :class:`CheckpointError` with
  ``corrupt=True`` (the signal :mod:`repro.serve.registry` uses to
  quarantine); a size mismatch means a stale sidecar and is skipped —
  truncation is still caught structurally by the zip CRC.
* **Transient-read retry** — ``EIO``-class errors during the read are
  retried with bounded backoff before surfacing.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import zipfile

import numpy as np

from ..store.blobs import atomic_write_bytes, read_bytes
from ..testing.faults import current_injector
from .layers import Module

__all__ = ["save_checkpoint", "load_checkpoint", "read_checkpoint_header",
           "CheckpointError", "checkpoint_sidecar_path"]

_HEADER_KEY = "__repro_header__"


class CheckpointError(RuntimeError):
    """Raised when a checkpoint is malformed or mismatches the model.

    ``corrupt`` is True when the *bytes* are damaged (checksum mismatch,
    torn zip, mangled header) as opposed to absent files or healthy
    files of an unknown format — callers use it to decide whether the
    file deserves quarantine.
    """

    def __init__(self, message: str, *, corrupt: bool = False):
        super().__init__(message)
        self.corrupt = corrupt


def checkpoint_sidecar_path(path: str) -> str:
    """The checksum sidecar path for a checkpoint file."""
    return path + ".sha256"


def save_checkpoint(model: Module, path: str,
                    metadata: dict | None = None) -> str:
    """Write ``model``'s parameters (and optional metadata) to ``path``.

    The file is a standard ``.npz``; parameter names become array keys
    (dots replaced since npz keys allow them as-is) and a JSON header
    records parameter count and user metadata.  The write is atomic
    (tmp + fsync + rename) and followed by a ``.sha256`` sidecar, so an
    interrupted save never destroys the previous checkpoint.
    """
    state = model.state_dict()
    header = {
        "format": "repro-checkpoint-v1",
        "num_parameters": int(model.num_parameters()),
        "parameter_names": sorted(state),
        "metadata": metadata or {},
    }
    payload = dict(state)
    payload[_HEADER_KEY] = np.frombuffer(
        json.dumps(header).encode(), dtype=np.uint8)
    # np.savez_compressed appends ``.npz`` only to *str* paths; writing
    # to a buffer keeps the name ours and makes the disk write atomic.
    final = path if path.endswith(".npz") else path + ".npz"
    buf = io.BytesIO()
    np.savez_compressed(buf, **payload)
    data = buf.getvalue()
    directory = os.path.dirname(os.path.abspath(final))
    os.makedirs(directory, exist_ok=True)
    atomic_write_bytes(final, data, faults=current_injector(),
                       point="checkpoint.write")
    sidecar = json.dumps({
        "size": len(data),
        "sha256": hashlib.sha256(data).hexdigest(),
    }, sort_keys=True).encode()
    # Sidecar lands *after* the archive: a crash between the two leaves
    # a stale (size-mismatched) sidecar, which readers skip.
    atomic_write_bytes(checkpoint_sidecar_path(final), sidecar,
                       faults=current_injector(),
                       point="checkpoint.write")
    return final


def _resolve_path(path: str) -> str:
    if not os.path.exists(path) and os.path.exists(path + ".npz"):
        return path + ".npz"
    return path


def _verify_sidecar(path: str, data: bytes) -> None:
    """Check ``data`` against the ``.sha256`` sidecar, if one matches.

    No sidecar ⇒ legacy checkpoint, read unverified.  Size mismatch ⇒
    the sidecar is stale (crash between archive and sidecar writes) and
    is ignored — a *truncated archive* still fails the zip CRC check.
    Same size but different digest ⇒ bit rot: corrupt.
    """
    sidecar = checkpoint_sidecar_path(path)
    try:
        with open(sidecar) as handle:
            record = json.load(handle)
    except (OSError, ValueError):
        return
    if int(record.get("size", -1)) != len(data):
        return
    if record.get("sha256") != hashlib.sha256(data).hexdigest():
        raise CheckpointError(
            f"{path}: checksum mismatch against {sidecar}", corrupt=True)


def _read_archive(path: str,
                  with_state: bool = True) -> tuple[dict, dict | None]:
    """Read ``(header, state)`` from ``path``.

    ``with_state=False`` skips materialising the parameter arrays — the
    cheap path for metadata-only readers like
    :func:`read_checkpoint_header`.  Corrupt, truncated or non-npz files
    surface as :class:`CheckpointError` with ``corrupt=True`` (numpy
    raises a zoo of ``BadZipFile`` / ``OSError`` / ``ValueError``
    depending on *how* the bytes are wrong); transient I/O errors are
    retried with backoff before giving up.
    """
    if not os.path.exists(path):
        raise CheckpointError(f"{path}: no such checkpoint")
    try:
        data = read_bytes(path, faults=current_injector(),
                          point="checkpoint.read")
    except OSError as exc:
        raise CheckpointError(
            f"{path}: unreadable checkpoint ({exc})") from exc
    _verify_sidecar(path, data)
    try:
        with np.load(io.BytesIO(data)) as archive:
            if _HEADER_KEY not in archive:
                raise CheckpointError(f"{path}: not a repro checkpoint")
            header = json.loads(
                bytes(archive[_HEADER_KEY].tobytes()).decode())
            state = ({k: archive[k] for k in archive.files
                      if k != _HEADER_KEY} if with_state else None)
    except (zipfile.BadZipFile, OSError, ValueError, EOFError,
            json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise CheckpointError(
            f"{path}: unreadable checkpoint ({exc})",
            corrupt=True) from exc
    if header.get("format") != "repro-checkpoint-v1":
        raise CheckpointError(f"{path}: unknown format "
                              f"{header.get('format')!r}")
    return header, state


def read_checkpoint_header(path: str) -> dict:
    """Return the JSON header of a checkpoint without needing a model.

    The header carries ``format``, ``num_parameters``,
    ``parameter_names`` and ``metadata`` (where
    :func:`repro.serve.registry.save_model` records the typed
    architecture description).  Raises :class:`CheckpointError` on any
    malformed file.
    """
    header, _ = _read_archive(_resolve_path(path), with_state=False)
    return header


def load_checkpoint(model: Module, path: str) -> dict:
    """Load parameters from ``path`` into ``model``; returns the metadata.

    Raises :class:`CheckpointError` on an unreadable file, missing
    header, parameter-name mismatch or shape mismatch (the latter two
    delegated to ``load_state_dict``).
    """
    path = _resolve_path(path)
    header, state = _read_archive(path)
    try:
        model.load_state_dict(state)
    except (KeyError, ValueError) as exc:
        raise CheckpointError(f"{path}: {exc}") from exc
    return header.get("metadata", {})
