"""Parameter initialisation schemes.

Deterministic, generator-based variants of the classic Glorot/He schemes so
that every experiment in the reproduction is exactly repeatable from a seed
(the paper reports mean ± std over 5 random seeds; we do the same).

All initialisers emit arrays in the engine's default compute dtype
(:func:`repro.nn.tensor.get_default_dtype`): the draw itself happens in
float64 for seed-stable streams, then is cast once, so a float32 model
and its float64 twin share identical (up to rounding) initial weights.
"""

from __future__ import annotations

import math

import numpy as np

from .tensor import get_default_dtype

__all__ = ["xavier_uniform", "xavier_normal", "kaiming_uniform",
           "kaiming_normal", "zeros", "ones", "normal"]


def _cast(values: np.ndarray) -> np.ndarray:
    """Cast a freshly drawn float64 array to the default compute dtype."""
    return values.astype(get_default_dtype(), copy=False)


def _fan(shape: tuple[int, ...]) -> tuple[int, int]:
    """Compute (fan_in, fan_out) for dense or convolutional weight shapes."""
    if len(shape) == 2:
        fan_in, fan_out = shape[0], shape[1]
    elif len(shape) == 4:  # (out_ch, in_ch, kh, kw)
        receptive = shape[2] * shape[3]
        fan_in = shape[1] * receptive
        fan_out = shape[0] * receptive
    elif len(shape) == 1:
        fan_in = fan_out = shape[0]
    else:
        raise ValueError(f"unsupported weight shape {shape}")
    return fan_in, fan_out


def xavier_uniform(shape, rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot uniform: U(-a, a) with a = gain * sqrt(6 / (fan_in + fan_out))."""
    fan_in, fan_out = _fan(tuple(shape))
    a = gain * math.sqrt(6.0 / (fan_in + fan_out))
    return _cast(rng.uniform(-a, a, size=shape))


def xavier_normal(shape, rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot normal: N(0, gain^2 * 2 / (fan_in + fan_out))."""
    fan_in, fan_out = _fan(tuple(shape))
    std = gain * math.sqrt(2.0 / (fan_in + fan_out))
    return _cast(rng.normal(0.0, std, size=shape))


def kaiming_uniform(shape, rng: np.random.Generator, a: float = math.sqrt(5)) -> np.ndarray:
    """He uniform (PyTorch's Linear default): U(-b, b), b = sqrt(6/((1+a^2) fan_in))."""
    fan_in, _ = _fan(tuple(shape))
    gain = math.sqrt(2.0 / (1.0 + a * a))
    bound = gain * math.sqrt(3.0 / fan_in)
    return _cast(rng.uniform(-bound, bound, size=shape))


def kaiming_normal(shape, rng: np.random.Generator) -> np.ndarray:
    """He normal: N(0, 2 / fan_in), suited to ReLU stacks."""
    fan_in, _ = _fan(tuple(shape))
    return _cast(rng.normal(0.0, math.sqrt(2.0 / fan_in), size=shape))


def zeros(shape) -> np.ndarray:
    """All-zero initialiser (biases)."""
    return np.zeros(shape, dtype=get_default_dtype())


def ones(shape) -> np.ndarray:
    """All-one initialiser (normalisation gains)."""
    return np.ones(shape, dtype=get_default_dtype())


def normal(shape, rng: np.random.Generator, std: float = 0.02) -> np.ndarray:
    """N(0, std^2) initialiser (DCGAN/Pix2Pix convention)."""
    return _cast(rng.normal(0.0, std, size=shape))
