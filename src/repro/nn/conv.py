"""Convolutional layers for the CNN baselines (U-Net, Pix2Pix).

All tensors use the NCHW layout.  Convolutions are computed via the classic
im2col lowering (patch extraction → one big matmul) which keeps the autograd
rules simple: the backward pass is col2im plus two matmuls.

These layers exist so the paper's baselines — a U-Net and a Pix2Pix cGAN —
can be trained on the same numpy autograd engine as LHNN, replacing the
"top PyTorch implementations in Github" the authors used.

Performance notes
-----------------
* The im2col/col2im index plans depend only on ``(channels, H, W,
  kernel, stride, pad)``; they are memoised (:func:`_patch_indices` /
  :func:`_scatter_plan`), so repeated forward *and* backward calls at a
  fixed geometry — every step of U-Net/Pix2Pix training — stop
  rebuilding the gather/scatter index arrays.
* :func:`col2im`'s scatter-add runs as a ``np.bincount`` over a cached
  raveled index plan instead of ``np.add.at`` (which dispatches per
  element); on CPU this is typically ~5–10× faster.  The bincount
  accumulates in float64 and is cast back to the compute dtype — a free
  accuracy bonus for float32 backward passes.
"""

from __future__ import annotations

from functools import lru_cache
from time import perf_counter as _perf_counter

import numpy as np

from ..perf import PERF
from . import init as init_mod
from .layers import Module, Parameter
from .tensor import Tensor, as_tensor, get_default_dtype

__all__ = ["im2col", "col2im", "Conv2d", "ConvTranspose2d", "MaxPool2d",
           "AvgPool2d", "BatchNorm2d", "UpsampleNearest2d", "conv_output_size"]


def conv_output_size(size: int, kernel: int, stride: int, pad: int) -> int:
    """Spatial output size of a convolution along one axis."""
    return (size + 2 * pad - kernel) // stride + 1


@lru_cache(maxsize=256)
def _patch_indices(channels: int, height: int, width: int, kh: int, kw: int,
                   stride: int, pad: int):
    """Index arrays mapping a padded image to its im2col patch matrix.

    Memoised per geometry — callers must treat the returned arrays as
    read-only (they are shared across every conv at this shape).
    """
    out_h = conv_output_size(height, kh, stride, pad)
    out_w = conv_output_size(width, kw, stride, pad)
    i0 = np.repeat(np.arange(kh), kw)
    i0 = np.tile(i0, channels)
    i1 = stride * np.repeat(np.arange(out_h), out_w)
    j0 = np.tile(np.arange(kw), kh * channels)
    j1 = stride * np.tile(np.arange(out_w), out_h)
    i = i0.reshape(-1, 1) + i1.reshape(1, -1)
    j = j0.reshape(-1, 1) + j1.reshape(1, -1)
    k = np.repeat(np.arange(channels), kh * kw).reshape(-1, 1)
    return k, i, j, out_h, out_w


@lru_cache(maxsize=256)
def _scatter_plan(channels: int, height: int, width: int, kh: int, kw: int,
                  stride: int, pad: int):
    """Raveled scatter indices for :func:`col2im` at one geometry.

    Flattens the (channel, row, col) patch coordinates into indices of a
    flat ``channels * padded_h * padded_w`` image so the scatter-add can
    run as a single ``np.bincount`` per batch image.
    """
    k, i, j, _, _ = _patch_indices(channels, height, width, kh, kw,
                                   stride, pad)
    padded_h = height + 2 * pad
    padded_w = width + 2 * pad
    flat = ((k * padded_h + i) * padded_w + j).ravel()
    return flat, padded_h, padded_w


def im2col(x: np.ndarray, kh: int, kw: int, stride: int, pad: int) -> np.ndarray:
    """Extract sliding patches: (N,C,H,W) → (N, C*kh*kw, out_h*out_w)."""
    n, c, h, w = x.shape
    x_pad = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad))) if pad else x
    k, i, j, _, _ = _patch_indices(c, h, w, kh, kw, stride, pad)
    return x_pad[:, k, i, j]


def col2im(cols: np.ndarray, x_shape: tuple[int, int, int, int],
           kh: int, kw: int, stride: int, pad: int) -> np.ndarray:
    """Inverse of :func:`im2col`: scatter-add patches back into an image.

    Implemented as one ``np.bincount`` per batch image over a cached
    raveled index plan (see module performance notes).
    """
    n, c, h, w = x_shape
    flat, padded_h, padded_w = _scatter_plan(c, h, w, kh, kw, stride, pad)
    size = c * padded_h * padded_w
    flat_cols = cols.reshape(n, -1)
    x_pad = np.empty((n, size), dtype=cols.dtype)
    for b in range(n):
        # bincount accumulates in float64; assignment casts back.
        x_pad[b] = np.bincount(flat, weights=flat_cols[b], minlength=size)
    x_pad = x_pad.reshape(n, c, padded_h, padded_w)
    if pad:
        return np.ascontiguousarray(x_pad[:, :, pad:-pad, pad:-pad])
    return x_pad


class Conv2d(Module):
    """2-D convolution ``(N, C_in, H, W) → (N, C_out, H', W')``."""

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 rng: np.random.Generator, stride: int = 1, padding: int = 0,
                 bias: bool = True):
        super().__init__()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        shape = (out_channels, in_channels, kernel_size, kernel_size)
        self.weight = Parameter(init_mod.kaiming_normal(shape, rng))
        self.bias = Parameter(init_mod.zeros(out_channels)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        x = as_tensor(x)
        n, c, h, w = x.shape
        kh = kw = self.kernel_size
        stride, pad = self.stride, self.padding
        out_h = conv_output_size(h, kh, stride, pad)
        out_w = conv_output_size(w, kw, stride, pad)

        t0 = _perf_counter() if PERF.enabled else 0.0
        cols = im2col(x.data, kh, kw, stride, pad)          # (N, CKK, L)
        w2d = self.weight.data.reshape(self.out_channels, -1)
        out = np.matmul(w2d, cols)                          # (N, out_c, L)
        out = out.reshape(n, self.out_channels, out_h, out_w)
        if self.bias is not None:
            out = out + self.bias.data.reshape(1, -1, 1, 1)
        if PERF.enabled:
            PERF.record("conv2d.forward", _perf_counter() - t0,
                        out.nbytes + cols.nbytes)

        weight, bias_param = self.weight, self.bias
        x_shape = x.shape

        def backward(g):
            t0 = _perf_counter() if PERF.enabled else 0.0
            g2d = g.reshape(n, self.out_channels, -1)       # (N, out_c, L)
            grad_w = np.einsum("nol,nkl->ok", g2d, cols).reshape(weight.shape)
            grad_cols = np.matmul(w2d.T, g2d)               # (N, CKK, L)
            grad_x = col2im(grad_cols, x_shape, kh, kw, stride, pad)
            grads = [grad_x, grad_w]
            if bias_param is not None:
                grads.append(g.sum(axis=(0, 2, 3)))
            if PERF.enabled:
                PERF.record("conv2d.backward", _perf_counter() - t0,
                            grad_x.nbytes + grad_w.nbytes)
            return tuple(grads)

        parents = (x, weight) if self.bias is None else (x, weight, self.bias)
        return Tensor._make(out, parents, backward)


class ConvTranspose2d(Module):
    """2-D transposed convolution (fractionally-strided), for decoders.

    Output size along each spatial axis is ``stride*(in-1) + kernel - 2*pad``.
    """

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 rng: np.random.Generator, stride: int = 1, padding: int = 0,
                 bias: bool = True):
        super().__init__()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        shape = (in_channels, out_channels, kernel_size, kernel_size)
        self.weight = Parameter(init_mod.kaiming_normal(shape, rng))
        self.bias = Parameter(init_mod.zeros(out_channels)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        x = as_tensor(x)
        n, c, h, w = x.shape
        k = self.kernel_size
        stride, pad = self.stride, self.padding
        out_h = stride * (h - 1) + k - 2 * pad
        out_w = stride * (w - 1) + k - 2 * pad
        out_shape = (n, self.out_channels, out_h, out_w)

        x2d = x.data.reshape(n, c, h * w)                    # (N, in_c, L)
        w2d = self.weight.data.reshape(c, -1)                # (in_c, out_c*k*k)
        cols = np.matmul(w2d.T, x2d)                         # (N, out_c*k*k, L)
        out = col2im(cols, out_shape, k, k, stride, pad)
        if self.bias is not None:
            out = out + self.bias.data.reshape(1, -1, 1, 1)

        weight, bias_param = self.weight, self.bias

        def backward(g):
            g_cols = im2col(g, k, k, stride, pad)            # (N, out_c*k*k, L)
            grad_x = np.matmul(w2d, g_cols).reshape(n, c, h, w)
            grad_w = np.einsum("nil,nkl->ik", x2d, g_cols).reshape(weight.shape)
            grads = [grad_x, grad_w]
            if bias_param is not None:
                grads.append(g.sum(axis=(0, 2, 3)))
            return tuple(grads)

        parents = (x, weight) if self.bias is None else (x, weight, self.bias)
        return Tensor._make(out, parents, backward)


class MaxPool2d(Module):
    """Non-overlapping max pooling (kernel == stride); spatial dims must divide."""

    def __init__(self, kernel_size: int = 2):
        super().__init__()
        self.k = kernel_size

    def forward(self, x: Tensor) -> Tensor:
        x = as_tensor(x)
        n, c, h, w = x.shape
        k = self.k
        if h % k or w % k:
            raise ValueError(f"spatial dims {(h, w)} not divisible by pool {k}")
        blocks = x.data.reshape(n, c, h // k, k, w // k, k)
        out = blocks.max(axis=(3, 5))
        # Break ties: keep only the first max per block so gradients are not
        # double-counted.
        flat = blocks.transpose(0, 1, 2, 4, 3, 5).reshape(n, c, h // k, w // k, k * k)
        first = np.zeros_like(flat)
        idx = flat.argmax(axis=-1)
        np.put_along_axis(first, idx[..., None], 1.0, axis=-1)
        mask = first.reshape(n, c, h // k, w // k, k, k)

        def backward(g):
            g_blocks = mask * g[:, :, :, :, None, None]
            # (n, c, h//k, w//k, k, k) → (n, c, h, w)
            g_full = g_blocks.transpose(0, 1, 2, 4, 3, 5).reshape(n, c, h, w)
            return (g_full,)

        return Tensor._make(out, (x,), backward)


class AvgPool2d(Module):
    """Non-overlapping average pooling (kernel == stride)."""

    def __init__(self, kernel_size: int = 2):
        super().__init__()
        self.k = kernel_size

    def forward(self, x: Tensor) -> Tensor:
        x = as_tensor(x)
        n, c, h, w = x.shape
        k = self.k
        if h % k or w % k:
            raise ValueError(f"spatial dims {(h, w)} not divisible by pool {k}")
        out = x.data.reshape(n, c, h // k, k, w // k, k).mean(axis=(3, 5))

        def backward(g):
            g_full = np.repeat(np.repeat(g, k, axis=2), k, axis=3) / (k * k)
            return (g_full,)

        return Tensor._make(out, (x,), backward)


class UpsampleNearest2d(Module):
    """Nearest-neighbour upsampling by an integer factor."""

    def __init__(self, scale: int = 2):
        super().__init__()
        self.scale = scale

    def forward(self, x: Tensor) -> Tensor:
        x = as_tensor(x)
        s = self.scale
        out = np.repeat(np.repeat(x.data, s, axis=2), s, axis=3)
        n, c, h, w = x.shape

        def backward(g):
            return (g.reshape(n, c, h, s, w, s).sum(axis=(3, 5)),)

        return Tensor._make(out, (x,), backward)


class BatchNorm2d(Module):
    """Batch normalisation over (N, H, W) per channel with running stats."""

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1):
        super().__init__()
        self.gamma = Parameter(init_mod.ones(num_features))
        self.beta = Parameter(init_mod.zeros(num_features))
        self.eps = eps
        self.momentum = momentum
        dtype = get_default_dtype()
        self.running_mean = np.zeros(num_features, dtype=dtype)
        self.running_var = np.ones(num_features, dtype=dtype)

    def forward(self, x: Tensor) -> Tensor:
        x = as_tensor(x)
        axes = (0, 2, 3)
        if self.training:
            mean = x.data.mean(axis=axes)
            var = x.data.var(axis=axes)
            self.running_mean = ((1 - self.momentum) * self.running_mean
                                 + self.momentum * mean)
            self.running_var = ((1 - self.momentum) * self.running_var
                                + self.momentum * var)
        else:
            mean, var = self.running_mean, self.running_var

        n, c, h, w = x.shape
        count = n * h * w
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x.data - mean.reshape(1, -1, 1, 1)) * inv_std.reshape(1, -1, 1, 1)
        out = (self.gamma.data.reshape(1, -1, 1, 1) * x_hat
               + self.beta.data.reshape(1, -1, 1, 1))

        gamma, beta = self.gamma, self.beta
        training = self.training

        def backward(g):
            grad_gamma = (g * x_hat).sum(axis=axes)
            grad_beta = g.sum(axis=axes)
            gsc = g * gamma.data.reshape(1, -1, 1, 1)
            if training:
                # Full batch-norm backward (mean/var depend on x).
                sum_g = gsc.sum(axis=axes).reshape(1, -1, 1, 1)
                sum_gx = (gsc * x_hat).sum(axis=axes).reshape(1, -1, 1, 1)
                grad_x = (inv_std.reshape(1, -1, 1, 1) / count
                          * (count * gsc - sum_g - x_hat * sum_gx))
            else:
                grad_x = gsc * inv_std.reshape(1, -1, 1, 1)
            return (grad_x, grad_gamma, grad_beta)

        return Tensor._make(out, (x, gamma, beta), backward)
