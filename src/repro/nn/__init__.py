"""``repro.nn`` — a compact reverse-mode autodiff library on numpy.

This subpackage replaces PyTorch/DGL in the reproduction: it provides the
:class:`~repro.nn.tensor.Tensor` autograd type, dense and convolutional
layers, sparse message-passing primitives, optimisers and the paper's loss
functions.  Every model in :mod:`repro.models` (LHNN, MLP, U-Net, Pix2Pix)
is built exclusively from these pieces.
"""

from .tensor import (Tensor, as_tensor, no_grad, is_grad_enabled,
                     set_default_dtype, get_default_dtype, DtypeConfig)
from . import functional
from .layers import (Parameter, Module, Linear, Identity, Activation,
                     Sequential, MLP, ResidualMLP, LayerNorm, Dropout)
from .conv import (Conv2d, ConvTranspose2d, MaxPool2d, AvgPool2d,
                   BatchNorm2d, UpsampleNearest2d)
from .sparse import (SparseMatrix, spmm, row_normalize, degree_vector,
                     block_diag)
from .optim import SGD, Adam, clip_grad_norm, StepLR, CosineLR, two_phase_lr
from .losses import (MSELoss, BCELoss, GammaWeightedBCE, JointLoss,
                     GANLoss, L1Loss)
from .serialize import (save_checkpoint, load_checkpoint,
                        read_checkpoint_header, CheckpointError)

__all__ = [
    "Tensor", "as_tensor", "no_grad", "is_grad_enabled", "functional",
    "set_default_dtype", "get_default_dtype", "DtypeConfig",
    "Parameter", "Module", "Linear", "Identity", "Activation", "Sequential",
    "MLP", "ResidualMLP", "LayerNorm", "Dropout",
    "Conv2d", "ConvTranspose2d", "MaxPool2d", "AvgPool2d", "BatchNorm2d",
    "UpsampleNearest2d",
    "SparseMatrix", "spmm", "row_normalize", "degree_vector", "block_diag",
    "SGD", "Adam", "clip_grad_norm", "StepLR", "CosineLR", "two_phase_lr",
    "MSELoss", "BCELoss", "GammaWeightedBCE", "JointLoss", "GANLoss", "L1Loss",
    "save_checkpoint", "load_checkpoint", "read_checkpoint_header",
    "CheckpointError",
]
