"""Functional interface over :class:`repro.nn.tensor.Tensor`.

Free functions mirroring ``torch.nn.functional`` for the subset of
operations the LHNN reproduction needs.  All functions are differentiable
unless noted otherwise.
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor, as_tensor, get_default_dtype

__all__ = [
    "relu", "leaky_relu", "sigmoid", "tanh", "exp", "log", "sqrt",
    "softmax", "log_softmax", "logsigmoid", "concat", "stack", "where",
    "dropout", "mse", "binary_cross_entropy", "one_hot",
]


def relu(x: Tensor) -> Tensor:
    """Rectified linear unit."""
    return as_tensor(x).relu()


def leaky_relu(x: Tensor, negative_slope: float = 0.2) -> Tensor:
    """Leaky ReLU with configurable negative slope."""
    return as_tensor(x).leaky_relu(negative_slope)


def sigmoid(x: Tensor) -> Tensor:
    """Logistic sigmoid."""
    return as_tensor(x).sigmoid()


def tanh(x: Tensor) -> Tensor:
    """Hyperbolic tangent."""
    return as_tensor(x).tanh()


def exp(x: Tensor) -> Tensor:
    """Elementwise exponential."""
    return as_tensor(x).exp()


def log(x: Tensor) -> Tensor:
    """Elementwise natural logarithm."""
    return as_tensor(x).log()


def sqrt(x: Tensor) -> Tensor:
    """Elementwise square root."""
    return as_tensor(x).sqrt()


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    x = as_tensor(x)
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    e = shifted.exp()
    return e / e.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    x = as_tensor(x)
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def logsigmoid(x: Tensor) -> Tensor:
    """Numerically stable ``log(sigmoid(x))`` = ``-softplus(-x)``."""
    from scipy.special import expit

    x = as_tensor(x)
    data = -np.logaddexp(0.0, -x.data)
    sig = expit(x.data)

    def backward(g):
        return (g * (1.0 - sig),)

    return Tensor._make(data, (x,), backward)


def concat(tensors, axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis`` (differentiable)."""
    return Tensor.concat(tensors, axis=axis)


def stack(tensors, axis: int = 0) -> Tensor:
    """Stack tensors along a new axis (differentiable)."""
    return Tensor.stack(tensors, axis=axis)


def where(condition, a, b) -> Tensor:
    """Elementwise select (differentiable in ``a`` and ``b``)."""
    return Tensor.where(condition, a, b)


def dropout(x: Tensor, p: float, training: bool,
            rng: np.random.Generator | None = None) -> Tensor:
    """Inverted dropout: zero each element w.p. ``p`` and rescale by 1/(1-p)."""
    if not training or p <= 0.0:
        return x
    if rng is None:
        rng = np.random.default_rng()
    mask = (rng.random(x.shape) >= p).astype(x.dtype) / (1.0 - p)
    return x * Tensor(mask)


def mse(pred: Tensor, target) -> Tensor:
    """Mean squared error over all elements."""
    diff = as_tensor(pred) - as_tensor(target)
    return (diff * diff).mean()


def binary_cross_entropy(prob: Tensor, target, eps: float = 1e-7) -> Tensor:
    """Plain BCE on probabilities, clipped for numerical stability."""
    prob = as_tensor(prob).clip(eps, 1.0 - eps)
    target = as_tensor(target)
    loss = -(target * prob.log() + (1.0 - target) * (1.0 - prob).log())
    return loss.mean()


def one_hot(indices: np.ndarray, num_classes: int) -> np.ndarray:
    """Non-differentiable one-hot encoding helper."""
    indices = np.asarray(indices, dtype=np.int64)
    out = np.zeros((indices.size, num_classes), dtype=get_default_dtype())
    out[np.arange(indices.size), indices.reshape(-1)] = 1.0
    return out.reshape(indices.shape + (num_classes,))
