"""Sparse message-passing primitives.

The LH-graph's relation operators — ``G_nc = H`` (G-net → G-cell),
``G_cn = B⁻¹Hᵀ`` (G-cell → G-net) and ``Ā = P⁻¹A`` (lattice) — are large,
fixed sparse matrices.  This module wraps ``scipy.sparse`` CSR matrices in
a small :class:`SparseMatrix` type and provides :func:`spmm`, a
differentiable sparse × dense product: this single op is the entire
"message passing" mechanism DGL provided to the original implementation.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from .tensor import Tensor, as_tensor

__all__ = ["SparseMatrix", "spmm", "row_normalize", "degree_vector",
           "block_diag"]


class SparseMatrix:
    """Immutable CSR sparse matrix used as a graph operator.

    The matrix never carries gradients — graph structure is data, not a
    parameter — but products against it are differentiable in the dense
    operand.
    """

    def __init__(self, matrix):
        if not sp.issparse(matrix):
            matrix = sp.csr_matrix(np.asarray(matrix))
        self.mat = matrix.tocsr().astype(np.float64)
        self._transpose_cache: sp.csr_matrix | None = None

    @property
    def shape(self) -> tuple[int, int]:
        """(rows, cols) of the operator."""
        return self.mat.shape

    @property
    def nnz(self) -> int:
        """Number of stored non-zeros."""
        return self.mat.nnz

    @property
    def T(self) -> sp.csr_matrix:
        """Cached CSR transpose (used by the backward pass)."""
        if self._transpose_cache is None:
            self._transpose_cache = self.mat.T.tocsr()
        return self._transpose_cache

    def toarray(self) -> np.ndarray:
        """Densify (tests / tiny graphs only)."""
        return self.mat.toarray()

    def row_sums(self) -> np.ndarray:
        """Vector of per-row sums (degrees for 0/1 adjacency)."""
        return np.asarray(self.mat.sum(axis=1)).reshape(-1)

    def col_sums(self) -> np.ndarray:
        """Vector of per-column sums."""
        return np.asarray(self.mat.sum(axis=0)).reshape(-1)

    @staticmethod
    def from_coo(rows, cols, vals, shape: tuple[int, int]) -> "SparseMatrix":
        """Build from coordinate lists (duplicates are summed)."""
        m = sp.coo_matrix((np.asarray(vals, dtype=np.float64),
                           (np.asarray(rows), np.asarray(cols))), shape=shape)
        return SparseMatrix(m.tocsr())


def degree_vector(adj: SparseMatrix, axis: int = 1) -> np.ndarray:
    """Degree vector of a 0/1 adjacency: axis=1 → row degrees (paper's D, P);
    axis=0 → column degrees (paper's B)."""
    return adj.row_sums() if axis == 1 else adj.col_sums()


def row_normalize(adj: SparseMatrix) -> SparseMatrix:
    """Return ``Deg⁻¹ · adj`` with zero-degree rows left at zero.

    This realises the paper's normalised operators ``B⁻¹Hᵀ`` and ``P⁻¹A``:
    the aggregation becomes a *mean* over incident neighbours.
    """
    deg = adj.row_sums()
    inv = np.where(deg > 0, 1.0 / np.maximum(deg, 1e-12), 0.0)
    d_inv = sp.diags(inv)
    return SparseMatrix((d_inv @ adj.mat).tocsr())


def block_diag(operators: list[SparseMatrix]) -> SparseMatrix:
    """Block-diagonal composition of several operators.

    This is the substrate of graph batching: stacking per-design relation
    operators on the diagonal turns many small spmm calls into one large
    one, which amortises per-call overhead on CPU.
    """
    if not operators:
        raise ValueError("cannot compose zero operators")
    if len(operators) == 1:
        return operators[0]
    return SparseMatrix(sp.block_diag([op.mat for op in operators],
                                      format="csr"))


def spmm(a: SparseMatrix, x: Tensor) -> Tensor:
    """Differentiable sparse @ dense product ``a @ x``.

    Forward: ``y = A x`` (CSR matvec/matmat).  Backward: ``dx = Aᵀ dy``.
    The sparse operand is constant.
    """
    if not isinstance(a, SparseMatrix):
        a = SparseMatrix(a)
    x = as_tensor(x)
    data = a.mat @ x.data

    def backward(g):
        return (a.T @ g,)

    return Tensor._make(np.asarray(data), (x,), backward)
