"""Sparse message-passing primitives.

The LH-graph's relation operators — ``G_nc = H`` (G-net → G-cell),
``G_cn = B⁻¹Hᵀ`` (G-cell → G-net) and ``Ā = P⁻¹A`` (lattice) — are large,
fixed sparse matrices.  This module wraps ``scipy.sparse`` CSR matrices in
a small :class:`SparseMatrix` type and provides :func:`spmm`, a
differentiable sparse × dense product: this single op is the entire
"message passing" mechanism DGL provided to the original implementation.

Performance notes
-----------------
* CSR data follows the engine's dtype policy: floating input keeps its
  dtype, 0/1 integer adjacency is coerced to the default compute dtype.
  :func:`spmm` aligns the operator with its dense operand
  (:meth:`SparseMatrix.as_dtype`, memoised per dtype) so a float32
  forward pass is a float32 CSR matmat instead of a silent upcast.
* Transposes are computed once and cached (:attr:`SparseMatrix.T`), so
  every backward pass reuses the same CSR transpose.
* :func:`row_normalize` scales the CSR data array directly (one
  ``np.repeat`` + one multiply) instead of materialising a ``diag @ A``
  sparse-sparse product, so the normalised operators used by every
  forward pass are built without an extra CSR allocation pass — spmm
  against them is a single CSR matmat.
"""

from __future__ import annotations

from time import perf_counter as _perf_counter

import numpy as np
import scipy.sparse as sp

from ..perf import PERF
from .tensor import Tensor, as_tensor, get_default_dtype

__all__ = ["SparseMatrix", "spmm", "row_normalize", "degree_vector",
           "block_diag"]


class SparseMatrix:
    """Immutable CSR sparse matrix used as a graph operator.

    The matrix never carries gradients — graph structure is data, not a
    parameter — but products against it are differentiable in the dense
    operand.
    """

    def __init__(self, matrix, dtype=None):
        if isinstance(matrix, SparseMatrix):
            matrix = matrix.mat
        if not sp.issparse(matrix):
            matrix = sp.csr_matrix(np.asarray(matrix))
        mat = matrix.tocsr()
        if dtype is None:
            dtype = (mat.dtype if mat.dtype.kind == "f"
                     else get_default_dtype())
        self.mat = mat.astype(np.dtype(dtype), copy=False)
        self._transpose_cache: SparseMatrix | None = None
        self._dtype_cache: dict[np.dtype, SparseMatrix] = {}

    def __getstate__(self):
        # Only the CSR itself is state; the transpose/dtype memos are
        # per-process (and the transpose memo is cyclic), so pickled
        # operators — e.g. LH-graphs in the pipeline stage cache — stay
        # lean and rebuild their memos lazily.
        return {"mat": self.mat}

    def __setstate__(self, state):
        self.__dict__.update(state)
        # Blobs pickled before the memo attributes existed (pre-dtype-
        # policy stage caches) must still restore to working operators.
        self._transpose_cache = None
        self._dtype_cache = {}

    @property
    def shape(self) -> tuple[int, int]:
        """(rows, cols) of the operator."""
        return self.mat.shape

    @property
    def nnz(self) -> int:
        """Number of stored non-zeros."""
        return self.mat.nnz

    @property
    def dtype(self) -> np.dtype:
        """dtype of the stored CSR data."""
        return self.mat.dtype

    @property
    def T(self) -> "SparseMatrix":
        """Cached transpose, as a :class:`SparseMatrix`.

        Used by every backward pass (``dx = Aᵀ dy``); computed once.
        The transpose's own ``.T`` is this matrix, so round-tripping is
        free and callers never see a raw scipy type.
        """
        if self._transpose_cache is None:
            transposed = SparseMatrix(self.mat.T.tocsr(),
                                      dtype=self.mat.dtype)
            transposed._transpose_cache = self
            self._transpose_cache = transposed
        return self._transpose_cache

    def as_dtype(self, dtype) -> "SparseMatrix":
        """This operator with CSR data cast to ``dtype``, memoised.

        Graphs are built (and cached on disk) in float64; a float32
        forward pass casts each operator exactly once per process and
        reuses the cast CSR (and its cached transpose) afterwards.
        """
        dtype = np.dtype(dtype)
        if dtype == self.mat.dtype:
            return self
        cached = self._dtype_cache.get(dtype)
        if cached is None:
            cached = SparseMatrix(self.mat.astype(dtype))
            self._dtype_cache[dtype] = cached
        return cached

    def __matmul__(self, other):
        """``self @ other``: SparseMatrix × {SparseMatrix, ndarray, Tensor}.

        Dense operands return a dense ndarray (the CSR matmat); sparse
        operands return a wrapped :class:`SparseMatrix`.  For a
        *differentiable* product use :func:`spmm`.
        """
        if isinstance(other, SparseMatrix):
            return SparseMatrix(self.mat @ other.mat)
        if isinstance(other, Tensor):
            other = other.data
        return self.mat @ np.asarray(other)

    def toarray(self) -> np.ndarray:
        """Densify (tests / tiny graphs only)."""
        return self.mat.toarray()

    def row_sums(self) -> np.ndarray:
        """Vector of per-row sums (degrees for 0/1 adjacency)."""
        return np.asarray(self.mat.sum(axis=1)).reshape(-1)

    def col_sums(self) -> np.ndarray:
        """Vector of per-column sums."""
        return np.asarray(self.mat.sum(axis=0)).reshape(-1)

    @staticmethod
    def from_coo(rows, cols, vals, shape: tuple[int, int],
                 dtype=None) -> "SparseMatrix":
        """Build from coordinate lists (duplicates are summed)."""
        vals = np.asarray(vals)
        if vals.dtype.kind != "f":
            vals = vals.astype(dtype or get_default_dtype())
        m = sp.coo_matrix((vals, (np.asarray(rows), np.asarray(cols))),
                          shape=shape)
        return SparseMatrix(m.tocsr(), dtype=dtype)


def degree_vector(adj: SparseMatrix, axis: int = 1) -> np.ndarray:
    """Degree vector of a 0/1 adjacency: axis=1 → row degrees (paper's D, P);
    axis=0 → column degrees (paper's B)."""
    return adj.row_sums() if axis == 1 else adj.col_sums()


def row_normalize(adj: SparseMatrix) -> SparseMatrix:
    """Return ``Deg⁻¹ · adj`` with zero-degree rows left at zero.

    This realises the paper's normalised operators ``B⁻¹Hᵀ`` and ``P⁻¹A``:
    the aggregation becomes a *mean* over incident neighbours.  The
    normalisation is fused into the CSR data array (each stored value is
    scaled by its row's inverse degree) rather than computed as a
    ``diags(inv) @ adj`` sparse-sparse product, so building the operator
    costs one vectorised multiply and downstream :func:`spmm` calls hit
    a plain CSR matmat.
    """
    deg = adj.row_sums()
    inv = np.where(deg > 0, 1.0 / np.maximum(deg, 1e-12), 0.0)
    mat = adj.mat.copy()
    row_lengths = np.diff(mat.indptr)
    mat.data *= np.repeat(inv.astype(mat.dtype, copy=False), row_lengths)
    return SparseMatrix(mat)


def block_diag(operators: list[SparseMatrix]) -> SparseMatrix:
    """Block-diagonal composition of several operators.

    This is the substrate of graph batching: stacking per-design relation
    operators on the diagonal turns many small spmm calls into one large
    one, which amortises per-call overhead on CPU.
    """
    if not operators:
        raise ValueError("cannot compose zero operators")
    if len(operators) == 1:
        return operators[0]
    return SparseMatrix(sp.block_diag([op.mat for op in operators],
                                      format="csr"))


def spmm(a: SparseMatrix, x: Tensor) -> Tensor:
    """Differentiable sparse @ dense product ``a @ x``.

    Forward: ``y = A x`` (CSR matvec/matmat).  Backward: ``dx = Aᵀ dy``.
    The sparse operand is constant and is aligned with the dense
    operand's dtype (memoised cast), so float32 activations flow through
    float32 CSR kernels end to end.
    """
    if not isinstance(a, SparseMatrix):
        a = SparseMatrix(a)
    x = as_tensor(x)
    if a.mat.dtype != x.data.dtype:
        a = a.as_dtype(x.data.dtype)
    t0 = _perf_counter() if PERF.enabled else 0.0
    data = a.mat @ x.data
    if PERF.enabled:
        PERF.record("spmm.forward", _perf_counter() - t0, data.nbytes)

    def backward(g):
        t0 = _perf_counter() if PERF.enabled else 0.0
        grad = a.T.mat @ g
        if PERF.enabled:
            PERF.record("spmm.backward", _perf_counter() - t0, grad.nbytes)
        return (grad,)

    return Tensor._make(np.asarray(data), (x,), backward)
