"""Reverse-mode automatic differentiation on top of numpy.

This module is the numerical engine of the reproduction: it replaces the
PyTorch tensor library the paper's implementation relied on.  A
:class:`Tensor` wraps a ``numpy.ndarray`` and records the operations applied
to it so that :meth:`Tensor.backward` can propagate gradients through an
arbitrary computation graph (linear layers, residual blocks, sparse message
passing, convolutions, losses).

Design notes
------------
* Gradients are accumulated into ``Tensor.grad`` (a plain ndarray) only for
  tensors created with ``requires_grad=True`` or depending on one.
* Broadcasting follows numpy semantics; gradient reduction over broadcast
  axes is handled by :func:`unbroadcast`.
* The graph is dynamic (define-by-run) and freed after ``backward`` unless
  ``retain_graph=True``.
* **Dtype policy**: floating payloads keep their dtype — a float32 array
  stays float32 through every op — and non-float inputs (ints, bools,
  python lists/scalars) are coerced to the process-wide *default compute
  dtype* (:func:`set_default_dtype` / :class:`DtypeConfig`, float64 out
  of the box).  Historically ``as_tensor``/``Tensor`` silently upcast
  everything to float64, which made float32 training impossible: a
  single coerced operand poisoned the whole graph.
"""

from __future__ import annotations

from time import perf_counter as _perf_counter
from typing import Callable, Iterable, Sequence

import numpy as np

from ..perf import PERF

__all__ = ["Tensor", "no_grad", "is_grad_enabled", "unbroadcast", "as_tensor",
           "set_default_dtype", "get_default_dtype", "DtypeConfig"]


_GRAD_ENABLED = True

_DEFAULT_DTYPE = np.dtype(np.float64)

#: dtypes the engine computes in; float16 accumulates too much error for
#: the paper's metrics and complex types make no sense for congestion maps.
_SUPPORTED_DTYPES = (np.dtype(np.float32), np.dtype(np.float64))


def set_default_dtype(dtype) -> None:
    """Set the process-wide default compute dtype (float32 or float64).

    The default governs what non-float payloads (python lists, ints,
    bools) are coerced to and what :mod:`repro.nn.init` initialisers
    emit; floating arrays always keep their own dtype.  Train/serve
    entry points set this once from ``--dtype`` before any parameter is
    created.
    """
    global _DEFAULT_DTYPE
    dtype = np.dtype(dtype)
    if dtype not in _SUPPORTED_DTYPES:
        raise ValueError(f"unsupported compute dtype {dtype}; "
                         f"choose float32 or float64")
    _DEFAULT_DTYPE = dtype


def get_default_dtype() -> np.dtype:
    """The current default compute dtype (see :func:`set_default_dtype`)."""
    return _DEFAULT_DTYPE


class DtypeConfig:
    """Context manager scoping the default compute dtype.

    ``with DtypeConfig(np.float32): ...`` builds models, datasets and
    losses in float32 and restores the previous default on exit —
    the parity tests and dtype benches run both precisions side by side
    this way.
    """

    def __init__(self, dtype):
        self.dtype = np.dtype(dtype)
        if self.dtype not in _SUPPORTED_DTYPES:
            raise ValueError(f"unsupported compute dtype {self.dtype}; "
                             f"choose float32 or float64")

    def __enter__(self) -> "DtypeConfig":
        self._prev = get_default_dtype()
        set_default_dtype(self.dtype)
        return self

    def __exit__(self, *exc) -> None:
        set_default_dtype(self._prev)


class no_grad:
    """Context manager disabling graph construction.

    Mirrors ``torch.no_grad()``: inside the block no backward closures are
    recorded, which makes evaluation loops cheaper and prevents accidental
    training-graph growth.
    """

    def __enter__(self) -> "no_grad":
        global _GRAD_ENABLED
        self._prev = _GRAD_ENABLED
        _GRAD_ENABLED = False
        return self

    def __exit__(self, *exc) -> None:
        global _GRAD_ENABLED
        _GRAD_ENABLED = self._prev


def is_grad_enabled() -> bool:
    """Return whether operations are currently recorded for autograd."""
    return _GRAD_ENABLED


def unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so that it matches ``shape``.

    When an operand of shape ``shape`` was broadcast to the gradient's shape
    during the forward pass, the chain rule requires summing the incoming
    gradient over every broadcast axis.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading axes added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were 1 in the original shape.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def as_tensor(value, dtype=None) -> "Tensor":
    """Coerce ``value`` (Tensor, ndarray, scalar, nested list) to a Tensor.

    Floating payloads keep their dtype; non-float payloads are coerced
    to ``dtype`` (default: the process default compute dtype).  Tensors
    pass through untouched.
    """
    if isinstance(value, Tensor):
        return value
    return Tensor(value, dtype=dtype)


class Tensor:
    """A numpy-backed tensor participating in reverse-mode autodiff.

    Parameters
    ----------
    data:
        Array-like payload.  Floating arrays keep their dtype (a float32
        array is *not* upcast); everything else is converted to the
        default compute dtype, or to ``dtype`` when given explicitly.
    requires_grad:
        If True, gradients w.r.t. this tensor are accumulated in ``grad``
        during :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(self, data, requires_grad: bool = False, dtype=None):
        if dtype is not None:
            self.data = np.asarray(data, dtype=dtype)
        else:
            arr = np.asarray(data)
            self.data = (arr if arr.dtype.kind == "f"
                         else arr.astype(_DEFAULT_DTYPE))
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self.grad: np.ndarray | None = None
        self._backward: Callable[[np.ndarray], None] | None = None
        self._parents: tuple[Tensor, ...] = ()
        self.name: str | None = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        """Shape of the underlying ndarray."""
        return self.data.shape

    @property
    def ndim(self) -> int:
        """Number of dimensions."""
        return self.data.ndim

    @property
    def size(self) -> int:
        """Total number of elements."""
        return self.data.size

    @property
    def dtype(self):
        """dtype of the underlying ndarray."""
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        """Transpose (reverses all axes), differentiable."""
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{flag})\n{self.data!r}"

    def numpy(self) -> np.ndarray:
        """Return the raw ndarray (shared memory, no copy)."""
        return self.data

    def item(self) -> float:
        """Return the value of a single-element tensor as a Python float."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False, dtype=self.data.dtype)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient to ``None``."""
        self.grad = None

    # ------------------------------------------------------------------
    # Graph construction helper
    # ------------------------------------------------------------------
    @staticmethod
    def _make(data: np.ndarray, parents: Sequence["Tensor"],
              backward: Callable[[np.ndarray], None]) -> "Tensor":
        """Create an op output node, wiring the backward closure if needed."""
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = Tensor(data, dtype=data.dtype)
        out.requires_grad = requires
        if requires:
            out._parents = tuple(parents)
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        """Add ``grad`` into ``self.grad`` (allocating on first use)."""
        if not self.requires_grad:
            return
        if self.grad is None:
            self.grad = np.array(grad, dtype=self.data.dtype, copy=True)
        else:
            self.grad += grad

    def backward(self, grad: np.ndarray | None = None,
                 retain_graph: bool = False) -> None:
        """Backpropagate from this tensor through the recorded graph.

        The walk is a single explicit pass over the topological order (no
        closure recursion), and gradient buffers are reused: the first
        time a node's gradient is *summed* a fresh buffer is allocated
        and marked owned, after which further contributions accumulate
        in place with ``np.add(..., out=)`` — fan-in-heavy graphs (the
        residual MLPs, the HyperMP trunk) stop allocating one array per
        incoming edge.

        Parameters
        ----------
        grad:
            Incoming gradient; defaults to ones (must be a scalar tensor in
            the default case, matching common loss usage).
        retain_graph:
            Keep backward closures alive so ``backward`` may be called again.
        """
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError(
                    "backward() without an explicit gradient requires a "
                    f"scalar tensor, got shape {self.shape}")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)
        t0 = _perf_counter() if PERF.enabled else 0.0

        # Topological order via iterative DFS (avoids recursion limits on
        # deep graphs such as unrolled routing-cost chains).
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited and parent.requires_grad:
                    stack.append((parent, False))

        grads: dict[int, np.ndarray] = {id(self): grad}
        # ids of buffers this backward pass allocated itself and may
        # therefore mutate in place; everything else may alias forward
        # data or a closure's output and must be treated as read-only.
        owned: set[int] = set()
        for node in reversed(topo):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node._backward is None:
                node._accumulate(node_grad)
                continue
            # Leaf-style accumulation also applies to intermediate tensors
            # that the user marked; keep graph semantics simple by always
            # accumulating when grad was explicitly requested on creation.
            if not node._parents:
                node._accumulate(node_grad)
                continue
            node._backward_dispatch(node_grad, grads, owned)
            if not retain_graph:
                node._backward = None
                node._parents = ()
        if PERF.enabled:
            PERF.record("autograd.backward", _perf_counter() - t0)

    def _backward_dispatch(self, node_grad: np.ndarray,
                           grads: dict[int, np.ndarray],
                           owned: set[int]) -> None:
        """Run the node's backward closure, routing results into ``grads``."""
        parent_grads = self._backward(node_grad)
        if not isinstance(parent_grads, tuple):
            parent_grads = (parent_grads,)
        for parent, pgrad in zip(self._parents, parent_grads):
            if pgrad is None or not parent.requires_grad:
                continue
            pid = id(parent)
            if parent._parents or parent._backward:
                buf = grads.get(pid)
                if buf is None:
                    grads[pid] = pgrad
                elif pid in owned:
                    np.add(buf, pgrad, out=buf)
                else:
                    # First summation: allocate once, then own the buffer
                    # so later fan-in contributions accumulate in place.
                    grads[pid] = buf + pgrad
                    owned.add(pid)
            else:
                parent._accumulate(pgrad)

    # ------------------------------------------------------------------
    # Arithmetic ops
    # ------------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        other = as_tensor(other, dtype=self.data.dtype)
        data = self.data + other.data

        def backward(g):
            return (unbroadcast(g, self.shape), unbroadcast(g, other.shape))

        return Tensor._make(data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(g):
            return (-g,)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other) -> "Tensor":
        other = as_tensor(other, dtype=self.data.dtype)
        data = self.data - other.data

        def backward(g):
            return (unbroadcast(g, self.shape), unbroadcast(-g, other.shape))

        return Tensor._make(data, (self, other), backward)

    def __rsub__(self, other) -> "Tensor":
        return as_tensor(other, dtype=self.data.dtype) - self

    def __mul__(self, other) -> "Tensor":
        other = as_tensor(other, dtype=self.data.dtype)
        data = self.data * other.data
        a, b = self.data, other.data

        def backward(g):
            return (unbroadcast(g * b, self.shape),
                    unbroadcast(g * a, other.shape))

        return Tensor._make(data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = as_tensor(other, dtype=self.data.dtype)
        data = self.data / other.data
        a, b = self.data, other.data

        def backward(g):
            return (unbroadcast(g / b, self.shape),
                    unbroadcast(-g * a / (b * b), other.shape))

        return Tensor._make(data, (self, other), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return as_tensor(other, dtype=self.data.dtype) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("Tensor ** only supports scalar exponents")
        data = self.data ** exponent
        base = self.data

        def backward(g):
            return (g * exponent * base ** (exponent - 1),)

        return Tensor._make(data, (self,), backward)

    def __matmul__(self, other) -> "Tensor":
        other = as_tensor(other, dtype=self.data.dtype)
        data = self.data @ other.data
        a, b = self.data, other.data

        def backward(g):
            if a.ndim == 1 and b.ndim == 1:  # inner product
                return (g * b, g * a)
            if a.ndim == 1:  # (k,) @ (k, n)
                return (g @ b.T, np.outer(a, g))
            if b.ndim == 1:  # (m, k) @ (k,)
                return (np.outer(g, b), a.T @ g)
            ga = g @ np.swapaxes(b, -1, -2)
            gb = np.swapaxes(a, -1, -2) @ g
            return (unbroadcast(ga, a.shape), unbroadcast(gb, b.shape))

        return Tensor._make(data, (self, other), backward)

    # ------------------------------------------------------------------
    # Comparison helpers (non-differentiable, return ndarray masks)
    # ------------------------------------------------------------------
    def __gt__(self, other):
        other = other.data if isinstance(other, Tensor) else other
        return self.data > other

    def __lt__(self, other):
        other = other.data if isinstance(other, Tensor) else other
        return self.data < other

    def __ge__(self, other):
        other = other.data if isinstance(other, Tensor) else other
        return self.data >= other

    def __le__(self, other):
        other = other.data if isinstance(other, Tensor) else other
        return self.data <= other

    # ------------------------------------------------------------------
    # Shape ops
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        """Differentiable reshape; accepts a tuple or varargs."""
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        old_shape = self.shape
        data = self.data.reshape(shape)

        def backward(g):
            return (g.reshape(old_shape),)

        return Tensor._make(data, (self,), backward)

    def transpose(self, axes: Sequence[int] | None = None) -> "Tensor":
        """Differentiable transpose (numpy semantics)."""
        data = np.transpose(self.data, axes)
        if axes is None:
            inv = None
        else:
            inv = np.argsort(axes)

        def backward(g):
            return (np.transpose(g, inv),)

        return Tensor._make(data, (self,), backward)

    def __getitem__(self, index) -> "Tensor":
        data = self.data[index]
        shape = self.shape
        dtype = self.data.dtype

        def backward(g):
            full = np.zeros(shape, dtype=dtype)
            np.add.at(full, index, g)
            return (full,)

        return Tensor._make(data, (self,), backward)

    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Differentiable summation."""
        data = self.data.sum(axis=axis, keepdims=keepdims)
        shape = self.shape

        def backward(g):
            if axis is None:
                return (np.broadcast_to(g, shape).copy(),)
            g_expanded = g
            if not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                for ax in sorted(a % len(shape) for a in axes):
                    g_expanded = np.expand_dims(g_expanded, ax)
            return (np.broadcast_to(g_expanded, shape).copy(),)

        return Tensor._make(data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Differentiable mean (implemented as sum / count)."""
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = 1
            for ax in axes:
                count *= self.shape[ax]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Differentiable max; gradient flows to (all) argmax positions."""
        data = self.data.max(axis=axis, keepdims=keepdims)
        src = self.data

        def backward(g):
            if axis is None:
                mask = (src == data).astype(src.dtype)
                return (mask * g / mask.sum(),)
            expanded = data if keepdims else np.expand_dims(data, axis)
            g_exp = g if keepdims else np.expand_dims(g, axis)
            mask = (src == expanded).astype(src.dtype)
            counts = mask.sum(axis=axis, keepdims=True)
            return (mask * g_exp / counts,)

        return Tensor._make(data, (self,), backward)

    # ------------------------------------------------------------------
    # Elementwise nonlinearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        data = np.exp(self.data)

        def backward(g):
            return (g * data,)

        return Tensor._make(data, (self,), backward)

    def log(self) -> "Tensor":
        data = np.log(self.data)
        src = self.data

        def backward(g):
            return (g / src,)

        return Tensor._make(data, (self,), backward)

    def sqrt(self) -> "Tensor":
        data = np.sqrt(self.data)

        def backward(g):
            return (g * 0.5 / data,)

        return Tensor._make(data, (self,), backward)

    def abs(self) -> "Tensor":
        data = np.abs(self.data)
        sign = np.sign(self.data)

        def backward(g):
            return (g * sign,)

        return Tensor._make(data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0
        data = self.data * mask

        def backward(g):
            return (g * mask,)

        return Tensor._make(data, (self,), backward)

    def leaky_relu(self, negative_slope: float = 0.2) -> "Tensor":
        mask = self.data > 0
        scale = np.where(mask, 1.0, negative_slope)
        data = self.data * scale

        def backward(g):
            return (g * scale,)

        return Tensor._make(data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        from scipy.special import expit  # numerically stable logistic

        data = expit(self.data)

        def backward(g):
            return (g * data * (1.0 - data),)

        return Tensor._make(data, (self,), backward)

    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)

        def backward(g):
            return (g * (1.0 - data * data),)

        return Tensor._make(data, (self,), backward)

    def clip(self, low: float, high: float) -> "Tensor":
        """Differentiable clamp; gradient is zero outside [low, high]."""
        data = np.clip(self.data, low, high)
        mask = (self.data >= low) & (self.data <= high)

        def backward(g):
            return (g * mask,)

        return Tensor._make(data, (self,), backward)

    # ------------------------------------------------------------------
    # Combination ops
    # ------------------------------------------------------------------
    @staticmethod
    def concat(tensors: Iterable["Tensor"], axis: int = -1) -> "Tensor":
        """Differentiable concatenation along ``axis``."""
        tensors = [as_tensor(t) for t in tensors]
        data = np.concatenate([t.data for t in tensors], axis=axis)
        sizes = [t.shape[axis] for t in tensors]
        splits = np.cumsum(sizes)[:-1]

        def backward(g):
            return tuple(np.split(g, splits, axis=axis))

        return Tensor._make(data, tuple(tensors), backward)

    @staticmethod
    def stack(tensors: Iterable["Tensor"], axis: int = 0) -> "Tensor":
        """Differentiable stacking along a new axis."""
        tensors = [as_tensor(t) for t in tensors]
        data = np.stack([t.data for t in tensors], axis=axis)

        def backward(g):
            pieces = np.split(g, len(tensors), axis=axis)
            return tuple(np.squeeze(p, axis=axis) for p in pieces)

        return Tensor._make(data, tuple(tensors), backward)

    @staticmethod
    def where(condition: np.ndarray, a: "Tensor", b: "Tensor") -> "Tensor":
        """Differentiable selection: ``condition ? a : b``."""
        # Anchor non-tensor operands to the tensor operand's dtype so a
        # python-scalar branch (either side) cannot upcast a float32
        # selection.
        anchor = (a.dtype if isinstance(a, Tensor)
                  else b.dtype if isinstance(b, Tensor) else None)
        a = a if isinstance(a, Tensor) else as_tensor(a, dtype=anchor)
        b = b if isinstance(b, Tensor) else as_tensor(b, dtype=anchor)
        cond = np.asarray(condition, dtype=bool)
        data = np.where(cond, a.data, b.data)

        def backward(g):
            return (unbroadcast(np.where(cond, g, 0.0), a.shape),
                    unbroadcast(np.where(cond, 0.0, g), b.shape))

        return Tensor._make(data, (a, b), backward)
