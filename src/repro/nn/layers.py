"""Neural-network modules: the building blocks LHNN and baselines share.

The :class:`Module` base class provides parameter registration, train/eval
mode switching and state-dict (de)serialisation.  The concrete layers here
cover everything the paper's architecture diagram (Figure 3) uses: linear
layers ("Lin"), MLPs, residual MLP blocks ("Res"), and simple containers.
"""

from __future__ import annotations

from typing import Callable, Iterator

import numpy as np

from . import functional as F
from . import init as init_mod
from .tensor import Tensor

__all__ = ["Parameter", "Module", "Linear", "Identity", "Activation",
           "Sequential", "MLP", "ResidualMLP", "LayerNorm", "Dropout"]


class Parameter(Tensor):
    """A Tensor flagged as a trainable parameter of a Module."""

    def __init__(self, data):
        super().__init__(data, requires_grad=True)


class Module:
    """Base class for all layers and models.

    Subclasses assign :class:`Parameter` and ``Module`` instances as
    attributes; they are discovered automatically for optimisation,
    gradient zeroing and checkpointing.
    """

    def __init__(self) -> None:
        self.training = True

    # -- parameter / submodule discovery --------------------------------
    def parameters(self) -> list[Parameter]:
        """Return all trainable parameters (depth-first, deduplicated)."""
        params: list[Parameter] = []
        seen: set[int] = set()
        for _, p in self.named_parameters():
            if id(p) not in seen:
                seen.add(id(p))
                params.append(p)
        return params

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` pairs."""
        for name, value in vars(self).items():
            full = f"{prefix}{name}"
            if isinstance(value, Parameter):
                yield full, value
            elif isinstance(value, Module):
                yield from value.named_parameters(prefix=f"{full}.")
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item.named_parameters(prefix=f"{full}.{i}.")
                    elif isinstance(item, Parameter):
                        yield f"{full}.{i}", item

    def modules(self) -> Iterator["Module"]:
        """Yield this module and all descendants."""
        yield self
        for value in vars(self).values():
            if isinstance(value, Module):
                yield from value.modules()
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield from item.modules()

    # -- training state ---------------------------------------------------
    def train(self) -> "Module":
        """Put this module and children in training mode."""
        for m in self.modules():
            m.training = True
        return self

    def eval(self) -> "Module":
        """Put this module and children in evaluation mode."""
        for m in self.modules():
            m.training = False
        return self

    def zero_grad(self) -> None:
        """Clear gradients of every parameter."""
        for p in self.parameters():
            p.zero_grad()

    def num_parameters(self) -> int:
        """Total number of scalar trainable parameters."""
        return sum(p.size for p in self.parameters())

    def to_dtype(self, dtype) -> "Module":
        """Cast every parameter and floating buffer to ``dtype`` in place.

        Covers :class:`Parameter` attributes (including those held in
        lists/tuples) and plain floating ndarray attributes such as
        batch-norm running statistics.  Used by checkpoint restore to
        honour the dtype a model was trained in, and by ``--dtype``
        overrides at serve time.
        """
        dtype = np.dtype(dtype)
        for module in self.modules():
            for name, value in vars(module).items():
                if isinstance(value, Parameter):
                    value.data = value.data.astype(dtype, copy=False)
                elif isinstance(value, np.ndarray) and value.dtype.kind == "f":
                    setattr(module, name, value.astype(dtype, copy=False))
                elif isinstance(value, (list, tuple)):
                    for item in value:
                        if isinstance(item, Parameter):
                            item.data = item.data.astype(dtype, copy=False)
        return self

    def dtype(self) -> np.dtype:
        """The compute dtype of this module's parameters.

        Defined as the dtype of the first parameter; modules are always
        homogeneous after construction/:meth:`to_dtype`.  Parameter-free
        modules report the process default.
        """
        for _, p in self.named_parameters():
            return p.data.dtype
        from .tensor import get_default_dtype
        return get_default_dtype()

    # -- checkpointing ----------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy every parameter array keyed by dotted name."""
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load parameter arrays produced by :meth:`state_dict`."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(f"state mismatch: missing={sorted(missing)} "
                           f"unexpected={sorted(unexpected)}")
        for name, p in own.items():
            if p.data.shape != state[name].shape:
                raise ValueError(f"shape mismatch for {name}: "
                                 f"{p.data.shape} vs {state[name].shape}")
            p.data[...] = state[name]

    # -- call protocol ------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class Identity(Module):
    """No-op module (used when ablations strip a transformation)."""

    def forward(self, x: Tensor) -> Tensor:
        return x


class Activation(Module):
    """Wraps a named activation function as a module.

    Supported names: ``relu``, ``leaky_relu``, ``sigmoid``, ``tanh``,
    ``identity``.
    """

    _FUNCS: dict[str, Callable[[Tensor], Tensor]] = {
        "relu": F.relu,
        "leaky_relu": F.leaky_relu,
        "sigmoid": F.sigmoid,
        "tanh": F.tanh,
        "identity": lambda x: x,
    }

    def __init__(self, name: str = "relu"):
        super().__init__()
        if name not in self._FUNCS:
            raise ValueError(f"unknown activation {name!r}; "
                             f"choose from {sorted(self._FUNCS)}")
        self.name = name

    def forward(self, x: Tensor) -> Tensor:
        return self._FUNCS[self.name](x)


class Linear(Module):
    """Affine layer ``y = x W + b`` (the paper's "Lin" box).

    Weights use Glorot-uniform initialisation; bias starts at zero.
    """

    def __init__(self, in_features: int, out_features: int,
                 rng: np.random.Generator, bias: bool = True):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init_mod.xavier_uniform((in_features, out_features), rng))
        self.bias = Parameter(init_mod.zeros(out_features)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class Dropout(Module):
    """Inverted dropout module (active only in training mode)."""

    def __init__(self, p: float = 0.5, rng: np.random.Generator | None = None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError("dropout probability must be in [0, 1)")
        self.p = p
        self.rng = rng if rng is not None else np.random.default_rng()

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, self.training, self.rng)


class LayerNorm(Module):
    """Layer normalisation over the last dimension."""

    def __init__(self, dim: int, eps: float = 1e-5):
        super().__init__()
        self.gamma = Parameter(init_mod.ones(dim))
        self.beta = Parameter(init_mod.zeros(dim))
        self.eps = eps

    def forward(self, x: Tensor) -> Tensor:
        mu = x.mean(axis=-1, keepdims=True)
        centered = x - mu
        var = (centered * centered).mean(axis=-1, keepdims=True)
        normed = centered / (var + self.eps).sqrt()
        return normed * self.gamma + self.beta


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *layers: Module):
        super().__init__()
        self.layers = list(layers)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x

    def __iter__(self):
        return iter(self.layers)

    def __len__(self) -> int:
        return len(self.layers)


class MLP(Module):
    """Multilayer perceptron with a hidden activation after every layer
    except (optionally) the last.

    Parameters
    ----------
    dims:
        Layer widths ``[in, h1, ..., out]``; must have length >= 2.
    activation:
        Name of the hidden activation.
    final_activation:
        If True, also apply the activation after the last layer.
    """

    def __init__(self, dims: list[int], rng: np.random.Generator,
                 activation: str = "relu", final_activation: bool = False):
        super().__init__()
        if len(dims) < 2:
            raise ValueError("MLP needs at least input and output widths")
        self.linears = [Linear(dims[i], dims[i + 1], rng) for i in range(len(dims) - 1)]
        self.act = Activation(activation)
        self.final_activation = final_activation

    def forward(self, x: Tensor) -> Tensor:
        last = len(self.linears) - 1
        for i, lin in enumerate(self.linears):
            x = lin(x)
            if i != last or self.final_activation:
                x = self.act(x)
        return x


class ResidualMLP(Module):
    """Two-layer MLP with a skip connection (the paper's "Res" block).

    ``y = act(x W1 + b1) W2 + b2 + proj(x)`` where ``proj`` is identity when
    the widths already match and a linear projection otherwise.
    """

    def __init__(self, in_dim: int, hidden_dim: int, out_dim: int,
                 rng: np.random.Generator, activation: str = "relu"):
        super().__init__()
        self.fc1 = Linear(in_dim, hidden_dim, rng)
        self.fc2 = Linear(hidden_dim, out_dim, rng)
        self.act = Activation(activation)
        self.proj = Identity() if in_dim == out_dim else Linear(in_dim, out_dim, rng, bias=False)

    def forward(self, x: Tensor) -> Tensor:
        return self.fc2(self.act(self.fc1(x))) + self.proj(x)
