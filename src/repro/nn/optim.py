"""Optimisers and learning-rate schedules.

The paper trains LHNN with Adam at learning rates 2e-3 and 5e-4; we provide
Adam (with optional decoupled weight decay), plain SGD with momentum, global
gradient-norm clipping and a simple step/cosine schedule facility.

Both optimisers update entirely in place: every elementwise op writes into
the parameter, its state buffers (momentum / first / second moments) or a
per-parameter scratch buffer via ``np.multiply/add/... (..., out=)``.  A
step therefore allocates nothing after the first call — at float32 on
CPU the old temporary-per-expression ``Adam.step`` was a measurable
slice of small-model training time.  Gradients are treated as consumable:
``step`` may write into ``p.grad`` (``clip_grad_norm`` always has), and
``zero_grad`` remains the per-step reset.
"""

from __future__ import annotations

import math
from time import perf_counter as _perf_counter

import numpy as np

from ..perf import PERF
from .layers import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "clip_grad_norm", "StepLR", "CosineLR",
           "two_phase_lr"]


class Optimizer:
    """Base optimiser holding a parameter list and a learning rate."""

    def __init__(self, params: list[Parameter], lr: float):
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.params = list(params)
        self.lr = float(lr)
        # Per-parameter scratch buffers for the in-place update kernels,
        # allocated lazily on the first step (parameters may still be
        # re-dtyped between construction and training).
        self._scratch: list[np.ndarray | None] = [None] * len(self.params)

    def _buf(self, index: int, p: Parameter) -> np.ndarray:
        """The scratch buffer for parameter ``index`` (shape/dtype of p)."""
        buf = self._scratch[index]
        if buf is None or buf.shape != p.data.shape or buf.dtype != p.data.dtype:
            buf = self._scratch[index] = np.empty_like(p.data)
        return buf

    def zero_grad(self) -> None:
        """Clear gradients on all managed parameters."""
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with classical momentum.

    The update runs fully in place (see module notes): no per-step
    temporaries beyond the lazily allocated scratch buffer.
    """

    def __init__(self, params, lr: float = 1e-2, momentum: float = 0.0,
                 weight_decay: float = 0.0):
        super().__init__(params, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        t0 = _perf_counter() if PERF.enabled else 0.0
        for i, (p, v) in enumerate(zip(self.params, self._velocity)):
            if p.grad is None:
                continue
            g = p.grad
            buf = self._buf(i, p)
            if self.weight_decay:
                np.multiply(p.data, self.weight_decay, out=buf)
                np.add(g, buf, out=g)
            if self.momentum:
                if v.dtype != p.data.dtype:
                    v = self._velocity[i] = v.astype(p.data.dtype)
                np.multiply(v, self.momentum, out=v)
                np.add(v, g, out=v)
                g = v
            np.multiply(g, self.lr, out=buf)
            np.subtract(p.data, buf, out=p.data)
        if PERF.enabled:
            PERF.record("optimizer.step", _perf_counter() - t0)


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with optional decoupled weight decay (AdamW).

    ``step`` is a fused in-place kernel: moment updates and the parameter
    write all go through ``out=`` ufuncs into the persistent ``m``/``v``
    state and one scratch buffer, so steady-state stepping allocates
    nothing.  The update is algebraically identical to the textbook form
    (``lr · m̂ / (√v̂ + eps)`` with ``m̂ = m/bc1``, ``v̂ = v/bc2``) computed
    as ``lr · m / (bc1 · (√(v/bc2) + eps))``.
    """

    def __init__(self, params, lr: float = 1e-3, betas: tuple[float, float] = (0.9, 0.999),
                 eps: float = 1e-8, weight_decay: float = 0.0):
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        t0 = _perf_counter() if PERF.enabled else 0.0
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        bc1 = 1.0 - b1 ** self._t
        bc2 = 1.0 - b2 ** self._t
        for i, (p, m, v) in enumerate(zip(self.params, self._m, self._v)):
            if p.grad is None:
                continue
            g = p.grad
            if m.dtype != p.data.dtype:
                m = self._m[i] = m.astype(p.data.dtype)
                v = self._v[i] = v.astype(p.data.dtype)
            buf = self._buf(i, p)
            # m ← b1·m + (1-b1)·g
            np.multiply(m, b1, out=m)
            np.multiply(g, 1.0 - b1, out=buf)
            np.add(m, buf, out=m)
            # v ← b2·v + (1-b2)·g²
            np.multiply(g, g, out=buf)
            np.multiply(buf, 1.0 - b2, out=buf)
            np.multiply(v, b2, out=v)
            np.add(v, buf, out=v)
            if self.weight_decay:
                np.multiply(p.data, self.lr * self.weight_decay, out=buf)
                np.subtract(p.data, buf, out=p.data)
            # p ← p − lr · m / (bc1 · (√(v/bc2) + eps))
            np.divide(v, bc2, out=buf)
            np.sqrt(buf, out=buf)
            np.add(buf, self.eps, out=buf)
            np.multiply(buf, bc1, out=buf)
            np.divide(m, buf, out=buf)
            np.multiply(buf, self.lr, out=buf)
            np.subtract(p.data, buf, out=p.data)
        if PERF.enabled:
            PERF.record("optimizer.step", _perf_counter() - t0)


def clip_grad_norm(params: list[Parameter], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is <= ``max_norm``.

    Returns the pre-clipping norm (useful for logging divergence).
    """
    total = 0.0  # python-float (double) accumulator across parameters
    for p in params:
        if p.grad is not None:
            flat = p.grad.reshape(-1)
            total += float(np.dot(flat, flat))
    norm = math.sqrt(total)
    if norm > max_norm and norm > 0:
        scale = max_norm / norm
        for p in params:
            if p.grad is not None:
                np.multiply(p.grad, scale, out=p.grad)
    return norm


class StepLR:
    """Multiply the optimiser lr by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1):
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> None:
        """Advance one epoch and update the learning rate."""
        self.epoch += 1
        self.optimizer.lr = self.base_lr * (self.gamma ** (self.epoch // self.step_size))


def two_phase_lr(optimizer: Optimizer, epochs: int, lr_final: float) -> StepLR:
    """The paper's two-phase schedule as a :class:`StepLR` instance.

    Training starts at the optimiser's current lr (the paper's 2e-3) for
    the first ``ceil(epochs / 2)`` epochs and finishes at ``lr_final``
    (5e-4).  Call ``.step()`` once at the end of each epoch.  Rounding the
    first phase *up* guarantees even an ``epochs == 1`` run trains at the
    initial rate rather than spending its only epoch at ``lr_final``.
    """
    if epochs < 1:
        raise ValueError("epochs must be >= 1")
    if lr_final <= 0:
        raise ValueError("lr_final must be positive")
    # epoch // step_size never exceeds 1 for epoch < epochs, so the single
    # multiplicative step lands exactly on lr_final.
    step_size = (epochs + 1) // 2
    return StepLR(optimizer, step_size=step_size,
                  gamma=lr_final / optimizer.lr)


class CosineLR:
    """Cosine annealing from the base lr to ``eta_min`` over ``t_max`` epochs."""

    def __init__(self, optimizer: Optimizer, t_max: int, eta_min: float = 0.0):
        self.optimizer = optimizer
        self.t_max = t_max
        self.eta_min = eta_min
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> None:
        """Advance one epoch and update the learning rate."""
        self.epoch += 1
        frac = min(self.epoch, self.t_max) / self.t_max
        self.optimizer.lr = (self.eta_min + (self.base_lr - self.eta_min)
                             * 0.5 * (1.0 + math.cos(math.pi * frac)))
