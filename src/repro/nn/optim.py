"""Optimisers and learning-rate schedules.

The paper trains LHNN with Adam at learning rates 2e-3 and 5e-4; we provide
Adam (with optional decoupled weight decay), plain SGD with momentum, global
gradient-norm clipping and a simple step/cosine schedule facility.
"""

from __future__ import annotations

import math

import numpy as np

from .layers import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "clip_grad_norm", "StepLR", "CosineLR",
           "two_phase_lr"]


class Optimizer:
    """Base optimiser holding a parameter list and a learning rate."""

    def __init__(self, params: list[Parameter], lr: float):
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.params = list(params)
        self.lr = float(lr)

    def zero_grad(self) -> None:
        """Clear gradients on all managed parameters."""
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with classical momentum."""

    def __init__(self, params, lr: float = 1e-2, momentum: float = 0.0,
                 weight_decay: float = 0.0):
        super().__init__(params, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            if self.momentum:
                v *= self.momentum
                v += g
                g = v
            p.data -= self.lr * g


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with optional decoupled weight decay (AdamW)."""

    def __init__(self, params, lr: float = 1e-3, betas: tuple[float, float] = (0.9, 0.999),
                 eps: float = 1e-8, weight_decay: float = 0.0):
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        bc1 = 1.0 - b1 ** self._t
        bc2 = 1.0 - b2 ** self._t
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            g = p.grad
            m *= b1
            m += (1.0 - b1) * g
            v *= b2
            v += (1.0 - b2) * (g * g)
            if self.weight_decay:
                p.data -= self.lr * self.weight_decay * p.data
            p.data -= self.lr * (m / bc1) / (np.sqrt(v / bc2) + self.eps)


def clip_grad_norm(params: list[Parameter], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is <= ``max_norm``.

    Returns the pre-clipping norm (useful for logging divergence).
    """
    total = 0.0
    for p in params:
        if p.grad is not None:
            total += float((p.grad * p.grad).sum())
    norm = math.sqrt(total)
    if norm > max_norm and norm > 0:
        scale = max_norm / norm
        for p in params:
            if p.grad is not None:
                p.grad *= scale
    return norm


class StepLR:
    """Multiply the optimiser lr by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1):
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> None:
        """Advance one epoch and update the learning rate."""
        self.epoch += 1
        self.optimizer.lr = self.base_lr * (self.gamma ** (self.epoch // self.step_size))


def two_phase_lr(optimizer: Optimizer, epochs: int, lr_final: float) -> StepLR:
    """The paper's two-phase schedule as a :class:`StepLR` instance.

    Training starts at the optimiser's current lr (the paper's 2e-3) for
    the first ``ceil(epochs / 2)`` epochs and finishes at ``lr_final``
    (5e-4).  Call ``.step()`` once at the end of each epoch.  Rounding the
    first phase *up* guarantees even an ``epochs == 1`` run trains at the
    initial rate rather than spending its only epoch at ``lr_final``.
    """
    if epochs < 1:
        raise ValueError("epochs must be >= 1")
    if lr_final <= 0:
        raise ValueError("lr_final must be positive")
    # epoch // step_size never exceeds 1 for epoch < epochs, so the single
    # multiplicative step lands exactly on lr_final.
    step_size = (epochs + 1) // 2
    return StepLR(optimizer, step_size=step_size,
                  gamma=lr_final / optimizer.lr)


class CosineLR:
    """Cosine annealing from the base lr to ``eta_min`` over ``t_max`` epochs."""

    def __init__(self, optimizer: Optimizer, t_max: int, eta_min: float = 0.0):
        self.optimizer = optimizer
        self.t_max = t_max
        self.eta_min = eta_min
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> None:
        """Advance one epoch and update the learning rate."""
        self.epoch += 1
        frac = min(self.epoch, self.t_max) / self.t_max
        self.optimizer.lr = (self.eta_min + (self.base_lr - self.eta_min)
                             * 0.5 * (1.0 + math.cos(math.pi * frac)))
