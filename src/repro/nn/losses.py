"""Loss functions, including the paper's joint supervision objective.

The LHNN loss (paper §4.4) is ``L = L_reg + L_cls`` where

* ``L_reg`` is mean-squared error between predicted and ground-truth
  routing demand (Eq. 4 — the paper prints a stray leading minus sign,
  which would make the loss negative; we implement the standard positive
  MSE which is clearly what was trained),
* ``L_cls`` is a γ-weighted binary cross-entropy (Eq. 5): each
  non-congested G-cell's contribution is scaled by ``γ ∈ (0, 1]`` to fight
  the heavy label imbalance (17.38 % positives in the paper's split).

Dtype policy: losses compute elementwise in the operands' dtype (float32
stays float32 so the backward pass stays fast), while *accumulation
across steps* — epoch totals, metric averages — happens in python
floats / float64 at the trainer level, per the engine's "float32
compute, float64 accumulators" rule.  Numpy's pairwise summation keeps
the in-loss float32 reductions accurate at the array sizes involved.
"""

from __future__ import annotations

import numpy as np

from .layers import Module
from .tensor import Tensor, as_tensor

__all__ = ["MSELoss", "BCELoss", "GammaWeightedBCE", "JointLoss",
           "GANLoss", "L1Loss"]


class MSELoss(Module):
    """Mean squared error over all elements (paper Eq. 4)."""

    def forward(self, pred: Tensor, target) -> Tensor:
        diff = as_tensor(pred) - as_tensor(target)
        return (diff * diff).mean()


class L1Loss(Module):
    """Mean absolute error (used by the Pix2Pix generator objective)."""

    def forward(self, pred: Tensor, target) -> Tensor:
        return (as_tensor(pred) - as_tensor(target)).abs().mean()


class BCELoss(Module):
    """Binary cross-entropy on probabilities, clipped for stability."""

    def __init__(self, eps: float = 1e-7):
        super().__init__()
        self.eps = eps

    def forward(self, prob: Tensor, target) -> Tensor:
        prob = as_tensor(prob).clip(self.eps, 1.0 - self.eps)
        target = as_tensor(target)
        loss = -(target * prob.log() + (1.0 - target) * (1.0 - prob).log())
        return loss.mean()


class GammaWeightedBCE(Module):
    """γ-weighted BCE of paper Eq. 5.

    ``L = -(1/N) Σ_i [ (1 - y_i) γ + y_i ] · [ y_i log c_i + (1-y_i) log(1-c_i) ]``

    With γ < 1, negatives (non-congested G-cells) contribute less,
    countering the tendency to predict everything as non-congested.
    The paper uses γ = 0.7 for every experiment.
    """

    def __init__(self, gamma: float = 0.7, eps: float = 1e-7):
        super().__init__()
        if not 0.0 < gamma <= 1.0:
            raise ValueError("gamma must lie in (0, 1]")
        self.gamma = gamma
        self.eps = eps

    def forward(self, prob: Tensor, target) -> Tensor:
        prob = as_tensor(prob).clip(self.eps, 1.0 - self.eps)
        target = as_tensor(target)
        weight = (1.0 - target) * self.gamma + target
        ce = target * prob.log() + (1.0 - target) * (1.0 - prob).log()
        return -(weight * ce).mean()


class JointLoss(Module):
    """The paper's joint objective ``L = L_reg + L_cls`` (Eq. 3).

    Parameters
    ----------
    gamma:
        Imbalance weight for the classification branch.
    use_regression:
        When False, the regression term is dropped — this implements the
        "no Jointing" ablation row of Table 3.
    """

    def __init__(self, gamma: float = 0.7, use_regression: bool = True):
        super().__init__()
        self.reg_loss = MSELoss()
        self.cls_loss = GammaWeightedBCE(gamma=gamma)
        self.use_regression = use_regression

    def forward(self, cls_prob: Tensor, reg_pred: Tensor | None,
                cls_target, reg_target) -> Tensor:
        loss = self.cls_loss(cls_prob, cls_target)
        if self.use_regression and reg_pred is not None:
            loss = loss + self.reg_loss(reg_pred, reg_target)
        return loss


class GANLoss(Module):
    """Vanilla (non-saturating) GAN loss on discriminator logits.

    ``forward(logits, target_is_real)`` returns BCE-with-logits against a
    constant real/fake label, matching the Pix2Pix objective.
    """

    def forward(self, logits: Tensor, target_is_real: bool) -> Tensor:
        from scipy.special import expit

        x = as_tensor(logits)
        # softplus(x) = log(1 + e^x), computed stably.
        sp = Tensor(np.logaddexp(0.0, x.data))

        def backward(g):
            return (g * expit(x.data),)

        softplus_x = Tensor._make(sp.data, (x,), backward)
        if target_is_real:
            # -log(sigmoid(x)) = softplus(-x) = softplus(x) - x
            return (softplus_x - x).mean()
        # -log(1 - sigmoid(x)) = softplus(x)
        return softplus_x.mean()
