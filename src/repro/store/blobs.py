"""Crash-safe, checksummed blob primitives and the :class:`BlobStore`.

Every durable artifact in the repo — stage-cache pickles, suite
manifests, checkpoints, experiment manifests — goes to disk through the
primitives in this module:

* :func:`atomic_write_bytes` — tmp file in the destination directory,
  ``fsync``, ``os.replace``; bounded-backoff retries on transient I/O
  errors; fault-injection hooks compiled in.  A crash at any instant
  leaves either the old file or the new file, never a torn one — the
  worst debris is an orphaned ``*.tmp`` (reaped by :func:`sweep`).
* :func:`frame_blob` / :func:`unframe_blob` — a 40-byte footer (8-byte
  magic + raw SHA-256 of the payload) appended to every blob, verified
  on read.  Blobs without the footer are *legacy* and read unverified,
  so caches written before this layer keep working.
* :func:`quarantine_file` — corruption is never treated as a plain
  miss: the bad file moves to ``quarantine/`` next to a JSON *reason
  record*, so the recompute's ``store`` isn't racing a poisoned file
  and the operator can inspect what happened.

:class:`BlobStore` composes these into the content-addressed layout the
stage cache (and any future shared-FS backend) sits on::

    <root>/objects/<kk>/<key>.pkl      write-once checksummed blobs
    <root>/leases/<name>.json          in-progress leases (see leases.py)
    <root>/quarantine/<file>,<file>.reason.json
    <root>/manifests/<suite>.json      plain-JSON suite manifests

A store whose root turns out to be unwritable (read-only FS, disk
full) **degrades instead of raising**: the first failed write emits a
structured :class:`StoreDegradedWarning` and every later write becomes
a no-op, so a pipeline run completes uncached rather than crashing.
"""

from __future__ import annotations

import errno
import hashlib
import json
import os
import tempfile
import time
import warnings
from dataclasses import dataclass, field

from ..testing.faults import FaultInjector, current_injector
from .leases import Lease, NullLease, lease_is_stale

__all__ = ["BLOB_MAGIC", "FOOTER_BYTES", "BlobCorruptError", "RetryPolicy",
           "StoreDegradedWarning", "frame_blob", "unframe_blob",
           "atomic_write_bytes", "read_bytes", "quarantine_file",
           "sweep", "BlobStore"]

#: Footer magic: present ⇒ the last 40 bytes are ``MAGIC + sha256(payload)``.
BLOB_MAGIC = b"RPRBLOB1"
FOOTER_BYTES = len(BLOB_MAGIC) + 32

#: Errno values retried with backoff (everything else fails fast and,
#: on the write side, degrades the store).
TRANSIENT_ERRNOS = frozenset({errno.EIO, errno.EAGAIN, errno.EINTR,
                              errno.EBUSY})


class BlobCorruptError(RuntimeError):
    """A blob failed its checksum (or structural) verification."""


class StoreDegradedWarning(UserWarning):
    """The artifact store downgraded itself to uncached operation.

    Carries ``root`` and ``reason`` attributes so log scrapers and tests
    can assert on the structured cause rather than message text.
    """

    def __init__(self, root: str, reason: str):
        super().__init__(f"artifact store at {root!r} degraded to "
                         f"uncached operation: {reason}")
        self.root = root
        self.reason = reason


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff for transient I/O errors."""

    attempts: int = 4
    base_delay_s: float = 0.02
    max_delay_s: float = 0.5

    def run(self, fn):
        """Call ``fn`` retrying transient ``OSError``s with backoff."""
        for attempt in range(self.attempts):
            try:
                return fn()
            except OSError as exc:
                last = attempt == self.attempts - 1
                if last or exc.errno not in TRANSIENT_ERRNOS:
                    raise
                time.sleep(min(self.max_delay_s,
                               self.base_delay_s * (2 ** attempt)))
        raise AssertionError("unreachable")  # pragma: no cover


# ----------------------------------------------------------------------
# Checksummed framing
# ----------------------------------------------------------------------

def frame_blob(payload: bytes) -> bytes:
    """Append the checksum footer: ``payload + MAGIC + sha256(payload)``."""
    return payload + BLOB_MAGIC + hashlib.sha256(payload).digest()


def unframe_blob(data: bytes, verify: bool = True) -> tuple[bytes, bool]:
    """Split framed bytes into ``(payload, verified)``.

    Data carrying the footer is verified — a digest mismatch raises
    :class:`BlobCorruptError`.  Data without the footer is a legacy
    blob: returned whole with ``verified=False``.  ``verify=False``
    skips the digest comparison (the caller has already verified these
    exact bytes, e.g. via the store's per-process digest cache) but
    still strips and structurally validates the footer.
    """
    if len(data) < FOOTER_BYTES or \
            data[-FOOTER_BYTES:-32] != BLOB_MAGIC:
        return data, False
    payload, digest = data[:-FOOTER_BYTES], data[-32:]
    if verify and hashlib.sha256(payload).digest() != digest:
        raise BlobCorruptError(
            f"checksum mismatch: payload of {len(payload)} bytes does "
            f"not hash to its recorded sha-256 footer")
    return payload, True


# ----------------------------------------------------------------------
# Atomic, retried, injectable file I/O
# ----------------------------------------------------------------------

def atomic_write_bytes(path: str, data: bytes, *,
                       retry: RetryPolicy | None = None,
                       faults: FaultInjector | None = None,
                       point: str = "store.write") -> None:
    """Write ``data`` to ``path`` via tmp + ``fsync`` + ``os.replace``.

    Transient I/O errors (including injected ones) are retried with
    bounded backoff; any crash — up to and including SIGKILL between the
    tmp write and the rename (the ``<point>.tmp`` barrier) — leaves the
    previous file intact.
    """
    retry = retry or RetryPolicy()
    if faults is None:
        faults = current_injector()
    directory = os.path.dirname(path) or "."

    def write() -> None:
        payload = data if faults is None \
            else faults.on_write(point, path, data)
        os.makedirs(directory, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(payload)
                handle.flush()
                os.fsync(handle.fileno())
            if faults is not None:
                faults.barrier(point + ".tmp", path)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    retry.run(write)


def read_bytes(path: str, *, retry: RetryPolicy | None = None,
               faults: FaultInjector | None = None,
               point: str = "store.read") -> bytes:
    """Read a file whole, with transient-error retries and fault hooks."""
    retry = retry or RetryPolicy()
    if faults is None:
        faults = current_injector()

    def read() -> bytes:
        with open(path, "rb") as handle:
            data = handle.read()
        return data if faults is None else faults.on_read(point, path, data)

    return retry.run(read)


# ----------------------------------------------------------------------
# Quarantine
# ----------------------------------------------------------------------

def quarantine_file(path: str, quarantine_dir: str, reason: str,
                    extra: dict | None = None) -> str | None:
    """Move ``path`` into ``quarantine_dir`` with a JSON reason record.

    Returns the quarantined file's new path, or ``None`` when the move
    itself failed (e.g. a read-only filesystem) — in which case the
    caller treats the blob as a miss and moves on; corruption handling
    must never be the thing that crashes the pipeline.
    """
    try:
        os.makedirs(quarantine_dir, exist_ok=True)
        dest = os.path.join(
            quarantine_dir, f"{os.path.basename(path)}.{time.time_ns():x}")
        os.replace(path, dest)
    except OSError:
        return None
    record = {
        "reason": reason,
        "source_path": os.path.abspath(path),
        "quarantined_unix": time.time(),
        **(extra or {}),
    }
    try:
        atomic_write_bytes(dest + ".reason.json",
                           (json.dumps(record, indent=1, sort_keys=True)
                            + "\n").encode(),
                           point="store.quarantine")
    except OSError:
        pass  # the move already de-poisoned the cache; the record is best-effort
    return dest


# ----------------------------------------------------------------------
# GC sweep
# ----------------------------------------------------------------------

def sweep(root: str, *, max_tmp_age_s: float = 600.0,
          lease_ttl_s: float = 300.0) -> dict:
    """Reap SIGKILL debris under ``root``: stale tmp files, dead leases.

    ``*.tmp`` files older than ``max_tmp_age_s`` are orphans — a live
    writer holds its tmp for at most one write — and are removed.
    Lease files whose holder is provably gone (dead pid on this host, or
    no heartbeat for ``lease_ttl_s``) are removed.  Every removal is
    best-effort: a racing writer winning a rename, or a read-only root,
    just shrinks the report.  Returns ``{"tmp_removed": [...],
    "leases_removed": [...]}``.
    """
    removed_tmp: list[str] = []
    removed_leases: list[str] = []
    now = time.time()
    for sub in ("objects", "manifests", ""):
        base = os.path.join(root, sub) if sub else root
        if not os.path.isdir(base):
            continue
        for dirpath, _, names in os.walk(base):
            if os.path.basename(dirpath) in ("leases", "quarantine"):
                continue
            for name in names:
                if not name.endswith(".tmp"):
                    continue
                path = os.path.join(dirpath, name)
                try:
                    if now - os.stat(path).st_mtime >= max_tmp_age_s:
                        os.unlink(path)
                        removed_tmp.append(path)
                except OSError:
                    continue
        if not sub:
            break  # bare roots (checkpoint dirs) get one shallow pass
    lease_dir = os.path.join(root, "leases")
    if os.path.isdir(lease_dir):
        for name in sorted(os.listdir(lease_dir)):
            path = os.path.join(lease_dir, name)
            try:
                if lease_is_stale(path, ttl_s=lease_ttl_s):
                    os.unlink(path)
                    removed_leases.append(path)
            except OSError:
                continue
    return {"tmp_removed": removed_tmp, "leases_removed": removed_leases}


# ----------------------------------------------------------------------
# The content-addressed store
# ----------------------------------------------------------------------

@dataclass
class BlobStore:
    """Checksummed, write-once, lease-coordinated blob store.

    ``root=None`` disables persistence: every read misses, every write
    is a no-op, ``try_lease`` hands out process-local null leases.  A
    root that *fails* at runtime degrades to the same behaviour with a
    :class:`StoreDegradedWarning` instead of crashing the caller.
    """

    root: str | None
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    lease_ttl_s: float = 300.0
    degraded: bool = False
    degraded_reason: str | None = None

    def __post_init__(self):
        self.reads = 0
        self.writes = 0
        self.corrupt = 0
        # Per-process digest cache (Bazel-style): blob path -> the stat
        # signature (size, mtime_ns, inode) its bytes last verified
        # under.  Every blob is sha-256-checked on first contact per
        # process; while the signature is unchanged, repeat warm reads
        # skip the re-hash (an atomic replace always changes the
        # signature, so external modification forces re-verification).
        self._verified: dict[str, tuple] = {}

    @property
    def faults(self) -> FaultInjector | None:
        # Resolved per call: tests install/clear injectors mid-object.
        return current_injector()

    # -- paths ---------------------------------------------------------
    def object_path(self, key: str, suffix: str = ".pkl") -> str:
        return os.path.join(self.root, "objects", key[:2],
                            f"{key}{suffix}")

    @property
    def quarantine_dir(self) -> str:
        return os.path.join(self.root, "quarantine")

    def lease_path(self, name: str) -> str:
        return os.path.join(self.root, "leases", f"{name}.json")

    # -- degradation ---------------------------------------------------
    def _degrade(self, reason: str) -> None:
        if self.degraded:
            return
        self.degraded = True
        self.degraded_reason = reason
        warnings.warn(StoreDegradedWarning(str(self.root), reason),
                      stacklevel=3)

    @property
    def writable(self) -> bool:
        return self.root is not None and not self.degraded

    # -- blob I/O ------------------------------------------------------
    def put(self, key: str, payload: bytes, suffix: str = ".pkl") -> bool:
        """Persist a checksummed blob; ``False`` when disabled/degraded."""
        if not self.writable:
            return False
        try:
            atomic_write_bytes(self.object_path(key, suffix),
                               frame_blob(payload), retry=self.retry,
                               faults=self.faults, point="store.write")
        except OSError as exc:
            self._degrade(f"writing blob {key[:12]}…{suffix}: {exc}")
            return False
        self._verified.pop(self.object_path(key, suffix), None)
        self.writes += 1
        return True

    def get(self, key: str, suffix: str = ".pkl") -> bytes | None:
        """Verified payload for ``key``, or ``None``.

        A checksum failure quarantines the blob (bumping ``corrupt``)
        and reads as ``None`` — indistinguishable from a miss to the
        caller, but the poisoned file is off the fast path forever.
        """
        if self.root is None:
            return None
        path = self.object_path(key, suffix)
        try:
            stat = os.stat(path)
        except OSError:
            return None
        # Stat *before* the read: if a writer replaces the file mid-read
        # we record the old signature against the new bytes at worst,
        # and the next read re-verifies.
        signature = (stat.st_size, stat.st_mtime_ns, stat.st_ino)
        already_verified = self._verified.get(path) == signature
        try:
            data = read_bytes(path, retry=self.retry, faults=self.faults,
                              point="store.read")
        except OSError:
            return None  # unreadable right now: a miss, not a crash
        try:
            payload, framed = unframe_blob(data,
                                           verify=not already_verified)
        except BlobCorruptError as exc:
            self._verified.pop(path, None)
            self.quarantine_object(key, str(exc), suffix=suffix)
            return None
        if framed:
            self._verified[path] = signature
        self.reads += 1
        return payload

    def contains(self, key: str, suffix: str = ".pkl") -> bool:
        return self.root is not None and \
            os.path.exists(self.object_path(key, suffix))

    def quarantine_object(self, key: str, reason: str,
                          suffix: str = ".pkl") -> str | None:
        """Move a blob out of ``objects/`` into quarantine; count it."""
        self.corrupt += 1
        return quarantine_file(self.object_path(key, suffix),
                               self.quarantine_dir, reason,
                               extra={"key": key})

    def write_plain(self, path: str, data: bytes,
                    point: str = "store.manifest") -> bool:
        """Atomic unframed write (JSON manifests stay human-readable)."""
        if not self.writable:
            return False
        try:
            atomic_write_bytes(path, data, retry=self.retry,
                               faults=self.faults, point=point)
        except OSError as exc:
            self._degrade(f"writing {os.path.basename(path)}: {exc}")
            return False
        return True

    # -- leases ----------------------------------------------------------
    def try_lease(self, name: str, ttl_s: float | None = None
                  ) -> Lease | None:
        """Claim the work named ``name``; ``None`` means someone owns it.

        Stale leases (dead holder pid on this host, or heartbeat older
        than the ttl) are broken and re-claimed.  With persistence off
        — or lease I/O failing on a degraded root — a :class:`NullLease`
        is returned so the caller simply computes without coordination.
        """
        if self.root is None or self.degraded:
            return NullLease()
        ttl = self.lease_ttl_s if ttl_s is None else ttl_s
        lease = Lease(self.lease_path(name), ttl_s=ttl)
        try:
            if lease.acquire():
                return lease
            if lease_is_stale(lease.path, ttl_s=ttl) and lease.steal():
                return lease
        except OSError as exc:
            self._degrade(f"lease {name[:12]}…: {exc}")
            return NullLease()
        return None

    def lease_holder(self, name: str) -> dict | None:
        """The live lease record for ``name``, if one exists."""
        if self.root is None:
            return None
        try:
            with open(self.lease_path(name)) as handle:
                return json.load(handle)
        except (OSError, ValueError):
            return None

    # -- maintenance -----------------------------------------------------
    def gc(self, *, max_tmp_age_s: float = 600.0) -> dict:
        """Sweep orphaned tmp files and expired leases under the root."""
        if self.root is None or not os.path.isdir(self.root):
            return {"tmp_removed": [], "leases_removed": []}
        return sweep(self.root, max_tmp_age_s=max_tmp_age_s,
                     lease_ttl_s=self.lease_ttl_s)

    def stats(self) -> dict:
        """Counters plus an on-disk census (objects/quarantine/leases)."""
        census = {"objects": 0, "object_bytes": 0, "quarantined": 0,
                  "leases": 0}
        if self.root is not None:
            objects = os.path.join(self.root, "objects")
            for dirpath, _, names in os.walk(objects):
                for name in names:
                    if name.endswith(".tmp"):
                        continue
                    census["objects"] += 1
                    try:
                        census["object_bytes"] += os.stat(
                            os.path.join(dirpath, name)).st_size
                    except OSError:
                        pass
            if os.path.isdir(self.quarantine_dir):
                census["quarantined"] = sum(
                    1 for n in os.listdir(self.quarantine_dir)
                    if not n.endswith(".reason.json"))
            lease_dir = os.path.join(self.root, "leases")
            if os.path.isdir(lease_dir):
                census["leases"] = len(os.listdir(lease_dir))
        return {"root": self.root, "degraded": self.degraded,
                "degraded_reason": self.degraded_reason,
                "reads": self.reads, "writes": self.writes,
                "corrupt": self.corrupt, **census}

    def quarantine_records(self) -> list[dict]:
        """Parsed reason records of everything in quarantine, oldest first."""
        if self.root is None or not os.path.isdir(self.quarantine_dir):
            return []
        records = []
        for name in sorted(os.listdir(self.quarantine_dir)):
            if not name.endswith(".reason.json"):
                continue
            try:
                with open(os.path.join(self.quarantine_dir, name)) as fh:
                    record = json.load(fh)
            except (OSError, ValueError):
                continue
            record["file"] = name[:-len(".reason.json")]
            records.append(record)
        records.sort(key=lambda r: r.get("quarantined_unix", 0))
        return records
