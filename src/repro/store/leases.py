"""Cross-process lease files for in-progress artifact computation.

A lease marks "someone is computing this stage product right now" on a
filesystem shared by parallel ``prepare`` workers (and, on a shared FS,
by workers on other hosts).  The protocol:

* **Acquire** — create the lease file with ``O_CREAT | O_EXCL`` and a
  unique token, then read it back: whoever's token survived the race
  owns the lease.  Creation is the lock; there is no server.
* **Heartbeat** — a daemon thread touches the file's mtime every
  ``ttl / 4`` seconds while the holder works, so long computations stay
  visibly alive.
* **Staleness** — a lease is stale when its holder pid is provably dead
  (same host) or its mtime hasn't moved for a full ttl (any host).  A
  worker SIGKILLed mid-stage therefore never wedges the suite: the next
  contender breaks the lease and takes over.
* **Steal** — unlink the stale file, then acquire.  Two simultaneous
  stealers are resolved by the read-back token check: exactly one wins,
  the other reports the lease as busy and falls back to waiting.

Lease files are JSON (host, pid, token, acquired time) so ``repro store
stats`` and humans can see who holds what.
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time
import uuid

__all__ = ["Lease", "NullLease", "lease_is_stale"]


def _hostname() -> str:
    try:
        return socket.gethostname()
    except OSError:  # pragma: no cover - hostname lookup basically can't fail
        return "unknown-host"


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # someone else's live process
        return True
    return True


def lease_is_stale(path: str, ttl_s: float) -> bool:
    """True when the lease at ``path`` is safely breakable.

    Two independent staleness signals: the holder pid is dead on *this*
    host (instant — a crashed local worker never delays resume), or the
    heartbeat mtime is older than ``ttl_s`` (works across hosts).  A
    vanished or unparsable lease file counts as stale.
    """
    try:
        age = time.time() - os.stat(path).st_mtime
    except OSError:
        return True
    if age >= ttl_s:
        return True
    try:
        with open(path) as handle:
            record = json.load(handle)
    except (OSError, ValueError):
        # Mid-write or mangled: breakable only once the ttl passes.
        return False
    if record.get("host") == _hostname() and \
            not _pid_alive(int(record.get("pid", -1))):
        return True
    return False


class NullLease:
    """A no-op stand-in when coordination is off (no cache root)."""

    held = True

    def acquire(self) -> bool:
        return True

    def release(self) -> None:
        pass

    def renew(self) -> None:
        pass

    def __enter__(self) -> "NullLease":
        return self

    def __exit__(self, *exc) -> None:
        pass


class Lease:
    """One lease file: acquire / heartbeat / release.

    Use as a context manager; the heartbeat thread runs while held::

        lease = Lease(path, ttl_s=300.0)
        if lease.acquire():
            with lease:
                ...compute and store...
    """

    def __init__(self, path: str, ttl_s: float = 300.0):
        self.path = path
        self.ttl_s = float(ttl_s)
        self.token = uuid.uuid4().hex
        self.held = False
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # -- acquisition ---------------------------------------------------
    def _record(self) -> bytes:
        return (json.dumps({
            "host": _hostname(), "pid": os.getpid(), "token": self.token,
            "acquired_unix": time.time(), "ttl_s": self.ttl_s,
        }, sort_keys=True) + "\n").encode()

    def _owns(self) -> bool:
        try:
            with open(self.path) as handle:
                return json.load(handle).get("token") == self.token
        except (OSError, ValueError):
            return False

    def acquire(self) -> bool:
        """Try to create the lease; True iff this process now holds it."""
        os.makedirs(os.path.dirname(self.path) or ".", exist_ok=True)
        try:
            fd = os.open(self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        with os.fdopen(fd, "wb") as handle:
            handle.write(self._record())
            handle.flush()
            os.fsync(handle.fileno())
        # Exclusive creation means the token is ours, but a concurrent
        # *steal* may have unlinked-and-recreated around us — the
        # read-back settles who actually won.
        self.held = self._owns()
        return self.held

    def steal(self) -> bool:
        """Break a stale lease and claim it (token-checked)."""
        try:
            os.unlink(self.path)
        except FileNotFoundError:
            pass
        return self.acquire()

    # -- heartbeat -----------------------------------------------------
    def renew(self) -> None:
        """Bump the heartbeat mtime (no-op if the file vanished)."""
        try:
            os.utime(self.path)
        except OSError:
            pass

    def _heartbeat_loop(self, interval: float) -> None:
        while not self._stop.wait(interval):
            self.renew()

    def _start_heartbeat(self) -> None:
        if self._thread is not None:
            return
        interval = max(0.05, self.ttl_s / 4.0)
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._heartbeat_loop, args=(interval,),
            name=f"lease-heartbeat-{os.path.basename(self.path)}",
            daemon=True)
        self._thread.start()

    # -- release -------------------------------------------------------
    def release(self) -> None:
        """Stop the heartbeat and remove the lease (if still ours)."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None
        if self.held and self._owns():
            try:
                os.unlink(self.path)
            except OSError:
                pass
        self.held = False

    def __enter__(self) -> "Lease":
        if not self.held:
            raise RuntimeError("entering a Lease that was not acquired")
        self._start_heartbeat()
        return self

    def __exit__(self, *exc) -> None:
        self.release()
