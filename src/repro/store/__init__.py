"""``repro.store`` — the durable artifact-store layer.

One backend for every persistence path in the repo: stage-cache pickles
(:class:`repro.pipeline.cache.StageCache` sits on :class:`BlobStore`),
model checkpoints (:mod:`repro.nn.serialize` uses the atomic-write and
checksum primitives), and experiment result manifests
(:func:`repro.api.run_experiment`).  Guarantees, in one line each:

* **Crash-safe** — every write is tmp + fsync + rename; a crash at any
  instant leaves the previous artifact intact.
* **Checksummed** — blobs carry a SHA-256 footer verified on read.
* **Quarantined** — corrupt artifacts move to ``quarantine/`` with a
  reason record instead of being silently re-read (or re-missed)
  forever.
* **Coordinated** — lease files with heartbeats stop parallel workers
  (or hosts, on a shared FS) from duplicating in-progress computation,
  and a dead worker's lease breaks instead of wedging the suite.
* **Degradable** — transient I/O retries with bounded backoff; a root
  that stays unwritable downgrades the caller to uncached operation
  with a :class:`StoreDegradedWarning` instead of crashing the run.

Failure semantics and the fault-injection harness that proves them are
documented in ``docs/reliability.md``.
"""

from .blobs import (BLOB_MAGIC, FOOTER_BYTES, BlobCorruptError, BlobStore,
                    RetryPolicy, StoreDegradedWarning, atomic_write_bytes,
                    frame_blob, quarantine_file, read_bytes, sweep,
                    unframe_blob)
from .leases import Lease, NullLease, lease_is_stale

__all__ = ["BLOB_MAGIC", "FOOTER_BYTES", "BlobCorruptError", "BlobStore",
           "Lease", "NullLease", "RetryPolicy", "StoreDegradedWarning",
           "atomic_write_bytes", "frame_blob", "lease_is_stale",
           "quarantine_file", "read_bytes", "sweep", "unframe_blob"]
