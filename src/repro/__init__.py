"""LHNN reproduction: Lattice Hypergraph Neural Network for VLSI
congestion prediction (Wang et al., DAC 2022).

A from-scratch Python implementation of the paper's system and its entire
experimental stack:

* :mod:`repro.nn` — numpy autograd engine (PyTorch/DGL stand-in),
* :mod:`repro.circuit` — netlists, Bookshelf I/O, synthetic benchmarks,
* :mod:`repro.placement` — analytical placer (DREAMPlace stand-in),
* :mod:`repro.routing` — global router (NCTU-GR stand-in) and label maps,
* :mod:`repro.features` — crafted feature generators,
* :mod:`repro.graph` — the LH-graph formulation,
* :mod:`repro.models` — LHNN, MLP, U-Net and Pix2Pix,
* :mod:`repro.data` / :mod:`repro.train` — dataset, splits, training,
* :mod:`repro.pipeline` — netlist → placement → routing → LH-graph,
* :mod:`repro.eval` — paper tables and Figure-4 visualisation,
* :mod:`repro.perf` — op-level perf instrumentation and the
  ``BENCH_nn.json`` benchmark reporter.

Quickstart::

    from repro.pipeline import PipelineConfig, prepare_suite
    from repro.data import CongestionDataset
    from repro.train import TrainConfig, train_lhnn, evaluate_lhnn

    graphs = prepare_suite(PipelineConfig())
    dataset = CongestionDataset(graphs, channels=1)
    model = train_lhnn(dataset.train_samples(), TrainConfig(epochs=40))
    print(evaluate_lhnn(model, dataset.test_samples()))
"""

__version__ = "1.0.0"

from . import circuit, data, eval, features, graph, models, nn, perf
from . import placement, routing, train
from .pipeline import PipelineConfig, prepare_design, prepare_suite

__all__ = [
    "circuit", "data", "eval", "features", "graph", "models", "nn",
    "perf", "placement", "routing", "train",
    "PipelineConfig", "prepare_design", "prepare_suite",
    "__version__",
]
