"""LHNN reproduction: Lattice Hypergraph Neural Network for VLSI
congestion prediction (Wang et al., DAC 2022).

A from-scratch Python implementation of the paper's system and its entire
experimental stack:

* :mod:`repro.nn` — numpy autograd engine (PyTorch/DGL stand-in),
* :mod:`repro.circuit` — netlists, Bookshelf I/O, synthetic benchmarks,
* :mod:`repro.placement` — analytical placer (DREAMPlace stand-in),
* :mod:`repro.routing` — global router (NCTU-GR stand-in) and label maps,
* :mod:`repro.features` — crafted feature generators,
* :mod:`repro.graph` — the LH-graph formulation,
* :mod:`repro.models` — LHNN, MLP, U-Net and Pix2Pix,
* :mod:`repro.data` / :mod:`repro.train` — dataset, splits, training,
* :mod:`repro.pipeline` — netlist → placement → routing → LH-graph,
* :mod:`repro.eval` — paper tables and Figure-4 visualisation,
* :mod:`repro.perf` — op-level perf instrumentation and the
  ``BENCH_nn.json`` benchmark reporter,
* :mod:`repro.api` — the declarative experiment layer: one
  :class:`~repro.api.ExperimentSpec` drives every model family,
  workload and entry point.

Quickstart::

    from repro.api import ExperimentSpec, apply_overrides, run_experiment

    spec = apply_overrides(ExperimentSpec(), ["train.epochs=40"])
    result = run_experiment(spec)      # prepare -> train -> evaluate -> save
    print(result.metrics)
"""

__version__ = "1.0.0"

from . import api, circuit, data, eval, features, graph, models, nn, perf
from . import placement, routing, train
from .pipeline import PipelineConfig, prepare_design, prepare_suite

__all__ = [
    "api", "circuit", "data", "eval", "features", "graph", "models", "nn",
    "perf", "placement", "routing", "train",
    "PipelineConfig", "prepare_design", "prepare_suite",
    "__version__",
]
