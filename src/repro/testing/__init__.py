"""Test-support utilities shipped with the package.

:mod:`repro.testing.faults` is the deterministic fault-injection
harness used by the reliability test suite (and available to anyone who
wants to chaos-test code built on :mod:`repro.store`).  It lives in the
installed package — not under ``tests/`` — because injection points are
compiled into the store's hot paths and because subprocess-based tests
(SIGKILL at a barrier inside ``prepare --workers N``) need the harness
importable from a bare ``PYTHONPATH=src`` child process.
"""

from .faults import (FaultError, FaultInjector, FaultRule, clear_faults,
                     current_injector, install_faults)

__all__ = ["FaultError", "FaultInjector", "FaultRule", "clear_faults",
           "current_injector", "install_faults"]
