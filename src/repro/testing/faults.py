"""Deterministic fault injection for the durable artifact store.

The store (:mod:`repro.store`) calls three hooks at well-known
*injection points*; with no injector installed every hook is a no-op
(one ``is None`` check).  Tests install a :class:`FaultInjector` — in
process via :func:`install_faults`, or across process boundaries via the
``REPRO_FAULTS`` environment variable (a JSON list of rule dicts), which
is how a SIGKILL lands inside a ``prepare --workers N`` pool worker.

Injection points and their hooks::

    on_write(point, tag, data) -> data   may raise EIO / FaultError,
                                         or truncate the bytes written
    on_read(point, tag, data)  -> data   may raise EIO, or flip a byte
    barrier(point, tag)                  may raise, or SIGKILL the
                                         process on the spot

Points currently compiled in:

=========================  ====================================================
``store.write``            framed blob bytes about to be written (per attempt)
``store.write.tmp``        barrier between tmp-file write and the rename
``store.read``             blob bytes just read, before checksum verification
``store.manifest``         suite-manifest bytes about to be written
``checkpoint.write``       checkpoint npz bytes about to be written
``checkpoint.write.tmp``   barrier between checkpoint tmp write and rename
``checkpoint.read``        checkpoint bytes just read, before verification
``stage.start``            barrier before a pipeline stage computes
                           (tag = ``"<stage>:<design>"``)
``stage.stored``           barrier right after a stage product is persisted
``experiment.manifest``    result-manifest bytes about to be written
``sweep.point.start``      barrier after a sweep grid point's lease is won,
                           before it executes (tag = spec fingerprint)
``sweep.manifest.read``    result-manifest bytes read during sweep
                           done-detection, before validation
``sweep.manifest``         sweep leaderboard-manifest bytes about to be written
=========================  ====================================================

Every rule fires deterministically: hits are counted per rule within a
process, and a rule fires on matching hits ``nth .. nth + count - 1``
(``count=-1`` keeps firing forever).  There is no randomness anywhere —
the same program under the same plan fails the same way every time.
"""

from __future__ import annotations

import errno
import json
import os
import signal
from dataclasses import asdict, dataclass, field

__all__ = ["FaultError", "FaultRule", "FaultInjector", "install_faults",
           "clear_faults", "current_injector", "FAULTS_ENV"]

#: Environment variable carrying a JSON fault plan into child processes.
FAULTS_ENV = "REPRO_FAULTS"


class FaultError(RuntimeError):
    """An injected, non-OSError failure (the ``fail`` action)."""


@dataclass
class FaultRule:
    """One deterministic fault: *where*, *what*, and *when*.

    ``point`` names the injection point; ``match`` (substring) narrows it
    to specific tags — a blob key, a file path, a ``stage:design`` pair.
    The rule fires on its ``nth`` matching hit (1-based) and keeps firing
    for ``count`` consecutive hits (``-1`` = forever).

    Actions:

    * ``"eio"``      — raise ``OSError(EIO)`` (transient-looking I/O)
    * ``"fail"``     — raise :class:`FaultError` (non-retryable)
    * ``"truncate"`` — keep only the first ``arg`` bytes on write
    * ``"flip"``     — XOR the byte at offset ``arg`` on read
    * ``"kill"``     — SIGKILL the current process at a barrier
    """

    point: str
    action: str
    nth: int = 1
    count: int = 1
    match: str = ""
    arg: int = 0

    _ACTIONS = ("eio", "fail", "truncate", "flip", "kill")

    def __post_init__(self):
        if self.action not in self._ACTIONS:
            raise ValueError(f"unknown fault action {self.action!r}; "
                             f"expected one of {self._ACTIONS}")
        if self.nth < 1:
            raise ValueError("nth is 1-based and must be >= 1")


@dataclass
class FaultInjector:
    """A deterministic fault plan plus its per-process hit counters."""

    rules: list[FaultRule] = field(default_factory=list)

    def __post_init__(self):
        self._hits = [0] * len(self.rules)

    # -- firing logic --------------------------------------------------
    def _firing(self, point: str, tag: str) -> list[FaultRule]:
        fired = []
        for i, rule in enumerate(self.rules):
            if rule.point != point or rule.match not in tag:
                continue
            self._hits[i] += 1
            n = self._hits[i]
            if n >= rule.nth and (rule.count < 0
                                  or n < rule.nth + rule.count):
                fired.append(rule)
        return fired

    @staticmethod
    def _raise(rule: FaultRule, point: str, tag: str) -> None:
        if rule.action == "eio":
            raise OSError(errno.EIO,
                          f"injected EIO at {point} ({tag})")
        if rule.action == "fail":
            raise FaultError(f"injected failure at {point} ({tag})")
        if rule.action == "kill":
            os.kill(os.getpid(), signal.SIGKILL)

    # -- hooks ---------------------------------------------------------
    def barrier(self, point: str, tag: str = "") -> None:
        """A pure control-flow injection point (kill / raise)."""
        for rule in self._firing(point, tag):
            self._raise(rule, point, tag)

    def on_write(self, point: str, tag: str, data: bytes) -> bytes:
        """Filter bytes about to be written; may raise or truncate."""
        for rule in self._firing(point, tag):
            if rule.action == "truncate":
                data = data[:rule.arg]
            else:
                self._raise(rule, point, tag)
        return data

    def on_read(self, point: str, tag: str, data: bytes) -> bytes:
        """Filter bytes just read; may raise or flip a byte."""
        for rule in self._firing(point, tag):
            if rule.action == "flip":
                offset = rule.arg % max(1, len(data))
                mutated = bytearray(data)
                mutated[offset] ^= 0xFF
                data = bytes(mutated)
            else:
                self._raise(rule, point, tag)
        return data

    # -- (de)serialisation for subprocess tests ------------------------
    def to_env(self) -> str:
        """The JSON plan to put in ``os.environ[FAULTS_ENV]``."""
        return json.dumps([asdict(rule) for rule in self.rules])

    @classmethod
    def from_env(cls, payload: str) -> "FaultInjector":
        return cls(rules=[FaultRule(**entry)
                          for entry in json.loads(payload)])


_ACTIVE: FaultInjector | None = None
_ENV_LOADED = False


def install_faults(injector: FaultInjector) -> FaultInjector:
    """Install ``injector`` as the process-wide fault plan."""
    global _ACTIVE
    _ACTIVE = injector
    return injector


def clear_faults() -> None:
    """Remove any installed injector (env plans reload on next lookup)."""
    global _ACTIVE, _ENV_LOADED
    _ACTIVE = None
    _ENV_LOADED = False


def current_injector() -> FaultInjector | None:
    """The active injector, if any.

    An explicitly installed injector wins; otherwise the ``REPRO_FAULTS``
    environment plan is parsed once per process (so pool workers and
    spawned subprocesses inherit the plan with fresh hit counters).
    ``None`` means every injection point is a no-op.
    """
    global _ACTIVE, _ENV_LOADED
    if _ACTIVE is None and not _ENV_LOADED:
        _ENV_LOADED = True
        payload = os.environ.get(FAULTS_ENV)
        if payload:
            _ACTIVE = FaultInjector.from_env(payload)
    return _ACTIVE
