"""``repro.perf`` — op-level performance instrumentation and reporting.

The numerical engine (:mod:`repro.nn`) guards its hot paths with
lightweight timers that report into a process-global
:class:`PerfRegistry`.  Instrumentation is **off by default** and costs a
single attribute check per op when disabled, so production serving and
training pay nothing; benches and the perf harness flip it on around the
region they measure:

>>> from repro import perf
>>> perf.enable()
>>> run_training_epoch()            # doctest: +SKIP
>>> report = perf.perf_report()     # {"ops": {"spmm.forward": {...}}}
>>> perf.disable()

Recorded per op: call count, total/mean wall seconds, and the bytes of
the arrays the op produced (an allocation counter — the engine's hot
loops are allocation-bound on CPU, so "bytes materialised per step" is
the number the in-place-optimizer and buffer-reuse work drives down).

:func:`measure` is the standalone harness: it runs a callable under the
timer *and* a :mod:`tracemalloc` window, returning wall time and the
peak python-allocation high-water mark.

The machine-readable benchmark trajectory (``BENCH_nn.json``) is written
by :mod:`repro.perf.report`.
"""

from __future__ import annotations

import time
import tracemalloc
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = ["PerfRegistry", "PERF", "enable", "disable", "is_enabled",
           "reset", "perf_report", "op_timer", "measure", "Measurement"]


@dataclass
class _OpStat:
    """Accumulated statistics of one instrumented op."""

    calls: int = 0
    total_s: float = 0.0
    bytes_allocated: int = 0

    def as_dict(self) -> dict:
        return {
            "calls": self.calls,
            "total_s": self.total_s,
            "mean_s": self.total_s / self.calls if self.calls else 0.0,
            "bytes_allocated": self.bytes_allocated,
        }


class PerfRegistry:
    """Process-global accumulator for op timings and allocation counts.

    Hot paths check :attr:`enabled` (a plain bool — no locks, no
    indirection) and call :meth:`record` only when it is set, so the
    disabled cost is one ``if``.  The registry is not thread-safe;
    perf capture is a single-threaded benching activity.
    """

    __slots__ = ("enabled", "_stats")

    def __init__(self) -> None:
        self.enabled = False
        self._stats: dict[str, _OpStat] = {}

    def record(self, name: str, seconds: float, nbytes: int = 0) -> None:
        """Add one op invocation (``seconds`` wall time, ``nbytes``
        of output arrays materialised)."""
        stat = self._stats.get(name)
        if stat is None:
            stat = self._stats[name] = _OpStat()
        stat.calls += 1
        stat.total_s += seconds
        stat.bytes_allocated += nbytes

    def reset(self) -> None:
        """Drop all accumulated statistics (keeps the enabled flag)."""
        self._stats.clear()

    def report(self) -> dict:
        """Snapshot as a JSON-serialisable dict, ops sorted by total time."""
        ops = sorted(self._stats.items(),
                     key=lambda kv: kv[1].total_s, reverse=True)
        return {"enabled": self.enabled,
                "ops": {name: stat.as_dict() for name, stat in ops}}


#: The process-global registry the :mod:`repro.nn` hot paths report into.
PERF = PerfRegistry()


def enable(reset: bool = True) -> None:
    """Turn on op-level capture (optionally clearing previous stats)."""
    if reset:
        PERF.reset()
    PERF.enabled = True


def disable() -> None:
    """Turn off op-level capture (accumulated stats are kept)."""
    PERF.enabled = False


def is_enabled() -> bool:
    """Whether the hot paths are currently recording."""
    return PERF.enabled


def reset() -> None:
    """Clear accumulated statistics."""
    PERF.reset()


def perf_report() -> dict:
    """The current registry snapshot (see :meth:`PerfRegistry.report`)."""
    return PERF.report()


@contextmanager
def op_timer(name: str, nbytes: int = 0):
    """Record the wrapped block as one invocation of op ``name``.

    A no-op (beyond one flag check) when capture is disabled, so it is
    safe to leave in library code outside the hottest loops.
    """
    if not PERF.enabled:
        yield
        return
    t0 = time.perf_counter()
    try:
        yield
    finally:
        PERF.record(name, time.perf_counter() - t0, nbytes)


@dataclass
class Measurement:
    """Result of :func:`measure`: wall time plus allocation high-water."""

    value: object
    seconds: float
    peak_bytes: int = 0
    extra: dict = field(default_factory=dict)


def measure(fn, *args, trace_allocations: bool = True, **kwargs) -> Measurement:
    """Run ``fn(*args, **kwargs)`` under a timer and (optionally) a
    :mod:`tracemalloc` window.

    ``peak_bytes`` is the tracemalloc peak *delta* over the call — the
    transient python-side allocation footprint, which is what the fused /
    in-place hot-path work shrinks.  Tracing costs real time, so wall
    seconds from a traced run should not be compared against untraced
    runs; benches time first and trace separately.
    """
    if trace_allocations:
        started_here = not tracemalloc.is_tracing()
        if started_here:
            tracemalloc.start()
        tracemalloc.reset_peak()
        before, _ = tracemalloc.get_traced_memory()
    t0 = time.perf_counter()
    value = fn(*args, **kwargs)
    seconds = time.perf_counter() - t0
    peak = 0
    if trace_allocations:
        _, peak_abs = tracemalloc.get_traced_memory()
        peak = max(0, peak_abs - before)
        if started_here:
            tracemalloc.stop()
    return Measurement(value=value, seconds=seconds, peak_bytes=peak)
