"""Machine-readable benchmark reporting: the ``BENCH_nn.json`` trajectory.

The repo's ROADMAP demands the engine run "as fast as the hardware
allows"; this module is how progress toward that is *recorded*.  Benches
(`benchmarks/test_substrate_performance.py`) measure the numerical
engine's hot paths at float32 and float64 and hand the timings to
:func:`write_bench_report`, which writes a small, schema-versioned JSON
file.  Each entry carries the raw per-dtype seconds and the
``speedup_vs_float64`` ratio, plus (optionally) the op-level timer
snapshot from :func:`repro.perf.perf_report`.

The file is meant to be diffed across commits — CI uploads it as a build
artifact on the nightly bench run — so the schema is strict and
:func:`load_bench_report` validates it.
"""

from __future__ import annotations

import json
import os
import platform
from typing import Mapping

__all__ = ["BENCH_SCHEMA", "SERVE_BENCH_SCHEMA", "STORE_BENCH_SCHEMA",
           "speedup_entry", "write_bench_report", "load_bench_report",
           "write_serve_bench_report", "load_serve_bench_report",
           "write_store_bench_report", "load_store_bench_report"]

#: Schema tag of the report format; bump when the layout changes.
BENCH_SCHEMA = "repro-bench-nn-v1"

#: Schema tag of the serving-load report (``BENCH_serve.json``): entries
#: carry requests/s and p50/p99 latency percentiles per load shape.
SERVE_BENCH_SCHEMA = "repro-bench-serve-v1"

#: Schema tag of the artifact-store report (``BENCH_store.json``):
#: entries carry raw vs checksummed read timings and the overhead ratio.
STORE_BENCH_SCHEMA = "repro-bench-store-v1"


def speedup_entry(float32_s: float, float64_s: float,
                  **extra) -> dict:
    """One benchmark entry: per-dtype seconds plus the speedup ratio.

    Extra keyword values (e.g. an F1-parity delta) are stored verbatim.
    """
    if float32_s <= 0 or float64_s <= 0:
        raise ValueError("timings must be positive")
    entry = {
        "float32_s": float(float32_s),
        "float64_s": float(float64_s),
        "speedup_vs_float64": float(float64_s) / float(float32_s),
    }
    entry.update(extra)
    return entry


def write_bench_report(path: str, entries: Mapping[str, dict],
                       perf_ops: dict | None = None,
                       context: dict | None = None) -> str:
    """Write the benchmark report to ``path`` and return the path.

    Parameters
    ----------
    entries:
        Mapping of benchmark name (``train_epoch``, ``conv2d_forward``,
        ``spmm``, ``serve_flush`` ...) to entry dicts — typically from
        :func:`speedup_entry`.
    perf_ops:
        Optional op-level snapshot (:func:`repro.perf.perf_report`),
        giving the per-op breakdown behind the headline numbers.
    context:
        Optional free-form machine context (suite sizes, rounds ...).
    """
    return _write_report(path, BENCH_SCHEMA, entries, perf_ops, context)


def _write_report(path: str, schema: str, entries: Mapping[str, dict],
                  perf_ops: dict | None = None,
                  context: dict | None = None) -> str:
    if not entries:
        raise ValueError("refusing to write an empty benchmark report")
    report = {
        "schema": schema,
        "platform": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "system": platform.system(),
        },
        "context": dict(context or {}),
        "entries": {str(k): dict(v) for k, v in entries.items()},
    }
    if perf_ops is not None:
        report["perf_ops"] = perf_ops
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    tmp = path + ".tmp"
    with open(tmp, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)
    return path


def load_bench_report(path: str) -> dict:
    """Read and validate a report written by :func:`write_bench_report`.

    Raises ``ValueError`` on schema mismatch or a structurally invalid
    file — the CI smoke test calls this, so a reporter regression fails
    tier-1 instead of silently producing an undiffable artifact.
    """
    return _load_report(path, BENCH_SCHEMA,
                        numeric_suffixes=("_s", "speedup_vs_float64"))


def write_serve_bench_report(path: str, entries: Mapping[str, dict],
                             context: dict | None = None) -> str:
    """Write the sustained-load serving report (``BENCH_serve.json``).

    Entries come from the serving benches: per load shape, the observed
    ``requests_per_s`` and latency percentiles (``p50_ms``/``p99_ms``),
    plus whatever shape parameters (workers, request counts) make the
    number interpretable.  Same envelope and atomic-write discipline as
    the ``BENCH_nn.json`` trajectory, different schema tag.
    """
    return _write_report(path, SERVE_BENCH_SCHEMA, entries, None, context)


def load_serve_bench_report(path: str) -> dict:
    """Read and validate a ``BENCH_serve.json`` report.

    The nightly CI job calls this after the sustained-load bench, so an
    invalid or empty artifact fails the job instead of uploading noise.
    """
    return _load_report(
        path, SERVE_BENCH_SCHEMA,
        numeric_suffixes=("_s", "_ms", "requests_per_s", "speedup"))


def write_store_bench_report(path: str, entries: Mapping[str, dict],
                             context: dict | None = None) -> str:
    """Write the artifact-store overhead report (``BENCH_store.json``).

    Entries come from the store micro-bench: per payload shape, the
    best-of-N wall time of raw (unverified) vs checksummed warm reads
    (``raw_read_s`` / ``verified_read_s``) and their
    ``overhead_ratio`` — the number the ≤1.10× budget in
    ``benchmarks/test_store_overhead.py`` is asserted on.
    """
    return _write_report(path, STORE_BENCH_SCHEMA, entries, None, context)


def load_store_bench_report(path: str) -> dict:
    """Read and validate a ``BENCH_store.json`` report.

    The nightly CI job calls this after the store bench, so an invalid
    or empty artifact fails the job instead of uploading noise.
    """
    return _load_report(path, STORE_BENCH_SCHEMA,
                        numeric_suffixes=("_s", "_ratio", "_bytes"))


def _load_report(path: str, schema: str,
                 numeric_suffixes: tuple[str, ...]) -> dict:
    with open(path) as handle:
        report = json.load(handle)
    if report.get("schema") != schema:
        raise ValueError(f"{path}: unknown bench schema "
                         f"{report.get('schema')!r} (expected {schema!r})")
    entries = report.get("entries")
    if not isinstance(entries, dict) or not entries:
        raise ValueError(f"{path}: report has no entries")
    for name, entry in entries.items():
        if not isinstance(entry, dict):
            raise ValueError(f"{path}: entry {name!r} is not an object")
        for key, value in entry.items():
            if key.endswith(numeric_suffixes) \
                    and not isinstance(value, (int, float)):
                raise ValueError(f"{path}: entry {name!r} field {key!r} "
                                 f"is not numeric")
    return report
