"""Probability-calibration diagnostics.

Figure 4's qualitative claim — LHNN tracks each circuit's congestion level
while CNNs predict an "averaged" level — is a calibration statement.
This module quantifies it:

* :func:`expected_calibration_error` — the standard binned ECE of
  predicted probabilities against binary labels,
* :func:`reliability_bins` — the underlying per-bin confidence/accuracy
  table (renderable as a reliability diagram),
* :func:`rate_tracking_error` — per-design |predicted positive rate −
  true rate|, the exact quantity Figure 4 argues about.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ReliabilityBin", "reliability_bins",
           "expected_calibration_error", "rate_tracking_error"]


@dataclass
class ReliabilityBin:
    """One confidence bin of a reliability diagram."""

    lower: float
    upper: float
    count: int
    mean_confidence: float
    empirical_accuracy: float

    @property
    def gap(self) -> float:
        """|confidence − accuracy| of this bin."""
        return abs(self.mean_confidence - self.empirical_accuracy)


def reliability_bins(prob: np.ndarray, target: np.ndarray,
                     num_bins: int = 10) -> list[ReliabilityBin]:
    """Bin predictions by confidence and compare with empirical rates.

    ``prob`` holds positive-class probabilities; ``target`` binary labels.
    Empty bins are skipped.
    """
    prob = np.asarray(prob, dtype=np.float64).reshape(-1)
    target = np.asarray(target, dtype=np.float64).reshape(-1)
    if prob.shape != target.shape:
        raise ValueError("probability/label shape mismatch")
    if num_bins < 1:
        raise ValueError("need at least one bin")
    edges = np.linspace(0.0, 1.0, num_bins + 1)
    bins: list[ReliabilityBin] = []
    for i in range(num_bins):
        lo, hi = edges[i], edges[i + 1]
        if i == num_bins - 1:
            mask = (prob >= lo) & (prob <= hi)
        else:
            mask = (prob >= lo) & (prob < hi)
        count = int(mask.sum())
        if count == 0:
            continue
        bins.append(ReliabilityBin(
            lower=float(lo), upper=float(hi), count=count,
            mean_confidence=float(prob[mask].mean()),
            empirical_accuracy=float(target[mask].mean()),
        ))
    return bins


def expected_calibration_error(prob: np.ndarray, target: np.ndarray,
                               num_bins: int = 10) -> float:
    """ECE = Σ_b (n_b / N) · |conf_b − acc_b| over confidence bins."""
    prob = np.asarray(prob).reshape(-1)
    total = prob.size
    if total == 0:
        return 0.0
    return float(sum(b.count / total * b.gap
                     for b in reliability_bins(prob, target, num_bins)))


def rate_tracking_error(per_design_prob: list[np.ndarray],
                        per_design_target: list[np.ndarray],
                        threshold: float = 0.5) -> float:
    """Mean |predicted positive rate − true positive rate| across designs.

    The Figure-4 statistic: a model that predicts an "averaged" congestion
    level for every circuit has a high tracking error on a suite whose
    congestion rates vary widely.
    """
    if len(per_design_prob) != len(per_design_target):
        raise ValueError("need one probability array per target array")
    errors = []
    for prob, target in zip(per_design_prob, per_design_target):
        pred_rate = float((np.asarray(prob) >= threshold).mean())
        true_rate = float(np.asarray(target).mean())
        errors.append(abs(pred_rate - true_rate))
    return float(np.mean(errors)) if errors else 0.0
