"""``repro.eval`` — table formatting and congestion-map visualisation."""

from .tables import format_table, format_table2, format_table3
from .visualize import ascii_heatmap, write_pgm, comparison_panel
from .reporting import per_design_report, predicted_rate_table, markdown_table
from .calibration import (ReliabilityBin, reliability_bins,
                          expected_calibration_error, rate_tracking_error)

__all__ = ["format_table", "format_table2", "format_table3",
           "ascii_heatmap", "write_pgm", "comparison_panel",
           "per_design_report", "predicted_rate_table", "markdown_table",
           "ReliabilityBin", "reliability_bins",
           "expected_calibration_error", "rate_tracking_error"]
