"""Congestion-map visualisation (paper Figure 4).

Terminal-friendly ASCII heatmaps plus binary PGM image export (viewable
anywhere, no extra dependencies), and a side-by-side comparison renderer
showing ground truth against several models' predictions for one design.
"""

from __future__ import annotations

import os

import numpy as np

__all__ = ["ascii_heatmap", "write_pgm", "comparison_panel"]

_RAMP = " .:-=+*#%@"


def ascii_heatmap(values: np.ndarray, width: int | None = None) -> str:
    """Render a 2-D array as an ASCII heatmap (rows top-to-bottom = y desc).

    Values are min-max normalised; ``width`` optionally downsamples the
    horizontal axis for narrow terminals.
    """
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim != 2:
        raise ValueError("ascii_heatmap expects a 2-D array")
    if width is not None and arr.shape[0] > width:
        step = arr.shape[0] // width
        arr = arr[::step, ::step]
    lo, hi = float(arr.min()), float(arr.max())
    span = hi - lo if hi > lo else 1.0
    normed = (arr - lo) / span
    # array is (x, y); render y as rows from top (max y) down.
    lines = []
    for y in range(arr.shape[1] - 1, -1, -1):
        row = "".join(_RAMP[min(int(v * (len(_RAMP) - 1)), len(_RAMP) - 1)]
                      for v in normed[:, y])
        lines.append(row)
    return "\n".join(lines)


def write_pgm(values: np.ndarray, path: str) -> str:
    """Write a 2-D array as an 8-bit binary PGM image; returns ``path``."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim != 2:
        raise ValueError("write_pgm expects a 2-D array")
    lo, hi = float(arr.min()), float(arr.max())
    span = hi - lo if hi > lo else 1.0
    img = ((arr - lo) / span * 255.0).astype(np.uint8)
    # (x, y) → image rows top-down.
    img = img.T[::-1]
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    with open(path, "wb") as handle:
        handle.write(f"P5\n{img.shape[1]} {img.shape[0]}\n255\n".encode())
        handle.write(img.tobytes())
    return path


def comparison_panel(truth: np.ndarray, predictions: dict[str, np.ndarray],
                     title: str = "") -> str:
    """Side-by-side ASCII panels: ground truth then each model's map."""
    panels = {"ground truth": truth}
    panels.update(predictions)
    rendered = {name: ascii_heatmap(arr).split("\n")
                for name, arr in panels.items()}
    height = max(len(lines) for lines in rendered.values())
    widths = {name: max(len(line) for line in lines)
              for name, lines in rendered.items()}
    header = "   ".join(name.ljust(widths[name]) for name in rendered)
    body_lines = []
    for i in range(height):
        parts = []
        for name, lines in rendered.items():
            line = lines[i] if i < len(lines) else ""
            parts.append(line.ljust(widths[name]))
        body_lines.append("   ".join(parts))
    out = [header, "-" * len(header)] + body_lines
    if title:
        out.insert(0, title)
    return "\n".join(out)
