"""Plain-text table rendering for the reproduced paper tables."""

from __future__ import annotations

from ..train.metrics import MetricSummary

__all__ = ["format_table", "format_table2", "format_table3"]


def format_table(rows: list[dict], title: str = "") -> str:
    """Render a list of uniform dicts as an aligned text table."""
    if not rows:
        return title
    columns = list(rows[0])
    widths = {c: max(len(str(c)), *(len(str(r.get(c, ""))) for r in rows))
              for c in columns}
    header = " | ".join(str(c).ljust(widths[c]) for c in columns)
    sep = "-+-".join("-" * widths[c] for c in columns)
    body = [" | ".join(str(r.get(c, "")).ljust(widths[c]) for c in columns)
            for r in rows]
    lines = ([title] if title else []) + [header, sep] + body
    return "\n".join(lines)


def format_table2(results: dict[str, dict[str, MetricSummary]]) -> str:
    """Render the model-comparison table (paper Table 2).

    ``results[model][task]`` with task in {"uni", "duo"}.
    """
    rows = []
    for model, tasks in results.items():
        row: dict = {"Model": model}
        for task in ("uni", "duo"):
            if task in tasks:
                s = tasks[task]
                row[f"{task} F1"] = f"{s.f1_mean:.2f}±{s.f1_std:.2f}"
                row[f"{task} ACC"] = f"{s.acc_mean:.2f}±{s.acc_std:.2f}"
            else:
                row[f"{task} F1"] = "-"
                row[f"{task} ACC"] = "-"
        rows.append(row)
    return format_table(rows, title="Table 2: model comparison (F1 / ACC, %)")


def format_table3(results: dict[str, float], full_key: str = "full") -> str:
    """Render the ablation table (paper Table 3): F1 and ΔF1/F1_full %."""
    full = results.get(full_key, 0.0)
    rows = []
    for name, f1 in results.items():
        delta = 0.0 if full == 0 else 100.0 * (f1 - full) / full
        rows.append({"Ablation": name, "F1": f"{f1:.2f}",
                     "ΔF1/F1_full (%)": f"{delta:+.2f}"})
    return format_table(rows, title="Table 3: ablation study (uni-channel)")
