"""Per-design evaluation reports.

The paper's tables report suite-level averages; for debugging and for the
EXPERIMENTS.md record we also want the per-circuit breakdown the paper's
Figure 4 discussion implies (LHNN tracks each circuit's congestion level,
baselines average across circuits).  This module renders those reports
from trained models.
"""

from __future__ import annotations

import numpy as np

from ..data.dataset import GraphSample
from ..nn import no_grad
from ..train.metrics import confusion, f1_score, precision, recall
from .tables import format_table

__all__ = ["per_design_report", "predicted_rate_table", "markdown_table"]


def per_design_report(model, samples: list[GraphSample],
                      threshold: float = 0.5,
                      predict=None, crop: int | None = None) -> list[dict]:
    """Per-design precision/recall/F1/rates for a trained model.

    ``predict(sample) -> prob array`` customises inference; the default
    routes any registered model family through
    :func:`repro.train.trainer.predict_probs`.  ``crop`` makes the CNN
    families (U-Net, Pix2Pix) predict tile-by-tile exactly as they
    trained — pass the checkpoint's ``train.crop`` so this report agrees
    with the runtime evaluator's metrics.
    """
    if predict is None:
        from ..train.trainer import _predict_tiled, predict_probs
        from ..models.pix2pix import Pix2Pix
        from ..models.unet import UNet
        if crop is not None and isinstance(model, (UNet, Pix2Pix)):
            forward = (model.generator if isinstance(model, Pix2Pix)
                       else model)

            def predict(s):
                prob = _predict_tiled(forward, s.image,
                                      s.cls_target.shape[1], crop)
                return prob[0].transpose(1, 2, 0).reshape(
                    -1, prob.shape[1])
        else:
            predict = lambda s: predict_probs(model, s)  # noqa: E731
    rows = []
    if hasattr(model, "eval"):
        model.eval()
    with no_grad():
        for sample in samples:
            prob = np.asarray(predict(sample))
            pred = prob >= threshold
            target = sample.cls_target
            c = confusion(pred, target)
            rows.append({
                "design": sample.name,
                "true_rate_%": round(100 * float(np.mean(target)), 2),
                "pred_rate_%": round(100 * float(np.mean(pred)), 2),
                "precision": round(100 * precision(c), 2),
                "recall": round(100 * recall(c), 2),
                "F1": round(100 * f1_score(pred, target), 2),
            })
    if hasattr(model, "train"):
        model.train()
    return rows


def predicted_rate_table(rows: list[dict], title: str = "") -> str:
    """Render :func:`per_design_report` rows as an aligned text table."""
    return format_table(rows, title=title)


def markdown_table(rows: list[dict], title: str = "") -> str:
    """Render rows as a GitHub-flavoured markdown table."""
    if not rows:
        return title
    columns = list(rows[0])
    lines = []
    if title:
        lines.append(f"**{title}**")
        lines.append("")
    lines.append("| " + " | ".join(str(c) for c in columns) + " |")
    lines.append("|" + "|".join("---" for _ in columns) + "|")
    for row in rows:
        lines.append("| " + " | ".join(str(row.get(c, "")) for c in columns)
                     + " |")
    return "\n".join(lines)
