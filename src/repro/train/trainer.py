"""Training and evaluation loops for every model family.

Reproduces the paper's protocol (§5.1–5.2): fixed epoch budget, Adam with
the 2e-3 → 5e-4 learning-rate pair (routed through the
:func:`repro.nn.optim.two_phase_lr` schedule), γ-weighted BCE on the
congestion map (all models) plus MSE on the demand map (LHNN's joint
supervision), evaluation = per-circuit F1/ACC on held-out designs averaged
per seed, with mean ± std over seeds.

Every family exposes one *uniform* runtime interface, registered with the
model registry (:func:`repro.serve.registry.attach_runtime`) so
:func:`repro.api.run_experiment` drives any family from one declarative
spec:

* ``trainer(samples, train_config, model_config) -> model`` where
  ``model_config`` is a plain dict of family-specific construction knobs
  (``channels`` plus e.g. ``hidden`` / ``base_width`` / any
  :class:`~repro.models.lhnn.LHNNConfig` field),
* ``evaluator(model, samples, train_config) -> {"f1", "acc"}`` reading
  ``threshold`` / ``batch_size`` / ``crop`` off the train config.

The historical per-family entry points (``train_lhnn`` /
``evaluate_lhnn`` …) are kept as thin deprecation shims over the same
implementations, so existing imports keep working and produce identical
numerics.

Graph-based models (LHNN, GridSAGE) and the MLP baseline train in
DGL-style mini-batches: ``TrainConfig.batch_size`` designs are composed
into one block-diagonal supergraph per optimizer step
(:func:`repro.data.dataset.collate_samples`), so each step runs fewer,
larger sparse matmuls.  Batch membership is fixed per run — the epoch loop
reshuffles only the visit order — so a per-run
:class:`repro.graph.batch.BatchCache` reuses every composition after the
first epoch instead of rebuilding CSR matrices each step.  Predictions are
split back per design with :func:`repro.graph.batch.unbatch_values` for
the per-circuit metrics.

Dtype policy: the loops train in whatever dtype the samples and model
were materialised in (``repro.nn.set_default_dtype``; the CLI defaults
to float32) — per-step losses and gradients stay in the compute dtype,
while cross-step *accumulators* (epoch loss totals, gradient norms,
metric averages) are python floats / float64, so a float32 run loses no
reporting precision.  Every ``evaluate_*`` loop runs under
:func:`repro.nn.no_grad`; a regression suite
(``tests/train/test_eval_no_grad.py``) asserts no backward closures are
recorded during evaluation.
"""

from __future__ import annotations

import warnings
from dataclasses import asdict

import numpy as np

from ..data.dataset import GraphSample, collate_samples
from ..graph.batch import BatchCache, unbatch_values
from ..graph.sampling import sampled_operators
from ..models.lhnn import LHNN, LHNNConfig
from ..models.mlp_baseline import MLPBaseline
from ..models.pix2pix import Pix2Pix
from ..models.related import GridSAGE
from ..models.unet import UNet
from ..nn import no_grad
from ..nn.losses import GammaWeightedBCE, GANLoss, JointLoss
from ..nn.optim import Adam, clip_grad_norm, two_phase_lr
from ..nn.tensor import Tensor
from .config import TrainConfig
from .metrics import MetricSummary, evaluate_binary, summarize_runs

__all__ = [
    "train_lhnn", "evaluate_lhnn",
    "train_mlp", "evaluate_mlp",
    "train_unet", "evaluate_unet",
    "train_pix2pix", "evaluate_pix2pix",
    "predict_probs", "seeded_runs",
]


def predict_probs(model, sample: GraphSample) -> np.ndarray:
    """Congestion-probability forward pass for any model family.

    Accepts a single or collated (block-diagonal batched)
    :class:`GraphSample` and returns the flat per-G-cell probability
    array ``(num_gcells, channels)`` in ``gx * ny + gy`` order — the
    common currency of the evaluation loops and the
    :mod:`repro.serve` engine.  Callers manage ``model.eval()`` and
    ``no_grad`` themselves (the training loop reuses this under grad for
    nothing — it is inference-only glue, not a loss path).
    """
    if isinstance(model, LHNN):
        out = model(sample.graph, vc=Tensor(sample.features),
                    vn=Tensor(sample.net_features))
        return out.cls_prob.data
    if isinstance(model, GridSAGE):
        return model(sample.graph, vc=Tensor(sample.features)).data
    if isinstance(model, MLPBaseline):
        return model(Tensor(sample.features)).data
    if isinstance(model, (UNet, Pix2Pix)):
        forward = model.generator if isinstance(model, Pix2Pix) else model
        prob = forward(Tensor(sample.image)).data
        # NCHW (1, C, nx, ny) → flat per-G-cell rows (nx * ny, C).
        return prob[0].transpose(1, 2, 0).reshape(-1, prob.shape[1])
    raise TypeError(f"no probability forward known for "
                    f"{type(model).__name__}")


def _scaled_step(opt, config: TrainConfig, num_members: int) -> None:
    """One optimizer step at the linear batch-scaled learning rate.

    A step over a B-design batch replaces B per-design steps, so (when
    ``scale_lr_with_batch``) the scheduled lr is multiplied by the
    *actual* member count of this batch — a ragged last batch or an
    oversized ``batch_size`` scales by what the step averages over, not
    by the configured value.  The scheduled lr is restored afterwards so
    the epoch-level schedule stays the single source of truth.
    """
    if config.scale_lr_with_batch and num_members > 1:
        scheduled = opt.lr
        opt.lr = scheduled * num_members
        try:
            opt.step()
        finally:
            opt.lr = scheduled
    else:
        opt.step()


def _fixed_batches(num_samples: int, batch_size: int,
                   rng: np.random.Generator | None = None) -> list[np.ndarray]:
    """Partition sample indices into fixed-membership mini-batches.

    Membership is one random (or, without ``rng``, sequential) partition
    drawn once per run; epochs reshuffle only the batch visit order so the
    block-diagonal compositions stay cacheable.  ``batch_size <= 1``
    reduces to the per-design loop.
    """
    if batch_size <= 1:
        return [np.array([i]) for i in range(num_samples)]
    perm = (rng.permutation(num_samples) if rng is not None
            else np.arange(num_samples))
    return [perm[i:i + batch_size]
            for i in range(0, num_samples, batch_size)]


def _tiles(height: int, width: int, crop: int | None):
    """Non-overlapping (y0, x0) tile origins covering a H×W image."""
    if crop is None:
        return [(0, 0, height, width)]
    origins = []
    for y0 in range(0, height, crop):
        for x0 in range(0, width, crop):
            origins.append((y0, x0, min(crop, height - y0), min(crop, width - x0)))
    return origins


def _crop_pairs(image: np.ndarray, label: np.ndarray, crop: int | None):
    """Split an NCHW image/label pair into aligned non-overlapping crops.

    Mirrors the paper's 256×256 crop protocol for U-Net / Pix2Pix: models
    never see the whole die at once.
    """
    _, _, h, w = image.shape
    pairs = []
    for y0, x0, ch, cw in _tiles(h, w, crop):
        pairs.append((image[:, :, y0:y0 + ch, x0:x0 + cw],
                      label[:, :, y0:y0 + ch, x0:x0 + cw]))
    return pairs


def _predict_tiled(forward, image: np.ndarray, out_channels: int,
                   crop: int | None) -> np.ndarray:
    """Run ``forward`` per tile and stitch an NCHW probability map."""
    n, _, h, w = image.shape
    out = np.zeros((n, out_channels, h, w))
    for y0, x0, ch, cw in _tiles(h, w, crop):
        tile = Tensor(image[:, :, y0:y0 + ch, x0:x0 + cw])
        out[:, :, y0:y0 + ch, x0:x0 + cw] = forward(tile).data
    return out


def _deprecated(old: str, new: str) -> None:
    warnings.warn(f"{old} is deprecated; use {new} (the family runtimes "
                  f"behind repro.api.run_experiment)", DeprecationWarning,
                  stacklevel=3)


def _model_knobs(model_config: dict | None, **defaults) -> dict:
    """Merge a family's construction knobs over their defaults.

    Rejects unknown keys with ``TypeError`` (mirroring a constructor
    signature) so a typo in ``model.params`` fails loudly instead of
    silently training the default architecture.
    """
    knobs = dict(defaults)
    unknown = sorted(set(model_config or {}) - set(knobs))
    if unknown:
        raise TypeError(f"unknown model config knob(s) {unknown}; "
                        f"known: {sorted(knobs)}")
    knobs.update(model_config or {})
    return knobs


# ---------------------------------------------------------------------------
# LHNN
# ---------------------------------------------------------------------------
def _train_lhnn(train_samples: list[GraphSample], config: TrainConfig,
                model_config: dict | None = None) -> LHNN:
    """Train LHNN on the training designs (full-graph or sampled).

    ``model_config`` holds :class:`LHNNConfig` fields (``channels``,
    ``hidden``, …).  With ``config.batch_size > 1``, each optimizer step
    runs one forward / backward pass over the block-diagonal composition
    of a whole mini-batch; neighbour sampling (when enabled) draws on the
    batched operators directly.
    """
    rng = np.random.default_rng(config.seed)
    lhnn_config = LHNNConfig(**(model_config or {}))
    model = LHNN(lhnn_config, rng)
    opt = Adam(model.parameters(), lr=config.lr)
    schedule = two_phase_lr(opt, config.epochs, config.lr_final)
    loss_fn = JointLoss(gamma=config.gamma,
                        use_regression=lhnn_config.use_jointing)
    groups = _fixed_batches(len(train_samples), config.batch_size, rng)
    cache = BatchCache(max_entries=max(len(groups), 1))
    order = np.arange(len(groups))
    for epoch in range(config.epochs):
        rng.shuffle(order)
        total = 0.0
        for b in order:
            members = [train_samples[i] for i in groups[b]]
            batch = collate_samples(members, cache)
            operators = None
            if config.use_sampling:
                operators = sampled_operators(batch.graph, config.fanouts, rng)
            opt.zero_grad()
            out = model(batch.graph, operators=operators,
                        vc=Tensor(batch.features),
                        vn=Tensor(batch.net_features))
            loss = loss_fn(out.cls_prob, out.reg_pred,
                           batch.cls_target, batch.reg_target)
            loss.backward()
            clip_grad_norm(model.parameters(), config.grad_clip)
            _scaled_step(opt, config, len(members))
            total += loss.item()
        schedule.step()
        if config.verbose:
            print(f"[lhnn] epoch {epoch + 1}/{config.epochs} "
                  f"loss {total / len(order):.4f}")
    return model


def _evaluate_lhnn(model: LHNN, samples: list[GraphSample],
                   threshold: float = 0.5,
                   batch_size: int = 1,
                   cache: BatchCache | None = None) -> dict[str, float]:
    """Per-circuit F1/ACC averaged over ``samples`` (values in %).

    ``batch_size`` designs share one batched forward pass; predictions are
    split back per design, so the metrics are identical to the per-design
    loop (block-diagonal operators keep designs independent).
    """
    model.eval()
    f1s, accs = [], []
    with no_grad():
        for group in _fixed_batches(len(samples), batch_size):
            members = [samples[i] for i in group]
            batch = collate_samples(members, cache)
            parts = unbatch_values(batch.graph, predict_probs(model, batch))
            for sample, prob in zip(members, parts):
                m = evaluate_binary(prob, sample.cls_target, threshold)
                f1s.append(m["f1"])
                accs.append(m["acc"])
    model.train()
    return {"f1": float(np.mean(f1s)), "acc": float(np.mean(accs))}


# ---------------------------------------------------------------------------
# MLP baseline
# ---------------------------------------------------------------------------
def _train_mlp(train_samples: list[GraphSample], config: TrainConfig,
               model_config: dict | None = None) -> MLPBaseline:
    """Train the 4-layer residual MLP on per-G-cell features.

    ``model_config`` knobs: ``channels``, ``hidden``.  Mini-batches stack
    the feature rows of ``config.batch_size`` designs into one matrix per
    optimizer step (the MLP needs no graph, so the collate is a plain
    concatenation, pre-computed once per run).
    """
    mc = _model_knobs(model_config, channels=1, hidden=32)
    rng = np.random.default_rng(config.seed)
    model = MLPBaseline(in_features=train_samples[0].features.shape[1],
                        hidden=mc["hidden"],
                        channels=mc["channels"], rng=rng)
    opt = Adam(model.parameters(), lr=config.lr)
    schedule = two_phase_lr(opt, config.epochs, config.lr_final)
    loss_fn = GammaWeightedBCE(gamma=config.gamma)
    groups = _fixed_batches(len(train_samples), config.batch_size, rng)
    stacks = [
        (train_samples[g[0]].features, train_samples[g[0]].cls_target)
        if len(g) == 1 else
        (np.concatenate([train_samples[i].features for i in g], axis=0),
         np.concatenate([train_samples[i].cls_target for i in g], axis=0))
        for g in groups]
    order = np.arange(len(groups))
    for epoch in range(config.epochs):
        rng.shuffle(order)
        for b in order:
            features, cls_target = stacks[b]
            opt.zero_grad()
            prob = model(Tensor(features))
            loss = loss_fn(prob, cls_target)
            loss.backward()
            clip_grad_norm(model.parameters(), config.grad_clip)
            _scaled_step(opt, config, len(groups[b]))
        schedule.step()
    return model


def _evaluate_mlp(model: MLPBaseline, samples: list[GraphSample],
                  threshold: float = 0.5,
                  batch_size: int = 1) -> dict[str, float]:
    """Per-circuit F1/ACC averaged over ``samples`` (values in %)."""
    model.eval()
    f1s, accs = [], []
    with no_grad():
        for group in _fixed_batches(len(samples), batch_size):
            members = [samples[i] for i in group]
            features = np.concatenate([s.features for s in members], axis=0)
            prob = model(Tensor(features)).data
            counts = np.cumsum([len(s.features) for s in members])[:-1]
            for sample, part in zip(members, np.split(prob, counts)):
                m = evaluate_binary(part, sample.cls_target, threshold)
                f1s.append(m["f1"])
                accs.append(m["acc"])
    model.train()
    return {"f1": float(np.mean(f1s)), "acc": float(np.mean(accs))}


# ---------------------------------------------------------------------------
# U-Net baseline
# ---------------------------------------------------------------------------
def _train_unet(train_samples: list[GraphSample], config: TrainConfig,
                model_config: dict | None = None) -> UNet:
    """Train U-Net on crafted-feature images.

    ``model_config`` knobs: ``channels``, ``base_width``.
    """
    mc = _model_knobs(model_config, channels=1, base_width=12)
    rng = np.random.default_rng(config.seed)
    model = UNet(in_channels=train_samples[0].image.shape[1],
                 out_channels=mc["channels"],
                 base_width=mc["base_width"], rng=rng)
    opt = Adam(model.parameters(), lr=config.lr)
    schedule = two_phase_lr(opt, config.epochs, config.lr_final)
    loss_fn = GammaWeightedBCE(gamma=config.gamma)
    crops = []
    for sample in train_samples:
        crops.extend(_crop_pairs(sample.image, sample.cls_image, config.crop))
    order = np.arange(len(crops))
    for epoch in range(config.epochs):
        rng.shuffle(order)
        for idx in order:
            image, label = crops[idx]
            opt.zero_grad()
            prob = model(Tensor(image))
            loss = loss_fn(prob, label)
            loss.backward()
            clip_grad_norm(model.parameters(), config.grad_clip)
            opt.step()
        schedule.step()
    return model


def _evaluate_unet(model: UNet, samples: list[GraphSample],
                   threshold: float = 0.5,
                   crop: int | None = None) -> dict[str, float]:
    """Per-circuit F1/ACC averaged over ``samples`` (values in %).

    When ``crop`` is given, prediction is tiled exactly as in training and
    stitched back (the paper crops at test time too).
    """
    model.eval()
    f1s, accs = [], []
    channels = samples[0].cls_image.shape[1]
    with no_grad():
        for sample in samples:
            prob = _predict_tiled(model, sample.image, channels, crop)
            m = evaluate_binary(prob, sample.cls_image, threshold)
            f1s.append(m["f1"])
            accs.append(m["acc"])
    model.train()
    return {"f1": float(np.mean(f1s)), "acc": float(np.mean(accs))}


# ---------------------------------------------------------------------------
# Pix2Pix baseline
# ---------------------------------------------------------------------------
def _train_pix2pix(train_samples: list[GraphSample], config: TrainConfig,
                   model_config: dict | None = None) -> Pix2Pix:
    """Adversarial training: PatchGAN D vs U-Net G + γ-BCE reconstruction.

    ``model_config`` knobs: ``channels``, ``base_width``.
    """
    mc = _model_knobs(model_config, channels=1, base_width=12)
    rng = np.random.default_rng(config.seed)
    model = Pix2Pix(in_channels=train_samples[0].image.shape[1],
                    out_channels=mc["channels"],
                    base_width=mc["base_width"], rng=rng)
    opt_g = Adam(model.generator.parameters(), lr=config.lr,
                 betas=(0.5, 0.999))
    opt_d = Adam(model.discriminator.parameters(), lr=config.lr,
                 betas=(0.5, 0.999))
    schedule_g = two_phase_lr(opt_g, config.epochs, config.lr_final)
    schedule_d = two_phase_lr(opt_d, config.epochs, config.lr_final)
    gan_loss = GANLoss()
    rec_loss = GammaWeightedBCE(gamma=config.gamma)
    crops = []
    for sample in train_samples:
        crops.extend(_crop_pairs(sample.image, sample.cls_image, config.crop))
    order = np.arange(len(crops))
    for epoch in range(config.epochs):
        rng.shuffle(order)
        for idx in order:
            image, label = crops[idx]
            x = Tensor(image)
            y_real = Tensor(label)

            # --- discriminator step -----------------------------------
            fake = model.generator(x)
            opt_d.zero_grad()
            d_real = model.discriminate(x, y_real)
            d_fake = model.discriminate(x, fake.detach())
            loss_d = (gan_loss(d_real, True) + gan_loss(d_fake, False)) * 0.5
            loss_d.backward()
            clip_grad_norm(model.discriminator.parameters(), config.grad_clip)
            opt_d.step()

            # --- generator step ---------------------------------------
            opt_g.zero_grad()
            fake = model.generator(x)
            d_fake = model.discriminate(x, fake)
            loss_g = (config.gan_weight * gan_loss(d_fake, True)
                      + rec_loss(fake, label))
            loss_g.backward()
            clip_grad_norm(model.generator.parameters(), config.grad_clip)
            opt_g.step()
        schedule_g.step()
        schedule_d.step()
    return model


def _evaluate_pix2pix(model: Pix2Pix, samples: list[GraphSample],
                      threshold: float = 0.5,
                      crop: int | None = None) -> dict[str, float]:
    """Per-circuit F1/ACC of the generator output (values in %)."""
    model.eval()
    f1s, accs = [], []
    channels = samples[0].cls_image.shape[1]
    with no_grad():
        for sample in samples:
            prob = _predict_tiled(model.generator, sample.image, channels, crop)
            m = evaluate_binary(prob, sample.cls_image, threshold)
            f1s.append(m["f1"])
            accs.append(m["acc"])
    model.train()
    return {"f1": float(np.mean(f1s)), "acc": float(np.mean(accs))}


# ---------------------------------------------------------------------------
# Related-work GNN baselines (extension beyond the paper's Table 2)
# ---------------------------------------------------------------------------
def _train_gridsage(train_samples: list[GraphSample], config: TrainConfig,
                    model_config: dict | None = None):
    """Train GraphSAGE over the G-cell lattice (geometric-only GNN).

    ``model_config`` knobs: ``channels``, ``hidden``.  Shares the
    block-diagonal mini-batch substrate with LHNN: the lattice adjacency
    of a batch is the block-diagonal of the per-design lattices.
    """
    mc = _model_knobs(model_config, channels=1, hidden=32)
    rng = np.random.default_rng(config.seed)
    model = GridSAGE(in_features=train_samples[0].features.shape[1],
                     hidden=mc["hidden"],
                     channels=mc["channels"], rng=rng)
    opt = Adam(model.parameters(), lr=config.lr)
    schedule = two_phase_lr(opt, config.epochs, config.lr_final)
    loss_fn = GammaWeightedBCE(gamma=config.gamma)
    groups = _fixed_batches(len(train_samples), config.batch_size, rng)
    cache = BatchCache(max_entries=max(len(groups), 1))
    order = np.arange(len(groups))
    for epoch in range(config.epochs):
        rng.shuffle(order)
        for b in order:
            members = [train_samples[i] for i in groups[b]]
            batch = collate_samples(members, cache)
            opt.zero_grad()
            prob = model(batch.graph, vc=Tensor(batch.features))
            loss = loss_fn(prob, batch.cls_target)
            loss.backward()
            clip_grad_norm(model.parameters(), config.grad_clip)
            _scaled_step(opt, config, len(members))
        schedule.step()
    return model


def _evaluate_gridsage(model, samples: list[GraphSample],
                       threshold: float = 0.5,
                       batch_size: int = 1) -> dict[str, float]:
    """Per-circuit F1/ACC of the GridSAGE baseline (values in %)."""
    model.eval()
    f1s, accs = [], []
    with no_grad():
        for group in _fixed_batches(len(samples), batch_size):
            members = [samples[i] for i in group]
            batch = collate_samples(members)
            parts = unbatch_values(batch.graph, predict_probs(model, batch))
            for sample, part in zip(members, parts):
                m = evaluate_binary(part, sample.cls_target, threshold)
                f1s.append(m["f1"])
                accs.append(m["acc"])
    model.train()
    return {"f1": float(np.mean(f1s)), "acc": float(np.mean(accs))}


# ---------------------------------------------------------------------------
# Legacy per-family entry points (thin deprecation shims)
# ---------------------------------------------------------------------------
def train_lhnn(train_samples: list[GraphSample], config: TrainConfig,
               model_config: LHNNConfig | None = None) -> LHNN:
    """Deprecated shim; see :func:`repro.api.run_experiment`."""
    _deprecated("train_lhnn", "run_experiment with model.family='lhnn'")
    mc = asdict(model_config) if model_config is not None else None
    return _train_lhnn(train_samples, config, mc)


def evaluate_lhnn(model: LHNN, samples: list[GraphSample],
                  threshold: float = 0.5, batch_size: int = 1,
                  cache: BatchCache | None = None) -> dict[str, float]:
    """Deprecated shim; see :func:`_evaluate_lhnn` / the family runtime."""
    _deprecated("evaluate_lhnn", "the 'lhnn' family evaluator runtime")
    return _evaluate_lhnn(model, samples, threshold=threshold,
                          batch_size=batch_size, cache=cache)


def train_mlp(train_samples: list[GraphSample], config: TrainConfig,
              channels: int = 1, hidden: int = 32) -> MLPBaseline:
    """Deprecated shim; see :func:`repro.api.run_experiment`."""
    _deprecated("train_mlp", "run_experiment with model.family='mlp'")
    return _train_mlp(train_samples, config,
                      {"channels": channels, "hidden": hidden})


def evaluate_mlp(model: MLPBaseline, samples: list[GraphSample],
                 threshold: float = 0.5,
                 batch_size: int = 1) -> dict[str, float]:
    """Deprecated shim; see :func:`_evaluate_mlp` / the family runtime."""
    _deprecated("evaluate_mlp", "the 'mlp' family evaluator runtime")
    return _evaluate_mlp(model, samples, threshold=threshold,
                         batch_size=batch_size)


def train_unet(train_samples: list[GraphSample], config: TrainConfig,
               channels: int = 1, base_width: int = 12) -> UNet:
    """Deprecated shim; see :func:`repro.api.run_experiment`."""
    _deprecated("train_unet", "run_experiment with model.family='unet'")
    return _train_unet(train_samples, config,
                       {"channels": channels, "base_width": base_width})


def evaluate_unet(model: UNet, samples: list[GraphSample],
                  threshold: float = 0.5,
                  crop: int | None = None) -> dict[str, float]:
    """Deprecated shim; see :func:`_evaluate_unet` / the family runtime."""
    _deprecated("evaluate_unet", "the 'unet' family evaluator runtime")
    return _evaluate_unet(model, samples, threshold=threshold, crop=crop)


def train_pix2pix(train_samples: list[GraphSample], config: TrainConfig,
                  channels: int = 1, base_width: int = 12) -> Pix2Pix:
    """Deprecated shim; see :func:`repro.api.run_experiment`."""
    _deprecated("train_pix2pix", "run_experiment with model.family='pix2pix'")
    return _train_pix2pix(train_samples, config,
                          {"channels": channels, "base_width": base_width})


def evaluate_pix2pix(model: Pix2Pix, samples: list[GraphSample],
                     threshold: float = 0.5,
                     crop: int | None = None) -> dict[str, float]:
    """Deprecated shim; see :func:`_evaluate_pix2pix` / the family runtime."""
    _deprecated("evaluate_pix2pix", "the 'pix2pix' family evaluator runtime")
    return _evaluate_pix2pix(model, samples, threshold=threshold, crop=crop)


def train_gridsage(train_samples: list[GraphSample], config: TrainConfig,
                   channels: int = 1, hidden: int = 32):
    """Deprecated shim; see :func:`repro.api.run_experiment`."""
    _deprecated("train_gridsage",
                "run_experiment with model.family='gridsage'")
    return _train_gridsage(train_samples, config,
                           {"channels": channels, "hidden": hidden})


def evaluate_gridsage(model, samples: list[GraphSample],
                      threshold: float = 0.5,
                      batch_size: int = 1) -> dict[str, float]:
    """Deprecated shim; see :func:`_evaluate_gridsage` / the runtime."""
    _deprecated("evaluate_gridsage", "the 'gridsage' family evaluator runtime")
    return _evaluate_gridsage(model, samples, threshold=threshold,
                              batch_size=batch_size)


# ---------------------------------------------------------------------------
# Seeded repetition
# ---------------------------------------------------------------------------
def seeded_runs(run_fn, seeds: list[int]) -> MetricSummary:
    """Repeat ``run_fn(seed) -> {'f1', 'acc'}`` and summarise mean ± std."""
    return summarize_runs([run_fn(seed) for seed in seeds])


# ---------------------------------------------------------------------------
# Experiment runtimes: register trainer/evaluator/default-config per family
# ---------------------------------------------------------------------------
def _graph_evaluator(evaluate):
    """Adapter: graph/tabular families evaluate at config batch size."""
    def run(model, samples, config: TrainConfig):
        return evaluate(model, samples, threshold=config.threshold,
                        batch_size=config.batch_size)
    return run


def _image_evaluator(evaluate):
    """Adapter: CNN families tile evaluation exactly as trained."""
    def run(model, samples, config: TrainConfig):
        return evaluate(model, samples, threshold=config.threshold,
                        crop=config.crop)
    return run


def _attach_runtimes() -> None:
    # The registry module imports only models + nn, so this import is
    # cycle-free; it runs at the bottom of this module so the serving
    # engine (imported via repro.serve) can already see predict_probs.
    from ..serve import registry

    # LHNN's knob namespace is the LHNNConfig fields themselves (minus
    # ``channels``, which every family takes from model.channels), so
    # the registry default_config doubles as the known-knob listing the
    # experiment runner validates model.params against.
    from dataclasses import asdict as _asdict
    lhnn_defaults = {k: v for k, v in _asdict(LHNNConfig()).items()
                     if k != "channels"}
    registry.attach_runtime("lhnn", trainer=_train_lhnn,
                            evaluator=_graph_evaluator(_evaluate_lhnn),
                            default_config=lhnn_defaults)
    registry.attach_runtime("mlp", trainer=_train_mlp,
                            evaluator=_graph_evaluator(_evaluate_mlp),
                            default_config={"hidden": 32})
    registry.attach_runtime("gridsage", trainer=_train_gridsage,
                            evaluator=_graph_evaluator(_evaluate_gridsage),
                            default_config={"hidden": 32})
    registry.attach_runtime("unet", trainer=_train_unet,
                            evaluator=_image_evaluator(_evaluate_unet),
                            default_config={"base_width": 12})
    registry.attach_runtime("pix2pix", trainer=_train_pix2pix,
                            evaluator=_image_evaluator(_evaluate_pix2pix),
                            default_config={"base_width": 12})


_attach_runtimes()
