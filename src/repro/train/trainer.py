"""Training and evaluation loops for every model family.

Reproduces the paper's protocol (§5.1–5.2): fixed epoch budget, Adam with
the 2e-3 → 5e-4 learning-rate pair, γ-weighted BCE on the congestion map
(all models) plus MSE on the demand map (LHNN's joint supervision),
evaluation = per-circuit F1/ACC on held-out designs averaged per seed,
with mean ± std over seeds.
"""

from __future__ import annotations

import numpy as np

from ..data.dataset import GraphSample
from ..graph.sampling import sampled_operators
from ..models.lhnn import LHNN, LHNNConfig
from ..models.mlp_baseline import MLPBaseline
from ..models.pix2pix import Pix2Pix
from ..models.unet import UNet
from ..nn import no_grad
from ..nn.losses import GammaWeightedBCE, GANLoss, JointLoss
from ..nn.optim import Adam, clip_grad_norm
from ..nn.tensor import Tensor
from .config import TrainConfig
from .metrics import MetricSummary, evaluate_binary, summarize_runs

__all__ = [
    "train_lhnn", "evaluate_lhnn",
    "train_mlp", "evaluate_mlp",
    "train_unet", "evaluate_unet",
    "train_pix2pix", "evaluate_pix2pix",
    "seeded_runs",
]


def _epoch_lr(config: TrainConfig, epoch: int) -> float:
    """Two-phase learning rate: ``lr`` then ``lr_final`` halfway through."""
    return config.lr if epoch < config.epochs // 2 else config.lr_final


def _tiles(height: int, width: int, crop: int | None):
    """Non-overlapping (y0, x0) tile origins covering a H×W image."""
    if crop is None:
        return [(0, 0, height, width)]
    origins = []
    for y0 in range(0, height, crop):
        for x0 in range(0, width, crop):
            origins.append((y0, x0, min(crop, height - y0), min(crop, width - x0)))
    return origins


def _crop_pairs(image: np.ndarray, label: np.ndarray, crop: int | None):
    """Split an NCHW image/label pair into aligned non-overlapping crops.

    Mirrors the paper's 256×256 crop protocol for U-Net / Pix2Pix: models
    never see the whole die at once.
    """
    _, _, h, w = image.shape
    pairs = []
    for y0, x0, ch, cw in _tiles(h, w, crop):
        pairs.append((image[:, :, y0:y0 + ch, x0:x0 + cw],
                      label[:, :, y0:y0 + ch, x0:x0 + cw]))
    return pairs


def _predict_tiled(forward, image: np.ndarray, out_channels: int,
                   crop: int | None) -> np.ndarray:
    """Run ``forward`` per tile and stitch an NCHW probability map."""
    n, _, h, w = image.shape
    out = np.zeros((n, out_channels, h, w))
    for y0, x0, ch, cw in _tiles(h, w, crop):
        tile = Tensor(image[:, :, y0:y0 + ch, x0:x0 + cw])
        out[:, :, y0:y0 + ch, x0:x0 + cw] = forward(tile).data
    return out


# ---------------------------------------------------------------------------
# LHNN
# ---------------------------------------------------------------------------
def train_lhnn(train_samples: list[GraphSample], config: TrainConfig,
               model_config: LHNNConfig | None = None) -> LHNN:
    """Train LHNN on the training designs (full-graph or sampled)."""
    rng = np.random.default_rng(config.seed)
    model_config = model_config or LHNNConfig()
    model = LHNN(model_config, rng)
    opt = Adam(model.parameters(), lr=config.lr)
    loss_fn = JointLoss(gamma=config.gamma,
                        use_regression=model_config.use_jointing)
    order = np.arange(len(train_samples))
    for epoch in range(config.epochs):
        opt.lr = _epoch_lr(config, epoch)
        rng.shuffle(order)
        total = 0.0
        for idx in order:
            sample = train_samples[idx]
            operators = None
            if config.use_sampling:
                operators = sampled_operators(sample.graph, config.fanouts, rng)
            opt.zero_grad()
            out = model(sample.graph, operators=operators,
                        vc=Tensor(sample.features),
                        vn=Tensor(sample.net_features))
            loss = loss_fn(out.cls_prob, out.reg_pred,
                           sample.cls_target, sample.reg_target)
            loss.backward()
            clip_grad_norm(model.parameters(), config.grad_clip)
            opt.step()
            total += loss.item()
        if config.verbose:
            print(f"[lhnn] epoch {epoch + 1}/{config.epochs} "
                  f"loss {total / len(order):.4f}")
    return model


def evaluate_lhnn(model: LHNN, samples: list[GraphSample],
                  threshold: float = 0.5) -> dict[str, float]:
    """Per-circuit F1/ACC averaged over ``samples`` (values in %)."""
    model.eval()
    f1s, accs = [], []
    with no_grad():
        for sample in samples:
            out = model(sample.graph, vc=Tensor(sample.features),
                        vn=Tensor(sample.net_features))
            m = evaluate_binary(out.cls_prob.data, sample.cls_target, threshold)
            f1s.append(m["f1"])
            accs.append(m["acc"])
    model.train()
    return {"f1": float(np.mean(f1s)), "acc": float(np.mean(accs))}


# ---------------------------------------------------------------------------
# MLP baseline
# ---------------------------------------------------------------------------
def train_mlp(train_samples: list[GraphSample], config: TrainConfig,
              channels: int = 1, hidden: int = 32) -> MLPBaseline:
    """Train the 4-layer residual MLP on per-G-cell features."""
    rng = np.random.default_rng(config.seed)
    model = MLPBaseline(in_features=train_samples[0].features.shape[1],
                        hidden=hidden, channels=channels, rng=rng)
    opt = Adam(model.parameters(), lr=config.lr)
    loss_fn = GammaWeightedBCE(gamma=config.gamma)
    order = np.arange(len(train_samples))
    for epoch in range(config.epochs):
        opt.lr = _epoch_lr(config, epoch)
        rng.shuffle(order)
        for idx in order:
            sample = train_samples[idx]
            opt.zero_grad()
            prob = model(Tensor(sample.features))
            loss = loss_fn(prob, sample.cls_target)
            loss.backward()
            clip_grad_norm(model.parameters(), config.grad_clip)
            opt.step()
    return model


def evaluate_mlp(model: MLPBaseline, samples: list[GraphSample],
                 threshold: float = 0.5) -> dict[str, float]:
    """Per-circuit F1/ACC averaged over ``samples`` (values in %)."""
    model.eval()
    f1s, accs = [], []
    with no_grad():
        for sample in samples:
            prob = model(Tensor(sample.features))
            m = evaluate_binary(prob.data, sample.cls_target, threshold)
            f1s.append(m["f1"])
            accs.append(m["acc"])
    model.train()
    return {"f1": float(np.mean(f1s)), "acc": float(np.mean(accs))}


# ---------------------------------------------------------------------------
# U-Net baseline
# ---------------------------------------------------------------------------
def train_unet(train_samples: list[GraphSample], config: TrainConfig,
               channels: int = 1, base_width: int = 12) -> UNet:
    """Train U-Net on crafted-feature images."""
    rng = np.random.default_rng(config.seed)
    model = UNet(in_channels=train_samples[0].image.shape[1],
                 out_channels=channels, base_width=base_width, rng=rng)
    opt = Adam(model.parameters(), lr=config.lr)
    loss_fn = GammaWeightedBCE(gamma=config.gamma)
    crops = []
    for sample in train_samples:
        crops.extend(_crop_pairs(sample.image, sample.cls_image, config.crop))
    order = np.arange(len(crops))
    for epoch in range(config.epochs):
        opt.lr = _epoch_lr(config, epoch)
        rng.shuffle(order)
        for idx in order:
            image, label = crops[idx]
            opt.zero_grad()
            prob = model(Tensor(image))
            loss = loss_fn(prob, label)
            loss.backward()
            clip_grad_norm(model.parameters(), config.grad_clip)
            opt.step()
    return model


def evaluate_unet(model: UNet, samples: list[GraphSample],
                  threshold: float = 0.5,
                  crop: int | None = None) -> dict[str, float]:
    """Per-circuit F1/ACC averaged over ``samples`` (values in %).

    When ``crop`` is given, prediction is tiled exactly as in training and
    stitched back (the paper crops at test time too).
    """
    model.eval()
    f1s, accs = [], []
    channels = samples[0].cls_image.shape[1]
    with no_grad():
        for sample in samples:
            prob = _predict_tiled(model, sample.image, channels, crop)
            m = evaluate_binary(prob, sample.cls_image, threshold)
            f1s.append(m["f1"])
            accs.append(m["acc"])
    model.train()
    return {"f1": float(np.mean(f1s)), "acc": float(np.mean(accs))}


# ---------------------------------------------------------------------------
# Pix2Pix baseline
# ---------------------------------------------------------------------------
def train_pix2pix(train_samples: list[GraphSample], config: TrainConfig,
                  channels: int = 1, base_width: int = 12) -> Pix2Pix:
    """Adversarial training: PatchGAN D vs U-Net G + γ-BCE reconstruction."""
    rng = np.random.default_rng(config.seed)
    model = Pix2Pix(in_channels=train_samples[0].image.shape[1],
                    out_channels=channels, base_width=base_width, rng=rng)
    opt_g = Adam(model.generator.parameters(), lr=config.lr,
                 betas=(0.5, 0.999))
    opt_d = Adam(model.discriminator.parameters(), lr=config.lr,
                 betas=(0.5, 0.999))
    gan_loss = GANLoss()
    rec_loss = GammaWeightedBCE(gamma=config.gamma)
    crops = []
    for sample in train_samples:
        crops.extend(_crop_pairs(sample.image, sample.cls_image, config.crop))
    order = np.arange(len(crops))
    for epoch in range(config.epochs):
        lr = _epoch_lr(config, epoch)
        opt_g.lr = lr
        opt_d.lr = lr
        rng.shuffle(order)
        for idx in order:
            image, label = crops[idx]
            x = Tensor(image)
            y_real = Tensor(label)

            # --- discriminator step -----------------------------------
            fake = model.generator(x)
            opt_d.zero_grad()
            d_real = model.discriminate(x, y_real)
            d_fake = model.discriminate(x, fake.detach())
            loss_d = (gan_loss(d_real, True) + gan_loss(d_fake, False)) * 0.5
            loss_d.backward()
            clip_grad_norm(model.discriminator.parameters(), config.grad_clip)
            opt_d.step()

            # --- generator step ---------------------------------------
            opt_g.zero_grad()
            fake = model.generator(x)
            d_fake = model.discriminate(x, fake)
            loss_g = (config.gan_weight * gan_loss(d_fake, True)
                      + rec_loss(fake, label))
            loss_g.backward()
            clip_grad_norm(model.generator.parameters(), config.grad_clip)
            opt_g.step()
    return model


def evaluate_pix2pix(model: Pix2Pix, samples: list[GraphSample],
                     threshold: float = 0.5,
                     crop: int | None = None) -> dict[str, float]:
    """Per-circuit F1/ACC of the generator output (values in %)."""
    model.eval()
    f1s, accs = [], []
    channels = samples[0].cls_image.shape[1]
    with no_grad():
        for sample in samples:
            prob = _predict_tiled(model.generator, sample.image, channels, crop)
            m = evaluate_binary(prob, sample.cls_image, threshold)
            f1s.append(m["f1"])
            accs.append(m["acc"])
    model.train()
    return {"f1": float(np.mean(f1s)), "acc": float(np.mean(accs))}


# ---------------------------------------------------------------------------
# Related-work GNN baselines (extension beyond the paper's Table 2)
# ---------------------------------------------------------------------------
def train_gridsage(train_samples: list[GraphSample], config: TrainConfig,
                   channels: int = 1, hidden: int = 32):
    """Train GraphSAGE over the G-cell lattice (geometric-only GNN)."""
    from ..models.related import GridSAGE
    rng = np.random.default_rng(config.seed)
    model = GridSAGE(in_features=train_samples[0].features.shape[1],
                     hidden=hidden, channels=channels, rng=rng)
    opt = Adam(model.parameters(), lr=config.lr)
    loss_fn = GammaWeightedBCE(gamma=config.gamma)
    order = np.arange(len(train_samples))
    for epoch in range(config.epochs):
        opt.lr = _epoch_lr(config, epoch)
        rng.shuffle(order)
        for idx in order:
            sample = train_samples[idx]
            opt.zero_grad()
            prob = model(sample.graph, vc=Tensor(sample.features))
            loss = loss_fn(prob, sample.cls_target)
            loss.backward()
            clip_grad_norm(model.parameters(), config.grad_clip)
            opt.step()
    return model


def evaluate_gridsage(model, samples: list[GraphSample],
                      threshold: float = 0.5) -> dict[str, float]:
    """Per-circuit F1/ACC of the GridSAGE baseline (values in %)."""
    model.eval()
    f1s, accs = [], []
    with no_grad():
        for sample in samples:
            prob = model(sample.graph, vc=Tensor(sample.features))
            m = evaluate_binary(prob.data, sample.cls_target, threshold)
            f1s.append(m["f1"])
            accs.append(m["acc"])
    model.train()
    return {"f1": float(np.mean(f1s)), "acc": float(np.mean(accs))}


# ---------------------------------------------------------------------------
# Seeded repetition
# ---------------------------------------------------------------------------
def seeded_runs(run_fn, seeds: list[int]) -> MetricSummary:
    """Repeat ``run_fn(seed) -> {'f1', 'acc'}`` and summarise mean ± std."""
    return summarize_runs([run_fn(seed) for seed in seeds])
