"""Evaluation metrics (paper §5.1): F1 score and accuracy.

The paper reports the mean and standard deviation over 5 random seeds of
the F1 score and accuracy on the test set, computed per circuit and
averaged — it explicitly notes that zero-congestion circuits force a zero
F1 and drag the average down, which only makes sense under per-circuit
averaging, so that is what we do.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ConfusionCounts", "confusion", "precision", "recall",
           "f1_score", "accuracy", "evaluate_binary", "MetricSummary",
           "summarize_runs"]


@dataclass
class ConfusionCounts:
    """Binary confusion-matrix counts."""

    tp: int
    fp: int
    tn: int
    fn: int

    @property
    def total(self) -> int:
        """All samples."""
        return self.tp + self.fp + self.tn + self.fn


def confusion(pred: np.ndarray, target: np.ndarray) -> ConfusionCounts:
    """Confusion counts of binary arrays (any shape, same shape)."""
    pred = np.asarray(pred).astype(bool).reshape(-1)
    target = np.asarray(target).astype(bool).reshape(-1)
    if pred.shape != target.shape:
        raise ValueError(f"shape mismatch {pred.shape} vs {target.shape}")
    tp = int(np.sum(pred & target))
    fp = int(np.sum(pred & ~target))
    tn = int(np.sum(~pred & ~target))
    fn = int(np.sum(~pred & target))
    return ConfusionCounts(tp=tp, fp=fp, tn=tn, fn=fn)


def precision(c: ConfusionCounts) -> float:
    """TP / (TP + FP); 0 when no positive predictions."""
    denom = c.tp + c.fp
    return c.tp / denom if denom else 0.0


def recall(c: ConfusionCounts) -> float:
    """TP / (TP + FN); 0 when no positive labels."""
    denom = c.tp + c.fn
    return c.tp / denom if denom else 0.0


def f1_score(pred: np.ndarray, target: np.ndarray) -> float:
    """Harmonic mean of precision and recall (0 when degenerate)."""
    c = confusion(pred, target)
    p = precision(c)
    r = recall(c)
    return 2.0 * p * r / (p + r) if (p + r) > 0 else 0.0


def accuracy(pred: np.ndarray, target: np.ndarray) -> float:
    """Fraction of matching entries."""
    c = confusion(pred, target)
    return (c.tp + c.tn) / c.total if c.total else 0.0


def evaluate_binary(prob: np.ndarray, target: np.ndarray,
                    threshold: float = 0.5) -> dict[str, float]:
    """Threshold probabilities and compute F1 / ACC (values in %)."""
    pred = np.asarray(prob) >= threshold
    return {
        "f1": 100.0 * f1_score(pred, target),
        "acc": 100.0 * accuracy(pred, target),
    }


@dataclass
class MetricSummary:
    """Mean ± std over seeds, as the paper's tables report."""

    f1_mean: float
    f1_std: float
    acc_mean: float
    acc_std: float

    def format(self) -> str:
        """"F1 ± std / ACC ± std" cell text."""
        return (f"{self.f1_mean:.2f}±{self.f1_std:.2f} "
                f"{self.acc_mean:.2f}±{self.acc_std:.2f}")


def summarize_runs(per_seed: list[dict[str, float]]) -> MetricSummary:
    """Aggregate per-seed {'f1', 'acc'} dicts into a :class:`MetricSummary`."""
    f1 = np.array([r["f1"] for r in per_seed])
    acc = np.array([r["acc"] for r in per_seed])
    return MetricSummary(
        f1_mean=float(f1.mean()), f1_std=float(f1.std()),
        acc_mean=float(acc.mean()), acc_std=float(acc.std()),
    )
