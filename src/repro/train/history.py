"""Training-history tracking.

Records per-epoch loss and (optionally) evaluation metrics during
training, supports simple convergence queries and renders an ASCII loss
curve — useful for the examples and for debugging training runs without a
plotting stack.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["TrainingHistory"]


@dataclass
class TrainingHistory:
    """Loss/metric trajectory of one training run."""

    losses: list[float] = field(default_factory=list)
    metrics: list[dict] = field(default_factory=list)
    lrs: list[float] = field(default_factory=list)

    def record(self, loss: float, lr: float | None = None,
               metrics: dict | None = None) -> None:
        """Append one epoch's statistics."""
        self.losses.append(float(loss))
        if lr is not None:
            self.lrs.append(float(lr))
        if metrics is not None:
            self.metrics.append(dict(metrics))

    @property
    def num_epochs(self) -> int:
        """Number of recorded epochs."""
        return len(self.losses)

    def best_epoch(self, key: str = "f1") -> int:
        """Epoch index with the best recorded metric (max)."""
        if not self.metrics:
            raise ValueError("no metrics recorded")
        values = [m.get(key, -np.inf) for m in self.metrics]
        return int(np.argmax(values))

    def improved_over_first(self) -> bool:
        """Whether the final loss is below the first epoch's loss."""
        return self.num_epochs >= 2 and self.losses[-1] < self.losses[0]

    def plateau_length(self, tolerance: float = 1e-3) -> int:
        """Number of trailing epochs with < ``tolerance`` relative change."""
        count = 0
        for prev, cur in zip(reversed(self.losses[:-1]),
                             reversed(self.losses[1:])):
            if prev == 0 or abs(cur - prev) / abs(prev) >= tolerance:
                break
            count += 1
        return count

    def ascii_curve(self, width: int = 60, height: int = 10) -> str:
        """Render the loss curve as ASCII art (epochs → columns)."""
        if not self.losses:
            return "(no epochs recorded)"
        series = np.asarray(self.losses)
        if len(series) > width:
            idx = np.linspace(0, len(series) - 1, width).astype(int)
            series = series[idx]
        lo, hi = float(series.min()), float(series.max())
        span = hi - lo if hi > lo else 1.0
        rows = []
        levels = ((series - lo) / span * (height - 1)).round().astype(int)
        for level in range(height - 1, -1, -1):
            row = "".join("*" if l == level else " " for l in levels)
            rows.append(row)
        rows.append("-" * len(series))
        rows.append(f"loss {hi:.4f} (top) → {lo:.4f} (bottom), "
                    f"{self.num_epochs} epochs")
        return "\n".join(rows)
