"""``repro.train`` — training loops, metrics and configuration."""

from .config import TrainConfig
from .history import TrainingHistory
from .metrics import (ConfusionCounts, confusion, precision, recall,
                      f1_score, accuracy, evaluate_binary, MetricSummary,
                      summarize_runs)
from .trainer import (train_lhnn, evaluate_lhnn, train_mlp, evaluate_mlp,
                      train_unet, evaluate_unet, train_pix2pix,
                      evaluate_pix2pix, train_gridsage, evaluate_gridsage,
                      predict_probs, seeded_runs)

__all__ = [
    "TrainConfig", "TrainingHistory",
    "ConfusionCounts", "confusion", "precision", "recall", "f1_score",
    "accuracy", "evaluate_binary", "MetricSummary", "summarize_runs",
    "train_lhnn", "evaluate_lhnn", "train_mlp", "evaluate_mlp",
    "train_unet", "evaluate_unet", "train_pix2pix", "evaluate_pix2pix",
    "train_gridsage", "evaluate_gridsage", "predict_probs", "seeded_runs",
]
