"""Training configuration shared by all model families."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["TrainConfig"]


@dataclass
class TrainConfig:
    """Optimisation settings (defaults track paper §5.1).

    The paper trains with Adam at learning rates 2e-3 and 5e-4; we realise
    that as a start lr of ``lr`` decayed to ``lr_final`` halfway through
    training.  ``gamma`` is the label-balance factor of Eq. 5, applied to
    every model.  ``fanouts`` are the paper's {6, 3, 2} neighbour-sampling
    fan-outs, active when ``use_sampling`` is on.

    ``batch_size`` designs are composed into one block-diagonal supergraph
    per optimizer step (DGL-style mini-batching via
    :func:`repro.graph.batch.batch_graphs`); 1 reproduces the per-design
    loop.  Batch membership is drawn once per run and kept fixed across
    epochs (only the visit order is reshuffled), so the trainer's
    :class:`repro.graph.batch.BatchCache` reuses every composition after
    the first epoch.  Because a batch of B designs collapses B optimizer
    steps into one averaged step, ``scale_lr_with_batch`` applies the
    linear scaling rule — each step runs at the scheduled lr times the
    number of designs actually in that batch (a ragged last batch scales
    by its own size, not the configured one) — so batched runs match the
    per-design trajectory within noise at the same epoch budget.
    """

    epochs: int = 20
    batch_size: int = 1
    scale_lr_with_batch: bool = True
    lr: float = 2e-3
    lr_final: float = 5e-4
    gamma: float = 0.7
    threshold: float = 0.5
    grad_clip: float = 5.0
    seed: int = 0
    use_sampling: bool = False
    fanouts: dict = field(default_factory=lambda: {
        "featuregen": 6, "hypermp": 3, "latticemp": 2})
    gan_weight: float = 0.15       # Pix2Pix adversarial-term weight
    crop: int | None = None        # CNN crop size (paper: 256×256 crops of
    #                                ~550×600 grids ≈ half the die side; use
    #                                grid/2 to mirror that protocol; None =
    #                                whole image)
    verbose: bool = False
