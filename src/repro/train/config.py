"""Training configuration shared by all model families."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["TrainConfig"]


@dataclass
class TrainConfig:
    """Optimisation settings (defaults track paper §5.1).

    The paper trains with Adam at learning rates 2e-3 and 5e-4; we realise
    that as a start lr of ``lr`` decayed to ``lr_final`` halfway through
    training.  ``gamma`` is the label-balance factor of Eq. 5, applied to
    every model.  ``fanouts`` are the paper's {6, 3, 2} neighbour-sampling
    fan-outs, active when ``use_sampling`` is on.
    """

    epochs: int = 20
    lr: float = 2e-3
    lr_final: float = 5e-4
    gamma: float = 0.7
    threshold: float = 0.5
    grad_clip: float = 5.0
    seed: int = 0
    use_sampling: bool = False
    fanouts: dict = field(default_factory=lambda: {
        "featuregen": 6, "hypermp": 3, "latticemp": 2})
    gan_weight: float = 0.15       # Pix2Pix adversarial-term weight
    crop: int | None = None        # CNN crop size (paper: 256×256 crops of
    #                                ~550×600 grids ≈ half the die side; use
    #                                grid/2 to mirror that protocol; None =
    #                                whole image)
    verbose: bool = False
