"""Routing grid: G-cells, edge capacities and demand accumulation.

The die is tessellated into ``nx × ny`` rectangular G-cells (the paper's
grid cells).  Global routing happens on the grid graph whose vertices are
G-cells and whose edges connect 4-neighbours; horizontal edges consume
horizontal track capacity, vertical edges vertical capacity.  Macro
blockages reduce the capacity of edges they cover.

The router accumulates wire *usage* on edges; the paper's per-G-cell
horizontal/vertical **demand maps** and binary **congestion maps** are then
derived here (see :mod:`repro.routing.congestion` for the map extraction).
"""

from __future__ import annotations

import numpy as np

from ..circuit.design import Design

__all__ = ["RoutingGrid"]


class RoutingGrid:
    """State of the global-routing grid.

    Parameters
    ----------
    design:
        Placed design (used for die bounds and macro blockages).
    nx, ny:
        Number of G-cells per axis.
    capacity_h, capacity_v:
        Per-edge track capacity in the horizontal / vertical direction
        before blockage derating.
    blockage_derate:
        Remaining capacity fraction for edges fully under a fixed macro.
    """

    def __init__(self, design: Design, nx: int = 32, ny: int = 32,
                 capacity_h: float = 4.0, capacity_v: float = 4.0,
                 blockage_derate: float = 0.35):
        self.design = design
        self.nx = nx
        self.ny = ny
        xl, yl, xh, yh = design.die
        self.xl, self.yl = xl, yl
        self.cell_w = (xh - xl) / nx
        self.cell_h = (yh - yl) / ny

        # Edge arrays: h_edges[i, j] joins G-cell (i, j) to (i+1, j);
        # v_edges[i, j] joins (i, j) to (i, j+1).
        self.h_capacity = np.full((nx - 1, ny), float(capacity_h))
        self.v_capacity = np.full((nx, ny - 1), float(capacity_v))
        self.h_usage = np.zeros((nx - 1, ny))
        self.v_usage = np.zeros((nx, ny - 1))
        # PathFinder-style history cost, grown on overflowed edges each
        # rip-up-and-reroute round.
        self.h_history = np.zeros((nx - 1, ny))
        self.v_history = np.zeros((nx, ny - 1))
        self._apply_blockages(blockage_derate)

    # ------------------------------------------------------------------
    def _apply_blockages(self, derate: float) -> None:
        """Reduce capacity of edges covered by fixed macros.

        A macro is any fixed cell covering more than one G-cell.
        """
        coverage = np.zeros((self.nx, self.ny))
        design = self.design
        for cid in np.flatnonzero(design.cell_fixed):
            w, h = design.cell_w[cid], design.cell_h[cid]
            if w <= self.cell_w and h <= self.cell_h:
                continue  # pad-sized terminal, no blockage
            gx0, gy0 = self.gcell_of(design.cell_x[cid], design.cell_y[cid])
            gx1, gy1 = self.gcell_of(design.cell_x[cid] + w - 1e-9,
                                     design.cell_y[cid] + h - 1e-9)
            coverage[gx0:gx1 + 1, gy0:gy1 + 1] = 1.0
        # An edge is derated when both endpoints are covered.
        h_block = coverage[:-1, :] * coverage[1:, :]
        v_block = coverage[:, :-1] * coverage[:, 1:]
        self.h_capacity *= (1.0 - (1.0 - derate) * h_block)
        self.v_capacity *= (1.0 - (1.0 - derate) * v_block)

    # ------------------------------------------------------------------
    # Coordinate mapping
    # ------------------------------------------------------------------
    def gcell_of(self, x: float, y: float) -> tuple[int, int]:
        """Map a die coordinate to its (gx, gy) G-cell index."""
        gx = int(np.clip((x - self.xl) / self.cell_w, 0, self.nx - 1))
        gy = int(np.clip((y - self.yl) / self.cell_h, 0, self.ny - 1))
        return gx, gy

    def gcells_of(self, x: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Vectorised :meth:`gcell_of`."""
        gx = np.clip(((x - self.xl) / self.cell_w).astype(np.int64), 0, self.nx - 1)
        gy = np.clip(((y - self.yl) / self.cell_h).astype(np.int64), 0, self.ny - 1)
        return gx, gy

    # ------------------------------------------------------------------
    # Usage accounting
    # ------------------------------------------------------------------
    def add_path(self, path: list[tuple[int, int]], sign: float = 1.0) -> None:
        """Accumulate usage of a G-cell path (list of adjacent G-cells).

        ``sign=-1`` removes a previously added path (rip-up).
        """
        for (ax, ay), (bx, by) in zip(path, path[1:]):
            if ax == bx and ay == by:
                continue
            if ay == by:  # horizontal move
                self.h_usage[min(ax, bx), ay] += sign
            elif ax == bx:  # vertical move
                self.v_usage[ax, min(ay, by)] += sign
            else:
                raise ValueError(f"non-adjacent step {(ax, ay)} → {(bx, by)}")

    def edge_overflow(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-edge overflow ``max(usage - capacity, 0)`` for (H, V)."""
        return (np.maximum(self.h_usage - self.h_capacity, 0.0),
                np.maximum(self.v_usage - self.v_capacity, 0.0))

    def total_overflow(self) -> float:
        """Sum of edge overflow over both directions."""
        oh, ov = self.edge_overflow()
        return float(oh.sum() + ov.sum())

    def bump_history(self, increment: float = 0.5) -> None:
        """Raise history cost on currently overflowed edges (PathFinder)."""
        oh, ov = self.edge_overflow()
        self.h_history += increment * (oh > 0)
        self.v_history += increment * (ov > 0)

    # ------------------------------------------------------------------
    # Edge costs for the maze router
    # ------------------------------------------------------------------
    def edge_costs(self, overflow_penalty: float = 4.0) -> tuple[np.ndarray, np.ndarray]:
        """Congestion-aware edge costs (H, V arrays).

        Cost = 1 + history + penalty · max(usage + 1 − capacity, 0); i.e.
        an edge that *would* overflow if one more wire crossed it becomes
        expensive, realising negotiated congestion.
        """
        h = (1.0 + self.h_history
             + overflow_penalty * np.maximum(
                 self.h_usage + 1.0 - self.h_capacity, 0.0))
        v = (1.0 + self.v_history
             + overflow_penalty * np.maximum(
                 self.v_usage + 1.0 - self.v_capacity, 0.0))
        return h, v

    def reset_usage(self) -> None:
        """Clear all accumulated usage and history."""
        self.h_usage[:] = 0.0
        self.v_usage[:] = 0.0
        self.h_history[:] = 0.0
        self.v_history[:] = 0.0
