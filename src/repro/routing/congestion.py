"""Demand-map and congestion-map extraction.

The paper's labels: after global routing, every G-cell gets a horizontal
and a vertical **routing demand** value, and the binary **congestion map**
marks G-cells whose demand exceeds the circuit's capacity (paper §5.1).

We map edge usage to G-cell demand by averaging the usage of the G-cell's
incident edges in each direction (boundary cells average their single
incident edge), and derive capacity maps the same way so the comparison is
consistent.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .grid import RoutingGrid

__all__ = ["CongestionMaps", "extract_maps", "congestion_rate"]


@dataclass
class CongestionMaps:
    """Per-G-cell label maps produced by the router.

    All arrays have shape ``(nx, ny)``.

    Attributes
    ----------
    demand_h, demand_v:
        Horizontal / vertical routing demand.
    capacity_h, capacity_v:
        Effective per-G-cell capacity (after blockage derating).
    congestion_h, congestion_v:
        Binary masks, ``demand > capacity`` per direction.
    """

    demand_h: np.ndarray
    demand_v: np.ndarray
    capacity_h: np.ndarray
    capacity_v: np.ndarray
    congestion_h: np.ndarray
    congestion_v: np.ndarray

    @property
    def congestion_any(self) -> np.ndarray:
        """Union of horizontal and vertical congestion."""
        return self.congestion_h | self.congestion_v

    def normalized_demand(self) -> tuple[np.ndarray, np.ndarray]:
        """Demand divided by capacity (regression target scaling)."""
        eps = 1e-9
        return (self.demand_h / (self.capacity_h + eps),
                self.demand_v / (self.capacity_v + eps))


def _edge_to_cell(edge_vals: np.ndarray, axis: int, nx: int, ny: int) -> np.ndarray:
    """Average incident edge values onto G-cells along ``axis``."""
    out = np.zeros((nx, ny))
    if axis == 0:  # horizontal edges: shape (nx-1, ny)
        counts = np.zeros((nx, ny))
        out[:-1, :] += edge_vals
        counts[:-1, :] += 1
        out[1:, :] += edge_vals
        counts[1:, :] += 1
    else:  # vertical edges: shape (nx, ny-1)
        counts = np.zeros((nx, ny))
        out[:, :-1] += edge_vals
        counts[:, :-1] += 1
        out[:, 1:] += edge_vals
        counts[:, 1:] += 1
    return out / np.maximum(counts, 1.0)


def extract_maps(grid: RoutingGrid) -> CongestionMaps:
    """Compute :class:`CongestionMaps` from a routed grid."""
    nx, ny = grid.nx, grid.ny
    demand_h = _edge_to_cell(grid.h_usage, 0, nx, ny)
    demand_v = _edge_to_cell(grid.v_usage, 1, nx, ny)
    capacity_h = _edge_to_cell(grid.h_capacity, 0, nx, ny)
    capacity_v = _edge_to_cell(grid.v_capacity, 1, nx, ny)
    congestion_h = demand_h > capacity_h
    congestion_v = demand_v > capacity_v
    return CongestionMaps(
        demand_h=demand_h, demand_v=demand_v,
        capacity_h=capacity_h, capacity_v=capacity_v,
        congestion_h=congestion_h, congestion_v=congestion_v,
    )


def congestion_rate(maps: CongestionMaps, channel: str = "h") -> float:
    """Fraction of congested G-cells for ``channel`` in {'h', 'v', 'any'}."""
    if channel == "h":
        mask = maps.congestion_h
    elif channel == "v":
        mask = maps.congestion_v
    elif channel == "any":
        mask = maps.congestion_any
    else:
        raise ValueError("channel must be 'h', 'v' or 'any'")
    return float(mask.mean())
