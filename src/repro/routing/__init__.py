"""``repro.routing`` — grid global router (NCTU-GR 2.0 stand-in).

Routing grid with capacities and blockages, Steiner decomposition, L/Z
pattern routing, congestion-aware A* maze routing, the negotiated
rip-up-and-reroute driver, and extraction of the paper's demand /
congestion label maps.
"""

from .grid import RoutingGrid
from .steiner import decompose_net, mst_edges, net_terminals
from .pattern import (l_paths, z_paths, path_cost, best_pattern_path,
                      straight_path)
from .maze import astar_route
from .router import RouterConfig, RoutingResult, GlobalRouter, route_design
from .congestion import CongestionMaps, extract_maps, congestion_rate
from .layer_assign import LayerStats, assign_layers, via_map_of_paths

__all__ = [
    "RoutingGrid",
    "decompose_net", "mst_edges", "net_terminals",
    "l_paths", "z_paths", "path_cost", "best_pattern_path", "straight_path",
    "astar_route",
    "RouterConfig", "RoutingResult", "GlobalRouter", "route_design",
    "CongestionMaps", "extract_maps", "congestion_rate",
    "LayerStats", "assign_layers", "via_map_of_paths",
]
