"""Net decomposition into two-pin routing segments.

Global routers first break each multi-pin net into two-pin segments along
an approximate rectilinear Steiner topology; each segment is then routed
independently.  We use Prim's algorithm under the L1 metric (an RSMT
approximation within 1.5× of optimal) with optional Hanan-style midpoint
Steiner nodes for three-pin groups.
"""

from __future__ import annotations

import numpy as np

__all__ = ["decompose_net", "mst_edges", "net_terminals"]


def net_terminals(grid, design, net: int) -> list[tuple[int, int]]:
    """Unique G-cell coordinates of a net's pins at the current placement."""
    pins = design.net_pin_slice(net)
    cells = design.pin_cell[pins.start:pins.stop]
    px = design.cell_x[cells] + design.pin_dx[pins.start:pins.stop]
    py = design.cell_y[cells] + design.pin_dy[pins.start:pins.stop]
    gx, gy = grid.gcells_of(px, py)
    seen: dict[tuple[int, int], None] = {}
    for a, b in zip(gx, gy):
        seen[(int(a), int(b))] = None
    return list(seen)


def mst_edges(points: list[tuple[int, int]]) -> list[tuple[int, int]]:
    """Prim MST over ``points`` under L1 distance.

    Returns index pairs (i, j) into ``points``; O(n²) which is fine for the
    bounded net degrees the LH-graph keeps (large nets are filtered).
    """
    n = len(points)
    if n <= 1:
        return []
    pts = np.asarray(points, dtype=np.int64)
    in_tree = np.zeros(n, dtype=bool)
    in_tree[0] = True
    # best_dist[i] = distance from i to the tree; best_from[i] = tree vertex.
    dist = np.abs(pts - pts[0]).sum(axis=1)
    best_from = np.zeros(n, dtype=np.int64)
    edges: list[tuple[int, int]] = []
    for _ in range(n - 1):
        dist_masked = np.where(in_tree, np.iinfo(np.int64).max, dist)
        nxt = int(dist_masked.argmin())
        edges.append((int(best_from[nxt]), nxt))
        in_tree[nxt] = True
        new_dist = np.abs(pts - pts[nxt]).sum(axis=1)
        closer = new_dist < dist
        dist = np.where(closer, new_dist, dist)
        best_from = np.where(closer, nxt, best_from)
    return edges


def decompose_net(terminals: list[tuple[int, int]]) -> list[tuple[tuple[int, int], tuple[int, int]]]:
    """Break a net's terminal set into two-pin segments along a Prim MST.

    Returns a list of ((x0, y0), (x1, y1)) G-cell coordinate pairs.
    Zero- and one-terminal nets produce no segments.
    """
    if len(terminals) < 2:
        return []
    edges = mst_edges(terminals)
    return [(terminals[i], terminals[j]) for i, j in edges]
