"""Two-layer assignment and via analysis.

Real global routers (NCTU-GR 2.0 among them) work on a multi-layer stack:
horizontal wires on one metal layer, vertical wires on another, connected
by vias.  Our label pipeline needs only the planar H/V demand maps, but
this module extends the routed result to the classical 2-layer HV model:

* horizontal segments → layer 1, vertical segments → layer 2,
* a via is charged at every point a path switches direction (and at each
  segment endpoint, where the wire must reach the pin layer),
* via demand per G-cell plus the layer-wise wirelength report.

Used by the extension analyses and by tests as an internal consistency
check on the router's paths (direction changes are well-defined only on
valid rectilinear paths).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .router import GlobalRouter

__all__ = ["LayerStats", "assign_layers", "via_map_of_paths"]


@dataclass
class LayerStats:
    """Outcome of 2-layer assignment over all routed segments."""

    horizontal_wirelength: float
    vertical_wirelength: float
    num_vias: int
    via_map: np.ndarray          # (nx, ny) via count per G-cell

    @property
    def total_wirelength(self) -> float:
        """Planar wirelength over both layers."""
        return self.horizontal_wirelength + self.vertical_wirelength

    @property
    def vias_per_unit_length(self) -> float:
        """Via density — a routability/quality indicator."""
        total = self.total_wirelength
        return self.num_vias / total if total else 0.0


def _step_direction(a: tuple[int, int], b: tuple[int, int]) -> str:
    if a[1] == b[1]:
        return "h"
    if a[0] == b[0]:
        return "v"
    raise ValueError(f"non-rectilinear step {a} → {b}")


def via_map_of_paths(paths: list[list[tuple[int, int]]],
                     nx: int, ny: int) -> LayerStats:
    """Compute :class:`LayerStats` for a set of G-cell paths."""
    via_map = np.zeros((nx, ny))
    h_len = 0.0
    v_len = 0.0
    vias = 0
    for path in paths:
        if len(path) < 2:
            continue
        directions = [_step_direction(a, b) for a, b in zip(path, path[1:])]
        h_len += directions.count("h")
        v_len += directions.count("v")
        # Direction switches inside the path.
        for i in range(1, len(directions)):
            if directions[i] != directions[i - 1]:
                vias += 1
                x, y = path[i]
                via_map[x, y] += 1
        # Endpoint vias: wires drop to the pin layer at both ends.
        for x, y in (path[0], path[-1]):
            vias += 1
            via_map[x, y] += 1
    return LayerStats(horizontal_wirelength=h_len, vertical_wirelength=v_len,
                      num_vias=vias, via_map=via_map)


def assign_layers(router: GlobalRouter) -> LayerStats:
    """2-layer HV assignment of a finished :class:`GlobalRouter` run."""
    if not router._paths:
        raise ValueError("router has no routed paths; call run() first")
    return via_map_of_paths(router._paths, router.grid.nx, router.grid.ny)
