"""A* maze routing on the G-cell grid.

The escape hatch of the rip-up-and-reroute loop: finds the cheapest path
between two G-cells under the current congestion-aware edge costs, with an
admissible L1 lower bound as heuristic (unit edge cost floor).
"""

from __future__ import annotations

import heapq

import numpy as np

__all__ = ["astar_route"]


def astar_route(a: tuple[int, int], b: tuple[int, int],
                h_cost: np.ndarray, v_cost: np.ndarray,
                bbox_margin: int | None = 6) -> list[tuple[int, int]] | None:
    """Cheapest path from ``a`` to ``b`` under the given edge costs.

    Parameters
    ----------
    h_cost, v_cost:
        Edge-cost arrays of shape ``(nx-1, ny)`` and ``(nx, ny-1)``; all
        entries must be >= 1 for the heuristic to stay admissible.
    bbox_margin:
        Restrict the search to the bounding box of the endpoints expanded
        by this many G-cells (detours outside rarely pay off and the
        restriction bounds worst-case work).  ``None`` searches the whole
        grid.

    Returns the G-cell path including both endpoints, or ``None`` if no
    path exists inside the search window (never happens on a connected
    grid).
    """
    nx = v_cost.shape[0]
    ny = h_cost.shape[1]
    ax, ay = a
    bx, by = b
    if a == b:
        return [a]

    if bbox_margin is None:
        x_lo, x_hi, y_lo, y_hi = 0, nx - 1, 0, ny - 1
    else:
        x_lo = max(0, min(ax, bx) - bbox_margin)
        x_hi = min(nx - 1, max(ax, bx) + bbox_margin)
        y_lo = max(0, min(ay, by) - bbox_margin)
        y_hi = min(ny - 1, max(ay, by) + bbox_margin)

    def heuristic(x: int, y: int) -> float:
        return abs(x - bx) + abs(y - by)

    start = (ax, ay)
    dist: dict[tuple[int, int], float] = {start: 0.0}
    parent: dict[tuple[int, int], tuple[int, int]] = {}
    heap: list[tuple[float, tuple[int, int]]] = [(heuristic(ax, ay), start)]
    closed: set[tuple[int, int]] = set()

    while heap:
        f, (x, y) = heapq.heappop(heap)
        if (x, y) in closed:
            continue
        if (x, y) == (bx, by):
            path = [(x, y)]
            while path[-1] != start:
                path.append(parent[path[-1]])
            path.reverse()
            return path
        closed.add((x, y))
        g = dist[(x, y)]
        # East, West, North, South with direction-specific edge costs.
        neighbours = (
            (x + 1, y, h_cost[x, y] if x + 1 <= x_hi else None),
            (x - 1, y, h_cost[x - 1, y] if x - 1 >= x_lo else None),
            (x, y + 1, v_cost[x, y] if y + 1 <= y_hi else None),
            (x, y - 1, v_cost[x, y - 1] if y - 1 >= y_lo else None),
        )
        for nx_, ny_, w in neighbours:
            if w is None or (nx_, ny_) in closed:
                continue
            cand = g + float(w)
            if cand < dist.get((nx_, ny_), np.inf):
                dist[(nx_, ny_)] = cand
                parent[(nx_, ny_)] = (x, y)
                heapq.heappush(heap, (cand + heuristic(nx_, ny_), (nx_, ny_)))
    return None
