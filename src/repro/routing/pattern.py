"""Pattern routing: L- and Z-shaped candidate paths for two-pin segments.

Pattern routing tries a small set of canonical shapes and picks the one
with the lowest congestion cost — it is the fast first phase of NCTU-GR
style routers, with maze routing reserved for segments that stay
overflowed.
"""

from __future__ import annotations

import numpy as np

__all__ = ["l_paths", "z_paths", "path_cost", "best_pattern_path",
           "straight_path"]


def straight_path(a: tuple[int, int], b: tuple[int, int]) -> list[tuple[int, int]]:
    """Axis-aligned G-cell walk from ``a`` to ``b`` (must share a row/col)."""
    ax, ay = a
    bx, by = b
    path = [(ax, ay)]
    if ay == by:
        step = 1 if bx >= ax else -1
        for x in range(ax + step, bx + step, step):
            path.append((x, ay))
    elif ax == bx:
        step = 1 if by >= ay else -1
        for y in range(ay + step, by + step, step):
            path.append((ax, y))
    else:
        raise ValueError("straight_path requires aligned endpoints")
    return path


def l_paths(a: tuple[int, int], b: tuple[int, int]) -> list[list[tuple[int, int]]]:
    """The two L-shaped paths between ``a`` and ``b`` (one if aligned)."""
    ax, ay = a
    bx, by = b
    if ax == bx or ay == by:
        return [straight_path(a, b)]
    via1 = (bx, ay)  # horizontal first
    via2 = (ax, by)  # vertical first
    p1 = straight_path(a, via1) + straight_path(via1, b)[1:]
    p2 = straight_path(a, via2) + straight_path(via2, b)[1:]
    return [p1, p2]


def z_paths(a: tuple[int, int], b: tuple[int, int],
            max_candidates: int = 8) -> list[list[tuple[int, int]]]:
    """Z-shaped paths: one intermediate jog between the endpoints.

    Candidates are sub-sampled evenly when the span is wide, to bound the
    per-segment work.
    """
    ax, ay = a
    bx, by = b
    paths: list[list[tuple[int, int]]] = []
    if ax != bx and ay != by:
        xs = range(min(ax, bx) + 1, max(ax, bx))
        ys = range(min(ay, by) + 1, max(ay, by))
        xs = list(xs)
        ys = list(ys)
        if len(xs) > max_candidates:
            xs = [xs[i] for i in np.linspace(0, len(xs) - 1, max_candidates).astype(int)]
        if len(ys) > max_candidates:
            ys = [ys[i] for i in np.linspace(0, len(ys) - 1, max_candidates).astype(int)]
        for x in xs:  # HVH: jog at column x
            via1, via2 = (x, ay), (x, by)
            paths.append(straight_path(a, via1)
                         + straight_path(via1, via2)[1:]
                         + straight_path(via2, b)[1:])
        for y in ys:  # VHV: jog at row y
            via1, via2 = (ax, y), (bx, y)
            paths.append(straight_path(a, via1)
                         + straight_path(via1, via2)[1:]
                         + straight_path(via2, b)[1:])
    return paths


def path_cost(path: list[tuple[int, int]], h_cost: np.ndarray,
              v_cost: np.ndarray) -> float:
    """Total edge cost of a G-cell path under (H, V) edge-cost arrays."""
    total = 0.0
    for (ax, ay), (bx, by) in zip(path, path[1:]):
        if ay == by:
            total += h_cost[min(ax, bx), ay]
        else:
            total += v_cost[ax, min(ay, by)]
    return float(total)


def best_pattern_path(a: tuple[int, int], b: tuple[int, int],
                      h_cost: np.ndarray, v_cost: np.ndarray,
                      use_z: bool = True) -> list[tuple[int, int]]:
    """Cheapest L (and optionally Z) path between two G-cells."""
    candidates = l_paths(a, b)
    if use_z:
        candidates.extend(z_paths(a, b))
    best = None
    best_cost = np.inf
    for path in candidates:
        c = path_cost(path, h_cost, v_cost)
        if c < best_cost:
            best_cost = c
            best = path
    return best
