"""Global router: pattern routing + negotiated-congestion rip-up-and-reroute.

This is the NCTU-GR 2.0 stand-in that generates the paper's training
labels.  The flow is the standard academic recipe:

1. decompose every net into two-pin segments along a Prim/Steiner topology
   (:mod:`repro.routing.steiner`),
2. route every segment with the cheapest L/Z pattern
   (:mod:`repro.routing.pattern`),
3. while overflow remains: raise history cost on overflowed edges, rip up
   the segments crossing them and reroute with congestion-aware A*
   (:mod:`repro.routing.maze`) — PathFinder-style negotiation.

The result is per-edge usage on the routing grid, from which
:mod:`repro.routing.congestion` extracts demand and congestion maps.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..circuit.design import Design
from .grid import RoutingGrid
from .maze import astar_route
from .pattern import best_pattern_path
from .steiner import decompose_net, net_terminals

__all__ = ["RouterConfig", "RoutingResult", "GlobalRouter", "route_design"]


@dataclass
class RouterConfig:
    """Router tuning parameters.

    ``capacity_h/v`` set the per-edge track budget; the per-design
    ``capacity_factor`` from the synthetic generator multiplies them, which
    is how the benchmark suite spans congestion rates from ~1 % to ~50 %.
    """

    nx: int = 32
    ny: int = 32
    capacity_h: float = 12.5
    capacity_v: float = 12.5
    use_z_patterns: bool = True
    rrr_iterations: int = 4
    overflow_penalty: float = 4.0
    history_increment: float = 0.5
    maze_bbox_margin: int = 6
    apply_capacity_factor: bool = True


@dataclass
class RoutingResult:
    """Outcome of :meth:`GlobalRouter.run`."""

    grid: RoutingGrid
    total_overflow: float
    overflow_history: list[float] = field(default_factory=list)
    num_segments: int = 0
    rerouted_segments: int = 0


class GlobalRouter:
    """Routes one placed design on a :class:`RoutingGrid`."""

    def __init__(self, design: Design, config: RouterConfig | None = None):
        self.design = design
        self.config = config or RouterConfig()
        factor = 1.0
        if self.config.apply_capacity_factor:
            factor = float(design.metadata.get("capacity_factor", 1.0))
        self.grid = RoutingGrid(
            design, nx=self.config.nx, ny=self.config.ny,
            capacity_h=self.config.capacity_h * factor,
            capacity_v=self.config.capacity_v * factor,
        )
        # segment id → (endpoints, current path)
        self._segments: list[tuple[tuple[int, int], tuple[int, int]]] = []
        self._paths: list[list[tuple[int, int]]] = []

    # ------------------------------------------------------------------
    def decompose(self) -> None:
        """Build the two-pin segment list for every net."""
        self._segments.clear()
        for net in range(self.design.num_nets):
            terminals = net_terminals(self.grid, self.design, net)
            self._segments.extend(decompose_net(terminals))

    def initial_route(self) -> None:
        """Pattern-route every segment with congestion-aware choice."""
        self._paths = []
        for a, b in self._segments:
            h_cost, v_cost = self.grid.edge_costs(self.config.overflow_penalty)
            path = best_pattern_path(a, b, h_cost, v_cost,
                                     use_z=self.config.use_z_patterns)
            self.grid.add_path(path)
            self._paths.append(path)

    # ------------------------------------------------------------------
    def _overflowed_segment_ids(self) -> list[int]:
        """Segments whose current path crosses an overflowed edge."""
        oh, ov = self.grid.edge_overflow()
        bad: list[int] = []
        for sid, path in enumerate(self._paths):
            for (ax, ay), (bx, by) in zip(path, path[1:]):
                if ay == by:
                    if oh[min(ax, bx), ay] > 0:
                        bad.append(sid)
                        break
                else:
                    if ov[ax, min(ay, by)] > 0:
                        bad.append(sid)
                        break
        return bad

    def rip_up_and_reroute(self) -> int:
        """One negotiation round; returns number of rerouted segments."""
        bad = self._overflowed_segment_ids()
        if not bad:
            return 0
        self.grid.bump_history(self.config.history_increment)
        # Reroute longest segments first: they have the most freedom.
        bad.sort(key=lambda sid: -len(self._paths[sid]))
        for sid in bad:
            self.grid.add_path(self._paths[sid], sign=-1.0)
            a, b = self._segments[sid]
            h_cost, v_cost = self.grid.edge_costs(self.config.overflow_penalty)
            path = astar_route(a, b, h_cost, v_cost,
                               bbox_margin=self.config.maze_bbox_margin)
            if path is None:  # pragma: no cover - connected grid
                path = self._paths[sid]
            self.grid.add_path(path)
            self._paths[sid] = path
        return len(bad)

    # ------------------------------------------------------------------
    def run(self) -> RoutingResult:
        """Full flow: decompose → pattern route → RRR iterations."""
        self.decompose()
        self.initial_route()
        history = [self.grid.total_overflow()]
        rerouted = 0
        for _ in range(self.config.rrr_iterations):
            if history[-1] <= 0:
                break
            rerouted += self.rip_up_and_reroute()
            history.append(self.grid.total_overflow())
        return RoutingResult(
            grid=self.grid,
            total_overflow=history[-1],
            overflow_history=history,
            num_segments=len(self._segments),
            rerouted_segments=rerouted,
        )


def route_design(design: Design, config: RouterConfig | None = None) -> RoutingResult:
    """Convenience wrapper: route ``design`` and return the result."""
    return GlobalRouter(design, config).run()
