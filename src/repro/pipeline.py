"""End-to-end data pipeline: netlist → placement → routing → LH-graph.

This is the reproduction of the paper's data preparation (§5.1): run the
placer (DREAMPlace stand-in) on each design, run the global router
(NCTU-GR stand-in) to obtain horizontal/vertical demand maps, threshold
against capacity for the congestion maps, and build the LH-graph with
features and labels attached.

Results are cached on disk (pickle) keyed by a configuration fingerprint,
because routing dominates preparation time.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from dataclasses import asdict, dataclass, field

from .circuit.design import Design
from .circuit.generator import superblue_suite
from .graph.lhgraph import LHGraph, build_lhgraph
from .placement.placer import PlacementConfig, place
from .routing.congestion import extract_maps
from .routing.router import GlobalRouter, RouterConfig

__all__ = ["PipelineConfig", "prepare_design", "prepare_suite",
           "default_cache_dir"]


def default_cache_dir() -> str:
    """Cache directory, override with ``REPRO_CACHE_DIR``."""
    return os.environ.get("REPRO_CACHE_DIR",
                          os.path.join(os.path.expanduser("~"), ".cache", "repro-lhnn"))


@dataclass
class PipelineConfig:
    """All knobs of the data-preparation pipeline.

    ``max_gnet_fraction`` is the large-G-net filter (paper: 0.25 % at
    ~350 K G-cells; 5 % plays the same tail-trimming role at our default
    32 × 32 grids).
    """

    scale: float = 1.0
    base_seed: int = 2022
    grid_nx: int = 32
    grid_ny: int = 32
    max_gnet_fraction: float = 0.05
    placement: PlacementConfig = field(default_factory=PlacementConfig)
    router: RouterConfig = field(default_factory=RouterConfig)
    use_cache: bool = True

    def fingerprint(self) -> str:
        """Stable hash of every parameter (cache key)."""
        payload = repr(sorted(asdict(self).items())).encode()
        return hashlib.sha256(payload).hexdigest()[:16]


def prepare_design(design: Design, config: PipelineConfig | None = None) -> LHGraph:
    """Place, route and graph one design; returns a labelled LH-graph.

    The design is modified in place (cells move).
    """
    config = config or PipelineConfig()
    place(design, config.placement)
    router_cfg = RouterConfig(**{**asdict(config.router),
                                 "nx": config.grid_nx, "ny": config.grid_ny})
    router = GlobalRouter(design, router_cfg)
    result = router.run()
    maps = extract_maps(result.grid)
    graph = build_lhgraph(design, result.grid, maps,
                          max_gnet_fraction=config.max_gnet_fraction)
    graph.metadata.update({
        "total_overflow": result.total_overflow,
        "num_segments": result.num_segments,
        "num_cells": design.num_cells,
        "num_nets": design.num_nets,
        "num_pins": design.num_pins,
    })
    return graph


def prepare_suite(config: PipelineConfig | None = None,
                  verbose: bool = False) -> list[LHGraph]:
    """Prepare the full 15-design synthetic superblue suite, with caching."""
    config = config or PipelineConfig()
    cache_path = os.path.join(default_cache_dir(),
                              f"suite-{config.fingerprint()}.pkl")
    if config.use_cache and os.path.exists(cache_path):
        with open(cache_path, "rb") as handle:
            return pickle.load(handle)

    designs = superblue_suite(scale=config.scale, base_seed=config.base_seed)
    graphs: list[LHGraph] = []
    for design in designs:
        if verbose:
            print(f"[pipeline] preparing {design.name} "
                  f"({design.num_cells} cells, {design.num_nets} nets)")
        graphs.append(prepare_design(design, config))

    if config.use_cache:
        os.makedirs(os.path.dirname(cache_path), exist_ok=True)
        with open(cache_path, "wb") as handle:
            pickle.dump(graphs, handle)
    return graphs
