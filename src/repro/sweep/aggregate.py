"""Sweep aggregation: join per-point manifests into one leaderboard.

The aggregator is pure *read → join → rank → render*: it never runs
experiments and never takes leases, so it can run while a sweep is in
flight (partial grids rank whatever is done and say what is missing).

Outputs:

* a ``repro-sweep-v1`` **sweep manifest** (:func:`build_sweep_manifest`,
  written to ``<artifacts_dir>/experiments/sweep-<sweep_fp>.json``) —
  the machine-readable record joining every grid point's identity,
  axes, seed, state and metrics with a ranked leaderboard;
* the rendered **leaderboard tables** (:func:`render_leaderboard`,
  through :mod:`repro.eval.tables`) — a ranked overall table plus the
  paper-style family × suite matrix (best F1 per cell), which is how
  ``repro.cli sweep report`` reproduces the paper's comparison matrix
  from one sweep file.
"""

from __future__ import annotations

import os
import time

from ..api.spec import SpecError, spec_to_dict
from ..eval.tables import format_table
from ..store.blobs import atomic_write_bytes
from .grid import GridPoint, SweepSpec, expand_grid, sweep_fingerprint
from .runner import PointStatus, sweep_status

__all__ = ["SWEEP_SCHEMA", "sweep_manifest_path", "build_sweep_manifest",
           "write_sweep_manifest", "validate_sweep_manifest",
           "render_leaderboard"]

#: Schema tag of the sweep-level leaderboard manifest.
SWEEP_SCHEMA = "repro-sweep-v1"


def sweep_manifest_path(sweep: SweepSpec) -> str:
    """Fingerprint-derived sweep-manifest path (same rationale as
    per-experiment manifests: concurrent sweeps never collide)."""
    return os.path.join(sweep.artifacts_dir, "experiments",
                        f"sweep-{sweep_fingerprint(sweep)}.json")


def _point_record(point: GridPoint, status: PointStatus,
                  manifest: dict | None) -> dict:
    record = {
        "index": point.index,
        "fingerprint": point.fingerprint,
        "axes": dict(point.axes),
        "seed": point.seed,
        "seed_derived": point.seed_derived,
        "family": point.spec.model.family,
        "suite": point.spec.workload.suite,
        "state": status.state,
        "metrics": None,
        "checkpoint": None,
        "manifest_path": status.manifest_path,
    }
    if manifest is not None:
        record["metrics"] = dict(manifest["metrics"])
        record["checkpoint"] = manifest.get("checkpoint")
        record["timing"] = dict(manifest.get("timing", {}))
    return record


def build_sweep_manifest(sweep: SweepSpec) -> dict:
    """Join the grid's on-disk state into a ``repro-sweep-v1`` manifest.

    Reads every point's result manifest (fingerprint-derived filenames,
    legacy names via the embedded-fingerprint fallback) and lease state;
    ranks completed points by held-out F1 (ties: ACC, then fingerprint
    for total determinism).  ``complete`` is True iff every grid point
    is done.
    """
    points = expand_grid(sweep)
    statuses = sweep_status(sweep)
    from ..api.experiment import find_result_manifest
    records = []
    for point, status in zip(points, statuses):
        manifest = None
        if status.state == "done":
            found = find_result_manifest(sweep.artifacts_dir,
                                         point.fingerprint)
            manifest = found[1] if found else None
        records.append(_point_record(point, status, manifest))

    ranked = sorted(
        (r for r in records if r["metrics"] is not None),
        key=lambda r: (-r["metrics"]["f1"], -r["metrics"]["acc"],
                       r["fingerprint"]))
    leaderboard = [{
        "rank": rank + 1,
        "fingerprint": r["fingerprint"],
        "family": r["family"],
        "suite": r["suite"],
        "axes": r["axes"],
        "f1": r["metrics"]["f1"],
        "acc": r["metrics"]["acc"],
    } for rank, r in enumerate(ranked)]

    manifest = {
        "schema": SWEEP_SCHEMA,
        "name": sweep.name,
        "sweep_fingerprint": sweep_fingerprint(sweep),
        "base": spec_to_dict(sweep.base),
        "axes": [[path, list(values)] for path, values in sweep.axes],
        "grid_size": len(points),
        "points": records,
        "leaderboard": leaderboard,
        "complete": all(r["state"] == "done" for r in records),
        "created_unix": time.time(),
    }
    return validate_sweep_manifest(manifest)


def write_sweep_manifest(sweep: SweepSpec, manifest: dict) -> str:
    """Atomically persist the sweep manifest; returns its path."""
    import json
    path = sweep_manifest_path(sweep)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    atomic_write_bytes(
        path, (json.dumps(manifest, indent=2, sort_keys=True)
               + "\n").encode(),
        point="sweep.manifest")
    return path


def validate_sweep_manifest(manifest: dict) -> dict:
    """Check a sweep manifest against :data:`SWEEP_SCHEMA`.

    Returns the manifest; raises :class:`~repro.api.SpecError` on any
    violation.  Used by the CI sweep smoke step and by report tooling.
    """
    if not isinstance(manifest, dict):
        raise SpecError(f"sweep manifest must be an object, "
                        f"got {type(manifest).__name__}")
    if manifest.get("schema") != SWEEP_SCHEMA:
        raise SpecError(f"sweep manifest schema must be "
                        f"{SWEEP_SCHEMA!r}, got "
                        f"{manifest.get('schema')!r}")
    for key, kind in (("name", str), ("sweep_fingerprint", str),
                      ("base", dict), ("axes", list), ("grid_size", int),
                      ("points", list), ("leaderboard", list),
                      ("complete", bool), ("created_unix", (int, float))):
        if not isinstance(manifest.get(key), kind):
            raise SpecError(f"sweep manifest[{key!r}] missing or not "
                            f"{kind if isinstance(kind, type) else 'number'}")
    if len(manifest["points"]) != manifest["grid_size"]:
        raise SpecError(f"sweep manifest lists "
                        f"{len(manifest['points'])} points but "
                        f"grid_size = {manifest['grid_size']}")
    states = {"done", "leased", "pending", "quarantined"}
    for record in manifest["points"]:
        for key in ("index", "fingerprint", "axes", "seed", "state",
                    "family", "suite"):
            if key not in record:
                raise SpecError(f"sweep point record missing {key!r}")
        if record["state"] not in states:
            raise SpecError(f"sweep point {record['index']} has unknown "
                            f"state {record['state']!r}")
        if record["state"] == "done" and not isinstance(
                record.get("metrics"), dict):
            raise SpecError(f"sweep point {record['index']} is done but "
                            f"carries no metrics")
    done = sum(1 for r in manifest["points"] if r["state"] == "done")
    if len(manifest["leaderboard"]) != done:
        raise SpecError(f"leaderboard has {len(manifest['leaderboard'])} "
                        f"entries but {done} point(s) are done")
    for i, entry in enumerate(manifest["leaderboard"]):
        if entry.get("rank") != i + 1:
            raise SpecError(f"leaderboard entry {i} has rank "
                            f"{entry.get('rank')!r}, expected {i + 1}")
        for key in ("fingerprint", "family", "suite", "f1", "acc"):
            if key not in entry:
                raise SpecError(f"leaderboard entry {i} missing {key!r}")
        if i and entry["f1"] > manifest["leaderboard"][i - 1]["f1"]:
            raise SpecError("leaderboard is not sorted by F1 descending")
    if manifest["complete"] != (done == manifest["grid_size"]):
        raise SpecError(f"sweep manifest complete={manifest['complete']} "
                        f"but {done}/{manifest['grid_size']} points done")
    return manifest


def _axes_cell(axes: dict) -> str:
    return " ".join(f"{path.rsplit('.', 1)[-1]}={value}"
                    for path, value in axes.items())


def render_leaderboard(manifest: dict) -> str:
    """Render the ranked leaderboard + family × suite matrix as text."""
    name = manifest["name"]
    done = len(manifest["leaderboard"])
    total = manifest["grid_size"]
    rows = [{
        "#": entry["rank"],
        "family": entry["family"],
        "suite": entry["suite"],
        "axes": _axes_cell(entry["axes"]),
        "F1 %": f"{entry['f1']:.2f}",
        "ACC %": f"{entry['acc']:.2f}",
        "fingerprint": entry["fingerprint"][:12],
    } for entry in manifest["leaderboard"]]
    header = (f"Sweep {name!r}: {done}/{total} grid point(s) done"
              + ("" if manifest["complete"] else " (incomplete)"))
    blocks = [format_table(rows, title=header) if rows else header]

    # Paper-style comparison matrix: best F1 per family × suite cell.
    families = sorted({e["family"] for e in manifest["leaderboard"]})
    suites = sorted({e["suite"] for e in manifest["leaderboard"]})
    if families and suites:
        best: dict[tuple, float] = {}
        for entry in manifest["leaderboard"]:
            key = (entry["family"], entry["suite"])
            if key not in best or entry["f1"] > best[key]:
                best[key] = entry["f1"]
        matrix = [{"family": family,
                   **{suite: (f"{best[(family, suite)]:.2f}"
                              if (family, suite) in best else "-")
                      for suite in suites}}
                  for family in families]
        blocks.append(format_table(
            matrix, title="Best F1 % per family x suite"))

    missing = [r for r in manifest["points"] if r["state"] != "done"]
    if missing:
        blocks.append(format_table(
            [{"point": r["index"], "state": r["state"],
              "axes": _axes_cell(r["axes"]),
              "fingerprint": r["fingerprint"][:12]} for r in missing],
            title="Not yet on the leaderboard"))
    return "\n\n".join(blocks)
