"""Sweep specs: one declarative file → the full cartesian grid of specs.

A *sweep spec* is a base :class:`~repro.api.ExperimentSpec` plus named
*axes* — dotted-path overrides, each with a list of values — expanded
into the cartesian product of validated experiment specs:

.. code-block:: toml

    name = "paper-matrix"

    [base.workload]              # inline base spec (same grammar as
    suite = "hotspot"            # examples/specs/*.toml), or
    count = 2                    # `base = "path/to/spec.toml"`

    [base.train]
    epochs = 2

    [axes]
    "model.family" = ["lhnn", "mlp", "gridsage", "unet", "pix2pix"]
    "workload.suite" = ["hotspot", "macro-heavy"]

Axis paths use the exact dotted-override grammar of
:func:`repro.api.apply_overrides` (``model.params.hidden`` reaches the
open family namespace), so every validation error carries the offending
path.  Axes over fingerprint-excluded execution knobs (``output.*``,
``train.verbose``, ``workload.workers``, ``workload.use_cache``) are
rejected up front: two grid points differing only there would
fingerprint identically and collapse into one unit of work.

Each expanded :class:`GridPoint` carries its spec, its canonical
``spec_fingerprint`` (the point's identity everywhere: manifest
filename, lease name, checkpoint name) and its RNG seed.  Unless the
sweep pins ``train.seed`` (in the base file or as an axis), each point's
seed is **derived deterministically from the point's own content** (see
:func:`derive_point_seed`), so a crashed-and-resumed sweep is
bit-identical to an uninterrupted one and two points never share a seed
by accident.
"""

from __future__ import annotations

import itertools
import json
import os
from dataclasses import dataclass, field

from ..api.spec import (ExperimentSpec, SpecError, apply_overrides,
                        load_spec, spec_fingerprint, spec_from_dict,
                        spec_to_dict)
from ..pipeline.config import fingerprint_of

__all__ = ["SweepSpec", "GridPoint", "load_sweep", "sweep_from_dict",
           "expand_grid", "derive_point_seed", "seed_basis_fingerprint",
           "sweep_fingerprint"]

#: Dotted paths that do not change what a spec computes (they are
#: excluded from ``spec_fingerprint``); sweeping over them is an error.
_EXECUTION_ONLY = ("output.", "train.verbose", "workload.workers",
                   "workload.use_cache")

_KNOWN_KEYS = ("name", "base", "axes")


@dataclass
class SweepSpec:
    """One declarative sweep: a base spec and the axes to vary."""

    base: ExperimentSpec = field(default_factory=ExperimentSpec)
    axes: list[tuple[str, list]] = field(default_factory=list)
    name: str = "sweep"
    #: True when train.seed is pinned by the sweep author (base file or
    #: axis) — derived per-point seeds are then disabled.
    seed_pinned: bool = False

    def grid_size(self) -> int:
        size = 1
        for _, values in self.axes:
            size *= len(values)
        return size

    @property
    def artifacts_dir(self) -> str:
        return self.base.output.artifacts_dir


@dataclass
class GridPoint:
    """One fully-resolved cell of the sweep grid."""

    index: int
    axes: dict
    spec: ExperimentSpec
    fingerprint: str
    seed: int
    seed_derived: bool

    def label(self) -> str:
        """Compact human label: the axis values, in axis order."""
        return " ".join(str(v) for v in self.axes.values()) or "base"


def derive_point_seed(basis_fingerprint: str) -> int:
    """Map a hex fingerprint to a 31-bit RNG seed, deterministically.

    The first 8 hex digits as an integer, folded into ``[0, 2**31)`` —
    stable across processes and platforms, trivially re-derivable by
    hand.  Must only be fed :func:`seed_basis_fingerprint` output:
    deriving from the *final* fingerprint would be circular (the final
    fingerprint includes the seed).
    """
    return int(basis_fingerprint[:8], 16) % (2 ** 31)


def seed_basis_fingerprint(spec: ExperimentSpec) -> str:
    """Fingerprint of everything the spec computes *except* the seed.

    The same exclusions as :func:`~repro.api.spec.spec_fingerprint`
    (``output``, ``train.verbose``, ``workload.workers``,
    ``workload.use_cache``) plus ``train.seed`` itself, under a distinct
    domain tag so a seed basis can never collide with a cache key.
    """
    payload = spec_to_dict(spec)
    payload.pop("output")
    payload["train"].pop("verbose")
    payload["train"].pop("seed")
    payload["workload"].pop("workers")
    payload["workload"].pop("use_cache")
    return fingerprint_of({"sweep-point-seed": payload})


def sweep_fingerprint(sweep: SweepSpec) -> str:
    """Identity of the whole sweep: base (result-affecting part) + axes."""
    payload = spec_to_dict(sweep.base)
    payload.pop("output")
    payload["train"].pop("verbose")
    payload["workload"].pop("workers")
    payload["workload"].pop("use_cache")
    return fingerprint_of({"sweep": {
        "base": payload,
        "axes": [[path, list(values)] for path, values in sweep.axes],
    }})


def _check_axes(axes_payload) -> list[tuple[str, list]]:
    if not isinstance(axes_payload, dict) or not axes_payload:
        raise SpecError("[axes] must be a non-empty table of "
                        "dotted-path = [value, ...] entries")
    axes: list[tuple[str, list]] = []
    for path, values in axes_payload.items():
        if "." not in path:
            raise SpecError(f"axis path {path!r} must be dotted "
                            f"(e.g. model.family)")
        for prefix in _EXECUTION_ONLY:
            if path == prefix or path.startswith(prefix):
                raise SpecError(
                    f"axis {path!r} does not affect results (it is "
                    f"excluded from the spec fingerprint); sweeping it "
                    f"would collapse grid points")
        if not isinstance(values, list) or not values:
            raise SpecError(f"axis {path!r} must map to a non-empty "
                            f"list of values, got "
                            f"{type(values).__name__}")
        deduped = []
        for value in values:
            if value in deduped:
                raise SpecError(f"axis {path!r} lists value {value!r} "
                                f"twice")
            deduped.append(value)
        axes.append((path, list(values)))
    return axes


def sweep_from_dict(payload: dict, *, base_dir: str = ".",
                    base_overrides: list[str] | None = None) -> SweepSpec:
    """Build and validate a :class:`SweepSpec` from a plain dict.

    ``base`` is either an inline spec table (validated through
    :func:`~repro.api.spec.spec_from_dict`) or a string path to a spec
    file, resolved relative to ``base_dir`` (the sweep file's
    directory).  ``base_overrides`` are dotted-path overrides applied to
    the base before expansion (the CLI's ``--set``).
    """
    if not isinstance(payload, dict):
        raise SpecError(f"sweep root must be a table/object, "
                        f"got {type(payload).__name__}")
    unknown = sorted(set(payload) - set(_KNOWN_KEYS))
    if unknown:
        raise SpecError(f"unknown sweep key {unknown[0]!r}; known keys: "
                        f"{', '.join(_KNOWN_KEYS)}")
    base_payload = payload.get("base", {})
    if isinstance(base_payload, str):
        base_path = base_payload if os.path.isabs(base_payload) \
            else os.path.join(base_dir, base_payload)
        base = load_spec(base_path)
        base_dict = spec_to_dict(base)
    elif isinstance(base_payload, dict):
        base = spec_from_dict(base_payload)
        base_dict = base_payload
    else:
        raise SpecError(f"base must be a spec table or a path string, "
                        f"got {type(base_payload).__name__}")
    if base_overrides:
        base = apply_overrides(base, list(base_overrides))
    if base.output.checkpoint or base.output.manifest:
        raise SpecError("base must not pin output.checkpoint or "
                        "output.manifest: every grid point would write "
                        "to the same path (set output.artifacts_dir "
                        "instead; per-point paths are fingerprint-"
                        "derived)")
    axes = _check_axes(payload.get("axes"))

    seed_pinned = "seed" in (base_dict.get("train") or {}) or \
        any(path == "train.seed" for path, _ in axes) or \
        any(o.partition("=")[0].strip() == "train.seed"
            for o in (base_overrides or []))

    name = payload.get("name", "sweep")
    if not isinstance(name, str) or not name:
        raise SpecError(f"name must be a non-empty string, got {name!r}")
    return SweepSpec(base=base, axes=axes, name=name,
                     seed_pinned=seed_pinned)


def load_sweep(path: str, *,
               base_overrides: list[str] | None = None) -> SweepSpec:
    """Load a sweep spec from a ``.toml`` or ``.json`` file."""
    ext = os.path.splitext(path)[1].lower()
    try:
        if ext == ".toml":
            import tomllib
            with open(path, "rb") as fh:
                payload = tomllib.load(fh)
        elif ext == ".json":
            with open(path, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
        else:
            raise SpecError(f"unsupported sweep format {ext!r} "
                            f"(expected .toml or .json): {path}")
    except OSError as exc:
        raise SpecError(f"cannot read sweep {path}: {exc}") from exc
    except ValueError as exc:
        if isinstance(exc, SpecError):
            raise
        raise SpecError(f"cannot parse sweep {path}: {exc}") from exc
    try:
        return sweep_from_dict(payload,
                               base_dir=os.path.dirname(path) or ".",
                               base_overrides=base_overrides)
    except SpecError as exc:
        raise SpecError(f"{path}: {exc}") from None


def expand_grid(sweep: SweepSpec) -> list[GridPoint]:
    """Expand the sweep into its full, validated cartesian grid.

    Points come out in file order (last axis fastest).  Every point is
    a fully-validated spec; its seed is derived from its own content
    unless the sweep pins ``train.seed``; its checkpoint is routed to
    ``<artifacts_dir>/checkpoints/<fingerprint>.npz`` and its manifest
    to the fingerprint-derived default, so any number of concurrent
    points share one ``artifacts_dir`` without collisions.
    """
    points: list[GridPoint] = []
    seen: dict[str, int] = {}
    paths = [path for path, _ in sweep.axes]
    for index, combo in enumerate(
            itertools.product(*(values for _, values in sweep.axes))):
        overrides = [f"{path}={json.dumps(value)}"
                     for path, value in zip(paths, combo)]
        try:
            spec = apply_overrides(sweep.base, overrides)
        except SpecError as exc:
            raise SpecError(f"grid point {index} "
                            f"({', '.join(overrides)}): {exc}") from None
        seed_derived = not sweep.seed_pinned
        if seed_derived:
            payload = spec_to_dict(spec)
            payload["train"]["seed"] = derive_point_seed(
                seed_basis_fingerprint(spec))
            spec = spec_from_dict(payload)
        fingerprint = spec_fingerprint(spec)
        if fingerprint in seen:
            raise SpecError(
                f"grid points {seen[fingerprint]} and {index} resolve "
                f"to the same spec (fingerprint {fingerprint}); axes "
                f"must produce distinct experiments")
        seen[fingerprint] = index
        spec.output.checkpoint = os.path.join(
            spec.output.artifacts_dir, "checkpoints",
            f"{fingerprint}.npz")
        points.append(GridPoint(
            index=index, axes=dict(zip(paths, combo)), spec=spec,
            fingerprint=fingerprint, seed=spec.train.seed,
            seed_derived=seed_derived))
    return points
