"""``repro.sweep`` — declarative experiment sweeps over the spec grid.

One sweep file (a base :class:`~repro.api.ExperimentSpec` plus axes of
dotted-path overrides) expands into the full cartesian grid of
validated experiment specs, executes each grid point **exactly once**
across any number of processes and crashes (per-point store leases +
fingerprint-derived result manifests), and joins the results into a
ranked ``repro-sweep-v1`` leaderboard — the paper's comparison matrix
(Tables 2/3) as one command:

.. code-block:: console

    $ python -m repro.cli sweep run    --config sweep.toml --workers 4
    $ python -m repro.cli sweep status --config sweep.toml
    $ python -m repro.cli sweep report --config sweep.toml

See ``docs/sweeps.md`` for the sweep-spec grammar, the resume
guarantees and the leaderboard schema.
"""

from .aggregate import (SWEEP_SCHEMA, build_sweep_manifest,
                        render_leaderboard, sweep_manifest_path,
                        validate_sweep_manifest, write_sweep_manifest)
from .grid import (GridPoint, SweepSpec, derive_point_seed, expand_grid,
                   load_sweep, seed_basis_fingerprint, sweep_from_dict,
                   sweep_fingerprint)
from .runner import (JOURNAL_NAME, PointStatus, SweepError,
                     point_lease_name, point_state, run_sweep,
                     sweep_status)

__all__ = [
    "SweepSpec", "GridPoint", "load_sweep", "sweep_from_dict",
    "expand_grid", "derive_point_seed", "seed_basis_fingerprint",
    "sweep_fingerprint",
    "SweepError", "PointStatus", "point_lease_name", "point_state",
    "run_sweep", "sweep_status", "JOURNAL_NAME",
    "SWEEP_SCHEMA", "build_sweep_manifest", "render_leaderboard",
    "sweep_manifest_path", "validate_sweep_manifest",
    "write_sweep_manifest",
]
