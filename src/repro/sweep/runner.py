"""Sweep execution: exactly-once, crash-resumable grid fan-out.

The runner turns a grid of :class:`~repro.sweep.grid.GridPoint`\\ s into
completed ``repro-experiment-v1`` manifests with three guarantees:

* **Exactly once.**  Each point is guarded by a cross-process lease
  (``<artifacts_dir>/leases/sweep-point-<fingerprint>.json``, the PR 7
  protocol) and by its manifest: a worker only executes after winning
  the lease *and* re-checking that no matching manifest exists.  Two
  concurrent ``sweep run`` invocations on the same grid therefore
  execute every point once between them — the loser of each lease race
  polls until the winner's manifest lands.
* **Crash-resumable.**  A point is *done* iff a result manifest with a
  matching ``spec_fingerprint`` exists (fingerprint-derived filename,
  legacy names matched by embedded fingerprint).  A SIGKILLed run
  leaves done points' manifests on disk and its leases stale (dead pid
  / expired heartbeat); the next invocation skips the former, steals
  the latter, and completes only the missing work.
* **Corruption is not completion.**  A manifest that fails to parse,
  fails schema validation, or embeds the wrong fingerprint is moved to
  ``<artifacts_dir>/quarantine/`` with a reason record and the point is
  re-executed — a torn or bit-flipped manifest can never freeze a hole
  into the comparison matrix.

Grid points fan out over a ``ProcessPoolExecutor``; workers share the
staged pipeline's content-addressed stage cache, so points that differ
only in model/train knobs reuse each other's prepared designs (the
first point on a suite pays place-and-route, the rest hit the cache).

Fault-injection points (:mod:`repro.testing.faults`):
``sweep.point.start`` — barrier after the lease is won, immediately
before a grid point executes (tag = the point fingerprint);
``sweep.manifest.read`` — result-manifest bytes just read during
done-detection.
"""

from __future__ import annotations

import json
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass

from ..api.experiment import (find_result_manifest, run_experiment,
                              validate_result_manifest)
from ..api.spec import SpecError, spec_from_dict, spec_to_dict
from ..store.blobs import BlobStore, quarantine_file, read_bytes
from ..store.leases import lease_is_stale
from ..testing.faults import current_injector
from .grid import GridPoint, SweepSpec, expand_grid

__all__ = ["SweepError", "PointStatus", "point_lease_name", "point_state",
           "sweep_status", "run_sweep", "JOURNAL_NAME"]

#: Append-only execution journal under ``<artifacts_dir>/experiments/``:
#: one JSON line per *executed* (not skipped) grid point, so tests and
#: operators can audit exactly-once behaviour across processes.
JOURNAL_NAME = "sweep-journal.jsonl"

#: Poll interval while waiting on grid points leased by another process.
_POINT_POLL_S = 0.25


class SweepError(RuntimeError):
    """A sweep could not complete (failed grid points, bad state)."""


def point_lease_name(fingerprint: str) -> str:
    return f"sweep-point-{fingerprint}"


@dataclass
class PointStatus:
    """Observed state of one grid point (read-only snapshot)."""

    index: int
    fingerprint: str
    axes: dict
    state: str  # "done" | "leased" | "pending" | "quarantined"
    manifest_path: str | None = None
    holder: dict | None = None
    detail: str = ""


# ----------------------------------------------------------------------
# Done / state detection
# ----------------------------------------------------------------------

def _manifest_for(artifacts_dir: str, fingerprint: str
                  ) -> tuple[str, dict] | tuple[None, None] | tuple[str, str]:
    """Classify the on-disk manifest for one point.

    Returns ``(path, manifest)`` when a valid manifest with the right
    embedded fingerprint exists, ``(None, None)`` when there is none,
    and ``(path, reason_str)`` when a file exists but is corrupt or
    mismatched (the caller quarantines or reports it).
    """
    found = find_result_manifest(artifacts_dir, fingerprint)
    if found is None:
        return None, None
    path, manifest = found
    faults = current_injector()
    if faults is not None and os.path.exists(path):
        # Re-read through the injectable path so chaos tests can flip
        # bytes on the wire; the plain-read fast path above stays free.
        try:
            manifest = json.loads(read_bytes(
                path, point="sweep.manifest.read").decode())
        except (OSError, ValueError) as exc:
            return path, f"unreadable manifest: {exc}"
    if not manifest:
        return path, "manifest does not parse as JSON"
    try:
        validate_result_manifest(manifest)
    except SpecError as exc:
        return path, f"manifest fails validation: {exc}"
    if manifest.get("fingerprint") != fingerprint:
        return path, (f"manifest embeds fingerprint "
                      f"{manifest.get('fingerprint')!r}, expected "
                      f"{fingerprint}")
    return path, manifest


def point_state(artifacts_dir: str, point: GridPoint, *,
                lease_ttl_s: float = 300.0) -> PointStatus:
    """Observe one point's state without acquiring anything.

    Reads the manifest (valid → ``done``, present-but-broken →
    ``quarantined``), then the lease file (live → ``leased`` with the
    holder record, stale or absent → ``pending``).  Never creates,
    renews or steals a lease — safe to call while a sweep is running.
    """
    path, manifest = _manifest_for(artifacts_dir, point.fingerprint)
    if isinstance(manifest, dict) and manifest:
        return PointStatus(index=point.index,
                           fingerprint=point.fingerprint,
                           axes=point.axes, state="done",
                           manifest_path=path)
    if path is not None:
        return PointStatus(index=point.index,
                           fingerprint=point.fingerprint,
                           axes=point.axes, state="quarantined",
                           manifest_path=path, detail=str(manifest))
    lease_path = os.path.join(artifacts_dir, "leases",
                              f"{point_lease_name(point.fingerprint)}.json")
    if os.path.exists(lease_path) and \
            not lease_is_stale(lease_path, ttl_s=lease_ttl_s):
        try:
            with open(lease_path) as fh:
                holder = json.load(fh)
        except (OSError, ValueError):
            holder = None
        return PointStatus(index=point.index,
                           fingerprint=point.fingerprint,
                           axes=point.axes, state="leased", holder=holder)
    return PointStatus(index=point.index, fingerprint=point.fingerprint,
                       axes=point.axes, state="pending")


def sweep_status(sweep: SweepSpec, *,
                 lease_ttl_s: float = 300.0) -> list[PointStatus]:
    """Snapshot every grid point's state; acquires nothing, writes nothing."""
    return [point_state(sweep.artifacts_dir, point,
                        lease_ttl_s=lease_ttl_s)
            for point in expand_grid(sweep)]


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------

def _journal(artifacts_dir: str, event: dict) -> None:
    """Best-effort append to the execution journal (atomic per line)."""
    path = os.path.join(artifacts_dir, "experiments", JOURNAL_NAME)
    line = json.dumps({**event, "pid": os.getpid(),
                       "unix": time.time()}, sort_keys=True) + "\n"
    try:
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd = os.open(path, os.O_CREAT | os.O_WRONLY | os.O_APPEND, 0o644)
        try:
            os.write(fd, line.encode())
        finally:
            os.close(fd)
    except OSError:
        pass


def _quarantine_manifest(artifacts_dir: str, path: str, reason: str,
                         fingerprint: str) -> None:
    quarantine_file(path, os.path.join(artifacts_dir, "quarantine"),
                    reason, extra={"fingerprint": fingerprint})


def _execute_point(spec_payload: dict) -> dict:
    """Run one grid point's experiment (in the worker process)."""
    result = run_experiment(spec_from_dict(spec_payload), verbose=False)
    return result.manifest


def _attempt_point(payload: tuple) -> tuple[int, str, str]:
    """Try to complete one grid point; returns ``(index, outcome, detail)``.

    Top-level so it pickles into pool workers.  Outcomes: ``done``
    (manifest already valid), ``ran`` (executed here), ``busy`` (lease
    held by a live contender elsewhere — caller polls), ``failed``
    (the experiment itself raised).
    """
    (index, spec_payload, fingerprint, artifacts_dir, lease_ttl_s,
     execute_name) = payload
    execute = _EXECUTORS[execute_name]
    store = BlobStore(artifacts_dir, lease_ttl_s=lease_ttl_s)

    path, manifest = _manifest_for(artifacts_dir, fingerprint)
    if isinstance(manifest, dict) and manifest:
        return index, "done", path
    if path is not None:
        _quarantine_manifest(artifacts_dir, path, str(manifest),
                             fingerprint)

    lease = store.try_lease(point_lease_name(fingerprint))
    if lease is None:
        return index, "busy", ""
    with lease:
        # The previous holder may have finished between our check and
        # our acquisition (or we stole a stale lease whose holder had
        # already stored the manifest): re-check before computing.
        path, manifest = _manifest_for(artifacts_dir, fingerprint)
        if isinstance(manifest, dict) and manifest:
            return index, "done", path
        if path is not None:
            _quarantine_manifest(artifacts_dir, path, str(manifest),
                                 fingerprint)
        faults = current_injector()
        if faults is not None:
            faults.barrier("sweep.point.start", fingerprint)
        try:
            execute(spec_payload)
        except Exception as exc:  # noqa: BLE001 - reported per point
            return index, "failed", f"{type(exc).__name__}: {exc}"
        _journal(artifacts_dir, {"event": "executed",
                                 "fingerprint": fingerprint,
                                 "index": index})
    return index, "ran", ""


#: Named execution strategies, so tests can swap the experiment body for
#: a stub by *name* (names pickle across process pools; closures don't).
_EXECUTORS = {"experiment": _execute_point}


@dataclass
class SweepRunReport:
    """What one ``run_sweep`` invocation did (not the whole grid's history)."""

    total: int
    executed: int = 0
    skipped: int = 0
    waited_on: int = 0
    failed: dict = None  # index -> error detail

    def __post_init__(self):
        self.failed = self.failed or {}


def run_sweep(sweep: SweepSpec, *, workers: int = 1,
              verbose: bool = False, lease_ttl_s: float = 300.0,
              poll_s: float = _POINT_POLL_S,
              execute: str = "experiment") -> SweepRunReport:
    """Drive every grid point to completion; returns what *this* run did.

    ``workers > 1`` fans points out over a ``ProcessPoolExecutor``
    (each worker re-checks, leases and executes independently; the
    stage cache is shared).  Points leased by another live process are
    polled until their manifest appears or their lease goes stale and
    is stolen.  Raises :class:`SweepError` if any point ultimately
    fails — after every other point has been driven as far as possible,
    so one broken configuration never blocks the rest of the matrix.
    """
    points = expand_grid(sweep)
    artifacts_dir = sweep.artifacts_dir
    store = BlobStore(artifacts_dir, lease_ttl_s=lease_ttl_s)
    if store.root is not None and os.path.isdir(store.root):
        store.gc()  # reap leases/tmp orphaned by a SIGKILLed prior run

    report = SweepRunReport(total=len(points))
    pending: dict[int, GridPoint] = {p.index: p for p in points}
    busy_waits: set[int] = set()

    def note(index: int, outcome: str, detail: str) -> None:
        point = pending.pop(index)
        if outcome == "done":
            report.skipped += 1
            if index in busy_waits:
                report.waited_on += 1
        elif outcome == "ran":
            report.executed += 1
        elif outcome == "failed":
            report.failed[index] = detail
        if verbose and outcome != "busy":
            print(f"[sweep] point {index} ({point.label()}): {outcome}"
                  f"{' — ' + detail if outcome == 'failed' else ''}")

    def payload_for(point: GridPoint) -> tuple:
        return (point.index, spec_to_dict(point.spec), point.fingerprint,
                artifacts_dir, lease_ttl_s, execute)

    def lease_blocked(point: GridPoint) -> bool:
        path = os.path.join(
            artifacts_dir, "leases",
            f"{point_lease_name(point.fingerprint)}.json")
        return os.path.exists(path) and \
            not lease_is_stale(path, ttl_s=lease_ttl_s)

    while pending:
        # Cheap parent-side pass first: points another run completed
        # while we waited resolve without touching a lease or a pool.
        for index in sorted(pending):
            path, manifest = _manifest_for(
                artifacts_dir, pending[index].fingerprint)
            if isinstance(manifest, dict) and manifest:
                note(index, "done", path)
        if not pending:
            break
        attemptable = [i for i in sorted(pending)
                       if not lease_blocked(pending[i])]
        if not attemptable:
            # Every remaining point is leased by a live contender: poll
            # for their manifests (a holder's death leaves a stale
            # lease the next round steals).
            busy_waits.update(pending)
            if verbose:
                print(f"[sweep] {len(pending)} point(s) leased by "
                      f"another run; waiting")
            time.sleep(poll_s)
            continue
        if workers <= 1 or len(attemptable) == 1:
            for index in attemptable:
                i, outcome, detail = _attempt_point(
                    payload_for(pending[index]))
                if outcome != "busy":  # busy: lost a race, re-polled above
                    note(i, outcome, detail)
        else:
            with ProcessPoolExecutor(max_workers=min(
                    workers, len(attemptable))) as pool:
                futures = {pool.submit(_attempt_point,
                                       payload_for(pending[i]))
                           for i in attemptable}
                while futures:
                    finished, futures = wait(futures,
                                             return_when=FIRST_COMPLETED)
                    for future in finished:
                        i, outcome, detail = future.result()
                        if outcome != "busy":
                            note(i, outcome, detail)

    if report.failed:
        lines = ", ".join(f"point {i}: {err}"
                          for i, err in sorted(report.failed.items()))
        raise SweepError(
            f"{len(report.failed)} of {report.total} grid point(s) "
            f"failed ({lines}); completed points keep their manifests — "
            f"fix the spec and re-run to fill the holes")
    return report
