"""Per-relation neighbour sampling.

The paper trains with DGL mini-batch neighbour sampling, fan-outs
{6, 3, 2} for the FeatureGen / HyperMP / LatticeMP blocks, after removing
huge G-nets so sampling isn't dominated by them.  This module reproduces
the mechanism: given a relation operator, draw at most ``fanout``
neighbours per destination node and return a mean-normalised sampled
operator.  Full-graph training simply skips sampling (our default at CPU
scale); benches compare both.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..nn.sparse import SparseMatrix

__all__ = ["sample_neighbors", "sampled_operators"]


def sample_neighbors(operator: SparseMatrix, fanout: int,
                     rng: np.random.Generator,
                     normalize: str = "mean") -> SparseMatrix:
    """Sample ≤ ``fanout`` incoming neighbours per destination row.

    Parameters
    ----------
    operator:
        Relation operator of shape (num_dst, num_src); non-zero columns of
        row *i* are the neighbours of destination node *i*.
    fanout:
        Max neighbours kept per destination (without replacement).
    normalize:
        ``"mean"`` weights kept edges by 1/kept_count (matching DGL's mean
        aggregation over the sampled neighbourhood); ``"sum"`` keeps the
        original values.
    """
    if fanout <= 0:
        raise ValueError("fanout must be positive")
    mat = operator.mat
    indptr = mat.indptr
    indices = mat.indices
    data = mat.data

    new_rows: list[np.ndarray] = []
    new_cols: list[np.ndarray] = []
    new_vals: list[np.ndarray] = []
    for row in range(mat.shape[0]):
        lo, hi = indptr[row], indptr[row + 1]
        count = hi - lo
        if count == 0:
            continue
        if count <= fanout:
            keep = np.arange(lo, hi)
        else:
            keep = lo + rng.choice(count, size=fanout, replace=False)
        cols = indices[keep]
        if normalize == "mean":
            vals = np.full(len(keep), 1.0 / len(keep))
        elif normalize == "sum":
            vals = data[keep]
        else:
            raise ValueError("normalize must be 'mean' or 'sum'")
        new_rows.append(np.full(len(keep), row, dtype=np.int64))
        new_cols.append(cols)
        new_vals.append(vals)

    if new_rows:
        r = np.concatenate(new_rows)
        c = np.concatenate(new_cols)
        v = np.concatenate(new_vals)
    else:
        r = np.zeros(0, dtype=np.int64)
        c = np.zeros(0, dtype=np.int64)
        v = np.zeros(0)
    return SparseMatrix(sp.coo_matrix((v, (r, c)), shape=mat.shape).tocsr())


def sampled_operators(graph, fanouts: dict[str, int],
                      rng: np.random.Generator) -> dict[str, SparseMatrix]:
    """Draw one sampled operator set from an :class:`~repro.graph.lhgraph.LHGraph`.

    ``fanouts`` keys: ``"featuregen"``, ``"hypermp"``, ``"latticemp"`` —
    the paper's {6, 3, 2}.  Returns operators keyed like the LHGraph
    attributes (``op_nc_sum`` etc.), freshly sampled.
    """
    fg = fanouts.get("featuregen", 6)
    hy = fanouts.get("hypermp", 3)
    lt = fanouts.get("latticemp", 2)
    return {
        "op_nc_sum": sample_neighbors(graph.op_nc_sum, fg, rng, normalize="sum"),
        "op_cn_mean": sample_neighbors(graph.op_cn_mean, hy, rng, normalize="mean"),
        "op_nc_mean": sample_neighbors(graph.op_nc_mean, hy, rng, normalize="mean"),
        "op_cc_mean": sample_neighbors(graph.op_cc_mean, lt, rng, normalize="mean"),
    }
