"""Per-relation neighbour sampling.

The paper trains with DGL mini-batch neighbour sampling, fan-outs
{6, 3, 2} for the FeatureGen / HyperMP / LatticeMP blocks, after removing
huge G-nets so sampling isn't dominated by them.  This module reproduces
the mechanism: given a relation operator, draw at most ``fanout``
neighbours per destination node and return a mean-normalised sampled
operator.  Full-graph training simply skips sampling (our default at CPU
scale); benches compare both.

The draw is CSR-native and fully vectorised: one uniform key per stored
edge, an argsort-of-random-keys within each row, and a rank cut at
``fanout``.  Each row's kept set is a uniform ``min(degree, fanout)``-subset
without replacement — the same marginal distribution as a per-row
``rng.choice`` loop, without the Python-level loop that used to dominate
sampled-training time.  Operators of batched (block-diagonal) graphs are
sampled exactly like single-design ones; rows are independent either way.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..nn.sparse import SparseMatrix

__all__ = ["sample_neighbors", "sampled_operators"]


def sample_neighbors(operator: SparseMatrix, fanout: int,
                     rng: np.random.Generator,
                     normalize: str = "mean") -> SparseMatrix:
    """Sample ≤ ``fanout`` incoming neighbours per destination row.

    Parameters
    ----------
    operator:
        Relation operator of shape (num_dst, num_src); non-zero columns of
        row *i* are the neighbours of destination node *i*.
    fanout:
        Max neighbours kept per destination (without replacement).
    normalize:
        ``"mean"`` weights kept edges by 1/kept_count (matching DGL's mean
        aggregation over the sampled neighbourhood); ``"sum"`` keeps the
        original values; ``"unbiased"`` scales kept values by
        degree/kept_count, making the sampled row sum a Horvitz–Thompson
        estimator of the full row sum (required when the operator's values
        are sized for a sum over *all* neighbours, like the
        magnitude-stable scaled-sum operator — summing a fanout-subset of
        them unscaled would shrink activations by ~degree/fanout).
    """
    if fanout <= 0:
        raise ValueError("fanout must be positive")
    if normalize not in ("mean", "sum", "unbiased"):
        raise ValueError("normalize must be 'mean', 'sum' or 'unbiased'")
    mat = operator.mat
    nnz = mat.nnz
    if nnz == 0:
        return SparseMatrix(sp.csr_matrix(mat.shape))
    indptr = mat.indptr
    degrees = np.diff(indptr)
    row_ids = np.repeat(np.arange(mat.shape[0], dtype=np.int64), degrees)

    # One uniform key per edge; lexsort groups edges by row (stable, so row
    # blocks stay contiguous) and orders each row's edges by key.  The
    # first ``fanout`` ranks of a row are then a uniform subset without
    # replacement of its neighbours.
    keys = rng.random(nnz)
    perm = np.lexsort((keys, row_ids))
    rank_in_row = np.arange(nnz) - np.repeat(indptr[:-1], degrees)
    keep = rank_in_row < fanout

    kept_edges = perm[keep]          # positions into the original CSR arrays
    kept_rows = row_ids[keep]        # sorted layout shares the row blocks
    kept_cols = mat.indices[kept_edges]
    if normalize == "mean":
        kept_counts = np.minimum(degrees, fanout)
        vals = 1.0 / kept_counts[kept_rows]
    elif normalize == "unbiased":
        kept_counts = np.minimum(degrees, fanout)
        vals = mat.data[kept_edges] * (degrees[kept_rows] / kept_counts[kept_rows])
    else:
        vals = mat.data[kept_edges]
    return SparseMatrix(sp.coo_matrix((vals, (kept_rows, kept_cols)),
                                      shape=mat.shape).tocsr())


def sampled_operators(graph, fanouts: dict[str, int],
                      rng: np.random.Generator) -> dict[str, SparseMatrix]:
    """Draw one sampled operator set from an :class:`~repro.graph.lhgraph.LHGraph`.

    ``fanouts`` keys: ``"featuregen"``, ``"hypermp"``, ``"latticemp"`` —
    the paper's {6, 3, 2}.  Returns operators keyed like the LHGraph
    attributes (``op_nc_sum`` etc.), freshly sampled.  FeatureGen's sum
    operator is sampled from the magnitude-stable scaled-sum form when the
    graph provides one, with unbiased reweighting (degree/kept per edge)
    so the sampled aggregation estimates the full-graph scaled sum the
    forward pass uses at evaluation time.  Works on batched block-diagonal
    graphs unchanged.
    """
    fg = fanouts.get("featuregen", 6)
    hy = fanouts.get("hypermp", 3)
    lt = fanouts.get("latticemp", 2)
    fg_operator = (graph.op_nc_scaled_sum
                   if graph.op_nc_scaled_sum is not None else graph.op_nc_sum)
    return {
        "op_nc_sum": sample_neighbors(fg_operator, fg, rng,
                                      normalize="unbiased"),
        "op_cn_mean": sample_neighbors(graph.op_cn_mean, hy, rng, normalize="mean"),
        "op_nc_mean": sample_neighbors(graph.op_nc_mean, hy, rng, normalize="mean"),
        "op_cc_mean": sample_neighbors(graph.op_cc_mean, lt, rng, normalize="mean"),
    }
