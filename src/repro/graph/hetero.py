"""Generic heterogeneous graph container.

A :class:`HeteroGraph` holds typed node sets with feature matrices and
typed relations stored as sparse operators — the minimal subset of DGL's
heterograph the LHNN architecture needs.  Relations are directed:
``("gnet", "to", "gcell")`` is the paper's ``G_nc`` and so on.
"""

from __future__ import annotations

import numpy as np

from ..nn.sparse import SparseMatrix

__all__ = ["HeteroGraph"]


class HeteroGraph:
    """Typed nodes + typed sparse relations.

    Node types map to feature arrays ``(num_nodes, dim)``; relations map a
    (src_type, name, dst_type) triple to a :class:`SparseMatrix` of shape
    ``(num_dst, num_src)`` so that ``op @ src_features`` aggregates
    messages onto destination nodes.
    """

    def __init__(self) -> None:
        self._num_nodes: dict[str, int] = {}
        self._features: dict[str, np.ndarray] = {}
        self._relations: dict[tuple[str, str, str], SparseMatrix] = {}

    # -- nodes -----------------------------------------------------------
    def add_nodes(self, ntype: str, count: int,
                  features: np.ndarray | None = None) -> None:
        """Register ``count`` nodes of ``ntype`` with optional features."""
        if ntype in self._num_nodes:
            raise ValueError(f"node type {ntype!r} already present")
        if count < 0:
            raise ValueError("node count must be non-negative")
        self._num_nodes[ntype] = count
        if features is not None:
            self.set_features(ntype, features)

    def num_nodes(self, ntype: str) -> int:
        """Number of nodes of ``ntype``."""
        return self._num_nodes[ntype]

    @property
    def node_types(self) -> list[str]:
        """All registered node types."""
        return list(self._num_nodes)

    def set_features(self, ntype: str, features: np.ndarray) -> None:
        """Attach a feature matrix to a node type (rows = nodes)."""
        if ntype not in self._num_nodes:
            raise KeyError(f"unknown node type {ntype!r}")
        features = np.asarray(features, dtype=np.float64)
        if features.shape[0] != self._num_nodes[ntype]:
            raise ValueError(
                f"{ntype}: feature rows {features.shape[0]} != "
                f"node count {self._num_nodes[ntype]}")
        self._features[ntype] = features

    def features(self, ntype: str) -> np.ndarray:
        """Feature matrix of ``ntype``."""
        return self._features[ntype]

    # -- relations ---------------------------------------------------------
    def add_relation(self, src: str, name: str, dst: str,
                     operator: SparseMatrix) -> None:
        """Register a directed relation with aggregation operator.

        ``operator`` must have shape ``(num_dst_nodes, num_src_nodes)``.
        """
        for ntype in (src, dst):
            if ntype not in self._num_nodes:
                raise KeyError(f"unknown node type {ntype!r}")
        expect = (self._num_nodes[dst], self._num_nodes[src])
        if operator.shape != expect:
            raise ValueError(
                f"relation {(src, name, dst)}: operator shape "
                f"{operator.shape} != {expect}")
        self._relations[(src, name, dst)] = operator

    def relation(self, src: str, name: str, dst: str) -> SparseMatrix:
        """Fetch a relation operator."""
        return self._relations[(src, name, dst)]

    def has_relation(self, src: str, name: str, dst: str) -> bool:
        """Whether a relation is registered."""
        return (src, name, dst) in self._relations

    @property
    def relation_keys(self) -> list[tuple[str, str, str]]:
        """All (src, name, dst) relation triples."""
        return list(self._relations)

    # -- schema ------------------------------------------------------------
    def schema(self) -> dict:
        """Summary of node types and relations (paper Figure 2(d) schema)."""
        return {
            "nodes": dict(self._num_nodes),
            "relations": {
                f"{s} -[{n}]-> {d}": self._relations[(s, n, d)].nnz
                for (s, n, d) in self._relations
            },
        }
