"""``repro.graph`` — LH-graph formulation (the paper's §3).

Heterogeneous graph container, lattice + hypergraph construction with the
paper's normalised operators and large-G-net filtering, and DGL-style
neighbour sampling.
"""

from .hetero import HeteroGraph
from .lhgraph import (LHGraph, build_lattice_adjacency,
                      build_hypergraph_incidence, build_lhgraph)
from .sampling import sample_neighbors, sampled_operators
from .batch import batch_graphs, unbatch_values, plan_batches, BatchCache

__all__ = [
    "HeteroGraph",
    "LHGraph", "build_lattice_adjacency", "build_hypergraph_incidence",
    "build_lhgraph",
    "sample_neighbors", "sampled_operators",
    "batch_graphs", "unbatch_values", "plan_batches", "BatchCache",
]
