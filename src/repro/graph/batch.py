"""Batched LH-graphs: block-diagonal composition of several designs.

DGL trains graph models on batches by composing graphs into one
block-diagonal supergraph; the paper's mini-batch training relies on this.
:func:`batch_graphs` reproduces the mechanism for LH-graphs: node features
are concatenated, every relation operator becomes a block-diagonal sparse
matrix, and labels are stacked, so one LHNN forward pass covers several
designs (fewer, larger sparse matmuls — faster on CPU too).

:func:`unbatch_values` splits per-node results back out per design.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..nn.sparse import SparseMatrix
from .lhgraph import LHGraph

__all__ = ["batch_graphs", "unbatch_values"]


def _block_diag(operators: list[SparseMatrix]) -> SparseMatrix:
    return SparseMatrix(sp.block_diag([op.mat for op in operators],
                                      format="csr"))


def batch_graphs(graphs: list[LHGraph]) -> LHGraph:
    """Compose several labelled LH-graphs into one block-diagonal graph.

    All structural operators, features and (when present on every input)
    labels are combined.  Designs are stacked along the x axis (all inputs
    must share ``ny``), so ``map_to_grid`` renders side-by-side dies; use
    :func:`unbatch_values` to split per-node results per design.  Graph
    metadata records the per-design G-cell/G-net counts.
    """
    if not graphs:
        raise ValueError("cannot batch zero graphs")
    if len(graphs) == 1:
        return graphs[0]
    if len({g.ny for g in graphs}) != 1:
        raise ValueError("batched graphs must share ny (grid row count)")

    cell_counts = [g.num_gcells for g in graphs]
    net_counts = [g.num_gnets for g in graphs]

    demand = congestion = None
    if all(g.demand is not None for g in graphs):
        demand = np.concatenate([g.demand for g in graphs], axis=0)
    if all(g.congestion is not None for g in graphs):
        congestion = np.concatenate([g.congestion for g in graphs], axis=0)

    # Stack designs along the x axis: num_gcells = (Σ nx_i) · ny holds and
    # map_to_grid renders the batch as side-by-side dies.
    batched = LHGraph(
        name="+".join(g.name for g in graphs),
        nx=sum(g.nx for g in graphs), ny=graphs[0].ny,
        adjacency=_block_diag([g.adjacency for g in graphs]),
        incidence=_block_diag([g.incidence for g in graphs]),
        op_nc_sum=_block_diag([g.op_nc_sum for g in graphs]),
        op_cn_mean=_block_diag([g.op_cn_mean for g in graphs]),
        op_nc_mean=_block_diag([g.op_nc_mean for g in graphs]),
        op_cc_mean=_block_diag([g.op_cc_mean for g in graphs]),
        op_nc_scaled_sum=_block_diag([
            g.op_nc_scaled_sum if g.op_nc_scaled_sum is not None
            else g.op_nc_sum for g in graphs]),
        vc=np.concatenate([g.vc for g in graphs], axis=0),
        vn=np.concatenate([g.vn for g in graphs], axis=0),
        gnets=graphs[0].gnets,  # structural only; per-design data in parts
        demand=demand,
        congestion=congestion,
        metadata={
            "batched": True,
            "names": [g.name for g in graphs],
            "cell_counts": cell_counts,
            "net_counts": net_counts,
        },
    )
    return batched


def unbatch_values(batched: LHGraph, values: np.ndarray) -> list[np.ndarray]:
    """Split a per-G-cell array of the batched graph back per design."""
    if not batched.metadata.get("batched"):
        return [np.asarray(values)]
    counts = batched.metadata["cell_counts"]
    splits = np.cumsum(counts)[:-1]
    return [np.asarray(part) for part in np.split(np.asarray(values), splits)]
