"""Batched LH-graphs: block-diagonal composition of several designs.

DGL trains graph models on batches by composing graphs into one
block-diagonal supergraph; the paper's mini-batch training relies on this.
:func:`batch_graphs` reproduces the mechanism for LH-graphs: node features
are concatenated, every relation operator becomes a block-diagonal sparse
matrix, and labels are stacked, so one LHNN forward pass covers several
designs (fewer, larger sparse matmuls — faster on CPU too).

:func:`unbatch_values` splits per-node results back out per design, for
both per-G-cell and per-G-net arrays.  :class:`BatchCache` memoises
compositions by batch membership so repeated epochs over fixed mini-batches
reuse the block-diagonal CSR matrices instead of rebuilding them every
optimizer step; the training loop in :mod:`repro.train.trainer` holds one
cache per run.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable

import numpy as np

from ..nn.sparse import block_diag
from .lhgraph import LHGraph

__all__ = ["batch_graphs", "unbatch_values", "plan_batches", "BatchCache"]


def batch_graphs(graphs: list[LHGraph]) -> LHGraph:
    """Compose several labelled LH-graphs into one block-diagonal graph.

    All structural operators, features and (when present on every input)
    labels are combined.  Designs are stacked along the x axis (all inputs
    must share ``ny``), so ``map_to_grid`` renders side-by-side dies; use
    :func:`unbatch_values` to split per-node results per design.  Graph
    metadata records the per-design G-cell/G-net counts plus each design's
    own :class:`~repro.features.gnet.GNetData` under ``"gnets"``; the
    batched graph's ``gnets`` attribute is ``None`` because a single
    GNetData cannot describe several dies (reading the first design's
    topology for the whole batch would be silently wrong).
    """
    if not graphs:
        raise ValueError("cannot batch zero graphs")
    if len(graphs) == 1:
        return graphs[0]
    if len({g.ny for g in graphs}) != 1:
        raise ValueError("batched graphs must share ny (grid row count)")

    cell_counts = [g.num_gcells for g in graphs]
    net_counts = [g.num_gnets for g in graphs]

    demand = congestion = None
    if all(g.demand is not None for g in graphs):
        demand = np.concatenate([g.demand for g in graphs], axis=0)
    if all(g.congestion is not None for g in graphs):
        congestion = np.concatenate([g.congestion for g in graphs], axis=0)

    # Stack designs along the x axis: num_gcells = (Σ nx_i) · ny holds and
    # map_to_grid renders the batch as side-by-side dies.
    batched = LHGraph(
        name="+".join(g.name for g in graphs),
        nx=sum(g.nx for g in graphs), ny=graphs[0].ny,
        adjacency=block_diag([g.adjacency for g in graphs]),
        incidence=block_diag([g.incidence for g in graphs]),
        op_nc_sum=block_diag([g.op_nc_sum for g in graphs]),
        op_cn_mean=block_diag([g.op_cn_mean for g in graphs]),
        op_nc_mean=block_diag([g.op_nc_mean for g in graphs]),
        op_cc_mean=block_diag([g.op_cc_mean for g in graphs]),
        op_nc_scaled_sum=block_diag([
            g.op_nc_scaled_sum if g.op_nc_scaled_sum is not None
            else g.op_nc_sum for g in graphs]),
        vc=np.concatenate([g.vc for g in graphs], axis=0),
        vn=np.concatenate([g.vn for g in graphs], axis=0),
        gnets=None,  # per-design GNetData lives in metadata["gnets"]
        demand=demand,
        congestion=congestion,
        metadata={
            "batched": True,
            "names": [g.name for g in graphs],
            "cell_counts": cell_counts,
            "net_counts": net_counts,
            "gnets": [g.gnets for g in graphs],
        },
    )
    return batched


def unbatch_values(batched: LHGraph, values: np.ndarray) -> list[np.ndarray]:
    """Split a per-node array of the batched graph back per design.

    ``values`` may be per-G-cell (first dimension = total G-cell count,
    split by ``cell_counts``) or per-G-net (first dimension = total G-net
    count, split by ``net_counts``).  If the two totals coincide, the
    per-G-cell interpretation wins.  Any other length is an error — before
    this check, a G-net-sized array was silently mis-split with
    ``cell_counts``.
    """
    values = np.asarray(values)
    if not batched.metadata.get("batched"):
        return [values]
    cell_counts = batched.metadata["cell_counts"]
    net_counts = batched.metadata["net_counts"]
    if len(values) == sum(cell_counts):
        counts = cell_counts
    elif len(values) == sum(net_counts):
        counts = net_counts
    else:
        raise ValueError(
            f"cannot unbatch array of length {len(values)}: expected "
            f"{sum(cell_counts)} (per-G-cell) or {sum(net_counts)} "
            f"(per-G-net) for batch {batched.name!r}")
    splits = np.cumsum(counts)[:-1]
    return [np.asarray(part) for part in np.split(values, splits)]


def plan_batches(graphs: list[LHGraph],
                 max_batch: int = 8) -> list[list[int]]:
    """Partition graph indices into block-diagonal-batchable groups.

    :func:`batch_graphs` composes designs side by side along x, so every
    member of a group must share ``ny``; groups also respect
    ``max_batch`` (one forward pass per group).  Grouping is greedy in
    submission order within each ``ny`` class, so results can be mapped
    back to the original order via the returned indices.  This is the
    micro-batching planner of :class:`repro.serve.engine.InferenceEngine`.
    """
    if max_batch < 1:
        raise ValueError("max_batch must be >= 1")
    by_ny: OrderedDict[int, list[int]] = OrderedDict()
    for i, g in enumerate(graphs):
        by_ny.setdefault(g.ny, []).append(i)
    groups: list[list[int]] = []
    for members in by_ny.values():
        for start in range(0, len(members), max_batch):
            groups.append(members[start:start + max_batch])
    return groups


class BatchCache:
    """LRU memo for block-diagonal compositions keyed by batch membership.

    Rebuilding the batched CSR operators is the dominant fixed cost of a
    batched training step; with fixed mini-batch membership (the trainer
    shuffles batch *order* per epoch, not membership) every epoch after the
    first hits this cache.  Keys are the ``id()`` tuples of the member
    objects, so a cache must not outlive the graphs it memoises — hold one
    per training run.
    """

    def __init__(self, max_entries: int = 64):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self._entries: OrderedDict[tuple, object] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, members: list, builder: Callable = batch_graphs):
        """Return ``builder(members)``, memoised on the members' identity."""
        key = tuple(id(m) for m in members)
        if key in self._entries:
            self.hits += 1
            self._entries.move_to_end(key)
            return self._entries[key]
        self.misses += 1
        value = builder(members)
        self._entries[key] = value
        if len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
        return value

    def clear(self) -> None:
        """Drop all memoised compositions and reset the hit counters."""
        self._entries.clear()
        self.hits = 0
        self.misses = 0
