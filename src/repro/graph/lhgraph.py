"""LH-graph construction (paper §3.1).

The **lattice hypergraph** combines

* a *lattice graph* over G-cells — adjacency matrix ``A`` linking
  4-neighbours, carrying geometric message passing, and
* a *hypergraph* — incidence matrix ``H`` (G-cell × G-net) linking every
  G-cell to the G-nets covering it, carrying topological message passing,

into one heterogeneous graph with node types {G-cell, G-net} and relation
types {G-cell→G-net, G-net→G-cell, G-cell→G-cell}.

Degree matrices follow the paper's notation: ``D`` (G-cell hyper-degrees),
``B`` (G-net sizes), ``P`` (lattice degrees).  The normalised operators are

* ``G_nc = H``           — sum aggregation, G-net → G-cell (Eq. 1),
* ``G_cn = B⁻¹ Hᵀ``      — mean aggregation, G-cell → G-net (§4.2),
* ``G_nc_mean = D⁻¹ H``  — mean aggregation, G-net → G-cell (HyperMP's
  symmetric half; kept separate from the sum form used by FeatureGen),
* ``Ā = P⁻¹ A``          — mean aggregation over lattice neighbours (§4.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from ..circuit.design import Design
from ..features.gcell import gcell_feature_stack
from ..features.gnet import GNetData, compute_gnets
from ..nn.sparse import SparseMatrix, row_normalize
from ..routing.congestion import CongestionMaps
from ..routing.grid import RoutingGrid
from .hetero import HeteroGraph

__all__ = ["LHGraph", "build_lattice_adjacency", "build_hypergraph_incidence",
           "build_lhgraph"]


def build_lattice_adjacency(nx: int, ny: int) -> SparseMatrix:
    """4-neighbour lattice adjacency ``A`` over an ``nx × ny`` grid.

    G-cell (gx, gy) maps to flat index ``gx * ny + gy``.
    """
    idx = np.arange(nx * ny).reshape(nx, ny)
    rows: list[np.ndarray] = []
    cols: list[np.ndarray] = []
    # East neighbours
    rows.append(idx[:-1, :].reshape(-1))
    cols.append(idx[1:, :].reshape(-1))
    # North neighbours
    rows.append(idx[:, :-1].reshape(-1))
    cols.append(idx[:, 1:].reshape(-1))
    r = np.concatenate(rows)
    c = np.concatenate(cols)
    # Symmetrise.
    all_r = np.concatenate([r, c])
    all_c = np.concatenate([c, r])
    vals = np.ones(len(all_r))
    return SparseMatrix(sp.coo_matrix((vals, (all_r, all_c)),
                                      shape=(nx * ny, nx * ny)).tocsr())


def build_hypergraph_incidence(gnets: GNetData, nx: int, ny: int) -> SparseMatrix:
    """Incidence ``H`` (num_gcells × num_gnets): H[i, j] = 1 iff G-cell i
    lies in G-net j's bounding box."""
    rows: list[np.ndarray] = []
    cols: list[np.ndarray] = []
    for j in range(gnets.num_gnets):
        cells = gnets.covered_cells(j, ny)
        rows.append(cells)
        cols.append(np.full(len(cells), j, dtype=np.int64))
    if rows:
        r = np.concatenate(rows)
        c = np.concatenate(cols)
    else:
        r = np.zeros(0, dtype=np.int64)
        c = np.zeros(0, dtype=np.int64)
    vals = np.ones(len(r))
    return SparseMatrix(sp.coo_matrix((vals, (r, c)),
                                      shape=(nx * ny, gnets.num_gnets)).tocsr())


@dataclass
class LHGraph:
    """The LH-graph of one placed design, plus labels when routed.

    Node features follow the paper: ``vc`` has 4 channels
    (net-density H/V, pin density, terminal mask) and ``vn`` has 4
    channels (span_v, span_h, npin, area).  Labels are flat per-G-cell
    vectors in the same ``gx * ny + gy`` order as ``vc`` rows.
    """

    name: str
    nx: int
    ny: int
    adjacency: SparseMatrix            # A  (Nc × Nc)
    incidence: SparseMatrix            # H  (Nc × Nn)
    op_nc_sum: SparseMatrix            # G_nc = H
    op_cn_mean: SparseMatrix           # G_cn = B⁻¹ Hᵀ
    op_nc_mean: SparseMatrix           # D⁻¹ H
    op_cc_mean: SparseMatrix           # Ā = P⁻¹ A
    vc: np.ndarray                     # (Nc, 4)
    vn: np.ndarray                     # (Nn, 4)
    gnets: GNetData
    demand: np.ndarray | None = None       # (Nc, 2) normalised H/V demand
    congestion: np.ndarray | None = None   # (Nc, 2) binary H/V congestion
    op_nc_scaled_sum: SparseMatrix | None = None  # H / mean(D); the
    # magnitude-stable sum used inside FeatureGen (sum over hundreds of
    # incident G-nets would otherwise saturate activations at full-graph
    # training; scaling by the constant mean hyper-degree preserves the
    # sum-aggregation structure up to a global constant)
    metadata: dict = field(default_factory=dict)

    @property
    def num_gcells(self) -> int:
        """Number of G-cell nodes."""
        return self.nx * self.ny

    @property
    def num_gnets(self) -> int:
        """Number of G-net nodes (after large-net filtering)."""
        return self.incidence.shape[1]

    def congestion_rate(self, channel: int = 0) -> float:
        """Fraction of congested G-cells in label channel (0=H, 1=V)."""
        if self.congestion is None:
            raise ValueError("graph has no labels")
        return float(self.congestion[:, channel].mean())

    def to_hetero(self) -> HeteroGraph:
        """Materialise as a generic :class:`HeteroGraph` (schema checks)."""
        g = HeteroGraph()
        g.add_nodes("gcell", self.num_gcells, self.vc)
        g.add_nodes("gnet", self.num_gnets, self.vn)
        g.add_relation("gnet", "to_cell_sum", "gcell", self.op_nc_sum)
        g.add_relation("gnet", "to_cell_mean", "gcell", self.op_nc_mean)
        g.add_relation("gcell", "to_net_mean", "gnet", self.op_cn_mean)
        g.add_relation("gcell", "to_cell_mean", "gcell", self.op_cc_mean)
        return g

    def map_to_grid(self, values: np.ndarray) -> np.ndarray:
        """Reshape a flat per-G-cell vector back to the ``(nx, ny)`` grid."""
        return np.asarray(values).reshape(self.nx, self.ny)


def build_lhgraph(design: Design, grid: RoutingGrid,
                  maps: CongestionMaps | None = None,
                  max_gnet_fraction: float | None = 0.05) -> LHGraph:
    """Build the LH-graph for a placed design.

    Parameters
    ----------
    design, grid:
        Placed design and its routing grid (defines the G-cell tessellation).
    maps:
        Optional routed label maps; when given, normalised demand and
        binary congestion labels are attached.
    max_gnet_fraction:
        Large-G-net filter threshold as a fraction of the G-cell count.
        The paper uses 0.25 % at ~350 K G-cells; the default 5 % plays the
        same role at CPU-scale grids (drop the extreme-coverage tail that
        would dominate neighbour aggregation).
    """
    gnets = compute_gnets(design, grid, max_fraction=max_gnet_fraction)
    nx, ny = grid.nx, grid.ny

    adjacency = build_lattice_adjacency(nx, ny)
    incidence = build_hypergraph_incidence(gnets, nx, ny)

    op_nc_sum = incidence
    op_cn_mean = row_normalize(incidence.T)  # .T is a SparseMatrix, cached
    op_nc_mean = row_normalize(incidence)
    op_cc_mean = row_normalize(adjacency)
    degrees = incidence.row_sums()
    mean_degree = float(degrees[degrees > 0].mean()) if (degrees > 0).any() else 1.0
    op_nc_scaled_sum = SparseMatrix(incidence.mat * (1.0 / max(mean_degree, 1.0)))

    vc = gcell_feature_stack(design, grid, gnets).reshape(nx * ny, -1)
    vn = gnets.features

    demand = congestion = None
    if maps is not None:
        dh, dv = maps.normalized_demand()
        demand = np.stack([dh.reshape(-1), dv.reshape(-1)], axis=-1)
        congestion = np.stack([
            maps.congestion_h.reshape(-1).astype(np.float64),
            maps.congestion_v.reshape(-1).astype(np.float64),
        ], axis=-1)

    return LHGraph(
        name=design.name, nx=nx, ny=ny,
        adjacency=adjacency, incidence=incidence,
        op_nc_sum=op_nc_sum, op_cn_mean=op_cn_mean,
        op_nc_mean=op_nc_mean, op_cc_mean=op_cc_mean,
        op_nc_scaled_sum=op_nc_scaled_sum,
        vc=vc, vn=vn, gnets=gnets,
        demand=demand, congestion=congestion,
        metadata={"design_metadata": dict(design.metadata)},
    )
