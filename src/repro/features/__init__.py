"""``repro.features`` — crafted feature generators.

Reference implementations of the hand-designed G-cell maps CNN baselines
consume (net density, pin density, RUDY, terminal mask) and the G-net
feature table (span_v, span_h, npin, area) that seeds the LH-graph.
"""

from .gnet import GNetData, compute_gnets, GNET_FEATURE_NAMES
from .gcell import (net_density_maps, pin_density_map, terminal_mask,
                    rudy_map, gcell_feature_stack, GCELL_FEATURE_NAMES)

__all__ = [
    "GNetData", "compute_gnets", "GNET_FEATURE_NAMES",
    "net_density_maps", "pin_density_map", "terminal_mask", "rudy_map",
    "gcell_feature_stack", "GCELL_FEATURE_NAMES",
]
