"""G-net definition and features.

A **G-net** (paper §2.1) is the set of G-cells covering a net's pin
bounding box.  Its four input features (paper §3.1) are:

* ``span_v`` — vertical cover in G-cell rows,
* ``span_h`` — horizontal cover in G-cell columns,
* ``npin``  — number of pins in the net,
* ``area``  — number of G-cells in the G-net (= span_h × span_v).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..circuit.design import Design
from ..routing.grid import RoutingGrid

__all__ = ["GNetData", "compute_gnets"]

GNET_FEATURE_NAMES = ("span_v", "span_h", "npin", "area")


@dataclass
class GNetData:
    """G-net geometry and features for one design.

    Attributes
    ----------
    net_ids:
        Original design net index of each kept G-net.
    gx0, gy0, gx1, gy1:
        Inclusive G-cell bounding box per G-net.
    features:
        ``(num_gnets, 4)`` array ordered as
        ``(span_v, span_h, npin, area)``.
    """

    net_ids: np.ndarray
    gx0: np.ndarray
    gy0: np.ndarray
    gx1: np.ndarray
    gy1: np.ndarray
    features: np.ndarray

    @property
    def num_gnets(self) -> int:
        """Number of G-nets kept."""
        return len(self.net_ids)

    def covered_cells(self, i: int, ny: int) -> np.ndarray:
        """Flat G-cell indices (gx * ny + gy) covered by G-net ``i``."""
        xs = np.arange(self.gx0[i], self.gx1[i] + 1)
        ys = np.arange(self.gy0[i], self.gy1[i] + 1)
        return (xs[:, None] * ny + ys[None, :]).reshape(-1)


def compute_gnets(design: Design, grid: RoutingGrid,
                  max_fraction: float | None = None,
                  min_degree: int = 2) -> GNetData:
    """Compute G-nets, their features, and apply the large-net filter.

    Parameters
    ----------
    max_fraction:
        Drop G-nets covering more than this fraction of all G-cells.  The
        paper removes G-nets above 0.25 % of the G-cell count on ~350 K
        G-cell grids; at small grid scales that threshold is too strict, so
        the pipeline default is 5 % (see
        :class:`repro.pipeline.PipelineConfig`).  ``None`` keeps all.
    min_degree:
        Skip nets with fewer pins than this (degenerate nets route
        nothing and carry no signal).
    """
    boxes = design.net_bounding_boxes()
    deg = design.net_degree()
    num_gcells = grid.nx * grid.ny

    net_ids: list[int] = []
    gx0s: list[int] = []
    gy0s: list[int] = []
    gx1s: list[int] = []
    gy1s: list[int] = []
    feats: list[tuple[float, float, float, float]] = []
    for net in range(design.num_nets):
        if deg[net] < min_degree:
            continue
        gx0, gy0 = grid.gcell_of(boxes[net, 0], boxes[net, 1])
        gx1, gy1 = grid.gcell_of(boxes[net, 2], boxes[net, 3])
        span_h = gx1 - gx0 + 1
        span_v = gy1 - gy0 + 1
        area = span_h * span_v
        if max_fraction is not None and area > max_fraction * num_gcells:
            continue
        net_ids.append(net)
        gx0s.append(gx0)
        gy0s.append(gy0)
        gx1s.append(gx1)
        gy1s.append(gy1)
        feats.append((float(span_v), float(span_h), float(deg[net]), float(area)))

    return GNetData(
        net_ids=np.array(net_ids, dtype=np.int64),
        gx0=np.array(gx0s, dtype=np.int64),
        gy0=np.array(gy0s, dtype=np.int64),
        gx1=np.array(gx1s, dtype=np.int64),
        gy1=np.array(gy1s, dtype=np.int64),
        features=np.array(feats) if feats else np.zeros((0, 4)),
    )
