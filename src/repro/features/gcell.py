"""Crafted G-cell feature maps.

The reference implementations of the hand-designed features CNN models use
(paper §2.2, §3.2):

* horizontal / vertical **net density** — each net adds ``1/span_v``
  (horizontal) or ``1/span_h`` (vertical) to every G-cell of its G-net,
* **pin density** — pins per G-cell at the current placement,
* **terminal mask** — binary mask of G-cells covered by fixed cells,
* **RUDY** — each net adds ``npin · (span_h + span_v) / area`` over its
  G-net (the fast routing-demand estimate of Spindler & Johannes).

The paper's central observation (§3.2) is that the first three are exactly
one-step message passing on the LH-graph; tests in
``tests/features/test_recovery.py`` and the Figure-2 benchmark verify our
graph reproduces each of these maps to machine precision.

All map builders are closed forms over axis-aligned boxes, so they are
evaluated with the 2-D difference-array (summed-area) trick: each G-net
deposits ``+w`` / ``−w`` at its four box corners and two cumulative sums
materialise the dense map — O(nets + nx·ny) instead of O(nets · area).
The original per-net loops are kept as private ``_*_reference``
implementations and pinned by regression tests in
``tests/features/test_features.py``.
"""

from __future__ import annotations

import numpy as np

from ..circuit.design import Design
from ..routing.grid import RoutingGrid
from .gnet import GNetData

__all__ = ["net_density_maps", "pin_density_map", "terminal_mask",
           "rudy_map", "gcell_feature_stack", "GCELL_FEATURE_NAMES"]

GCELL_FEATURE_NAMES = ("net_density_h", "net_density_v",
                       "pin_density", "terminal_mask")


def _scatter_boxes(nx: int, ny: int, gx0: np.ndarray, gx1: np.ndarray,
                   gy0: np.ndarray, gy1: np.ndarray,
                   weights: np.ndarray) -> np.ndarray:
    """Add ``weights[i]`` over inclusive box ``[gx0..gx1] × [gy0..gy1]``.

    2-D difference array: four corner deposits per box, then a summed-area
    pass.  The scratch array is one cell wider per axis so the ``x1+1`` /
    ``y1+1`` corners never need clipping.  All pipeline weights are
    non-negative, so cancellation residues of the cumulative sums (≈1e-17
    where the exact value is 0) are clamped away.
    """
    diff = np.zeros((nx + 1, ny + 1))
    np.add.at(diff, (gx0, gy0), weights)
    np.add.at(diff, (gx1 + 1, gy0), -weights)
    np.add.at(diff, (gx0, gy1 + 1), -weights)
    np.add.at(diff, (gx1 + 1, gy1 + 1), weights)
    return np.maximum(diff.cumsum(axis=0).cumsum(axis=1)[:nx, :ny], 0.0)


def net_density_maps(gnets: GNetData, nx: int, ny: int) -> tuple[np.ndarray, np.ndarray]:
    """Horizontal and vertical net density maps, shape ``(nx, ny)`` each.

    Horizontal wires are assumed uniformly distributed over the G-net's
    rows, so each covered G-cell receives ``1/span_v`` horizontal density
    (paper Figure 2(a)); symmetrically ``1/span_h`` for vertical.
    """
    if gnets.num_gnets == 0:
        return np.zeros((nx, ny)), np.zeros((nx, ny))
    span_v = gnets.features[:, 0]
    span_h = gnets.features[:, 1]
    h = _scatter_boxes(nx, ny, gnets.gx0, gnets.gx1, gnets.gy0, gnets.gy1,
                       1.0 / span_v)
    v = _scatter_boxes(nx, ny, gnets.gx0, gnets.gx1, gnets.gy0, gnets.gy1,
                       1.0 / span_h)
    return h, v


def _net_density_maps_reference(gnets: GNetData, nx: int,
                                ny: int) -> tuple[np.ndarray, np.ndarray]:
    """Per-G-net loop implementation (regression reference)."""
    h = np.zeros((nx, ny))
    v = np.zeros((nx, ny))
    for i in range(gnets.num_gnets):
        span_v, span_h = gnets.features[i, 0], gnets.features[i, 1]
        sl = (slice(gnets.gx0[i], gnets.gx1[i] + 1),
              slice(gnets.gy0[i], gnets.gy1[i] + 1))
        h[sl] += 1.0 / span_v
        v[sl] += 1.0 / span_h
    return h, v


def pin_density_map(design: Design, grid: RoutingGrid) -> np.ndarray:
    """Number of pins per G-cell at the current placement."""
    px, py = design.pin_positions()
    gx, gy = grid.gcells_of(px, py)
    out = np.zeros((grid.nx, grid.ny))
    np.add.at(out, (gx, gy), 1.0)
    return out


def terminal_mask(design: Design, grid: RoutingGrid) -> np.ndarray:
    """Binary mask of G-cells covered by any fixed (terminal/macro) cell."""
    fixed = np.flatnonzero(design.cell_fixed)
    if len(fixed) == 0:
        return np.zeros((grid.nx, grid.ny))
    gx0, gy0 = grid.gcells_of(design.cell_x[fixed], design.cell_y[fixed])
    gx1, gy1 = grid.gcells_of(
        design.cell_x[fixed] + design.cell_w[fixed] - 1e-9,
        design.cell_y[fixed] + design.cell_h[fixed] - 1e-9)
    counts = _scatter_boxes(grid.nx, grid.ny, gx0, gx1, gy0, gy1,
                            np.ones(len(fixed)))
    return (counts > 0.5).astype(np.float64)


def _terminal_mask_reference(design: Design, grid: RoutingGrid) -> np.ndarray:
    """Per-fixed-cell loop implementation (regression reference)."""
    out = np.zeros((grid.nx, grid.ny))
    for cid in np.flatnonzero(design.cell_fixed):
        gx0, gy0 = grid.gcell_of(design.cell_x[cid], design.cell_y[cid])
        gx1, gy1 = grid.gcell_of(design.cell_x[cid] + design.cell_w[cid] - 1e-9,
                                 design.cell_y[cid] + design.cell_h[cid] - 1e-9)
        out[gx0:gx1 + 1, gy0:gy1 + 1] = 1.0
    return out


def rudy_map(gnets: GNetData, nx: int, ny: int) -> np.ndarray:
    """RUDY demand estimate: ``npin · (span_h + span_v) / area`` per G-net."""
    if gnets.num_gnets == 0:
        return np.zeros((nx, ny))
    span_v, span_h, npin, area = gnets.features.T
    return _scatter_boxes(nx, ny, gnets.gx0, gnets.gx1, gnets.gy0, gnets.gy1,
                          npin * (span_h + span_v) / area)


def _rudy_map_reference(gnets: GNetData, nx: int, ny: int) -> np.ndarray:
    """Per-G-net loop implementation (regression reference)."""
    out = np.zeros((nx, ny))
    for i in range(gnets.num_gnets):
        span_v, span_h, npin, area = gnets.features[i]
        sl = (slice(gnets.gx0[i], gnets.gx1[i] + 1),
              slice(gnets.gy0[i], gnets.gy1[i] + 1))
        out[sl] += npin * (span_h + span_v) / area
    return out


def gcell_feature_stack(design: Design, grid: RoutingGrid,
                        gnets: GNetData) -> np.ndarray:
    """The paper's 4-channel G-cell input feature, shape ``(nx, ny, 4)``.

    Channels follow :data:`GCELL_FEATURE_NAMES`: horizontal net density,
    vertical net density, pin density, terminal mask.
    """
    h, v = net_density_maps(gnets, grid.nx, grid.ny)
    pins = pin_density_map(design, grid)
    term = terminal_mask(design, grid)
    return np.stack([h, v, pins, term], axis=-1)
