"""`ExperimentSpec`: one declarative description of a full experiment.

An experiment is *family × workload × training schedule × compute policy
× output layout*.  Historically each of those axes was a separate
hand-written call-path (five ``train_*`` functions, argparse flags
re-declared per subcommand, a hardcoded superblue dataset loader); the
spec collapses them into one nested, typed, serialisable value:

.. code-block:: toml

    [workload]
    suite = "hotspot"        # any registered workload
    scale = 0.5
    count = 4

    [model]
    family = "gridsage"      # any registered model family
    channels = 1
    [model.params]           # family-specific construction knobs
    hidden = 16

    [train]
    epochs = 5
    batch_size = 2

    [compute]
    dtype = "float32"

    [output]
    name = "gridsage-hotspot"

Specs load from TOML or JSON files (:func:`load_spec`), accept
dotted-path overrides in the CLI's ``--set section.key=value`` grammar
(:func:`apply_overrides`), serialise canonically (:func:`spec_to_dict`)
and fingerprint through the same canonical-JSON SHA-256 scheme as the
pipeline cache keys (:func:`spec_fingerprint`), so a spec hash can join
cache keys and checkpoint metadata next to the architecture spec.

Validation is eager and typed: unknown sections or keys, wrong value
types, unknown model families and unknown workload suites all raise
:class:`SpecError` at load time with the offending dotted path in the
message — not deep inside a training run.
"""

from __future__ import annotations

import dataclasses
import json
import os
import types
import typing
from dataclasses import dataclass, field, fields

from ..pipeline.config import fingerprint_of

__all__ = ["SpecError", "WorkloadSpec", "ModelSpec", "TrainSpec",
           "ComputeSpec", "OutputSpec", "ExperimentSpec",
           "spec_to_dict", "spec_from_dict", "load_spec", "dumps_spec",
           "apply_overrides", "spec_fingerprint"]


class SpecError(ValueError):
    """A spec failed to load, parse or validate."""


@dataclass
class WorkloadSpec:
    """What data to prepare (mirrors ``repro.cli prepare``).

    ``suite`` is any registered workload; ``count`` / ``bookshelf_dir``
    are forwarded to suite factories that accept them and rejected (by
    the factory signature check) otherwise.
    """

    suite: str = "superblue"
    scale: float = 1.0
    count: int | None = None
    bookshelf_dir: str | None = None
    workers: int = 1
    use_cache: bool = True


@dataclass
class ModelSpec:
    """Which architecture to train.

    ``family`` is any registered model family; ``channels`` selects the
    uni (1, horizontal) or duo (2, horizontal + vertical) task;
    ``params`` holds family-specific construction knobs (``hidden``,
    ``base_width``, any :class:`~repro.models.lhnn.LHNNConfig` field…)
    merged over the family's registered defaults.
    """

    family: str = "lhnn"
    channels: int = 1
    params: dict = field(default_factory=dict)


@dataclass
class TrainSpec:
    """Optimisation schedule (maps 1:1 onto :class:`repro.train.TrainConfig`)."""

    epochs: int = 20
    batch_size: int = 1
    scale_lr_with_batch: bool = True
    lr: float = 2e-3
    lr_final: float = 5e-4
    gamma: float = 0.7
    threshold: float = 0.5
    grad_clip: float = 5.0
    seed: int = 0
    use_sampling: bool = False
    crop: int | None = None
    verbose: bool = False


@dataclass
class ComputeSpec:
    """Numerical-engine policy (see the ROADMAP dtype invariants)."""

    dtype: str = "float32"


@dataclass
class OutputSpec:
    """Where artifacts land.

    ``name`` defaults to ``<family>-<suite>``; ``checkpoint`` defaults
    to ``<artifacts_dir>/<name>.npz``; ``manifest`` defaults to
    ``<artifacts_dir>/experiments/<spec_fingerprint>.json`` — derived
    from *what the spec computes*, so concurrent grid points sharing one
    ``artifacts_dir`` can never clobber each other's result manifests
    (two specs with the same fingerprint produce byte-identical results
    by construction, so overwriting is the correct behaviour there).
    """

    name: str | None = None
    artifacts_dir: str = "artifacts"
    checkpoint: str | None = None
    manifest: str | None = None


@dataclass
class ExperimentSpec:
    """The full declarative experiment: one value drives everything."""

    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    model: ModelSpec = field(default_factory=ModelSpec)
    train: TrainSpec = field(default_factory=TrainSpec)
    compute: ComputeSpec = field(default_factory=ComputeSpec)
    output: OutputSpec = field(default_factory=OutputSpec)

    # -- derived output paths -----------------------------------------
    def experiment_name(self) -> str:
        return self.output.name or f"{self.model.family}-{self.workload.suite}"

    def checkpoint_path(self) -> str:
        return self.output.checkpoint or os.path.join(
            self.output.artifacts_dir, f"{self.experiment_name()}.npz")

    def manifest_path(self) -> str:
        if self.output.manifest:
            return self.output.manifest
        return os.path.join(self.output.artifacts_dir, "experiments",
                            f"{spec_fingerprint(self)}.json")


_SECTIONS = {f.name: f.type for f in fields(ExperimentSpec)}


def _allowed_types(cls, name: str):
    """The concrete runtime types a section field accepts."""
    hint = typing.get_type_hints(cls)[name]
    if isinstance(hint, types.UnionType):
        args = typing.get_args(hint)
        return tuple(a for a in args if a is not type(None)), \
            type(None) in args
    return (hint,), False


def _check_field(section: str, cls, name: str, value):
    """Validate (and gently coerce) one scalar field; returns the value."""
    allowed, optional = _allowed_types(cls, name)
    if value is None:
        if optional:
            return None
        raise SpecError(f"{section}.{name} must be "
                        f"{'/'.join(t.__name__ for t in allowed)}, got null")
    # bool is an int subclass in python; keep the two apart so
    # `train.epochs = true` fails instead of training for 1 epoch.
    if bool in allowed:
        if isinstance(value, bool):
            return value
    elif isinstance(value, bool):
        raise SpecError(f"{section}.{name} must be "
                        f"{'/'.join(t.__name__ for t in allowed)}, "
                        f"got bool {value!r}")
    if isinstance(value, allowed):
        return value
    # TOML/JSON have no int/float distinction the reader controls;
    # accept an int where a float is declared (but never the reverse).
    if float in allowed and isinstance(value, int):
        return float(value)
    raise SpecError(f"{section}.{name} must be "
                    f"{'/'.join(t.__name__ for t in allowed)}, "
                    f"got {type(value).__name__} {value!r}")


def _section_from_dict(section: str, cls, payload) -> object:
    if not isinstance(payload, dict):
        raise SpecError(f"section [{section}] must be a table/object, "
                        f"got {type(payload).__name__}")
    known = {f.name for f in fields(cls)}
    unknown = sorted(set(payload) - known)
    if unknown:
        raise SpecError(f"unknown key {section}.{unknown[0]!r}; "
                        f"known keys: {', '.join(sorted(known))}")
    kwargs = {}
    for name, value in payload.items():
        if cls is ModelSpec and name == "params":
            if not isinstance(value, dict):
                raise SpecError(f"model.params must be a table/object, "
                                f"got {type(value).__name__}")
            kwargs[name] = dict(value)
        else:
            kwargs[name] = _check_field(section, cls, name, value)
    return cls(**kwargs)


def _validate(spec: ExperimentSpec) -> ExperimentSpec:
    """Cross-field semantic checks (registries, ranges)."""
    from ..pipeline.workloads import list_workloads
    from ..serve.registry import list_families

    families = list_families()
    if spec.model.family not in families:
        raise SpecError(f"model.family: unknown model family "
                        f"{spec.model.family!r}; registered: "
                        f"{', '.join(families)}")
    suites = [w.name for w in list_workloads()]
    if spec.workload.suite not in suites:
        raise SpecError(f"workload.suite: unknown workload "
                        f"{spec.workload.suite!r}; registered: "
                        f"{', '.join(suites)}")
    if spec.model.channels not in (1, 2):
        raise SpecError(f"model.channels must be 1 (uni) or 2 (duo), "
                        f"got {spec.model.channels}")
    if "channels" in spec.model.params:
        # The dataset is built from model.channels; a params override
        # would silently desync model outputs from the targets.
        raise SpecError("model.params.channels is not allowed; set "
                        "model.channels instead")
    if spec.compute.dtype not in ("float32", "float64"):
        raise SpecError(f"compute.dtype must be 'float32' or 'float64', "
                        f"got {spec.compute.dtype!r}")
    for name, value in (("train.epochs", spec.train.epochs),
                        ("train.batch_size", spec.train.batch_size),
                        ("workload.workers", spec.workload.workers)):
        if value < 1:
            raise SpecError(f"{name} must be >= 1, got {value}")
    if spec.workload.count is not None and spec.workload.count < 1:
        raise SpecError(f"workload.count must be >= 1, "
                        f"got {spec.workload.count}")
    if spec.workload.scale <= 0:
        raise SpecError(f"workload.scale must be > 0, "
                        f"got {spec.workload.scale}")
    return spec


def spec_from_dict(payload: dict) -> ExperimentSpec:
    """Build and validate a spec from a nested plain dict.

    Missing sections and keys take their defaults; unknown sections,
    unknown keys and wrong value types raise :class:`SpecError` naming
    the offending dotted path.
    """
    if not isinstance(payload, dict):
        raise SpecError(f"spec root must be a table/object, "
                        f"got {type(payload).__name__}")
    unknown = sorted(set(payload) - set(_SECTIONS))
    if unknown:
        raise SpecError(f"unknown section [{unknown[0]}]; known sections: "
                        f"{', '.join(sorted(_SECTIONS))}")
    sections = {}
    for name, f in ((f.name, f) for f in fields(ExperimentSpec)):
        cls = f.default_factory
        if name in payload:
            sections[name] = _section_from_dict(name, cls, payload[name])
    return _validate(ExperimentSpec(**sections))


def spec_to_dict(spec: ExperimentSpec) -> dict:
    """Canonical nested plain-dict form (JSON/TOML-ready, stable layout)."""
    return {section.name: dataclasses.asdict(getattr(spec, section.name))
            for section in fields(ExperimentSpec)}


def dumps_spec(spec: ExperimentSpec) -> str:
    """Canonical JSON serialisation (sorted keys, compact separators)."""
    return json.dumps(spec_to_dict(spec), sort_keys=True, indent=2)


def spec_fingerprint(spec: ExperimentSpec) -> str:
    """Stable hash of what the spec *computes*.

    Built on the pipeline's canonical-JSON SHA-256 scheme
    (:func:`repro.pipeline.config.fingerprint_of`), so it mixes in the
    cache :data:`~repro.pipeline.config.SCHEMA_VERSION` and can join
    cache keys and checkpoint metadata.  Execution-only knobs are
    excluded — where a result lands (``output``), whether progress is
    printed (``train.verbose``) and how preparation is executed
    (``workload.workers`` / ``workload.use_cache``, bit-identical by the
    PR 2 parallel-equivalence guarantee) do not change the result, so
    byte-identical experiments fingerprint identically.
    """
    payload = spec_to_dict(spec)
    payload.pop("output")
    payload["train"].pop("verbose")
    payload["workload"].pop("workers")
    payload["workload"].pop("use_cache")
    return fingerprint_of({"experiment": payload})


def load_spec(path: str) -> ExperimentSpec:
    """Load a spec from a ``.toml`` or ``.json`` file."""
    ext = os.path.splitext(path)[1].lower()
    try:
        if ext == ".toml":
            import tomllib
            with open(path, "rb") as fh:
                payload = tomllib.load(fh)
        elif ext == ".json":
            with open(path, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
        else:
            raise SpecError(f"unsupported spec format {ext!r} "
                            f"(expected .toml or .json): {path}")
    except OSError as exc:
        raise SpecError(f"cannot read spec {path}: {exc}") from exc
    except (ValueError, json.JSONDecodeError) as exc:
        if isinstance(exc, SpecError):
            raise
        raise SpecError(f"cannot parse spec {path}: {exc}") from exc
    try:
        return spec_from_dict(payload)
    except SpecError as exc:
        raise SpecError(f"{path}: {exc}") from None


def _parse_override_value(raw: str):
    """Parse the value side of ``--set path=value``.

    JSON syntax wins (numbers, ``true``/``false``, ``null``, quoted
    strings, even lists for family params); anything that does not parse
    as JSON is taken as a bare string, so ``--set model.family=unet``
    needs no quoting.
    """
    try:
        return json.loads(raw)
    except json.JSONDecodeError:
        return raw


def apply_overrides(spec: ExperimentSpec,
                    overrides: list[str]) -> ExperimentSpec:
    """Apply ``section.key=value`` dotted-path overrides to a spec.

    Returns a new, re-validated spec; the input is untouched.  Paths
    address spec fields (``train.epochs=5``, ``model.family=unet``) or
    arbitrary depths under ``model.params``
    (``model.params.hidden=16``).  Malformed assignments, unknown paths
    and type errors raise :class:`SpecError` naming the override.
    """
    payload = spec_to_dict(spec)
    for override in overrides:
        path, eq, raw = override.partition("=")
        path = path.strip()
        if not eq or not path:
            raise SpecError(f"override {override!r} must look like "
                            f"section.key=value")
        parts = path.split(".")
        if len(parts) < 2:
            raise SpecError(f"override path {path!r} must be dotted "
                            f"(e.g. train.epochs)")
        # New keys may only be introduced beneath model.params (the open
        # family-specific namespace); everywhere else the path must name
        # an existing spec field.
        in_params = parts[:2] == ["model", "params"] and len(parts) >= 3
        node = payload
        for depth, part in enumerate(parts[:-1]):
            if part not in node:
                if in_params and depth >= 2:
                    node[part] = {}
                else:
                    raise SpecError(f"override {path!r}: unknown path "
                                    f"component {part!r}")
            elif not isinstance(node[part], dict):
                # Never silently turn an existing scalar into a table —
                # a typo like model.params.hidden.units=8 must fail
                # here, not deep inside model construction.
                raise SpecError(f"override {path!r}: {part!r} is not "
                                f"a table")
            node = node[part]
        leaf = parts[-1]
        if not in_params and leaf not in node:
            raise SpecError(f"override {path!r}: unknown key {leaf!r}")
        node[leaf] = _parse_override_value(raw)
    try:
        return spec_from_dict(payload)
    except SpecError as exc:
        raise SpecError(f"after overrides {overrides!r}: {exc}") from None
