"""`run_experiment`: one call from declarative spec to trained artifact.

The runner is the programmatic surface everything else sits on — the CLI
``train`` / ``experiment`` subcommands, the examples, and future
hyper-parameter sweeps all reduce to::

    from repro.api import load_spec, run_experiment
    result = run_experiment(load_spec("examples/specs/lhnn.toml"))
    print(result.metrics["f1"], result.checkpoint_path)

One run is: prepare the workload (through the staged, cached pipeline) →
build the dataset views → train the family via its registered runtime →
evaluate on the held-out split → save the checkpoint with spec-derived
metadata → write a JSON *result manifest* under
``<artifacts_dir>/experiments/``.

The checkpoint metadata embeds the full canonical spec and its
fingerprint next to the PR 3 architecture spec, so a checkpoint answers
"what exactly produced you?" without a lab notebook; the manifest is the
machine-readable record of the run (schema
:data:`RESULT_SCHEMA`, validated by :func:`validate_result_manifest`).
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass

from ..data.dataset import CongestionDataset
from ..nn.layers import Module
from ..train.config import TrainConfig
from .spec import (ExperimentSpec, SpecError, spec_fingerprint, spec_to_dict)

__all__ = ["ExperimentResult", "run_experiment", "load_dataset",
           "RESULT_SCHEMA", "validate_result_manifest",
           "find_result_manifest", "iter_result_manifests"]

#: Schema tag of the result-manifest JSON written per experiment.
RESULT_SCHEMA = "repro-experiment-v1"


@dataclass
class ExperimentResult:
    """Everything one experiment produced.

    ``metrics`` are the held-out per-circuit averages (percent);
    ``manifest`` is the exact dict written to ``manifest_path``.
    """

    spec: ExperimentSpec
    fingerprint: str
    model: Module
    metrics: dict
    checkpoint_path: str
    manifest_path: str
    manifest: dict


def load_dataset(spec: ExperimentSpec, verbose: bool = False
                 ) -> CongestionDataset:
    """Prepare the spec's workload and wrap it in the dataset views.

    Runs the staged pipeline (place / route / graph, per-stage cached)
    for ``spec.workload`` and returns the lazy manifest-backed dataset at
    ``spec.model.channels`` channels.  Exposed separately so callers that
    drive several experiments over one workload (e.g. the model zoo)
    prepare it once and pass ``dataset=`` into :func:`run_experiment`.
    """
    from ..pipeline import PipelineConfig, load_workload, prepare_workload
    w = spec.workload
    params = {}
    if w.count is not None:
        params["count"] = w.count
    if w.bookshelf_dir:
        params["root"] = w.bookshelf_dir
    config = PipelineConfig(scale=w.scale, use_cache=w.use_cache)
    # Only workload *instantiation* (unknown suite, rejected or missing
    # suite parameters) is a spec problem; bugs inside the actual
    # place-and-route preparation must traceback, not masquerade as
    # user errors.
    try:
        designs = load_workload(w.suite, config, **params)
    except (KeyError, ValueError, TypeError) as exc:
        raise SpecError(f"workload {w.suite!r} rejected the spec: "
                        f"{exc}") from exc
    graphs = prepare_workload(w.suite, config, workers=w.workers,
                              lazy=True, verbose=verbose, designs=designs,
                              **params)
    return CongestionDataset(graphs, channels=spec.model.channels)


def _train_config(spec: ExperimentSpec, verbose: bool | None) -> TrainConfig:
    t = spec.train
    return TrainConfig(
        epochs=t.epochs, batch_size=t.batch_size,
        scale_lr_with_batch=t.scale_lr_with_batch,
        lr=t.lr, lr_final=t.lr_final, gamma=t.gamma,
        threshold=t.threshold, grad_clip=t.grad_clip, seed=t.seed,
        use_sampling=t.use_sampling, crop=t.crop,
        verbose=t.verbose if verbose is None else verbose)


def _checkpoint_metadata(spec: ExperimentSpec, fingerprint: str,
                         metrics: dict) -> dict:
    """Spec-derived checkpoint metadata.

    The full canonical spec rides along (sections under ``experiment``),
    so new spec fields are recorded automatically instead of rotting in a
    hand-maintained dict of CLI args; a few flat keys are kept because
    other subsystems read them (``dtype`` at restore, ``channels`` by the
    legacy fallback).
    """
    return {
        "experiment": spec_to_dict(spec),
        "spec_fingerprint": fingerprint,
        "dtype": spec.compute.dtype,
        "channels": spec.model.channels,
        "suite": spec.workload.suite,
        "f1": metrics["f1"], "acc": metrics["acc"],
    }


def validate_result_manifest(manifest: dict) -> dict:
    """Check a result-manifest dict against :data:`RESULT_SCHEMA`.

    Returns the manifest; raises :class:`SpecError` on any violation.
    Used by the CI smoke step and by tooling that consumes manifests.
    """
    if not isinstance(manifest, dict):
        raise SpecError(f"manifest must be an object, "
                        f"got {type(manifest).__name__}")
    if manifest.get("schema") != RESULT_SCHEMA:
        raise SpecError(f"manifest schema must be {RESULT_SCHEMA!r}, "
                        f"got {manifest.get('schema')!r}")
    for key, kind in (("experiment", dict), ("fingerprint", str),
                      ("metrics", dict), ("checkpoint", str),
                      ("workload", dict), ("timing", dict),
                      ("created_unix", (int, float))):
        if not isinstance(manifest.get(key), kind):
            raise SpecError(f"manifest[{key!r}] missing or not "
                            f"{kind if isinstance(kind, type) else 'number'}")
    metrics = manifest["metrics"]
    for key in ("f1", "acc"):
        value = metrics.get(key)
        if not isinstance(value, (int, float)) or not 0 <= value <= 100:
            raise SpecError(f"manifest metrics[{key!r}] must be a "
                            f"percentage in [0, 100], got {value!r}")
    workload = manifest["workload"]
    for key in ("suite", "train_designs", "test_designs"):
        if key not in workload:
            raise SpecError(f"manifest workload[{key!r}] missing")
    # Round-trip the embedded spec: a manifest must be replayable.
    from .spec import spec_from_dict
    spec_from_dict(manifest["experiment"])
    return manifest


def iter_result_manifests(artifacts_dir: str):
    """Yield ``(path, manifest_dict)`` for every parsable result manifest.

    Walks ``<artifacts_dir>/experiments/*.json`` — fingerprint-named
    files and legacy ``<name>.json`` files alike (manifests written
    before the fingerprint-derived naming scheme carry their fingerprint
    *inside*, so identity never depends on the filename).  Unparsable
    files and sweep-level manifests are skipped; no schema validation
    happens here, callers decide how strict to be.
    """
    import glob
    for path in sorted(glob.glob(
            os.path.join(artifacts_dir, "experiments", "*.json"))):
        try:
            with open(path, "r", encoding="utf-8") as fh:
                manifest = json.load(fh)
        except (OSError, ValueError):
            continue
        if isinstance(manifest, dict) and \
                manifest.get("schema") == RESULT_SCHEMA:
            yield path, manifest


def find_result_manifest(artifacts_dir: str, fingerprint: str
                         ) -> tuple[str, dict] | None:
    """Locate the result manifest for ``fingerprint``; ``None`` if absent.

    Checks the canonical fingerprint-derived path
    ``experiments/<fingerprint>.json`` first, then falls back to
    scanning every manifest in the directory for a matching embedded
    ``fingerprint`` — the back-compat path for manifests written under
    the old ``<name>.json`` scheme.  Returns ``(path, manifest)``
    unvalidated; run :func:`validate_result_manifest` on the result
    before trusting it.
    """
    canonical = os.path.join(artifacts_dir, "experiments",
                             f"{fingerprint}.json")
    try:
        with open(canonical, "r", encoding="utf-8") as fh:
            return canonical, json.load(fh)
    except OSError:
        pass
    except ValueError:
        # Exists but does not parse: corrupt.  Surface it through the
        # canonical path so the caller can quarantine rather than
        # silently matching a legacy file for the same fingerprint.
        return canonical, {}
    for path, manifest in iter_result_manifests(artifacts_dir):
        if manifest.get("fingerprint") == fingerprint:
            return path, manifest
    return None


def run_experiment(spec: ExperimentSpec, *,
                   dataset: CongestionDataset | None = None,
                   verbose: bool | None = None,
                   save: bool = True) -> ExperimentResult:
    """Run one declarative experiment end to end.

    Train → evaluate → checkpoint (:func:`repro.serve.registry.save_model`
    with spec-derived metadata) → JSON result manifest.  ``dataset``
    injects a pre-built dataset (skipping workload preparation — the
    model-zoo and test path); ``save=False`` skips the artifact writes
    and returns paths as empty strings.  The compute dtype is set
    process-wide before any parameter or sample is materialised, exactly
    like the historical CLI path.
    """
    from ..nn import set_default_dtype
    from ..serve.registry import get_runtime, save_model

    fingerprint = spec_fingerprint(spec)
    runtime = get_runtime(spec.model.family)
    # Reject unknown construction knobs *before* the (potentially long)
    # preparation and training, so a typo in model.params fails in
    # milliseconds with a SpecError instead of deep inside a run.
    if "channels" in spec.model.params:
        # Mirrors spec validation for programmatically-built specs that
        # never went through spec_from_dict.
        raise SpecError("model.params.channels is not allowed; set "
                        "model.channels instead")
    unknown = sorted(set(spec.model.params) - set(runtime.default_config))
    if unknown:
        raise SpecError(
            f"model.params {unknown} unknown for family "
            f"{spec.model.family!r}; known: "
            f"{sorted(runtime.default_config)}")
    for key, value in spec.model.params.items():
        # The registered default defines each knob's type (bool is not
        # an int here, ints pass where floats are declared).
        default = runtime.default_config[key]
        if isinstance(default, bool):
            ok = isinstance(value, bool)
        elif isinstance(default, (int, float)):
            ok = (isinstance(value, (int, float))
                  and not isinstance(value, bool))
        else:
            ok = isinstance(value, type(default))
        if not ok:
            raise SpecError(
                f"model.params.{key} must be "
                f"{type(default).__name__} (like its default "
                f"{default!r}), got {type(value).__name__} {value!r}")
    set_default_dtype(spec.compute.dtype)

    verbose = spec.train.verbose if verbose is None else verbose
    injected = dataset is not None
    t0 = time.perf_counter()
    if dataset is None:
        dataset = load_dataset(spec, verbose=verbose)
    elif dataset.channels != spec.model.channels:
        # numpy would happily broadcast a (N, 2) prediction against a
        # (N, 1) target, silently training both channels on H labels.
        raise SpecError(
            f"injected dataset has {dataset.channels} channel(s) but "
            f"model.channels = {spec.model.channels}; rebuild it with "
            f"load_dataset(spec)")
    prepare_seconds = time.perf_counter() - t0

    train_config = _train_config(spec, verbose)
    model_config = {**runtime.default_config,
                    "channels": spec.model.channels,
                    **spec.model.params}
    train_samples = dataset.train_samples()
    test_samples = dataset.test_samples()

    t0 = time.perf_counter()
    model = runtime.trainer(train_samples, train_config, model_config)
    train_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    metrics = runtime.evaluator(model, test_samples, train_config)
    evaluate_seconds = time.perf_counter() - t0

    checkpoint_path = manifest_path = ""
    if save:
        checkpoint_path = save_model(
            model, spec.checkpoint_path(),
            metadata=_checkpoint_metadata(spec, fingerprint, metrics))

    split = dataset.split
    names = [dataset.graphs[i].name for i in range(len(dataset))] \
        if not hasattr(dataset.graphs, "names") else list(dataset.graphs.names)
    manifest = {
        "schema": RESULT_SCHEMA,
        "experiment": spec_to_dict(spec),
        "fingerprint": fingerprint,
        "family": spec.model.family,
        "metrics": {"f1": float(metrics["f1"]), "acc": float(metrics["acc"])},
        "checkpoint": checkpoint_path,
        "workload": {
            "suite": spec.workload.suite,
            "num_designs": len(dataset),
            # True when the caller handed in a pre-built dataset: the
            # metrics then come from that data, not from a fresh
            # preparation of spec.workload, so replaying the embedded
            # spec may not reproduce them.
            "dataset_injected": injected,
            "train_designs": [names[i] for i in split.train_indices],
            "test_designs": [names[i] for i in split.test_indices],
        },
        "timing": {"prepare_seconds": round(prepare_seconds, 3),
                   "train_seconds": round(train_seconds, 3),
                   "evaluate_seconds": round(evaluate_seconds, 3)},
        "created_unix": time.time(),
    }
    validate_result_manifest(manifest)
    if save:
        from ..store import atomic_write_bytes
        manifest_path = spec.manifest_path()
        os.makedirs(os.path.dirname(manifest_path) or ".", exist_ok=True)
        atomic_write_bytes(
            manifest_path,
            (json.dumps(manifest, indent=2, sort_keys=True) + "\n").encode(),
            point="experiment.manifest")

    return ExperimentResult(spec=spec, fingerprint=fingerprint, model=model,
                            metrics=metrics, checkpoint_path=checkpoint_path,
                            manifest_path=manifest_path, manifest=manifest)
