"""``repro.api`` — the declarative experiment layer.

One typed :class:`~repro.api.spec.ExperimentSpec` (``workload`` /
``model`` / ``train`` / ``compute`` / ``output`` sections) drives every
model family, every registered workload and every entry point:

.. code-block:: python

    from repro.api import ExperimentSpec, apply_overrides, run_experiment

    spec = ExperimentSpec()                       # lhnn × superblue
    spec = apply_overrides(spec, ["model.family=unet",
                                  "train.epochs=5",
                                  "workload.suite=hotspot"])
    result = run_experiment(spec)
    print(result.metrics["f1"], result.manifest_path)

Specs load from TOML/JSON (:func:`load_spec`; see ``examples/specs/``),
accept ``--set section.key=value`` dotted overrides, fingerprint through
the pipeline's canonical-JSON scheme, and every run leaves a
schema-validated JSON result manifest under
``<artifacts_dir>/experiments/``.  The CLI ``train`` / ``experiment``
subcommands are thin shells over this module; see
``docs/experiment_api.md`` for the full spec schema and manifest format.
"""

from .experiment import (RESULT_SCHEMA, ExperimentResult,
                         find_result_manifest, iter_result_manifests,
                         load_dataset, run_experiment,
                         validate_result_manifest)
from .spec import (ComputeSpec, ExperimentSpec, ModelSpec, OutputSpec,
                   SpecError, TrainSpec, WorkloadSpec, apply_overrides,
                   dumps_spec, load_spec, spec_fingerprint, spec_from_dict,
                   spec_to_dict)

__all__ = [
    "ExperimentSpec", "WorkloadSpec", "ModelSpec", "TrainSpec",
    "ComputeSpec", "OutputSpec", "SpecError",
    "load_spec", "spec_from_dict", "spec_to_dict", "dumps_spec",
    "apply_overrides", "spec_fingerprint",
    "run_experiment", "ExperimentResult", "load_dataset",
    "RESULT_SCHEMA", "validate_result_manifest",
    "find_result_manifest", "iter_result_manifests",
]
