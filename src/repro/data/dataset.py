"""Dataset views over prepared LH-graphs.

:class:`CongestionDataset` wraps the list of labelled LH-graphs produced
by :mod:`repro.pipeline` and provides the views each model family
consumes:

* **graph view** — the LH-graph itself (LHNN),
* **tabular view** — flat per-G-cell feature rows (MLP baseline),
* **image view** — NCHW feature images and label maps (U-Net, Pix2Pix),

plus channel selection (uni = horizontal only, duo = H and V), the
balanced 10:5 split of :mod:`repro.data.splits`, and the "zero G-cell
features" ablation transform of Table 3.

:func:`collate_samples` is the batched-training collate: it composes
several :class:`GraphSample` views into one sample over the block-diagonal
supergraph of :func:`repro.graph.batch.batch_graphs`, so a single forward
pass covers the whole mini-batch.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.batch import BatchCache, batch_graphs
from ..graph.lhgraph import LHGraph
from ..nn.tensor import get_default_dtype
from .splits import SplitResult, select_balanced_split

__all__ = ["CongestionDataset", "GraphSample", "collate_samples",
           "sample_of"]


def standardize(features: np.ndarray) -> np.ndarray:
    """Per-channel z-score; all-constant channels map to zero."""
    mean = features.mean(axis=0, keepdims=True)
    std = features.std(axis=0, keepdims=True)
    return (features - mean) / np.where(std > 1e-12, std, 1.0)


@dataclass
class GraphSample:
    """One design's training example in every view.

    ``features``/``net_features`` are per-design standardised model inputs
    of shape (Nc, 4) / (Nn, 4); ``image`` is (1, 4, nx, ny) standardised;
    label arrays are (Nc, channels) / (1, channels, nx, ny), channels ∈
    {1, 2}.
    """

    name: str
    graph: LHGraph
    features: np.ndarray
    net_features: np.ndarray
    image: np.ndarray
    cls_target: np.ndarray | None
    reg_target: np.ndarray | None
    cls_image: np.ndarray | None
    reg_image: np.ndarray | None


def _as_image(values: np.ndarray | None, nx: int, ny: int):
    """Flat (Nc, C) per-G-cell rows → NCHW (1, C, nx, ny) image view."""
    if values is None:
        return None
    return values.reshape(nx, ny, -1).transpose(2, 0, 1)[None]


def sample_of(graph: LHGraph, channels: int = 1,
              zero_gcell_features: bool = False,
              dtype=None) -> GraphSample:
    """Materialise every model-family view of one prepared LH-graph.

    Features are standardised per design *after* the optional
    zero-G-cell-feature ablation, so zeroed channels stay zero.  Label
    views are ``None`` for unlabelled graphs (e.g. a serving request
    whose pipeline skipped label extraction); the training dataset
    rejects those up front, the serving engine simply omits truth maps.

    Every array view is cast to ``dtype`` (default: the engine's default
    compute dtype) — this is where the pipeline's float64 graph products
    enter the numerical engine, so it is the single place the float32
    compute policy takes effect for model inputs and targets.
    Standardisation itself runs in float64 first, so a float32 sample is
    the rounded image of its float64 twin.
    """
    dtype = np.dtype(dtype) if dtype is not None else get_default_dtype()
    features = graph.vc.copy()
    if zero_gcell_features:
        # Keep only the terminal mask (channel 3); zero densities.
        features[:, 0:3] = 0.0
    features = standardize(features).astype(dtype, copy=False)
    net_features = standardize(graph.vn).astype(dtype, copy=False)
    cls_target = reg_target = None
    if graph.congestion is not None:
        cls_target = graph.congestion[:, :channels].astype(dtype, copy=False)
    if graph.demand is not None:
        reg_target = graph.demand[:, :channels].astype(dtype, copy=False)
    nx, ny = graph.nx, graph.ny
    return GraphSample(
        name=graph.name, graph=graph,
        features=features, net_features=net_features,
        image=_as_image(features, nx, ny),
        cls_target=cls_target, reg_target=reg_target,
        cls_image=_as_image(cls_target, nx, ny),
        reg_image=_as_image(reg_target, nx, ny),
    )


def _cat(arrays: list) -> np.ndarray | None:
    """Row-concatenate, propagating None when any member lacks the view."""
    if any(a is None for a in arrays):
        return None
    return np.concatenate(arrays, axis=0)


def _collate(samples: list[GraphSample]) -> GraphSample:
    """Build the batched GraphSample (see :func:`collate_samples`)."""
    batched = batch_graphs([s.graph for s in samples])
    features = np.concatenate([s.features for s in samples], axis=0)
    net_features = np.concatenate([s.net_features for s in samples], axis=0)
    cls_target = _cat([s.cls_target for s in samples])
    reg_target = _cat([s.reg_target for s in samples])
    # Flat per-G-cell order is gx * ny + gy; concatenation therefore *is*
    # the side-by-side-dies layout of the batched graph, and the image
    # views reshape directly to its (Σ nx_i) × ny grid.
    nx, ny = batched.nx, batched.ny
    return GraphSample(
        name=batched.name, graph=batched,
        features=features, net_features=net_features,
        image=_as_image(features, nx, ny),
        cls_target=cls_target, reg_target=reg_target,
        cls_image=_as_image(cls_target, nx, ny),
        reg_image=_as_image(reg_target, nx, ny),
    )


def collate_samples(samples: list[GraphSample],
                    cache: BatchCache | None = None) -> GraphSample:
    """Compose several samples into one over their block-diagonal graph.

    Per-design standardised features, net features and labels are stacked
    in design order — exactly the node order of
    :func:`repro.graph.batch.batch_graphs` — so the result trains/evaluates
    with one forward pass; split predictions back per design with
    :func:`repro.graph.batch.unbatch_values`.  A single sample passes
    through untouched.  When ``cache`` is given, the collated sample
    (graph composition *and* concatenated arrays) is memoised on the batch
    membership, which makes repeated epochs over fixed mini-batches free of
    re-collation cost.
    """
    if not samples:
        raise ValueError("cannot collate zero samples")
    if len(samples) == 1:
        return samples[0]
    if cache is not None:
        return cache.get(samples, builder=_collate)
    return _collate(samples)


class CongestionDataset:
    """The 15-design congestion-prediction dataset.

    Parameters
    ----------
    graphs:
        Labelled LH-graphs from :func:`repro.pipeline.prepare_suite`, or
        any lazy sequence of them — e.g. the
        :class:`~repro.pipeline.cache.ManifestGraphs` view returned by
        ``prepare_workload(..., lazy=True)``.  Lists are validated
        eagerly; lazy sequences are validated per graph on first access,
        so constructing the dataset deserialises nothing.
    channels:
        1 → uni-channel task (horizontal congestion only);
        2 → duo-channel (horizontal and vertical).
    zero_gcell_features:
        Table-3 ablation: zero the net-density and pin-density channels,
        keeping only the terminal mask.
    """

    def __init__(self, graphs, channels: int = 1,
                 zero_gcell_features: bool = False):
        if channels not in (1, 2):
            raise ValueError("channels must be 1 (uni) or 2 (duo)")
        if isinstance(graphs, (list, tuple)):
            graphs = list(graphs)
            for g in graphs:
                self._check_labelled(g)
        self.graphs = graphs
        self.channels = channels
        self.zero_gcell_features = zero_gcell_features
        self._split: SplitResult | None = None

    @staticmethod
    def _check_labelled(g: LHGraph) -> LHGraph:
        if g.congestion is None or g.demand is None:
            raise ValueError(f"graph {g.name} is unlabelled")
        return g

    def graph(self, index: int) -> LHGraph:
        """Graph ``index``, materialised and label-checked."""
        return self._check_labelled(self.graphs[index])

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.graphs)

    def congestion_rates(self, channel: int = 0) -> np.ndarray:
        """Per-design congestion rate for the given label channel.

        Manifest-backed sequences answer this from their metadata without
        loading any graph blob.
        """
        rates = getattr(self.graphs, "congestion_rates", None)
        if callable(rates):
            return np.asarray(rates(channel))
        return np.array([g.congestion_rate(channel) for g in self.graphs])

    @property
    def split(self) -> SplitResult:
        """The balanced 10:5 split (computed lazily, then cached)."""
        if self._split is None:
            test_size = max(1, round(len(self.graphs) / 3))
            self._split = select_balanced_split(self.congestion_rates(0),
                                                test_size=test_size)
        return self._split

    def train_samples(self) -> list[GraphSample]:
        """Samples of the training designs."""
        return [self.sample(i) for i in self.split.train_indices]

    def test_samples(self) -> list[GraphSample]:
        """Samples of the held-out designs."""
        return [self.sample(i) for i in self.split.test_indices]

    # ------------------------------------------------------------------
    def sample(self, index: int) -> GraphSample:
        """Materialise every view of design ``index``.

        Delegates to :func:`sample_of` after the label check (training
        and evaluation always need targets).
        """
        return sample_of(self.graph(index), channels=self.channels,
                         zero_gcell_features=self.zero_gcell_features)

    # ------------------------------------------------------------------
    def table1_rows(self) -> list[dict]:
        """Rows of the paper's Table 1 for the current split."""
        rows = []
        split = self.split
        for label, idx, rate in (
                ("Training", split.train_indices, split.train_rate),
                ("Testing", split.test_indices, split.test_rate)):
            metas = [self.graphs[i].metadata for i in idx]
            rows.append({
                "split": label,
                "designs": ", ".join(self.graphs[i].name.replace("superblue", "")
                                     for i in idx),
                "#cells": int(np.mean([m.get("num_cells", 0) for m in metas])),
                "#nets": int(np.mean([m.get("num_nets", 0) for m in metas])),
                "#gcells": int(np.mean([self.graphs[i].num_gcells for i in idx])),
                "congestion_rate_%": round(100.0 * rate, 2),
            })
        all_idx = list(range(len(self.graphs)))
        rows.append({
            "split": "Total",
            "designs": "All designs",
            "#cells": int(np.mean([self.graphs[i].metadata.get("num_cells", 0)
                                   for i in all_idx])),
            "#nets": int(np.mean([self.graphs[i].metadata.get("num_nets", 0)
                                  for i in all_idx])),
            "#gcells": int(np.mean([self.graphs[i].num_gcells for i in all_idx])),
            "congestion_rate_%": round(100.0 * float(self.congestion_rates(0).mean()), 2),
        })
        return rows
