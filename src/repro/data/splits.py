"""Train/test split selection (paper §5.1, Table 1).

Random 10:5 splits of the 15 designs give wildly varying results because
train and test congestion statistics can diverge ("domain transfer
effect").  The paper therefore iterates **all** 10:5 splits and fixes the
one minimising the absolute difference between train and test average
congestion rates; both sides end up at 17.38 %.  This module reproduces
that selection over the synthetic suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

import numpy as np

__all__ = ["SplitResult", "enumerate_splits", "select_balanced_split"]


@dataclass
class SplitResult:
    """A chosen 10:5 split with its balance diagnostics."""

    train_indices: tuple[int, ...]
    test_indices: tuple[int, ...]
    train_rate: float
    test_rate: float

    @property
    def rate_gap(self) -> float:
        """|mean train congestion − mean test congestion|."""
        return abs(self.train_rate - self.test_rate)


def enumerate_splits(num_designs: int, test_size: int = 5):
    """Yield (train_indices, test_indices) for every test subset."""
    all_idx = set(range(num_designs))
    for test in combinations(range(num_designs), test_size):
        train = tuple(sorted(all_idx - set(test)))
        yield train, test


def select_balanced_split(rates: np.ndarray, test_size: int = 5) -> SplitResult:
    """Pick the split minimising the train/test congestion-rate gap.

    Parameters
    ----------
    rates:
        Per-design congestion rate (e.g. horizontal-channel rate), one
        entry per design.
    test_size:
        Number of held-out designs (paper: 5 of 15 → 3003 candidates).
    """
    rates = np.asarray(rates, dtype=np.float64)
    n = len(rates)
    if not 0 < test_size < n:
        raise ValueError("test_size must be in (0, num_designs)")
    best: SplitResult | None = None
    for train, test in enumerate_splits(n, test_size):
        tr = float(rates[list(train)].mean())
        te = float(rates[list(test)].mean())
        candidate = SplitResult(train, test, tr, te)
        if best is None or candidate.rate_gap < best.rate_gap:
            best = candidate
    return best
