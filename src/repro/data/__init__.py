"""``repro.data`` — dataset views and the balanced 10:5 split selection."""

from .dataset import CongestionDataset, GraphSample
from .splits import SplitResult, enumerate_splits, select_balanced_split

__all__ = ["CongestionDataset", "GraphSample",
           "SplitResult", "enumerate_splits", "select_balanced_split"]
