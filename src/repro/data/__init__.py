"""``repro.data`` — dataset views and the balanced 10:5 split selection."""

from .dataset import CongestionDataset, GraphSample, collate_samples
from .splits import SplitResult, enumerate_splits, select_balanced_split

__all__ = ["CongestionDataset", "GraphSample", "collate_samples",
           "SplitResult", "enumerate_splits", "select_balanced_split"]
