"""End-to-end data pipeline: netlist → placement → routing → LH-graph.

This is the reproduction of the paper's data preparation (§5.1), grown
from a sequential monolith into a staged pipeline package:

* :mod:`repro.pipeline.config`    — :class:`PipelineConfig` and canonical
  JSON fingerprinting (schema-versioned cache keys),
* :mod:`repro.pipeline.stages`    — the place / route / graph stages with
  explicit picklable products and per-stage config scoping,
* :mod:`repro.pipeline.cache`     — content-addressed per-design,
  per-stage cache plus suite manifests and the lazy
  :class:`~repro.pipeline.cache.ManifestGraphs` view,
* :mod:`repro.pipeline.runner`    — orchestration, including parallel
  preparation over a ``ProcessPoolExecutor`` (``workers=N``) with
  deterministic per-design seeds,
* :mod:`repro.pipeline.workloads` — the workload registry (synthetic
  superblue, macro-heavy and hotspot scenario families, Bookshelf
  directory loader) behind ``repro.cli prepare --suite NAME``.

The historical API (:func:`prepare_suite`, :func:`prepare_design`,
:class:`PipelineConfig`, :func:`default_cache_dir`) is preserved; since
routing dominates preparation time, results remain cached on disk, now
per design and per stage — changing the router config no longer
re-places, and an interrupted run resumes where it stopped.
"""

from __future__ import annotations

# Re-exported so callers (and test doubles) can treat the package like the
# old flat module, which routed the suite through this very attribute.
from ..circuit.generator import superblue_suite  # noqa: F401
from .cache import (ManifestEntry, ManifestGraphs, StageCache, SuiteManifest,
                    default_cache_dir, design_fingerprint)
from .config import SCHEMA_VERSION, PipelineConfig, fingerprint_of
from .runner import (prepare_design, prepare_designs, prepare_suite,
                     prepare_workload, stage_keys_for)
from .stages import (PlacementProduct, RoutingProduct, STAGE_CALLS,
                     derive_placement_seed, reset_stage_calls)
from .workloads import (Workload, get_workload, list_workloads,
                        load_workload, register_workload)

__all__ = [
    # historical surface
    "PipelineConfig", "prepare_design", "prepare_suite", "default_cache_dir",
    # staged pipeline
    "SCHEMA_VERSION", "fingerprint_of", "design_fingerprint",
    "StageCache", "SuiteManifest", "ManifestEntry", "ManifestGraphs",
    "PlacementProduct", "RoutingProduct", "STAGE_CALLS", "reset_stage_calls",
    "derive_placement_seed", "stage_keys_for",
    "prepare_designs", "prepare_workload",
    # workload registry
    "Workload", "register_workload", "get_workload", "list_workloads",
    "load_workload",
    "superblue_suite",
]
