"""Content-addressed, per-design, per-stage pipeline cache.

Layout under the cache root (``REPRO_CACHE_DIR`` or
``~/.cache/repro-lhnn``)::

    objects/<kk>/<key>.pkl      one stage product per key (content address)
    manifests/<suite-key>.json  per-suite manifest of designs → stage keys

Keys chain: the placement key hashes the design content and the
placement-config slice; the routing key hashes the placement key and the
router slice; the graph key hashes the routing key and the graph slice.
Changing a downstream knob therefore never invalidates upstream entries,
and a crashed run resumes exactly where it stopped — every finished
stage of every finished design is already on disk.

Writes are atomic (tmp file + ``os.replace``), so parallel workers can
share one cache root without locking: the worst case is two workers
computing the same product and one rename winning.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from dataclasses import dataclass, field

import numpy as np

from ..circuit.design import Design
from .config import SCHEMA_VERSION, canonical_payload, fingerprint_of

__all__ = ["default_cache_dir", "design_fingerprint", "StageCache",
           "ManifestEntry", "SuiteManifest", "ManifestGraphs"]


def default_cache_dir() -> str:
    """Cache directory, override with ``REPRO_CACHE_DIR``."""
    return os.environ.get("REPRO_CACHE_DIR",
                          os.path.join(os.path.expanduser("~"),
                                       ".cache", "repro-lhnn"))


def design_fingerprint(design: Design) -> str:
    """Content hash of a design: geometry, netlist, positions, metadata.

    Everything the pipeline stages can read goes in, so two designs with
    the same fingerprint produce bit-identical products.  Array bytes are
    hashed directly (fast); names and metadata go through the canonical
    JSON encoding.
    """
    h = hashlib.sha256()
    h.update(f"schema:{SCHEMA_VERSION}".encode())
    meta = json.dumps(canonical_payload({
        "name": design.name,
        "cell_names": design.cell_names,
        "net_names": design.net_names,
        "die": list(design.die),
        "row_height": design.row_height,
        "metadata": design.metadata,
    }), sort_keys=True, separators=(",", ":")).encode()
    h.update(meta)
    for arr in (design.cell_w, design.cell_h, design.cell_fixed,
                design.cell_x, design.cell_y, design.net_ptr,
                design.pin_cell, design.pin_dx, design.pin_dy):
        a = np.ascontiguousarray(arr)
        h.update(str(a.dtype).encode())
        h.update(a.tobytes())
    return h.hexdigest()[:32]


def _atomic_write(path: str, write) -> None:
    """Write via tmp-file + rename; the tmp file never outlives failure."""
    os.makedirs(os.path.dirname(path), exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path), suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            write(handle)
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise


class StageCache:
    """Pickle store addressed by stage keys, with hit/miss accounting.

    ``root=None`` disables persistence entirely (every ``load`` misses,
    ``store`` is a no-op) — the runner then behaves like the old
    uncached pipeline.
    """

    def __init__(self, root: str | None):
        self.root = root
        self.hits = 0
        self.misses = 0
        self.stores = 0

    # -- key derivation ------------------------------------------------
    @staticmethod
    def chain_key(*parts: str) -> str:
        """Derive a child key from parent keys / fingerprints."""
        return fingerprint_of({"chain": list(parts)})

    # -- object store --------------------------------------------------
    def _path(self, key: str) -> str:
        return os.path.join(self.root, "objects", key[:2], f"{key}.pkl")

    def load(self, key: str):
        """Return the cached object for ``key`` or ``None`` on a miss."""
        if self.root is not None:
            path = self._path(key)
            if os.path.exists(path):
                try:
                    with open(path, "rb") as handle:
                        obj = pickle.load(handle)
                except (OSError, pickle.UnpicklingError, EOFError,
                        AttributeError, ImportError):
                    pass  # corrupt/stale entry: treat as a miss, recompute
                else:
                    self.hits += 1
                    return obj
        self.misses += 1
        return None

    def store(self, key: str, obj) -> None:
        """Atomically persist ``obj`` under ``key`` (no-op when disabled)."""
        if self.root is None:
            return
        _atomic_write(self._path(key),
                      lambda handle: pickle.dump(
                          obj, handle, protocol=pickle.HIGHEST_PROTOCOL))
        self.stores += 1

    def contains(self, key: str) -> bool:
        """True when ``key`` is present (does not touch counters)."""
        return self.root is not None and os.path.exists(self._path(key))

    # -- manifests -----------------------------------------------------
    def manifest_path(self, suite_key: str) -> str:
        return os.path.join(self.root, "manifests", f"{suite_key}.json")

    def load_manifest(self, suite_key: str) -> "SuiteManifest | None":
        if self.root is None:
            return None
        path = self.manifest_path(suite_key)
        if not os.path.exists(path):
            return None
        try:
            with open(path) as handle:
                return SuiteManifest.from_json(json.load(handle))
        except (OSError, ValueError, KeyError, TypeError):
            return None  # corrupt / schema-drifted manifest: cache miss

    def store_manifest(self, manifest: "SuiteManifest") -> None:
        if self.root is None:
            return
        payload = json.dumps(manifest.to_json(), indent=1,
                             sort_keys=True).encode()
        _atomic_write(self.manifest_path(manifest.suite_key),
                      lambda handle: handle.write(payload))


# ----------------------------------------------------------------------
# Manifests
# ----------------------------------------------------------------------

@dataclass
class ManifestEntry:
    """One design's stage keys and summary stats inside a suite manifest."""

    design_name: str
    design_fp: str
    place_key: str
    route_key: str
    graph_key: str
    num_cells: int = 0
    num_nets: int = 0
    congestion_rate_h: float = 0.0
    congestion_rate_v: float = 0.0


@dataclass
class SuiteManifest:
    """Record of one prepared suite: per-design stage keys + provenance.

    The manifest is what downstream consumers (the dataset, the CLI
    ``stats`` summary) read instead of a monolithic suite pickle; the
    actual graphs are loaded lazily per design through
    :class:`ManifestGraphs`.
    """

    suite_key: str
    suite_name: str
    config_fp: str
    schema_version: int = SCHEMA_VERSION
    entries: list[ManifestEntry] = field(default_factory=list)

    def to_json(self) -> dict:
        return {
            "suite_key": self.suite_key,
            "suite_name": self.suite_name,
            "config_fp": self.config_fp,
            "schema_version": self.schema_version,
            "entries": [vars(e).copy() for e in self.entries],
        }

    @classmethod
    def from_json(cls, payload: dict) -> "SuiteManifest":
        return cls(
            suite_key=payload["suite_key"],
            suite_name=payload["suite_name"],
            config_fp=payload["config_fp"],
            schema_version=int(payload.get("schema_version", 0)),
            entries=[ManifestEntry(**e) for e in payload["entries"]],
        )

    def is_complete(self, cache: StageCache) -> bool:
        """True when every entry's graph blob is present in ``cache``."""
        return bool(self.entries) and all(
            cache.contains(e.graph_key) for e in self.entries)


class ManifestGraphs:
    """Lazy, memoised sequence of LH-graphs behind a suite manifest.

    Quacks like the ``list[LHGraph]`` the dataset historically consumed,
    but loads each per-design graph blob from the stage cache on first
    access only.  Congestion rates are answered straight from the
    manifest without touching any blob, which keeps split selection and
    ``stats`` summaries free of deserialisation cost.
    """

    def __init__(self, manifest: SuiteManifest, cache: StageCache,
                 graphs: "list | None" = None):
        self.manifest = manifest
        self.cache = cache
        # ``graphs`` pre-seeds the memo (entry order) so a run that just
        # computed the suite doesn't re-deserialise its own blobs.
        if graphs is not None and len(graphs) != len(manifest.entries):
            raise ValueError("preloaded graphs disagree with manifest size")
        self._graphs: list = (list(graphs) if graphs is not None
                              else [None] * len(manifest.entries))

    def __len__(self) -> int:
        return len(self.manifest.entries)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(len(self)))]
        if index < 0:
            index += len(self)
        if not 0 <= index < len(self):
            raise IndexError(index)
        if self._graphs[index] is None:
            entry = self.manifest.entries[index]
            graph = self.cache.load(entry.graph_key)
            if graph is None:
                raise KeyError(
                    f"graph blob {entry.graph_key} for design "
                    f"{entry.design_name!r} missing from cache "
                    f"{self.cache.root!r}; re-run prepare")
            self._graphs[index] = graph
        return self._graphs[index]

    def __iter__(self):
        for i in range(len(self)):
            yield self[i]

    def congestion_rates(self, channel: int = 0) -> np.ndarray:
        """Per-design congestion rates from manifest metadata (no I/O)."""
        if channel == 0:
            return np.array([e.congestion_rate_h
                             for e in self.manifest.entries])
        return np.array([e.congestion_rate_v for e in self.manifest.entries])

    @property
    def names(self) -> list[str]:
        return [e.design_name for e in self.manifest.entries]
