"""Content-addressed, per-design, per-stage pipeline cache.

Layout under the cache root (``REPRO_CACHE_DIR`` or
``~/.cache/repro-lhnn``)::

    objects/<kk>/<key>.pkl      one stage product per key (content address)
    manifests/<suite-key>.json  per-suite manifest of designs → stage keys

Keys chain: the placement key hashes the design content and the
placement-config slice; the routing key hashes the placement key and the
router slice; the graph key hashes the routing key and the graph slice.
Changing a downstream knob therefore never invalidates upstream entries,
and a crashed run resumes exactly where it stopped — every finished
stage of every finished design is already on disk.

Persistence goes through :class:`repro.store.BlobStore`: every blob is
written atomically (tmp + fsync + rename) with a SHA-256 footer that is
verified on read.  Corrupt blobs — bad checksum *or* unpicklable
payload — are quarantined with a reason record and counted separately
(``corrupt``) from plain misses, in-progress stages are coordinated via
lease files (see :mod:`repro.pipeline.runner`), and a cache root that
turns out to be unwritable degrades the run to uncached operation with
a :class:`repro.store.StoreDegradedWarning` instead of crashing it.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
from dataclasses import dataclass, field

import numpy as np

from ..circuit.design import Design
from ..store import BlobStore
from .config import SCHEMA_VERSION, canonical_payload, fingerprint_of

__all__ = ["default_cache_dir", "design_fingerprint", "StageCache",
           "ManifestEntry", "SuiteManifest", "ManifestGraphs"]


def default_cache_dir() -> str:
    """Cache directory, override with ``REPRO_CACHE_DIR``."""
    return os.environ.get("REPRO_CACHE_DIR",
                          os.path.join(os.path.expanduser("~"),
                                       ".cache", "repro-lhnn"))


def design_fingerprint(design: Design) -> str:
    """Content hash of a design: geometry, netlist, positions, metadata.

    Everything the pipeline stages can read goes in, so two designs with
    the same fingerprint produce bit-identical products.  Array bytes are
    hashed directly (fast); names and metadata go through the canonical
    JSON encoding.
    """
    h = hashlib.sha256()
    h.update(f"schema:{SCHEMA_VERSION}".encode())
    meta = json.dumps(canonical_payload({
        "name": design.name,
        "cell_names": design.cell_names,
        "net_names": design.net_names,
        "die": list(design.die),
        "row_height": design.row_height,
        "metadata": design.metadata,
    }), sort_keys=True, separators=(",", ":")).encode()
    h.update(meta)
    for arr in (design.cell_w, design.cell_h, design.cell_fixed,
                design.cell_x, design.cell_y, design.net_ptr,
                design.pin_cell, design.pin_dx, design.pin_dy):
        a = np.ascontiguousarray(arr)
        h.update(str(a.dtype).encode())
        h.update(a.tobytes())
    return h.hexdigest()[:32]


#: Exceptions that mean "this pickle payload cannot become an object".
#: The bytes already passed their checksum, so these indicate schema
#: drift or a legacy (pre-checksum) blob that rotted on disk.
_UNPICKLE_ERRORS = (pickle.UnpicklingError, EOFError, AttributeError,
                    ImportError, IndexError)


class StageCache:
    """Pickle store addressed by stage keys, with hit/miss accounting.

    ``root=None`` disables persistence entirely (every ``load`` misses,
    ``store`` is a no-op) — the runner then behaves like the old
    uncached pipeline.  A persistent cache sits on a
    :class:`repro.store.BlobStore`: checksummed write-once blobs,
    quarantine for corruption (counted in ``corrupt``, not ``misses``),
    per-key leases for in-progress computation, and graceful
    degradation to uncached mode when the root is unwritable.
    """

    def __init__(self, root: str | None, *, lease_ttl_s: float = 300.0):
        self.root = root
        self.blobs = BlobStore(root, lease_ttl_s=lease_ttl_s)
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.corrupt = 0

    @property
    def degraded(self) -> bool:
        """True once the store downgraded itself to uncached operation."""
        return self.blobs.degraded

    # -- key derivation ------------------------------------------------
    @staticmethod
    def chain_key(*parts: str) -> str:
        """Derive a child key from parent keys / fingerprints."""
        return fingerprint_of({"chain": list(parts)})

    # -- object store --------------------------------------------------
    def _path(self, key: str) -> str:
        return self.blobs.object_path(key)

    def load(self, key: str):
        """Return the cached object for ``key`` or ``None`` on a miss.

        Corruption — checksum-failed bytes or an unpicklable payload —
        quarantines the blob, increments ``corrupt`` (not ``misses``)
        and reads as ``None``, so the caller recomputes against a clean
        slot instead of racing a permanently-poisoned file.
        """
        if self.root is not None:
            checksum_corrupt = self.blobs.corrupt
            payload = self.blobs.get(key)
            if payload is not None:
                try:
                    obj = pickle.loads(payload)
                except _UNPICKLE_ERRORS as exc:
                    self.corrupt += 1
                    self.blobs.quarantine_object(
                        key, f"unpicklable payload: "
                             f"{type(exc).__name__}: {exc}")
                    return None
                self.hits += 1
                return obj
            if self.blobs.corrupt > checksum_corrupt:
                self.corrupt += 1
                return None
        self.misses += 1
        return None

    def load_if_present(self, key: str):
        """``load`` that skips the miss counter when the blob is absent.

        The lease-coordination path re-checks keys it already counted a
        miss for; this keeps that re-check from double-counting.
        """
        if not self.contains(key):
            return None
        return self.load(key)

    def store(self, key: str, obj) -> None:
        """Atomically persist ``obj`` under ``key`` (no-op when disabled).

        The blob carries a SHA-256 footer; a write that fails for
        non-transient reasons degrades the cache (with a structured
        warning) rather than raising, so a full or read-only cache root
        never kills the computation that produced ``obj``.
        """
        if self.blobs.put(key, pickle.dumps(
                obj, protocol=pickle.HIGHEST_PROTOCOL)):
            self.stores += 1

    def contains(self, key: str) -> bool:
        """True when ``key`` is present (does not touch counters)."""
        return self.blobs.contains(key)

    # -- coordination / maintenance ------------------------------------
    def try_lease(self, key: str):
        """Claim (or steal a stale) computation lease for ``key``."""
        return self.blobs.try_lease(key)

    def gc(self, *, max_tmp_age_s: float = 600.0) -> dict:
        """Sweep orphaned tmp files and expired leases (see store docs)."""
        return self.blobs.gc(max_tmp_age_s=max_tmp_age_s)

    # -- manifests -----------------------------------------------------
    def manifest_path(self, suite_key: str) -> str:
        return os.path.join(self.root, "manifests", f"{suite_key}.json")

    def load_manifest(self, suite_key: str) -> "SuiteManifest | None":
        if self.root is None:
            return None
        path = self.manifest_path(suite_key)
        if not os.path.exists(path):
            return None
        try:
            with open(path) as handle:
                return SuiteManifest.from_json(json.load(handle))
        except (OSError, ValueError, KeyError, TypeError):
            return None  # corrupt / schema-drifted manifest: cache miss

    def store_manifest(self, manifest: "SuiteManifest") -> None:
        if self.root is None:
            return
        payload = json.dumps(manifest.to_json(), indent=1,
                             sort_keys=True).encode()
        self.blobs.write_plain(self.manifest_path(manifest.suite_key),
                               payload)


# ----------------------------------------------------------------------
# Manifests
# ----------------------------------------------------------------------

@dataclass
class ManifestEntry:
    """One design's stage keys and summary stats inside a suite manifest."""

    design_name: str
    design_fp: str
    place_key: str
    route_key: str
    graph_key: str
    num_cells: int = 0
    num_nets: int = 0
    congestion_rate_h: float = 0.0
    congestion_rate_v: float = 0.0


@dataclass
class SuiteManifest:
    """Record of one prepared suite: per-design stage keys + provenance.

    The manifest is what downstream consumers (the dataset, the CLI
    ``stats`` summary) read instead of a monolithic suite pickle; the
    actual graphs are loaded lazily per design through
    :class:`ManifestGraphs`.
    """

    suite_key: str
    suite_name: str
    config_fp: str
    schema_version: int = SCHEMA_VERSION
    entries: list[ManifestEntry] = field(default_factory=list)

    def to_json(self) -> dict:
        return {
            "suite_key": self.suite_key,
            "suite_name": self.suite_name,
            "config_fp": self.config_fp,
            "schema_version": self.schema_version,
            "entries": [vars(e).copy() for e in self.entries],
        }

    @classmethod
    def from_json(cls, payload: dict) -> "SuiteManifest":
        return cls(
            suite_key=payload["suite_key"],
            suite_name=payload["suite_name"],
            config_fp=payload["config_fp"],
            schema_version=int(payload.get("schema_version", 0)),
            entries=[ManifestEntry(**e) for e in payload["entries"]],
        )

    def is_complete(self, cache: StageCache) -> bool:
        """True when every entry's graph blob is present in ``cache``."""
        return bool(self.entries) and all(
            cache.contains(e.graph_key) for e in self.entries)


class ManifestGraphs:
    """Lazy, memoised sequence of LH-graphs behind a suite manifest.

    Quacks like the ``list[LHGraph]`` the dataset historically consumed,
    but loads each per-design graph blob from the stage cache on first
    access only.  Congestion rates are answered straight from the
    manifest without touching any blob, which keeps split selection and
    ``stats`` summaries free of deserialisation cost.
    """

    def __init__(self, manifest: SuiteManifest, cache: StageCache,
                 graphs: "list | None" = None):
        self.manifest = manifest
        self.cache = cache
        # ``graphs`` pre-seeds the memo (entry order) so a run that just
        # computed the suite doesn't re-deserialise its own blobs.
        if graphs is not None and len(graphs) != len(manifest.entries):
            raise ValueError("preloaded graphs disagree with manifest size")
        self._graphs: list = (list(graphs) if graphs is not None
                              else [None] * len(manifest.entries))

    def __len__(self) -> int:
        return len(self.manifest.entries)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(len(self)))]
        if index < 0:
            index += len(self)
        if not 0 <= index < len(self):
            raise IndexError(index)
        if self._graphs[index] is None:
            entry = self.manifest.entries[index]
            graph = self.cache.load(entry.graph_key)
            if graph is None:
                raise KeyError(
                    f"graph blob {entry.graph_key} for design "
                    f"{entry.design_name!r} missing from cache "
                    f"{self.cache.root!r}; re-run prepare")
            self._graphs[index] = graph
        return self._graphs[index]

    def __iter__(self):
        for i in range(len(self)):
            yield self[i]

    def congestion_rates(self, channel: int = 0) -> np.ndarray:
        """Per-design congestion rates from manifest metadata (no I/O)."""
        if channel == 0:
            return np.array([e.congestion_rate_h
                             for e in self.manifest.entries])
        return np.array([e.congestion_rate_v for e in self.manifest.entries])

    @property
    def names(self) -> list[str]:
        return [e.design_name for e in self.manifest.entries]
