"""Pipeline orchestration: staged per-design preparation, optionally parallel.

The runner ties the pieces together:

* :func:`prepare_design` — one design through place → route → graph with
  per-stage content-addressed caching (and the historical signature as a
  backward-compatible shim; the input design is **no longer mutated** by
  default, pass ``in_place=True`` for the old behaviour),
* :func:`prepare_designs` — a list of designs, sequentially or across a
  ``ProcessPoolExecutor`` (``workers=N``); per-design placement seeds are
  derived deterministically, so any worker count produces bit-identical
  graphs,
* :func:`prepare_workload` — look a workload up in the registry
  (:mod:`repro.pipeline.workloads`), prepare it, persist a
  :class:`~repro.pipeline.cache.SuiteManifest` and hand back either the
  graph list or the lazy :class:`~repro.pipeline.cache.ManifestGraphs`,
* :func:`prepare_suite` — the historical 15-design entry point, now a
  thin wrapper over the above.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

from ..circuit.design import Design
from ..graph.lhgraph import LHGraph
from ..testing.faults import current_injector
from .cache import (ManifestEntry, ManifestGraphs, StageCache, SuiteManifest,
                    default_cache_dir, design_fingerprint)
from .config import PipelineConfig
from .stages import (GRAPH_STAGE, PLACE_STAGE, ROUTE_STAGE,
                     derive_placement_seed, run_graph_stage, run_place_stage,
                     run_route_stage)

__all__ = ["prepare_design", "prepare_designs", "prepare_workload",
           "prepare_suite", "stage_keys_for"]


def _resolve_cache(config: PipelineConfig,
                   cache: StageCache | None) -> StageCache:
    if cache is not None:
        return cache
    return StageCache(default_cache_dir() if config.use_cache else None)


def stage_keys_for(design: Design, config: PipelineConfig,
                   design_fp: str | None = None) -> dict[str, str]:
    """The chained (place, route, graph) cache keys of one design.

    Pure hashing — no stage work.  Exposed so tests and tools can reason
    about cache state without running the pipeline.
    """
    fp = design_fp or design_fingerprint(design)
    seed = derive_placement_seed(config, fp)
    place_key = StageCache.chain_key(
        fp, PLACE_STAGE.config_fingerprint(config), f"seed:{seed}")
    route_key = StageCache.chain_key(
        place_key, ROUTE_STAGE.config_fingerprint(config))
    graph_key = StageCache.chain_key(
        route_key, GRAPH_STAGE.config_fingerprint(config))
    return {"design": fp, "place": place_key, "route": route_key,
            "graph": graph_key, "seed": str(seed)}


@dataclass
class _PreparedDesign:
    """Internal result of one staged preparation."""

    graph: LHGraph
    entry: ManifestEntry
    placed: Design | None = None


#: Poll interval while waiting on another worker's in-progress lease.
_LEASE_POLL_S = 0.2


def _locked_compute(cache: StageCache, key: str, stage: str,
                    design_name: str, compute):
    """Compute a missing stage product under a cross-process lease.

    The caller has already taken a miss for ``key``.  With a persistent
    cache, a lease file under ``<root>/leases/`` marks the computation
    in progress so parallel ``prepare`` invocations (including workers
    on other hosts sharing the cache FS) wait for the product instead
    of duplicating place-and-route work.  A holder that dies mid-stage
    leaves a stale lease (dead pid, or heartbeat past the ttl) that the
    next contender breaks — a crashed worker never wedges the suite.
    """
    faults = current_injector()
    tag = f"{stage}:{design_name}"
    while True:
        lease = cache.try_lease(key)
        if lease is None:
            # Someone else is computing this exact product: wait for
            # their blob (or their death — try_lease steals stale).
            time.sleep(_LEASE_POLL_S)
            obj = cache.load_if_present(key)
            if obj is not None:
                return obj
            continue
        with lease:
            # The previous holder may have finished between our miss
            # and our acquisition; a steal race loser may also land
            # here after the winner stored.
            obj = cache.load_if_present(key)
            if obj is None:
                if faults is not None:
                    faults.barrier("stage.start", tag)
                obj = compute()
                cache.store(key, obj)
                if faults is not None:
                    faults.barrier("stage.stored", tag)
        return obj


def _prepare_one(design: Design, config: PipelineConfig, cache: StageCache,
                 in_place: bool = False,
                 design_fp: str | None = None) -> _PreparedDesign:
    """Run (or load) the three stages for one design."""
    fp = design_fp or design_fingerprint(design)
    keys = stage_keys_for(design, config, design_fp=fp)
    seed = int(keys["seed"])

    def entry_for(graph: LHGraph) -> ManifestEntry:
        return ManifestEntry(
            design_name=design.name, design_fp=fp,
            place_key=keys["place"], route_key=keys["route"],
            graph_key=keys["graph"],
            num_cells=design.num_cells, num_nets=design.num_nets,
            congestion_rate_h=graph.congestion_rate(0),
            congestion_rate_v=graph.congestion_rate(1),
        )

    graph = cache.load(keys["graph"])
    if graph is not None and not in_place:
        return _PreparedDesign(graph=graph, entry=entry_for(graph))

    target = design if in_place else design.copy()
    placement = cache.load(keys["place"])
    if placement is None:
        placed_here = []

        def compute_place():
            result = run_place_stage(target, config, seed=seed)
            placed_here.append(True)
            return result

        placement = _locked_compute(cache, keys["place"], "place",
                                    design.name, compute_place)
        if not placed_here:  # another worker placed it: apply their result
            placement.apply(target)
    else:
        placement.apply(target)

    if graph is not None:  # in_place hit: placement applied, graph cached
        return _PreparedDesign(graph=graph, entry=entry_for(graph),
                               placed=target)

    routing = cache.load(keys["route"])
    if routing is None:
        routing = _locked_compute(cache, keys["route"], "route", design.name,
                                  lambda: run_route_stage(target, config))

    graph = _locked_compute(
        cache, keys["graph"], "graph", design.name,
        lambda: run_graph_stage(target, routing, config))
    return _PreparedDesign(graph=graph, entry=entry_for(graph), placed=target)


def prepare_design(design: Design, config: PipelineConfig | None = None,
                   *, in_place: bool = False,
                   cache: StageCache | None = None) -> LHGraph:
    """Place, route and graph one design; returns a labelled LH-graph.

    The input design is **not** modified: placement happens on an
    internal copy (stage products are cached per design and config under
    the staged cache).  Pass ``in_place=True`` to get the historical
    behaviour where ``design.cell_x/cell_y`` hold the final placement
    afterwards.  Note that ``in_place`` therefore changes the design's
    content fingerprint for *subsequent* calls (the quadratic placer
    warm-starts from current positions, so the mutated design really is
    a different pipeline input); copy mode is the cache-friendly default.
    """
    config = config or PipelineConfig()
    cache = _resolve_cache(config, cache)
    return _prepare_one(design, config, cache, in_place=in_place).graph


# ----------------------------------------------------------------------
# Parallel preparation
# ----------------------------------------------------------------------

def _worker(payload) -> tuple[LHGraph, ManifestEntry]:
    """Top-level worker (must be picklable for ProcessPoolExecutor)."""
    design, config, cache_root, design_fp = payload
    cache = StageCache(cache_root)
    done = _prepare_one(design, config, cache, design_fp=design_fp)
    return done.graph, done.entry


def prepare_designs(designs: list[Design],
                    config: PipelineConfig | None = None, *,
                    workers: int = 1, verbose: bool = False,
                    cache: StageCache | None = None,
                    design_fps: list[str] | None = None
                    ) -> tuple[list[LHGraph], list[ManifestEntry]]:
    """Prepare many designs; returns (graphs, manifest entries) in order.

    ``workers > 1`` fans designs out over a ``ProcessPoolExecutor``.
    Results are collected in submission order and every per-design seed
    is derived deterministically from the design content, so the output
    is bit-identical for any worker count.  Workers share the cache root
    through atomic writes; the parent process aggregates the entries.
    """
    config = config or PipelineConfig()
    cache = _resolve_cache(config, cache)
    fps = design_fps or [None] * len(designs)
    graphs: list[LHGraph] = []
    entries: list[ManifestEntry] = []
    if workers <= 1 or len(designs) <= 1:
        for design, fp in zip(designs, fps):
            if verbose:
                print(f"[pipeline] preparing {design.name} "
                      f"({design.num_cells} cells, {design.num_nets} nets)")
            done = _prepare_one(design, config, cache, design_fp=fp)
            graphs.append(done.graph)
            entries.append(done.entry)
        return graphs, entries

    payloads = [(d, config, cache.root, fp) for d, fp in zip(designs, fps)]
    max_workers = min(workers, len(designs), (os.cpu_count() or 1) * 4)
    with ProcessPoolExecutor(max_workers=max_workers) as pool:
        for design, (graph, entry) in zip(designs,
                                          pool.map(_worker, payloads)):
            if verbose:
                print(f"[pipeline] prepared {design.name} "
                      f"({design.num_cells} cells, {design.num_nets} nets)")
            graphs.append(graph)
            entries.append(entry)
    return graphs, entries


# ----------------------------------------------------------------------
# Workload-level entry points
# ----------------------------------------------------------------------

def prepare_workload(suite: str = "superblue",
                     config: PipelineConfig | None = None, *,
                     workers: int = 1, verbose: bool = False,
                     lazy: bool = False,
                     cache: StageCache | None = None,
                     designs: list[Design] | None = None,
                     **workload_params):
    """Prepare a registered workload end to end; returns its graphs.

    Looks ``suite`` up in the workload registry, prepares every design
    (honouring the per-stage cache and ``workers``), persists the suite
    manifest, and returns either the eager graph list or — with
    ``lazy=True`` and a persistent cache — a
    :class:`~repro.pipeline.cache.ManifestGraphs` view that loads each
    graph on first access.  Callers that already instantiated the
    workload (e.g. to validate user input first) pass ``designs`` to
    skip the second factory call.
    """
    from .workloads import load_workload  # late: registry may be extended
    config = config or PipelineConfig()
    cache = _resolve_cache(config, cache)
    if cache.root is not None:
        # Suite start is the natural sweep point: reap tmp files and
        # leases orphaned by a previous run that died uncleanly.
        cache.gc()
    if designs is None:
        designs = load_workload(suite, config, **workload_params)

    # One fingerprint pass per design, shared by suite key and stages.
    keys = [stage_keys_for(d, config) for d in designs]
    suite_key = StageCache.chain_key(
        f"suite:{suite}", config.fingerprint(), *[k["graph"] for k in keys])

    manifest = cache.load_manifest(suite_key)
    if manifest is None or not manifest.is_complete(cache):
        graphs, entries = prepare_designs(
            designs, config, workers=workers, verbose=verbose, cache=cache,
            design_fps=[k["design"] for k in keys])
        manifest = SuiteManifest(suite_key=suite_key, suite_name=suite,
                                 config_fp=config.fingerprint(),
                                 entries=entries)
        cache.store_manifest(manifest)
        if not lazy or cache.root is None:
            return graphs
        # Seed the lazy view with what we just computed — no re-loads.
        return ManifestGraphs(manifest, cache, graphs=graphs)
    if lazy:
        return ManifestGraphs(manifest, cache)
    return list(ManifestGraphs(manifest, cache))


def prepare_suite(config: PipelineConfig | None = None,
                  verbose: bool = False, *, workers: int = 1,
                  cache: StageCache | None = None) -> list[LHGraph]:
    """Prepare the full 15-design synthetic superblue suite, with caching.

    Historical entry point, kept signature-compatible; the heavy lifting
    now goes through the staged per-design cache, so re-running with only
    a router change re-routes without re-placing, and an interrupted run
    resumes at the first unfinished stage.
    """
    from .workloads import load_workload  # one resolution site: registry
    config = config or PipelineConfig()
    cache = _resolve_cache(config, cache)
    designs = load_workload("superblue", config)
    graphs, _ = prepare_designs(designs, config, workers=workers,
                                verbose=verbose, cache=cache)
    return graphs
