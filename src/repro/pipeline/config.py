"""Pipeline configuration and canonical fingerprinting.

Cache keys must be *stable across process restarts* and *sensitive to
every knob that changes the on-disk products*.  The old implementation
hashed ``repr(sorted(asdict(config).items()))``, which is fragile: dict
ordering of nested dataclasses is invisible to the top-level sort, float
``repr`` is version-dependent, and there was no way to invalidate caches
when the pickle layout itself changed.

This module provides

* :data:`SCHEMA_VERSION` — bump when the cached on-disk format changes;
  every fingerprint mixes it in, so stale caches self-invalidate,
* :func:`canonical_payload` — recursive conversion of nested dataclasses
  (and dicts/sequences/numpy scalars) into a JSON-serialisable tree with
  sorted keys and explicit class tags,
* :func:`fingerprint_of` — SHA-256 of the canonical JSON encoding,
* :class:`PipelineConfig` — all knobs of the data-preparation pipeline.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field

import numpy as np

from ..placement.placer import PlacementConfig
from ..routing.router import RouterConfig

__all__ = ["SCHEMA_VERSION", "PipelineConfig", "canonical_payload",
           "fingerprint_of"]

#: Version of the cached on-disk format.  Bump whenever the pickle layout
#: of any stage product changes; every stage key includes it, so old cache
#: entries simply stop matching instead of deserialising garbage.
SCHEMA_VERSION = 2


def canonical_payload(obj):
    """Convert ``obj`` into a canonical JSON-serialisable tree.

    Dataclasses are tagged with their class name and recursed field by
    field (``dataclasses.asdict`` would lose the type identity of nested
    configs); dict keys are stringified and sorted by the JSON encoder;
    numpy scalars and arrays become plain Python values.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {"__dataclass__": type(obj).__name__,
                **{f.name: canonical_payload(getattr(obj, f.name))
                   for f in dataclasses.fields(obj)}}
    if isinstance(obj, dict):
        return {str(k): canonical_payload(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [canonical_payload(v) for v in obj]
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if isinstance(obj, (np.bool_,)):
        return bool(obj)
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    raise TypeError(f"cannot canonicalise {type(obj).__name__!r} for "
                    f"fingerprinting: {obj!r}")


def fingerprint_of(obj, *, digest_size: int = 16) -> str:
    """SHA-256 hex digest of the canonical JSON encoding of ``obj``.

    The schema version is always mixed in, so bumping
    :data:`SCHEMA_VERSION` invalidates every existing cache entry.
    """
    payload = json.dumps({"schema": SCHEMA_VERSION,
                          "payload": canonical_payload(obj)},
                         sort_keys=True, separators=(",", ":"),
                         allow_nan=True)
    return hashlib.sha256(payload.encode()).hexdigest()[:2 * digest_size]


@dataclass
class PipelineConfig:
    """All knobs of the data-preparation pipeline.

    ``max_gnet_fraction`` is the large-G-net filter (paper: 0.25 % at
    ~350 K G-cells; 5 % plays the same tail-trimming role at our default
    32 × 32 grids).

    ``per_design_seeds`` derives an independent deterministic placement
    seed per design from ``base_seed`` and the design content, so
    parallel workers never share RNG state and ``--workers N`` is
    bit-identical to a sequential run.  Off by default to preserve the
    historical suite (every design placed with ``placement.seed``), which
    is equally deterministic.
    """

    scale: float = 1.0
    base_seed: int = 2022
    grid_nx: int = 32
    grid_ny: int = 32
    max_gnet_fraction: float = 0.05
    placement: PlacementConfig = field(default_factory=PlacementConfig)
    router: RouterConfig = field(default_factory=RouterConfig)
    use_cache: bool = True
    per_design_seeds: bool = False

    def fingerprint(self) -> str:
        """Stable hash of every parameter (cache key component).

        Canonical-JSON based: recurses into the nested
        :class:`PlacementConfig` / :class:`RouterConfig` dataclasses and
        includes :data:`SCHEMA_VERSION`, so the key survives process
        restarts and changes when the on-disk format does.
        """
        return fingerprint_of(self)
