"""Workload registry: named design suites the pipeline can prepare.

The old pipeline hardcoded one call to
:func:`repro.circuit.generator.superblue_suite`; every data-touching
command could only ever see the 15 synthetic superblue-like designs.
This registry decouples *what to prepare* from *how to prepare it*:

* ``superblue``   — the paper's 15-design synthetic suite (Table 1),
* ``macro-heavy`` — macro-dominated blockage-congestion scenarios,
* ``hotspot``     — clustered congestion-hotspot scenarios,
* ``bookshelf``   — every ``.aux`` bundle under a directory, parsed by
  :mod:`repro.circuit.bookshelf` (``root=...`` parameter / CLI
  ``--bookshelf-dir``), so the real contest benchmarks run through the
  identical staged pipeline.

Register new workloads with :func:`register_workload`; they become
selectable immediately via ``repro.cli prepare --suite NAME``.
"""

from __future__ import annotations

import glob
import os
from dataclasses import dataclass
from typing import Callable

from ..circuit.bookshelf import read_design
from ..circuit.design import Design
from ..circuit.generator import hotspot_suite, macro_heavy_suite
from .config import PipelineConfig

__all__ = ["Workload", "register_workload", "get_workload",
           "list_workloads", "load_workload"]


@dataclass(frozen=True)
class Workload:
    """A named design-suite factory.

    ``factory(config, **params) -> list[Design]``; ``params`` are
    workload-specific keyword arguments forwarded from the caller (e.g.
    the bookshelf loader's ``root``).
    """

    name: str
    description: str
    factory: Callable[..., list[Design]]


_REGISTRY: dict[str, Workload] = {}


def register_workload(name: str, description: str = ""):
    """Decorator: register ``factory`` under ``name`` (last wins)."""
    def wrap(factory: Callable[..., list[Design]]):
        _REGISTRY[name] = Workload(name=name, description=description,
                                   factory=factory)
        return factory
    return wrap


def get_workload(name: str) -> Workload:
    """Look a workload up by name; raises ``KeyError`` with suggestions."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "<none>"
        raise KeyError(f"unknown workload {name!r}; registered: {known}") \
            from None


def list_workloads() -> list[Workload]:
    """All registered workloads, sorted by name."""
    return [_REGISTRY[k] for k in sorted(_REGISTRY)]


def load_workload(name: str, config: PipelineConfig | None = None,
                  **params) -> list[Design]:
    """Instantiate the designs of workload ``name`` for ``config``."""
    config = config or PipelineConfig()
    designs = get_workload(name).factory(config, **params)
    if not designs:
        raise ValueError(f"workload {name!r} produced no designs "
                         f"(params: {params!r})")
    return designs


# ----------------------------------------------------------------------
# Built-in workloads
# ----------------------------------------------------------------------

@register_workload("superblue",
                   "15 synthetic superblue-like designs (paper Table 1)")
def _superblue(config: PipelineConfig) -> list[Design]:
    # Resolved through the package attribute so test doubles patched onto
    # ``repro.pipeline.superblue_suite`` keep working.
    import repro.pipeline as _pkg
    return _pkg.superblue_suite(scale=config.scale,
                                base_seed=config.base_seed)


@register_workload("macro-heavy",
                   "macro-dominated blockage-congestion scenarios")
def _macro_heavy(config: PipelineConfig, count: int = 8) -> list[Design]:
    return macro_heavy_suite(scale=config.scale, base_seed=config.base_seed,
                             count=count)


@register_workload("hotspot",
                   "clustered congestion-hotspot scenarios")
def _hotspot(config: PipelineConfig, count: int = 8) -> list[Design]:
    return hotspot_suite(scale=config.scale, base_seed=config.base_seed,
                         count=count)


@register_workload("bookshelf",
                   "every .aux Bookshelf bundle under a directory (root=DIR)")
def _bookshelf(config: PipelineConfig, root: str | None = None) -> list[Design]:
    if not root:
        raise ValueError("the bookshelf workload needs a directory: pass "
                         "root=DIR (CLI: --bookshelf-dir DIR)")
    if not os.path.isdir(root):
        raise ValueError(f"bookshelf root {root!r} is not a directory")
    aux_files = sorted(glob.glob(os.path.join(root, "**", "*.aux"),
                                 recursive=True))
    if not aux_files:
        raise ValueError(f"no .aux files found under {root!r}")
    return [read_design(path) for path in aux_files]
