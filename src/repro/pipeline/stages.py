"""The three pipeline stages: place → route → graph.

Each stage is a pure function of (design, upstream product, config slice)
with an explicit, picklable **product** dataclass, a stage ``version``
(bump to invalidate only that stage's cache entries) and a
``config_fingerprint`` covering *only the knobs the stage reads*.  That
scoping is what makes the per-stage cache useful: changing
:class:`~repro.routing.router.RouterConfig` re-routes and re-graphs but
never re-places, and changing ``max_gnet_fraction`` rebuilds graphs from
the cached routing grids in milliseconds.

Stage invocations are counted in :data:`STAGE_CALLS` (a module-level
counter keyed by stage name); tests use it to prove that a warm cache
does zero placement/routing work.
"""

from __future__ import annotations

import hashlib
from collections import Counter
from dataclasses import asdict, dataclass, field

import numpy as np

from ..circuit.design import Design
from ..graph.lhgraph import LHGraph, build_lhgraph
from ..placement.placer import PlacementConfig, place
from ..routing.congestion import CongestionMaps, extract_maps
from ..routing.grid import RoutingGrid
from ..routing.router import GlobalRouter, RouterConfig
from .config import PipelineConfig, fingerprint_of

__all__ = ["STAGE_CALLS", "reset_stage_calls", "derive_placement_seed",
           "PlacementProduct", "RoutingProduct",
           "run_place_stage", "run_route_stage", "run_graph_stage",
           "PLACE_STAGE", "ROUTE_STAGE", "GRAPH_STAGE", "StageSpec"]

#: Number of times each stage actually executed (cache hits don't count).
STAGE_CALLS: Counter = Counter()


def reset_stage_calls() -> None:
    """Zero the stage-execution counters (test helper)."""
    STAGE_CALLS.clear()


def derive_placement_seed(config: PipelineConfig, design_fp: str) -> int:
    """Deterministic per-design placement seed.

    Mixes ``base_seed`` with the design content fingerprint, so the seed
    is stable across runs, process restarts and worker counts, yet
    independent between designs.  Only used when
    ``config.per_design_seeds`` is set; otherwise every design uses
    ``config.placement.seed`` (the historical behaviour).
    """
    if not config.per_design_seeds:
        return config.placement.seed
    payload = f"{config.base_seed}:{design_fp}".encode()
    return int.from_bytes(hashlib.sha256(payload).digest()[:4], "big") % (2 ** 31)


# ----------------------------------------------------------------------
# Stage products
# ----------------------------------------------------------------------

@dataclass
class PlacementProduct:
    """Output of the placement stage: final cell coordinates + diagnostics."""

    cell_x: np.ndarray
    cell_y: np.ndarray
    hpwl_initial: float
    hpwl_global: float
    hpwl_final: float
    seed: int

    def apply(self, design: Design) -> Design:
        """Write the placed coordinates into ``design`` (returned)."""
        design.cell_x = self.cell_x.copy()
        design.cell_y = self.cell_y.copy()
        return design


@dataclass
class RoutingProduct:
    """Output of the routing stage: grid usage/capacity + statistics.

    Stores the raw edge arrays rather than the :class:`RoutingGrid`
    object so the pickle stays small, schema-stable and design-free.
    """

    nx: int
    ny: int
    h_usage: np.ndarray
    v_usage: np.ndarray
    h_capacity: np.ndarray
    v_capacity: np.ndarray
    total_overflow: float
    num_segments: int
    rerouted_segments: int = 0
    overflow_history: list = field(default_factory=list)

    def rebuild_grid(self, design: Design) -> RoutingGrid:
        """Materialise a :class:`RoutingGrid` carrying these arrays."""
        grid = RoutingGrid(design, nx=self.nx, ny=self.ny)
        grid.h_usage = self.h_usage.copy()
        grid.v_usage = self.v_usage.copy()
        grid.h_capacity = self.h_capacity.copy()
        grid.v_capacity = self.v_capacity.copy()
        return grid

    def maps(self, design: Design) -> CongestionMaps:
        """The per-G-cell demand/congestion label maps."""
        return extract_maps(self.rebuild_grid(design))


# ----------------------------------------------------------------------
# Stage runners
# ----------------------------------------------------------------------

def run_place_stage(design: Design, config: PipelineConfig,
                    seed: int | None = None) -> PlacementProduct:
    """Place ``design`` **in place** and return the placement product.

    Callers that must preserve the input design pass a copy (the runner
    does; see :func:`repro.pipeline.prepare_design`).
    """
    STAGE_CALLS["place"] += 1
    placement_cfg = config.placement
    if seed is not None and seed != placement_cfg.seed:
        placement_cfg = PlacementConfig(**{**asdict(placement_cfg),
                                           "seed": seed})
    result = place(design, placement_cfg)
    return PlacementProduct(
        cell_x=design.cell_x.copy(), cell_y=design.cell_y.copy(),
        hpwl_initial=result.hpwl_initial, hpwl_global=result.hpwl_global,
        hpwl_final=result.hpwl_final,
        seed=placement_cfg.seed,
    )


def run_route_stage(design: Design, config: PipelineConfig) -> RoutingProduct:
    """Globally route the (placed) ``design``; returns the grid product."""
    STAGE_CALLS["route"] += 1
    router_cfg = RouterConfig(**{**asdict(config.router),
                                 "nx": config.grid_nx, "ny": config.grid_ny})
    result = GlobalRouter(design, router_cfg).run()
    grid = result.grid
    return RoutingProduct(
        nx=grid.nx, ny=grid.ny,
        h_usage=grid.h_usage, v_usage=grid.v_usage,
        h_capacity=grid.h_capacity, v_capacity=grid.v_capacity,
        total_overflow=result.total_overflow,
        num_segments=result.num_segments,
        rerouted_segments=result.rerouted_segments,
        overflow_history=list(result.overflow_history),
    )


def run_graph_stage(design: Design, routing: RoutingProduct,
                    config: PipelineConfig) -> LHGraph:
    """Build the labelled LH-graph from a placed design + routing product."""
    STAGE_CALLS["graph"] += 1
    grid = routing.rebuild_grid(design)
    maps = extract_maps(grid)
    graph = build_lhgraph(design, grid, maps,
                          max_gnet_fraction=config.max_gnet_fraction)
    graph.metadata.update({
        "total_overflow": routing.total_overflow,
        "num_segments": routing.num_segments,
        "num_cells": design.num_cells,
        "num_nets": design.num_nets,
        "num_pins": design.num_pins,
    })
    return graph


# ----------------------------------------------------------------------
# Stage specs (name, version, config scoping) for cache keying
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class StageSpec:
    """Identity of a stage for cache keying.

    ``version`` is bumped when the stage's *algorithm or product layout*
    changes; ``config_slice`` extracts exactly the config subset the
    stage reads, so unrelated knob changes never invalidate its entries.
    """

    name: str
    version: int

    def config_fingerprint(self, config: PipelineConfig) -> str:
        return fingerprint_of({"stage": self.name, "v": self.version,
                               "cfg": self.config_slice(config)})

    def config_slice(self, config: PipelineConfig):
        raise NotImplementedError


class _PlaceSpec(StageSpec):
    def config_slice(self, config: PipelineConfig):
        return {"placement": config.placement}


class _RouteSpec(StageSpec):
    def config_slice(self, config: PipelineConfig):
        return {"router": config.router,
                "grid_nx": config.grid_nx, "grid_ny": config.grid_ny}


class _GraphSpec(StageSpec):
    def config_slice(self, config: PipelineConfig):
        return {"max_gnet_fraction": config.max_gnet_fraction}


PLACE_STAGE = _PlaceSpec("place", version=1)
ROUTE_STAGE = _RouteSpec("route", version=1)
GRAPH_STAGE = _GraphSpec("graph", version=1)
