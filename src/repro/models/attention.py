"""Graph attention (GAT) machinery on edge lists.

Built entirely from the existing autograd primitives: differentiable
gather (``Tensor.__getitem__``) plus sparse scatter-sum
(:func:`~repro.nn.sparse.spmm` against a one-hot destination matrix).
Used by the CongestionNet-style baseline (Kirby et al., VLSI-SoC 2019)
referenced in the paper's related work (§2.2).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..nn import functional as F
from ..nn.layers import Linear, Module, Parameter
from ..nn import init as init_mod
from ..nn.sparse import SparseMatrix, spmm
from ..nn.tensor import Tensor

__all__ = ["EdgeList", "segment_softmax", "GATLayer"]


class EdgeList:
    """A directed edge list with a cached scatter operator.

    ``src[k] → dst[k]``; ``scatter`` is the (num_nodes × num_edges)
    one-hot matrix such that ``scatter @ edge_values`` sums edge values
    onto destination nodes.
    """

    def __init__(self, src: np.ndarray, dst: np.ndarray, num_nodes: int):
        self.src = np.asarray(src, dtype=np.int64)
        self.dst = np.asarray(dst, dtype=np.int64)
        if len(self.src) != len(self.dst):
            raise ValueError("src/dst length mismatch")
        if len(self.src) and (self.src.min() < 0
                              or max(self.src.max(), self.dst.max())
                              >= num_nodes):
            raise ValueError("edge endpoint out of range")
        self.num_nodes = num_nodes
        ones = np.ones(len(self.dst))
        self.scatter = SparseMatrix(sp.coo_matrix(
            (ones, (self.dst, np.arange(len(self.dst)))),
            shape=(num_nodes, len(self.dst))).tocsr())

    @property
    def num_edges(self) -> int:
        """Number of directed edges."""
        return len(self.src)

    @staticmethod
    def with_self_loops(src, dst, num_nodes: int) -> "EdgeList":
        """Edge list augmented with one self-loop per node (GAT convention)."""
        loop = np.arange(num_nodes, dtype=np.int64)
        return EdgeList(np.concatenate([np.asarray(src, dtype=np.int64), loop]),
                        np.concatenate([np.asarray(dst, dtype=np.int64), loop]),
                        num_nodes)


def segment_softmax(scores: Tensor, edges: EdgeList) -> Tensor:
    """Softmax of per-edge scores, normalised per destination node.

    Numerically stabilised by subtracting each destination's max score
    (a constant w.r.t. the graph, so it does not perturb gradients).
    """
    smax = np.full(edges.num_nodes, -np.inf)
    np.maximum.at(smax, edges.dst, scores.data.reshape(-1))
    smax[~np.isfinite(smax)] = 0.0
    shifted = scores - Tensor(smax[edges.dst].reshape(scores.shape))
    ex = shifted.exp()
    denom = spmm(edges.scatter, ex.reshape(-1, 1))     # (num_nodes, 1)
    denom_per_edge = denom[edges.dst]                  # differentiable gather
    return ex / (denom_per_edge.reshape(ex.shape) + 1e-16)


class GATLayer(Module):
    """Single-head graph attention layer (Veličković et al., 2018).

    ``h'_i = act( Σ_j α_ij · W h_j )`` with
    ``α_ij = softmax_j( leakyrelu(a_s · W h_j + a_d · W h_i) )`` over the
    in-neighbours *j* of *i* (self-loops included by the caller).
    """

    def __init__(self, in_dim: int, out_dim: int, rng: np.random.Generator,
                 negative_slope: float = 0.2, activation: str = "relu"):
        super().__init__()
        self.w = Linear(in_dim, out_dim, rng, bias=False)
        self.attn_src = Parameter(init_mod.xavier_uniform((out_dim, 1), rng))
        self.attn_dst = Parameter(init_mod.xavier_uniform((out_dim, 1), rng))
        self.bias = Parameter(np.zeros(out_dim))
        self.negative_slope = negative_slope
        self.activation = activation

    def forward(self, x: Tensor, edges: EdgeList) -> Tensor:
        h = self.w(x)                                   # (N, out)
        score_src = (h @ self.attn_src)[edges.src]      # (E, 1)
        score_dst = (h @ self.attn_dst)[edges.dst]      # (E, 1)
        scores = (score_src + score_dst).leaky_relu(self.negative_slope)
        alpha = segment_softmax(scores.reshape(-1), edges)   # (E,)
        messages = h[edges.src] * alpha.reshape(-1, 1)       # (E, out)
        out = spmm(edges.scatter, messages) + self.bias
        if self.activation == "relu":
            out = F.relu(out)
        elif self.activation == "identity":
            pass
        else:
            raise ValueError(f"unsupported activation {self.activation!r}")
        return out
