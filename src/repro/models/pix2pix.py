"""Pix2Pix baseline (Isola et al., 2017): conditional GAN image translation.

Generator: the :class:`~repro.models.unet.UNet` mapping crafted-feature
images to congestion probability maps.  Discriminator: a PatchGAN judging
(input, map) pairs locally.  Objective: non-saturating GAN loss plus an
L1 (here: γ-weighted BCE, matching how the paper applies the label-balance
factor to all baselines) reconstruction term.

The GAN training loop lives in :mod:`repro.train.trainer`.
"""

from __future__ import annotations

import numpy as np

from ..nn import functional as F
from ..nn.conv import BatchNorm2d, Conv2d
from ..nn.layers import Module
from ..nn.tensor import Tensor
from .unet import UNet

__all__ = ["PatchDiscriminator", "Pix2Pix"]


class PatchDiscriminator(Module):
    """PatchGAN discriminator: conditions on the input feature image.

    Three stride-2 conv stages then a 1-channel logit map; each output
    "patch" classifies a local receptive field as real/fake.
    """

    def __init__(self, in_channels: int, rng: np.random.Generator,
                 base_width: int = 16):
        super().__init__()
        w = base_width
        self.conv1 = Conv2d(in_channels, w, 4, rng, stride=2, padding=1)
        self.conv2 = Conv2d(w, 2 * w, 4, rng, stride=2, padding=1)
        self.bn2 = BatchNorm2d(2 * w)
        self.conv3 = Conv2d(2 * w, 1, 4, rng, stride=1, padding=1)

    def forward(self, x: Tensor) -> Tensor:
        """(N, C, H, W) → (N, 1, H/4-ish, W/4-ish) patch logits."""
        x = F.leaky_relu(self.conv1(x), 0.2)
        x = F.leaky_relu(self.bn2(self.conv2(x)), 0.2)
        return self.conv3(x)


class Pix2Pix(Module):
    """Generator + discriminator pair for conditional congestion synthesis."""

    def __init__(self, in_channels: int = 4, out_channels: int = 1,
                 base_width: int = 12, rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.base_width = base_width
        self.generator = UNet(in_channels, out_channels,
                              base_width=base_width, rng=rng,
                              final_sigmoid=True)
        self.discriminator = PatchDiscriminator(in_channels + out_channels, rng)

    def forward(self, x: Tensor) -> Tensor:
        """Generate a congestion probability map from features."""
        return self.generator(x)

    def discriminate(self, x: Tensor, y: Tensor) -> Tensor:
        """Patch logits for a (features, map) pair."""
        return self.discriminator(F.concat([x, y], axis=1))
