"""U-Net baseline (Ronneberger et al., 2015) for congestion-map prediction.

The paper compares against "the top PyTorch implementation" of U-Net on
the 4-channel crafted-feature image, predicting the congestion mask
pixel-wise.  This is the same encoder-decoder-with-skips topology scaled
to CPU grids: two pooling stages and a width multiplier instead of the
256×256 crops the authors used on GPU.
"""

from __future__ import annotations

import numpy as np

from ..nn import functional as F
from ..nn.conv import BatchNorm2d, Conv2d, ConvTranspose2d, MaxPool2d
from ..nn.layers import Module
from ..nn.tensor import Tensor

__all__ = ["DoubleConv", "UNet"]


class DoubleConv(Module):
    """(Conv3×3 → BN → ReLU) × 2, the U-Net's basic stage."""

    def __init__(self, in_ch: int, out_ch: int, rng: np.random.Generator):
        super().__init__()
        self.conv1 = Conv2d(in_ch, out_ch, 3, rng, padding=1)
        self.bn1 = BatchNorm2d(out_ch)
        self.conv2 = Conv2d(out_ch, out_ch, 3, rng, padding=1)
        self.bn2 = BatchNorm2d(out_ch)

    def forward(self, x: Tensor) -> Tensor:
        x = F.relu(self.bn1(self.conv1(x)))
        return F.relu(self.bn2(self.conv2(x)))


class UNet(Module):
    """Compact U-Net: 2 down / 2 up stages with skip connections.

    Parameters
    ----------
    in_channels:
        Input feature channels (4 crafted G-cell features).
    out_channels:
        1 (uni-channel congestion) or 2 (duo-channel).
    base_width:
        Channel count of the first stage; doubles per depth.
    final_sigmoid:
        Apply sigmoid to the output (congestion probability).  Pix2Pix
        reuses this class with ``final_sigmoid=True`` as its generator.
    """

    def __init__(self, in_channels: int = 4, out_channels: int = 1,
                 base_width: int = 12, rng: np.random.Generator | None = None,
                 final_sigmoid: bool = True):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.base_width = base_width
        w = base_width
        self.enc1 = DoubleConv(in_channels, w, rng)
        self.pool1 = MaxPool2d(2)
        self.enc2 = DoubleConv(w, 2 * w, rng)
        self.pool2 = MaxPool2d(2)
        self.bottleneck = DoubleConv(2 * w, 4 * w, rng)
        self.up2 = ConvTranspose2d(4 * w, 2 * w, 2, rng, stride=2)
        self.dec2 = DoubleConv(4 * w, 2 * w, rng)
        self.up1 = ConvTranspose2d(2 * w, w, 2, rng, stride=2)
        self.dec1 = DoubleConv(2 * w, w, rng)
        self.out_conv = Conv2d(w, out_channels, 1, rng)
        self.final_sigmoid = final_sigmoid

    def forward(self, x: Tensor) -> Tensor:
        """(N, C, H, W) → (N, out_channels, H, W); H and W must be ÷4."""
        e1 = self.enc1(x)
        e2 = self.enc2(self.pool1(e1))
        b = self.bottleneck(self.pool2(e2))
        d2 = self.dec2(F.concat([self.up2(b), e2], axis=1))
        d1 = self.dec1(F.concat([self.up1(d2), e1], axis=1))
        out = self.out_conv(d1)
        if self.final_sigmoid:
            out = F.sigmoid(out)
        return out
