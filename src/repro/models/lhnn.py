"""The LHNN architecture (paper §4, Figure 3).

Encoding phase: FeatureGen → 2 × HyperMP → 1 × LatticeMP produce G-cell
embeddings that mix topological and geometric context.  Joint learning
phase: two branches, each one more LatticeMP block and a linear head —

* **classification branch**: per-G-cell congestion probability (sigmoid),
* **regression branch**: per-G-cell routing demand.

Configuration mirrors §5.1: hidden width 32, 2 HyperMP layers, 1 encoder
LatticeMP plus 2 joint-phase LatticeMP blocks, uni- (H only) or duo-
channel (H and V) output.

Ablation switches (Table 3) are first-class constructor arguments:

* ``use_featuregen_edges`` / ``use_hypermp_edges`` / ``use_latticemp_edges``
  keep every layer but zero the corresponding relation messages,
* ``use_jointing=False`` removes the regression branch entirely.

(The "no G-cell feature" ablation row zeroes input channels and lives in
the dataset, not the model.)
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.lhgraph import LHGraph
from ..nn import functional as F
from ..nn.layers import Linear, Module
from ..nn.tensor import Tensor
from .blocks import FeatureGenBlock, HyperMPBlock, LatticeMPBlock

__all__ = ["LHNNConfig", "LHNNOutput", "LHNN"]


@dataclass
class LHNNConfig:
    """Hyper-parameters of LHNN (defaults = paper §5.1)."""

    cell_in: int = 4
    net_in: int = 4
    hidden: int = 32
    num_hypermp: int = 2
    num_latticemp_encoder: int = 1
    num_latticemp_joint: int = 1     # per branch; 2 branches = paper's "2 blocks"
    channels: int = 1                # 1 = uni-channel (H), 2 = duo-channel
    use_featuregen_edges: bool = True
    use_hypermp_edges: bool = True
    use_latticemp_edges: bool = True
    use_jointing: bool = True


@dataclass
class LHNNOutput:
    """Model outputs: probabilities and (optionally) demand predictions."""

    cls_prob: Tensor                 # (Nc, channels) congestion probability
    reg_pred: Tensor | None          # (Nc, channels) demand, None w/o jointing


class LHNN(Module):
    """Lattice Hypergraph Neural Network."""

    def __init__(self, config: LHNNConfig, rng: np.random.Generator):
        super().__init__()
        self.config = config
        h = config.hidden
        self.featuregen = FeatureGenBlock(
            config.cell_in, config.net_in, h, rng,
            edges_enabled=config.use_featuregen_edges)
        self.hypermp = [HyperMPBlock(h, rng,
                                     edges_enabled=config.use_hypermp_edges)
                        for _ in range(config.num_hypermp)]
        self.latticemp_enc = [LatticeMPBlock(h, rng,
                                             edges_enabled=config.use_latticemp_edges)
                              for _ in range(config.num_latticemp_encoder)]
        # Joint learning phase: one LatticeMP stack per branch.
        self.latticemp_cls = [LatticeMPBlock(h, rng,
                                             edges_enabled=config.use_latticemp_edges)
                              for _ in range(config.num_latticemp_joint)]
        self.head_cls = Linear(h, config.channels, rng)
        if config.use_jointing:
            self.latticemp_reg = [LatticeMPBlock(h, rng,
                                                 edges_enabled=config.use_latticemp_edges)
                                  for _ in range(config.num_latticemp_joint)]
            self.head_reg = Linear(h, config.channels, rng)
        else:
            self.latticemp_reg = []
            self.head_reg = None

    # ------------------------------------------------------------------
    def forward(self, graph: LHGraph, operators: dict | None = None,
                vc: Tensor | None = None,
                vn: Tensor | None = None) -> LHNNOutput:
        """Run LHNN on an :class:`LHGraph`.

        Parameters
        ----------
        graph:
            The LH-graph (structure; features default to its raw arrays).
        operators:
            Optional override dict with keys ``op_nc_sum``, ``op_cn_mean``,
            ``op_nc_mean``, ``op_cc_mean`` — used for neighbour-sampled
            mini-batch training; defaults to the graph's full operators.
            FeatureGen uses the magnitude-stable scaled-sum operator when
            the graph provides one.
        vc, vn:
            Optional input-feature overrides (standardised features from
            the dataset, or ablated features).
        """
        ops = operators or {}
        default_sum = graph.op_nc_scaled_sum or graph.op_nc_sum
        op_nc_sum = ops.get("op_nc_sum", default_sum)
        op_cn_mean = ops.get("op_cn_mean", graph.op_cn_mean)
        op_nc_mean = ops.get("op_nc_mean", graph.op_nc_mean)
        op_cc_mean = ops.get("op_cc_mean", graph.op_cc_mean)

        vc0 = vc if vc is not None else Tensor(graph.vc)
        vn0 = vn if vn is not None else Tensor(graph.vn)

        # --- encoding phase ------------------------------------------
        vc1, vn1 = self.featuregen(vc0, vn0, op_nc_sum)
        vc, vn = vc1, vn1
        for block in self.hypermp:
            vc, vn = block(vc, vn, vc1, vn1, op_cn_mean, op_nc_mean)
        for block in self.latticemp_enc:
            vc = block(vc, op_cc_mean)

        # --- joint learning phase -------------------------------------
        vc_cls = vc
        for block in self.latticemp_cls:
            vc_cls = block(vc_cls, op_cc_mean)
        cls_prob = F.sigmoid(self.head_cls(vc_cls))

        reg_pred = None
        if self.config.use_jointing:
            vc_reg = vc
            for block in self.latticemp_reg:
                vc_reg = block(vc_reg, op_cc_mean)
            reg_pred = self.head_reg(vc_reg)
        return LHNNOutput(cls_prob=cls_prob, reg_pred=reg_pred)
