"""LHNN building blocks (paper §4, Figure 3).

Three block types compose the architecture:

* :class:`FeatureGenBlock` — Eq. 1–2: residual MLPs transform raw G-cell /
  G-net features; G-net features are sum-aggregated onto G-cells through
  ``G_nc = H`` and fused by a linear layer.  This is the learnable analogue
  of crafted-feature generation (§3.2).
* :class:`HyperMPBlock` — topological message passing: G-cell → G-net via
  ``G_cn = B⁻¹Hᵀ`` then G-net → G-cell via the mean-normalised ``D⁻¹H``,
  each half fusing with the FeatureGen embedding and adding a residual
  path from the previous layer.
* :class:`LatticeMPBlock` — geometric message passing over ``Ā = P⁻¹A``
  with a skip connection.

Each block takes an ``edges_enabled`` flag implementing the Table-3
ablations: when False the aggregation result is replaced by zeros while
every linear/residual layer is kept, "to keep the depth and parameter
number of the model approximately the same" (paper §5.3).
"""

from __future__ import annotations

import numpy as np

from ..nn import functional as F
from ..nn.layers import Linear, Module, ResidualMLP
from ..nn.sparse import SparseMatrix, spmm
from ..nn.tensor import Tensor

__all__ = ["FeatureGenBlock", "HyperMPBlock", "LatticeMPBlock"]


def _aggregate(op: SparseMatrix, x: Tensor, enabled: bool) -> Tensor:
    """Relation aggregation, or a zero message when edges are ablated."""
    if enabled:
        return spmm(op, x)
    return Tensor(np.zeros((op.shape[0], x.shape[-1])))


class FeatureGenBlock(Module):
    """Feature generation block (Eq. 1–2).

    ``V_c^1 = φ_c( f_c(V_c^0) ∥ G_nc f_n(V_n^0) )``,
    ``V_n^1 = φ_n( f_n(V_n^0) )``.
    """

    def __init__(self, cell_in: int, net_in: int, hidden: int,
                 rng: np.random.Generator, edges_enabled: bool = True):
        super().__init__()
        self.f_c = ResidualMLP(cell_in, hidden, hidden, rng)
        self.f_n = ResidualMLP(net_in, hidden, hidden, rng)
        self.phi_c = Linear(2 * hidden, hidden, rng)
        self.phi_n = Linear(hidden, hidden, rng)
        self.edges_enabled = edges_enabled

    def forward(self, vc0: Tensor, vn0: Tensor,
                op_nc_sum: SparseMatrix) -> tuple[Tensor, Tensor]:
        """Returns the initial embeddings ``(V_c^1, V_n^1)``."""
        fc = self.f_c(vc0)
        fn = self.f_n(vn0)
        message = _aggregate(op_nc_sum, fn, self.edges_enabled)
        vc1 = F.relu(self.phi_c(F.concat([fc, message], axis=-1)))
        vn1 = F.relu(self.phi_n(fn))
        return vc1, vn1


class HyperMPBlock(Module):
    """Hypergraph message-passing block (§4.2).

    Alternates the two hyper relations:

    1. *G-cell → G-net*: ``V_n^L = Lin( G_cn Res(V_c^{L-1}) ∥ V_n^1 )
       + Res(V_n^{L-1})``
    2. *G-net → G-cell* (symmetric): ``V_c^L = Lin( G_nc Res(V_n^L) ∥
       V_c^1 ) + Res(V_c^{L-1})``
    """

    def __init__(self, hidden: int, rng: np.random.Generator,
                 edges_enabled: bool = True):
        super().__init__()
        # G-cell → G-net half
        self.res_c_src = ResidualMLP(hidden, hidden, hidden, rng)
        self.res_n_skip = ResidualMLP(hidden, hidden, hidden, rng)
        self.fuse_n = Linear(2 * hidden, hidden, rng)
        # G-net → G-cell half
        self.res_n_src = ResidualMLP(hidden, hidden, hidden, rng)
        self.res_c_skip = ResidualMLP(hidden, hidden, hidden, rng)
        self.fuse_c = Linear(2 * hidden, hidden, rng)
        self.edges_enabled = edges_enabled

    def forward(self, vc_prev: Tensor, vn_prev: Tensor,
                vc1: Tensor, vn1: Tensor,
                op_cn_mean: SparseMatrix,
                op_nc_mean: SparseMatrix) -> tuple[Tensor, Tensor]:
        """Returns updated ``(V_c^L, V_n^L)``."""
        # G-cell → G-net
        msg_n = _aggregate(op_cn_mean, self.res_c_src(vc_prev),
                           self.edges_enabled)
        vn = (F.relu(self.fuse_n(F.concat([msg_n, vn1], axis=-1)))
              + self.res_n_skip(vn_prev))
        # G-net → G-cell (symmetric, using the freshly updated V_n)
        msg_c = _aggregate(op_nc_mean, self.res_n_src(vn),
                           self.edges_enabled)
        vc = (F.relu(self.fuse_c(F.concat([msg_c, vc1], axis=-1)))
              + self.res_c_skip(vc_prev))
        return vc, vn


class LatticeMPBlock(Module):
    """Lattice message-passing block (§4.3).

    ``V_c^L = Lin( Ā Res(V_c^{L-1}) ) + V_c^{L-1}`` — geometric
    aggregation over the 4-neighbour lattice with a skip connection.
    """

    def __init__(self, hidden: int, rng: np.random.Generator,
                 edges_enabled: bool = True):
        super().__init__()
        self.res = ResidualMLP(hidden, hidden, hidden, rng)
        self.lin = Linear(hidden, hidden, rng)
        self.edges_enabled = edges_enabled

    def forward(self, vc_prev: Tensor, op_cc_mean: SparseMatrix) -> Tensor:
        """Returns the updated G-cell embedding."""
        msg = _aggregate(op_cc_mean, self.res(vc_prev), self.edges_enabled)
        return F.relu(self.lin(msg)) + vc_prev
