"""4-layer residual MLP baseline (paper §5.2).

The "vanilla" baseline assessing how far purely *local* crafted features
go: a per-G-cell MLP with residual connections, same hidden width as LHNN,
no message passing at all.  It sees only the 4 G-cell feature channels of
the G-cell itself.
"""

from __future__ import annotations

import numpy as np

from ..nn import functional as F
from ..nn.layers import Linear, Module, ResidualMLP
from ..nn.tensor import Tensor

__all__ = ["MLPBaseline"]


class MLPBaseline(Module):
    """4-layer residual MLP: per-G-cell congestion classifier.

    Architecture: Linear(in→h) → 3 × ResidualMLP(h) → Linear(h→channels)
    with a sigmoid output, trained with the same γ-weighted BCE as LHNN.
    """

    def __init__(self, in_features: int = 4, hidden: int = 32,
                 channels: int = 1, rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.in_features = in_features
        self.hidden = hidden
        self.channels = channels
        self.input = Linear(in_features, hidden, rng)
        self.blocks = [ResidualMLP(hidden, hidden, hidden, rng)
                       for _ in range(3)]
        self.head = Linear(hidden, channels, rng)

    def forward(self, features: Tensor) -> Tensor:
        """Map ``(num_gcells, in_features)`` to congestion probabilities."""
        x = F.relu(self.input(features))
        for block in self.blocks:
            x = F.relu(block(x))
        return F.sigmoid(self.head(x))
