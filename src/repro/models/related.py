"""Related-work GNN baselines from the paper's §2.2.

Neither model appears in the paper's Table 2, but both are named as the
prior art whose limitations motivate the LH-graph:

* :class:`CongestionNet` (Kirby et al. [10]) — GAT over the *cell* graph
  (cells = nodes, net connectivity = edges): purely topological, no
  geometric reasoning; per-cell outputs are scattered onto G-cells for
  evaluation.
* :class:`GridSAGE` (Chen et al. [11]) — GraphSAGE over the G-cell
  *lattice* graph: purely geometric, no netlist topology beyond the
  crafted input features.

The extension bench ``benchmarks/test_related_models.py`` scores them
against LHNN, demonstrating the paper's argument that either space alone
is insufficient.
"""

from __future__ import annotations

import numpy as np

from ..graph.lhgraph import LHGraph
from ..nn import functional as F
from ..nn.layers import Linear, Module
from ..nn.sparse import SparseMatrix, spmm
from ..nn.tensor import Tensor
from .attention import EdgeList, GATLayer

__all__ = ["CongestionNet", "GridSAGE", "SAGELayer"]


class CongestionNet(Module):
    """GAT stack on the cell graph (CongestionNet-style).

    Input: per-cell features; output: per-cell congestion probability.
    Use :func:`repro.circuit.cellgraph.cells_to_gcells` to compare with
    grid-level labels.
    """

    def __init__(self, in_features: int, hidden: int,
                 rng: np.random.Generator, num_layers: int = 3):
        super().__init__()
        if num_layers < 1:
            raise ValueError("need at least one GAT layer")
        dims = [in_features] + [hidden] * num_layers
        self.layers = [GATLayer(dims[i], dims[i + 1], rng)
                       for i in range(num_layers)]
        self.head = Linear(hidden, 1, rng)

    def forward(self, features: Tensor, edges: EdgeList) -> Tensor:
        x = features
        for layer in self.layers:
            x = layer(x, edges)
        return F.sigmoid(self.head(x))


class SAGELayer(Module):
    """GraphSAGE layer with mean aggregation.

    ``h' = act( W_self h + W_neigh (Ā h) )`` where ``Ā`` is the
    row-normalised adjacency.
    """

    def __init__(self, in_dim: int, out_dim: int, rng: np.random.Generator,
                 activation: str = "relu"):
        super().__init__()
        self.w_self = Linear(in_dim, out_dim, rng)
        self.w_neigh = Linear(in_dim, out_dim, rng, bias=False)
        self.activation = activation

    def forward(self, x: Tensor, adjacency: SparseMatrix) -> Tensor:
        out = self.w_self(x) + self.w_neigh(spmm(adjacency, x))
        if self.activation == "relu":
            out = F.relu(out)
        return out


class GridSAGE(Module):
    """GraphSAGE over the G-cell lattice (grid-graph congestion model).

    Consumes the same 4-channel crafted G-cell features as LHNN but can
    only propagate geometrically — the comparison point for the paper's
    claim that lattice-only receptive fields miss netlist-induced
    interactions.
    """

    def __init__(self, in_features: int = 4, hidden: int = 32,
                 channels: int = 1, num_layers: int = 3,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.in_features = in_features
        self.hidden = hidden
        self.channels = channels
        self.num_layers = num_layers
        dims = [in_features] + [hidden] * num_layers
        self.layers = [SAGELayer(dims[i], dims[i + 1], rng)
                       for i in range(num_layers)]
        self.head = Linear(hidden, channels, rng)

    def forward(self, graph: LHGraph, vc: Tensor | None = None) -> Tensor:
        x = vc if vc is not None else Tensor(graph.vc)
        for layer in self.layers:
            x = layer(x, graph.op_cc_mean)
        return F.sigmoid(self.head(x))
