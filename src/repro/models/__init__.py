"""``repro.models`` — LHNN and the paper's three comparison baselines.

:class:`~repro.models.lhnn.LHNN` (the contribution),
:class:`~repro.models.mlp_baseline.MLPBaseline` (local features only),
:class:`~repro.models.unet.UNet` and :class:`~repro.models.pix2pix.Pix2Pix`
(geometric-receptive-field CNNs).
"""

from .blocks import FeatureGenBlock, HyperMPBlock, LatticeMPBlock
from .lhnn import LHNN, LHNNConfig, LHNNOutput
from .mlp_baseline import MLPBaseline
from .unet import UNet, DoubleConv
from .pix2pix import Pix2Pix, PatchDiscriminator
from .attention import EdgeList, GATLayer, segment_softmax
from .related import CongestionNet, GridSAGE, SAGELayer

__all__ = [
    "FeatureGenBlock", "HyperMPBlock", "LatticeMPBlock",
    "LHNN", "LHNNConfig", "LHNNOutput",
    "MLPBaseline",
    "UNet", "DoubleConv",
    "Pix2Pix", "PatchDiscriminator",
    "EdgeList", "GATLayer", "segment_softmax",
    "CongestionNet", "GridSAGE", "SAGELayer",
]
