"""Command-line interface for the LHNN reproduction.

A thin shell over :mod:`repro.api`: every data-touching subcommand
resolves a declarative :class:`~repro.api.ExperimentSpec` (defaults ←
``--config spec.toml``/``.json`` ← dedicated flags ← ``--set``
overrides) and hands it to the experiment layer, so any registered model
family × workload combination is reachable from the same flags.

Usage (after ``pip install -e .``)::

    python -m repro.cli prepare    [--scale 1.0] [--suite NAME] [--workers N]
                                   [--bookshelf-dir DIR] [--list-suites]
    python -m repro.cli stats      [--suite NAME] [--scale 1.0]
    python -m repro.cli train      [--model lhnn|mlp|gridsage|unet|pix2pix]
                                   [--suite NAME] [--scale 1.0] [--epochs 20]
                                   [--duo] [--batch-size 4] [--dtype float32]
                                   [--config spec.toml] [--set KEY=VAL ...]
                                   [--out ckpt.npz]
    python -m repro.cli experiment --config spec.toml [--set KEY=VAL ...]
                                   [--dry-run]
    python -m repro.cli sweep      run|status|report --config sweep.toml
                                   [--workers N] [--set KEY=VAL ...]
    python -m repro.cli evaluate   --checkpoint ckpt.npz [--suite NAME]
                                   [--scale 1.0]
    python -m repro.cli predict    --checkpoint ckpt.npz --design superblue5
                                   [--channel h|v|both] [--suite NAME]
                                   [--scale 1.0]
    python -m repro.cli serve      --checkpoint ckpt.npz [--port N]
                                   [--max-batch 8] [--dtype float32|float64]
    python -m repro.cli info                              # package versions

Every subcommand works off the cached pipeline products, so the first
invocation of any data-touching command pays the place-and-route cost
once.  ``--set`` uses the dotted-path override grammar documented in
``docs/experiment_api.md`` (e.g. ``--set train.epochs=5 --set
model.params.hidden=16``).
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

#: The registered model families, spelled out for argparse choices (the
#: registry agrees; see ``repro.serve.registry.list_families``).
MODEL_FAMILIES = ("lhnn", "mlp", "gridsage", "unet", "pix2pix")


def _positive_int(value: str) -> int:
    parsed = int(value)
    if parsed < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {parsed}")
    return parsed


def _add_spec_io(parser: argparse.ArgumentParser,
                 config_required: bool = False) -> None:
    parser.add_argument("--config", default=None, required=config_required,
                        help="experiment spec file (.toml or .json); "
                             "flags and --set override it")
    parser.add_argument("--set", action="append", dest="overrides",
                        metavar="SECTION.KEY=VALUE", default=[],
                        help="dotted-path spec override, repeatable "
                             "(e.g. --set train.epochs=5 "
                             "--set model.params.hidden=16)")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="LHNN (DAC 2022) reproduction CLI")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("prepare", help="generate, place and route a workload "
                       "through the staged (place/route/graph) pipeline")
    p.add_argument("--scale", type=float, default=1.0)
    p.add_argument("--suite", default="superblue",
                   help="registered workload to prepare (see --list-suites); "
                        "e.g. superblue, macro-heavy, hotspot, bookshelf")
    p.add_argument("--workers", type=_positive_int, default=1,
                   help="parallel preparation processes; per-design seeds "
                        "are deterministic, so any N is bit-identical to 1")
    p.add_argument("--bookshelf-dir", default=None, dest="bookshelf_dir",
                   help="directory scanned for .aux bundles "
                        "(bookshelf suite only)")
    p.add_argument("--count", type=_positive_int, default=None,
                   help="number of designs for the scenario families")
    p.add_argument("--no-cache", action="store_true", dest="no_cache",
                   help="recompute everything, bypassing the stage cache")
    p.add_argument("--list-suites", action="store_true", dest="list_suites",
                   help="print the registered workloads and exit")

    p = sub.add_parser("stats", help="print dataset statistics and the split")
    p.add_argument("--suite", default="superblue",
                   help="registered workload to summarise")
    p.add_argument("--scale", type=float, default=1.0)
    p.add_argument("--count", type=_positive_int, default=None,
                   help="number of designs for the scenario families")

    p = sub.add_parser("train", help="train any registered model family on "
                       "any registered workload and save a checkpoint")
    p.add_argument("--model", choices=MODEL_FAMILIES, default=None,
                   help="model family to train (default: the spec's, "
                        "i.e. lhnn)")
    p.add_argument("--suite", default=None,
                   help="registered workload to train on "
                        "(default: the spec's, i.e. superblue)")
    p.add_argument("--scale", type=float, default=None)
    p.add_argument("--count", type=_positive_int, default=None,
                   help="number of designs for the scenario families")
    p.add_argument("--epochs", type=int, default=None)
    p.add_argument("--seed", type=int, default=None)
    p.add_argument("--duo", action="store_true",
                   help="predict horizontal AND vertical congestion "
                        "(model.channels=2)")
    p.add_argument("--gamma", type=float, default=None)
    p.add_argument("--batch-size", type=_positive_int, default=None,
                   dest="batch_size",
                   help="designs composed into one block-diagonal "
                        "supergraph per optimizer step (1 = per-design)")
    p.add_argument("--dtype", choices=("float32", "float64"), default=None,
                   help="compute dtype of the numerical engine; float32 "
                        "(the spec default) is ~2x faster on CPU with "
                        "held-out metrics within noise (dtype is recorded "
                        "in the checkpoint and honoured at restore)")
    p.add_argument("--out", default=None,
                   help="checkpoint path (default: "
                        "artifacts/<family>-<suite>.npz)")
    _add_spec_io(p)

    p = sub.add_parser("experiment", help="run a declarative experiment "
                       "spec end to end (train -> evaluate -> checkpoint "
                       "-> result manifest)")
    _add_spec_io(p, config_required=True)
    p.add_argument("--dry-run", action="store_true", dest="dry_run",
                   help="print the resolved canonical spec and exit")

    p = sub.add_parser("evaluate", help="evaluate a checkpoint on the "
                       "held-out designs of a workload")
    p.add_argument("--checkpoint", required=True)
    p.add_argument("--suite", default="superblue",
                   help="registered workload to evaluate on")
    p.add_argument("--scale", type=float, default=1.0)
    p.add_argument("--count", type=_positive_int, default=None,
                   help="number of designs for the scenario families")

    p = sub.add_parser("predict", help="render prediction vs truth for one "
                       "design (served through the inference engine, or a "
                       "running server via --port)")
    p.add_argument("--checkpoint", default=None,
                   help="checkpoint to serve from in-process "
                        "(required unless --port targets a running server)")
    p.add_argument("--design", required=True,
                   help="design name, e.g. superblue5")
    p.add_argument("--suite", default="superblue",
                   help="workload the design belongs to")
    p.add_argument("--scale", type=float, default=1.0)
    p.add_argument("--channel", choices=("h", "v", "both"), default="h",
                   help="congestion direction(s): 'v' needs a duo-channel "
                        "checkpoint, 'both' renders every channel the "
                        "checkpoint provides (H only for uni-channel)")
    p.add_argument("--port", type=int, default=None,
                   help="query a running `repro serve` server on this TCP "
                        "port instead of restoring a checkpoint locally")
    p.add_argument("--host", default="127.0.0.1",
                   help="server host for --port mode")
    p.add_argument("--timeout", type=float, default=30.0,
                   help="connect/read timeout in seconds for --port mode "
                        "(bounded retries with exponential backoff; a dead "
                        "server errors out instead of blocking forever)")

    p = sub.add_parser("serve", help="long-lived batched inference loop "
                       "(JSON lines on stdin/stdout, or --port for TCP)")
    p.add_argument("--checkpoint", required=True)
    p.add_argument("--port", type=int, default=None,
                   help="serve the line protocol on this TCP port "
                        "(0 = pick a free one); default: stdin/stdout")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--suite", default="superblue",
                   help="default workload for requests without 'suite'")
    p.add_argument("--scale", type=float, default=1.0)
    p.add_argument("--max-batch", type=_positive_int, default=8,
                   dest="max_batch",
                   help="max designs composed into one block-diagonal "
                        "forward pass per flush")
    p.add_argument("--dtype", choices=("float32", "float64"), default=None,
                   help="serve at this compute dtype regardless of how "
                        "the checkpoint was trained (default: the "
                        "checkpoint's recorded dtype)")
    p.add_argument("--workers", type=_positive_int, default=None,
                   help="run the supervised multi-worker asyncio service "
                        "with N engine worker processes (requires --port; "
                        "default: the single-process engine loop)")
    p.add_argument("--max-queue", type=_positive_int, default=256,
                   dest="max_queue",
                   help="service mode: max admitted-but-unanswered "
                        "requests before backpressure replies (global; "
                        "per-connection cap is a quarter of this)")
    p.add_argument("--flush-deadline-ms", type=float, default=25.0,
                   dest="flush_deadline_ms",
                   help="service mode: auto-flush latency target — a "
                        "buffered warm batch dispatches after this long "
                        "even if the size trigger hasn't fired")
    p.add_argument("--admin-token", default=None, dest="admin_token",
                   help="service mode: require this token on reload/"
                        "shutdown ops (default: admin ops are open)")

    p = sub.add_parser("sweep", help="expand a declarative sweep spec "
                       "into the full experiment grid and drive it to a "
                       "ranked leaderboard (crash-resumable, "
                       "exactly-once across concurrent runs)")
    p.add_argument("action", choices=["run", "status", "report"],
                   help="run: execute every missing grid point and "
                        "write the repro-sweep-v1 leaderboard manifest; "
                        "status: per-point state (done/leased/pending/"
                        "quarantined) without touching any lease; "
                        "report: re-aggregate manifests from disk and "
                        "render the leaderboard")
    p.add_argument("--config", required=True,
                   help="sweep spec file (.toml or .json): a base "
                        "experiment spec plus [axes] of dotted-path "
                        "override lists (see docs/sweeps.md)")
    p.add_argument("--workers", type=_positive_int, default=1,
                   help="grid points executed concurrently (process "
                        "pool; the stage cache is shared, so points on "
                        "one suite prepare it once)")
    p.add_argument("--set", action="append", dest="overrides",
                   metavar="SECTION.KEY=VALUE", default=[],
                   help="dotted-path override applied to the base spec "
                        "before grid expansion, repeatable")

    p = sub.add_parser("store", help="inspect and maintain the durable "
                       "artifact store (stage cache, quarantine, leases)")
    p.add_argument("action", choices=["gc", "stats", "quarantine"],
                   help="gc: remove orphaned *.tmp files and expired "
                        "leases; stats: blob/lease/quarantine census; "
                        "quarantine: list quarantined artifacts and why")
    p.add_argument("--root", default=None,
                   help="store root (default: the stage-cache directory, "
                        "honouring REPRO_CACHE_DIR)")
    p.add_argument("--max-age", type=float, default=600.0, dest="max_age",
                   help="gc: tmp files older than this many seconds are "
                        "orphans (default 600)")

    sub.add_parser("info", help="print version and dependency info")
    return parser


def _load_dataset(channels: int = 1, scale: float = 1.0,
                  suite: str = "superblue", count: int | None = None):
    """Dataset views of any registered workload (lazy manifest-backed)."""
    from repro.api import load_dataset, spec_from_dict
    spec = spec_from_dict({
        "workload": {"suite": suite, "scale": scale, "count": count},
        "model": {"channels": channels},
    })
    return load_dataset(spec, verbose=True)


def _resolve_spec(args, flag_sets: list[str]):
    """defaults ← --config file ← dedicated flags ← --set overrides."""
    from repro.api import ExperimentSpec, apply_overrides, load_spec
    spec = load_spec(args.config) if args.config else ExperimentSpec()
    return apply_overrides(spec, flag_sets + list(args.overrides or []))


def _train_flag_sets(args) -> list[str]:
    """The dotted-path overrides implied by the dedicated train flags."""
    sets = []
    if args.model is not None:
        sets.append(f"model.family={args.model}")
    if args.duo:
        sets.append("model.channels=2")
    if args.suite is not None:
        sets.append(f"workload.suite={args.suite}")
    if args.scale is not None:
        sets.append(f"workload.scale={args.scale}")
    if args.count is not None:
        sets.append(f"workload.count={args.count}")
    if args.epochs is not None:
        sets.append(f"train.epochs={args.epochs}")
    if args.seed is not None:
        sets.append(f"train.seed={args.seed}")
    if args.gamma is not None:
        sets.append(f"train.gamma={args.gamma}")
    if args.batch_size is not None:
        sets.append(f"train.batch_size={args.batch_size}")
    if args.dtype is not None:
        sets.append(f"compute.dtype={args.dtype}")
    if args.out is not None:
        sets.append(f"output.checkpoint={args.out}")
    return sets


def _print_result(result) -> None:
    print(f"held-out F1 {result.metrics['f1']:.2f} %  "
          f"ACC {result.metrics['acc']:.2f} %")
    print(f"checkpoint written to {result.checkpoint_path}")
    print(f"result manifest written to {result.manifest_path}")


def cmd_prepare(args) -> int:
    from repro.pipeline import (PipelineConfig, list_workloads,
                                load_workload, prepare_workload)
    if args.list_suites:
        for w in list_workloads():
            print(f"{w.name:<12} {w.description}")
        return 0
    config = PipelineConfig(scale=args.scale, use_cache=not args.no_cache)
    params = {}
    if args.bookshelf_dir:
        params["root"] = args.bookshelf_dir
    if args.count is not None:
        params["count"] = args.count
    # Validate suite name and flags first so user errors fail fast with a
    # clean message, while real pipeline bugs during the (long)
    # preparation still traceback.
    import inspect

    from repro.pipeline import get_workload
    try:
        workload = get_workload(args.suite)
    except KeyError as exc:
        print(f"prepare failed: {exc}", file=sys.stderr)
        return 2
    try:
        inspect.signature(workload.factory).bind(config, **params)
    except TypeError:
        print(f"prepare failed: suite {args.suite!r} does not accept "
              f"parameters {sorted(params)}", file=sys.stderr)
        return 2
    try:
        designs = load_workload(args.suite, config, **params)
    except ValueError as exc:
        print(f"prepare failed: {exc}", file=sys.stderr)
        return 2
    from repro.pipeline import StageCache, default_cache_dir
    cache = StageCache(default_cache_dir() if config.use_cache else None)
    graphs = prepare_workload(args.suite, config, workers=args.workers,
                              verbose=True, lazy=True, designs=designs,
                              cache=cache)
    print(f"prepared {len(graphs)} designs of suite {args.suite!r} "
          f"({graphs[0].nx}x{graphs[0].ny} G-cells each) "
          f"with {args.workers} worker(s)")
    state = "degraded (uncached)" if cache.degraded else (
        "disabled" if cache.root is None else "ok")
    print(f"stage cache: {cache.hits} hits, {cache.misses} misses, "
          f"{cache.stores} stores, {cache.corrupt} corrupt "
          f"(quarantined), state {state}")
    return 0


def cmd_stats(args) -> int:
    from repro.api import SpecError
    from repro.eval import format_table
    try:
        dataset = _load_dataset(suite=args.suite, scale=args.scale,
                                count=args.count)
    except SpecError as exc:
        print(f"stats failed: {exc}", file=sys.stderr)
        return 2
    print(format_table(dataset.table1_rows(),
                       title="Dataset information (Table 1 protocol)"))
    split = dataset.split
    print(f"\nbalanced split gap: {100 * split.rate_gap:.3f} pp")
    rows = [{"design": g.name,
             "H-rate_%": round(100 * g.congestion_rate(0), 2),
             "V-rate_%": round(100 * g.congestion_rate(1), 2),
             "role": ("test" if i in split.test_indices else "train")}
            for i, g in enumerate(dataset.graphs)]
    print("\n" + format_table(rows, title="Per-design congestion rates"))
    return 0


def cmd_train(args) -> int:
    from repro.api import SpecError, run_experiment
    try:
        spec = _resolve_spec(args, _train_flag_sets(args))
        result = run_experiment(spec, verbose=True)
    except SpecError as exc:
        print(f"train failed: {exc}", file=sys.stderr)
        return 2
    _print_result(result)
    return 0


def cmd_experiment(args) -> int:
    from repro.api import SpecError, dumps_spec, run_experiment
    try:
        spec = _resolve_spec(args, [])
    except SpecError as exc:
        print(f"experiment failed: {exc}", file=sys.stderr)
        return 2
    if args.dry_run:
        print(dumps_spec(spec))
        return 0
    try:
        result = run_experiment(spec, verbose=True)
    except SpecError as exc:
        print(f"experiment failed: {exc}", file=sys.stderr)
        return 2
    print(f"experiment {spec.experiment_name()} "
          f"({spec.model.family} x {spec.workload.suite}, "
          f"fingerprint {result.fingerprint})")
    _print_result(result)
    return 0


def cmd_evaluate(args) -> int:
    from repro.api import SpecError
    from repro.eval.reporting import per_design_report, predicted_rate_table
    from repro.nn import set_default_dtype
    from repro.nn.serialize import CheckpointError
    from repro.serve.registry import (model_dtype, output_channels,
                                      restore_model)
    try:
        model, meta = restore_model(args.checkpoint)
    except CheckpointError as exc:
        print(f"evaluate failed: {exc}", file=sys.stderr)
        return 2
    # Evaluate in the checkpoint's compute dtype: dataset samples must
    # match the parameters or numpy silently upcasts every forward pass.
    set_default_dtype(model_dtype(model))
    try:
        dataset = _load_dataset(channels=output_channels(model),
                                suite=args.suite, scale=args.scale,
                                count=args.count)
    except SpecError as exc:
        print(f"evaluate failed: {exc}", file=sys.stderr)
        return 2
    # CNN checkpoints trained with a crop evaluate tile-by-tile, so this
    # report agrees with the train-time held-out metrics.
    crop = (meta.get("experiment") or {}).get("train", {}).get("crop")
    rows = per_design_report(model, dataset.test_samples(), crop=crop)
    print(predicted_rate_table(rows, title="Held-out per-design results"))
    f1s = [r["F1"] for r in rows]
    print(f"\nmean F1 {np.mean(f1s):.2f} %")
    return 0


_CHANNEL_TITLES = {"h": "H congestion", "v": "V congestion"}


def _render_prediction(name: str, family: str, grids: dict,
                       truth: dict | None, rates: dict) -> None:
    """Render per-channel prediction panels; shared by both predict paths."""
    from repro.eval import comparison_panel
    for channel, grid in grids.items():
        grid = np.asarray(grid)
        if truth is None:
            from repro.eval.visualize import ascii_heatmap
            print(f"{name} ({_CHANNEL_TITLES[channel]}, "
                  f"predicted by {family})")
            print(ascii_heatmap(grid))
        else:
            print(comparison_panel(
                np.asarray(truth[channel]), {family: grid},
                title=f"{name} ({_CHANNEL_TITLES[channel]})"))
        print(f"predicted {channel.upper()}-congestion rate: "
              f"{100 * rates[channel]:.2f} %\n")


def _remote_predict(args) -> int:
    """Serve one prediction through a running ``repro serve`` server."""
    from repro.serve import ServeClient, ServeError
    try:
        with ServeClient.connect(args.port, host=args.host,
                                 timeout=args.timeout) as client:
            info = client.server_info()
            client.predict(design=args.design, suite=args.suite,
                           channel=args.channel)
            replies = client.flush()
    except ServeError as exc:
        print(f"predict failed: {exc}", file=sys.stderr)
        return 2
    failed = [r for r in replies if not r.get("ok", False)]
    if failed or not replies:
        error = failed[0].get("error", "no reply") if failed else "no reply"
        print(f"predict failed: {error}", file=sys.stderr)
        return 2
    result = replies[0]["result"]
    label = (info.get("name", "server") + " "
             + info.get("mode", "")).strip().upper()
    _render_prediction(result["name"], label, result["grids"],
                       result.get("truth"), result["predicted_rate"])
    return 0


def cmd_predict(args) -> int:
    from repro.nn.serialize import CheckpointError
    from repro.pipeline import PipelineConfig
    from repro.serve import (DesignResolver, InferenceEngine,
                             PredictRequest, ServeConfig, restore_model)
    if args.port is not None:
        return _remote_predict(args)
    if args.checkpoint is None:
        print("predict failed: --checkpoint is required unless --port "
              "targets a running server", file=sys.stderr)
        return 2
    try:
        model, _ = restore_model(args.checkpoint)
    except CheckpointError as exc:
        print(f"predict failed: {exc}", file=sys.stderr)
        return 2
    config = PipelineConfig(scale=args.scale)
    engine = InferenceEngine(model, ServeConfig(pipeline=config))
    resolver = DesignResolver(config, default_suite=args.suite)
    try:
        design = resolver.resolve({"design": args.design,
                                   "suite": args.suite})
        result = engine.predict(PredictRequest(design=design,
                                               channel=args.channel))
    except ValueError as exc:
        print(f"predict failed: {exc}", file=sys.stderr)
        return 2
    _render_prediction(result.name, engine.family.upper(), result.grids,
                       result.truth, result.predicted_rate)
    return 0


def cmd_serve(args) -> int:
    from repro.nn.serialize import CheckpointError
    from repro.pipeline import PipelineConfig
    from repro.serve import (DesignResolver, InferenceEngine, ServeConfig,
                             restore_model, serve_forever, serve_socket)
    if args.workers is not None:
        return _serve_service(args)
    try:
        model, _ = restore_model(args.checkpoint, dtype=args.dtype)
    except CheckpointError as exc:
        print(f"serve failed: {exc}", file=sys.stderr)
        return 2
    config = PipelineConfig(scale=args.scale)
    engine = InferenceEngine(model, ServeConfig(pipeline=config,
                                                max_batch=args.max_batch))
    resolver = DesignResolver(config, default_suite=args.suite)
    if args.port is None:
        print(f"[serve] {engine.family} ({engine.channels} channel(s)); "
              f"JSON lines on stdin, one op per line "
              f"(predict/flush/stats/ping/shutdown)", file=sys.stderr)
        serve_forever(engine, resolver, sys.stdin, sys.stdout)
    else:
        serve_socket(engine, resolver, args.port, host=args.host,
                     ready_callback=lambda p: print(
                         f"[serve] listening on {args.host}:{p}",
                         file=sys.stderr))
    return 0


def _serve_service(args) -> int:
    """Run the supervised multi-worker asyncio service (``--workers N``)."""
    import asyncio

    from repro.pipeline import PipelineConfig
    from repro.serve import ServeConfig, ServeService, ServiceConfig
    if args.port is None:
        print("serve failed: --workers requires --port (the service only "
              "speaks TCP)", file=sys.stderr)
        return 2
    service = ServeService(
        checkpoint=args.checkpoint,
        serve=ServeConfig(pipeline=PipelineConfig(scale=args.scale),
                          max_batch=args.max_batch),
        config=ServiceConfig(workers=args.workers,
                             max_batch=args.max_batch,
                             max_queue=args.max_queue,
                             max_queue_per_conn=max(1, args.max_queue // 4),
                             flush_deadline_ms=args.flush_deadline_ms,
                             admin_token=args.admin_token),
        default_suite=args.suite, dtype=args.dtype)
    try:
        asyncio.run(service.run(
            args.host, args.port,
            ready_callback=lambda p: print(
                f"[serve] service: {args.workers} worker(s) on "
                f"{args.host}:{p}", file=sys.stderr)))
    except KeyboardInterrupt:
        pass
    return 0


def cmd_info(args) -> int:
    import numpy
    import scipy

    import repro
    print(f"repro {repro.__version__}")
    print(f"numpy {numpy.__version__}, scipy {scipy.__version__}")
    print(f"python {sys.version.split()[0]}")
    return 0


def cmd_sweep(args) -> int:
    from repro.api import SpecError
    from repro.eval import format_table
    from repro.sweep import (SweepError, build_sweep_manifest, load_sweep,
                             render_leaderboard, run_sweep, sweep_status,
                             write_sweep_manifest)
    try:
        sweep = load_sweep(args.config, base_overrides=args.overrides)
    except SpecError as exc:
        print(f"sweep failed: {exc}", file=sys.stderr)
        return 2

    if args.action == "status":
        statuses = sweep_status(sweep)
        rows = [{"point": s.index, "state": s.state,
                 "axes": " ".join(f"{p.rsplit('.', 1)[-1]}={v}"
                                  for p, v in s.axes.items()),
                 "holder": (f"pid {s.holder.get('pid')}@"
                            f"{s.holder.get('host')}" if s.holder else ""),
                 "fingerprint": s.fingerprint[:12]}
                for s in statuses]
        counts = {}
        for s in statuses:
            counts[s.state] = counts.get(s.state, 0) + 1
        print(format_table(rows, title=f"Sweep {sweep.name!r}: "
                           f"{len(statuses)} grid point(s)"))
        print("\n" + ", ".join(f"{counts[k]} {k}" for k in
                               ("done", "leased", "pending", "quarantined")
                               if k in counts))
        return 0

    if args.action == "run":
        try:
            report = run_sweep(sweep, workers=args.workers, verbose=True)
        except (SweepError, SpecError) as exc:
            print(f"sweep failed: {exc}", file=sys.stderr)
            return 2
        print(f"sweep {sweep.name!r}: {report.total} point(s) — "
              f"{report.executed} executed, {report.skipped} already "
              f"done or completed elsewhere")

    try:
        manifest = build_sweep_manifest(sweep)
    except SpecError as exc:
        print(f"sweep failed: {exc}", file=sys.stderr)
        return 2
    if args.action == "report" and not manifest["leaderboard"]:
        print(f"sweep report failed: no completed grid points under "
              f"{sweep.artifacts_dir!r} yet (run `repro sweep run "
              f"--config {args.config}` first)", file=sys.stderr)
        return 2
    path = write_sweep_manifest(sweep, manifest)
    print(render_leaderboard(manifest))
    print(f"\nsweep manifest written to {path}")
    return 0


def cmd_store(args) -> int:
    from repro.pipeline import default_cache_dir
    from repro.store import BlobStore
    root = args.root or default_cache_dir()
    store = BlobStore(root)
    if args.action == "gc":
        report = store.gc(max_tmp_age_s=args.max_age)
        print(f"store gc under {root}: "
              f"removed {len(report['tmp_removed'])} orphaned tmp "
              f"file(s), {len(report['leases_removed'])} expired "
              f"lease(s)")
        for path in report["tmp_removed"] + report["leases_removed"]:
            print(f"  removed {path}")
        return 0
    if args.action == "stats":
        stats = store.stats()
        print(f"store root      {stats['root']}")
        print(f"objects         {stats['objects']} "
              f"({stats['object_bytes'] / 1e6:.1f} MB)")
        print(f"quarantined     {stats['quarantined']}")
        print(f"active leases   {stats['leases']}")
        return 0
    records = store.quarantine_records()
    if not records:
        print(f"quarantine under {root}: empty")
        return 0
    print(f"quarantine under {root}: {len(records)} artifact(s)")
    for record in records:
        print(f"  {record['file']}: {record.get('reason', '<no reason>')}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    handler = {
        "prepare": cmd_prepare,
        "stats": cmd_stats,
        "train": cmd_train,
        "experiment": cmd_experiment,
        "evaluate": cmd_evaluate,
        "predict": cmd_predict,
        "serve": cmd_serve,
        "sweep": cmd_sweep,
        "store": cmd_store,
        "info": cmd_info,
    }[args.command]
    return handler(args)


if __name__ == "__main__":
    raise SystemExit(main())
