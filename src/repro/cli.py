"""Command-line interface for the LHNN reproduction.

Usage (after ``pip install -e .``)::

    python -m repro.cli prepare   [--scale 1.0] [--suite NAME] [--workers N]
                                  [--bookshelf-dir DIR] [--list-suites]
    python -m repro.cli stats                             # Table-1 style stats
    python -m repro.cli train     [--epochs 20] [--duo] [--batch-size 4]
                                  [--dtype float32|float64] [--out ckpt.npz]
    python -m repro.cli evaluate  --checkpoint ckpt.npz   # held-out metrics
    python -m repro.cli predict   --checkpoint ckpt.npz --design superblue5
                                  [--channel h|v|both] [--suite NAME]
    python -m repro.cli serve     --checkpoint ckpt.npz [--port N]
                                  [--max-batch 8] [--dtype float32|float64]
    python -m repro.cli info                              # package versions

Every subcommand works off the cached pipeline products, so the first
invocation of any data-touching command pays the place-and-route cost
once.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def _positive_int(value: str) -> int:
    parsed = int(value)
    if parsed < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {parsed}")
    return parsed


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="LHNN (DAC 2022) reproduction CLI")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("prepare", help="generate, place and route a workload "
                       "through the staged (place/route/graph) pipeline")
    p.add_argument("--scale", type=float, default=1.0)
    p.add_argument("--suite", default="superblue",
                   help="registered workload to prepare (see --list-suites); "
                        "e.g. superblue, macro-heavy, hotspot, bookshelf")
    p.add_argument("--workers", type=_positive_int, default=1,
                   help="parallel preparation processes; per-design seeds "
                        "are deterministic, so any N is bit-identical to 1")
    p.add_argument("--bookshelf-dir", default=None, dest="bookshelf_dir",
                   help="directory scanned for .aux bundles "
                        "(bookshelf suite only)")
    p.add_argument("--count", type=_positive_int, default=None,
                   help="number of designs for the scenario families")
    p.add_argument("--no-cache", action="store_true", dest="no_cache",
                   help="recompute everything, bypassing the stage cache")
    p.add_argument("--list-suites", action="store_true", dest="list_suites",
                   help="print the registered workloads and exit")

    sub.add_parser("stats", help="print dataset statistics and the split")

    p = sub.add_parser("train", help="train LHNN and save a checkpoint")
    p.add_argument("--epochs", type=int, default=20)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--duo", action="store_true")
    p.add_argument("--gamma", type=float, default=0.7)
    p.add_argument("--batch-size", type=_positive_int, default=1,
                   dest="batch_size",
                   help="designs composed into one block-diagonal "
                        "supergraph per optimizer step (1 = per-design)")
    p.add_argument("--dtype", choices=("float32", "float64"),
                   default="float32",
                   help="compute dtype of the numerical engine; float32 "
                        "is ~2x faster on CPU with held-out metrics "
                        "within noise (dtype is recorded in the "
                        "checkpoint and honoured at restore)")
    p.add_argument("--out", default="artifacts/lhnn.npz")

    p = sub.add_parser("evaluate", help="evaluate a checkpoint on the "
                       "held-out designs")
    p.add_argument("--checkpoint", required=True)

    p = sub.add_parser("predict", help="render prediction vs truth for one "
                       "design (served through the inference engine)")
    p.add_argument("--checkpoint", required=True)
    p.add_argument("--design", required=True,
                   help="design name, e.g. superblue5")
    p.add_argument("--suite", default="superblue",
                   help="workload the design belongs to")
    p.add_argument("--channel", choices=("h", "v", "both"), default="h",
                   help="congestion direction(s): 'v' needs a duo-channel "
                        "checkpoint, 'both' renders every channel the "
                        "checkpoint provides (H only for uni-channel)")

    p = sub.add_parser("serve", help="long-lived batched inference loop "
                       "(JSON lines on stdin/stdout, or --port for TCP)")
    p.add_argument("--checkpoint", required=True)
    p.add_argument("--port", type=int, default=None,
                   help="serve the line protocol on this TCP port "
                        "(0 = pick a free one); default: stdin/stdout")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--suite", default="superblue",
                   help="default workload for requests without 'suite'")
    p.add_argument("--scale", type=float, default=1.0)
    p.add_argument("--max-batch", type=_positive_int, default=8,
                   dest="max_batch",
                   help="max designs composed into one block-diagonal "
                        "forward pass per flush")
    p.add_argument("--dtype", choices=("float32", "float64"), default=None,
                   help="serve at this compute dtype regardless of how "
                        "the checkpoint was trained (default: the "
                        "checkpoint's recorded dtype)")

    sub.add_parser("info", help="print version and dependency info")
    return parser


def _load_dataset(channels: int = 1, scale: float = 1.0):
    from repro.data import CongestionDataset
    from repro.pipeline import PipelineConfig, prepare_workload
    # Lazy manifest view: graphs deserialise per design on first access.
    graphs = prepare_workload("superblue", PipelineConfig(scale=scale),
                              lazy=True, verbose=True)
    return CongestionDataset(graphs, channels=channels)


def cmd_prepare(args) -> int:
    from repro.pipeline import (PipelineConfig, list_workloads,
                                load_workload, prepare_workload)
    if args.list_suites:
        for w in list_workloads():
            print(f"{w.name:<12} {w.description}")
        return 0
    config = PipelineConfig(scale=args.scale, use_cache=not args.no_cache)
    params = {}
    if args.bookshelf_dir:
        params["root"] = args.bookshelf_dir
    if args.count is not None:
        params["count"] = args.count
    # Validate suite name and flags first so user errors fail fast with a
    # clean message, while real pipeline bugs during the (long)
    # preparation still traceback.
    import inspect

    from repro.pipeline import get_workload
    try:
        workload = get_workload(args.suite)
    except KeyError as exc:
        print(f"prepare failed: {exc}", file=sys.stderr)
        return 2
    try:
        inspect.signature(workload.factory).bind(config, **params)
    except TypeError:
        print(f"prepare failed: suite {args.suite!r} does not accept "
              f"parameters {sorted(params)}", file=sys.stderr)
        return 2
    try:
        designs = load_workload(args.suite, config, **params)
    except ValueError as exc:
        print(f"prepare failed: {exc}", file=sys.stderr)
        return 2
    graphs = prepare_workload(args.suite, config, workers=args.workers,
                              verbose=True, lazy=True, designs=designs)
    print(f"prepared {len(graphs)} designs of suite {args.suite!r} "
          f"({graphs[0].nx}x{graphs[0].ny} G-cells each) "
          f"with {args.workers} worker(s)")
    return 0


def cmd_stats(args) -> int:
    from repro.eval import format_table
    dataset = _load_dataset()
    print(format_table(dataset.table1_rows(),
                       title="Dataset information (Table 1 protocol)"))
    split = dataset.split
    print(f"\nbalanced split gap: {100 * split.rate_gap:.3f} pp")
    rows = [{"design": g.name,
             "H-rate_%": round(100 * g.congestion_rate(0), 2),
             "V-rate_%": round(100 * g.congestion_rate(1), 2),
             "role": ("test" if i in split.test_indices else "train")}
            for i, g in enumerate(dataset.graphs)]
    print("\n" + format_table(rows, title="Per-design congestion rates"))
    return 0


def cmd_train(args) -> int:
    from repro.models.lhnn import LHNNConfig
    from repro.nn import set_default_dtype
    from repro.serve.registry import save_model
    from repro.train import TrainConfig, evaluate_lhnn, train_lhnn
    # Set the compute dtype before any parameter or sample exists, so
    # the whole run — init, forward, backward, optimizer — is uniform.
    set_default_dtype(args.dtype)
    channels = 2 if args.duo else 1
    dataset = _load_dataset(channels=channels)
    model = train_lhnn(dataset.train_samples(),
                       TrainConfig(epochs=args.epochs, seed=args.seed,
                                   gamma=args.gamma,
                                   batch_size=args.batch_size, verbose=True),
                       LHNNConfig(channels=channels))
    metrics = evaluate_lhnn(model, dataset.test_samples(),
                            batch_size=args.batch_size)
    print(f"held-out F1 {metrics['f1']:.2f} %  ACC {metrics['acc']:.2f} %")
    # save_model embeds the full architecture spec, so the checkpoint
    # restores deterministically via the model registry.
    path = save_model(model, args.out, metadata={
        "channels": channels, "epochs": args.epochs, "seed": args.seed,
        "gamma": args.gamma, "batch_size": args.batch_size,
        "dtype": args.dtype,
        "f1": metrics["f1"], "acc": metrics["acc"],
    })
    print(f"checkpoint written to {path}")
    return 0


def _restore_model(checkpoint: str):
    """Registry-based restore (kept for callers of the old helper)."""
    from repro.serve.registry import restore_model
    return restore_model(checkpoint)


def cmd_evaluate(args) -> int:
    from repro.eval.reporting import per_design_report, predicted_rate_table
    from repro.nn import set_default_dtype
    from repro.serve.registry import (model_dtype, output_channels,
                                      restore_model)
    model, meta = restore_model(args.checkpoint)
    # Evaluate in the checkpoint's compute dtype: dataset samples must
    # match the parameters or numpy silently upcasts every forward pass.
    set_default_dtype(model_dtype(model))
    dataset = _load_dataset(channels=output_channels(model))
    rows = per_design_report(model, dataset.test_samples())
    print(predicted_rate_table(rows, title="Held-out per-design results"))
    f1s = [r["F1"] for r in rows]
    print(f"\nmean F1 {np.mean(f1s):.2f} %")
    return 0


_CHANNEL_TITLES = {"h": "H congestion", "v": "V congestion"}


def cmd_predict(args) -> int:
    from repro.eval import comparison_panel
    from repro.nn.serialize import CheckpointError
    from repro.pipeline import PipelineConfig
    from repro.serve import (DesignResolver, InferenceEngine,
                             PredictRequest, ServeConfig, restore_model)
    try:
        model, _ = restore_model(args.checkpoint)
    except CheckpointError as exc:
        print(f"predict failed: {exc}", file=sys.stderr)
        return 2
    config = PipelineConfig()
    engine = InferenceEngine(model, ServeConfig(pipeline=config))
    resolver = DesignResolver(config, default_suite=args.suite)
    try:
        design = resolver.resolve({"design": args.design,
                                   "suite": args.suite})
        result = engine.predict(PredictRequest(design=design,
                                               channel=args.channel))
    except ValueError as exc:
        print(f"predict failed: {exc}", file=sys.stderr)
        return 2
    family = engine.family.upper()
    for channel, grid in result.grids.items():
        if result.truth is None:
            from repro.eval.visualize import ascii_heatmap
            print(f"{result.name} ({_CHANNEL_TITLES[channel]}, "
                  f"predicted by {family})")
            print(ascii_heatmap(grid))
        else:
            print(comparison_panel(
                result.truth[channel], {family: grid},
                title=f"{result.name} ({_CHANNEL_TITLES[channel]})"))
        rate = result.predicted_rate[channel]
        print(f"predicted {channel.upper()}-congestion rate: "
              f"{100 * rate:.2f} %\n")
    return 0


def cmd_serve(args) -> int:
    from repro.nn.serialize import CheckpointError
    from repro.pipeline import PipelineConfig
    from repro.serve import (DesignResolver, InferenceEngine, ServeConfig,
                             restore_model, serve_forever, serve_socket)
    try:
        model, _ = restore_model(args.checkpoint, dtype=args.dtype)
    except CheckpointError as exc:
        print(f"serve failed: {exc}", file=sys.stderr)
        return 2
    config = PipelineConfig(scale=args.scale)
    engine = InferenceEngine(model, ServeConfig(pipeline=config,
                                                max_batch=args.max_batch))
    resolver = DesignResolver(config, default_suite=args.suite)
    if args.port is None:
        print(f"[serve] {engine.family} ({engine.channels} channel(s)); "
              f"JSON lines on stdin, one op per line "
              f"(predict/flush/stats/ping/shutdown)", file=sys.stderr)
        serve_forever(engine, resolver, sys.stdin, sys.stdout)
    else:
        serve_socket(engine, resolver, args.port, host=args.host,
                     ready_callback=lambda p: print(
                         f"[serve] listening on {args.host}:{p}",
                         file=sys.stderr))
    return 0


def cmd_info(args) -> int:
    import numpy
    import scipy

    import repro
    print(f"repro {repro.__version__}")
    print(f"numpy {numpy.__version__}, scipy {scipy.__version__}")
    print(f"python {sys.version.split()[0]}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    handler = {
        "prepare": cmd_prepare,
        "stats": cmd_stats,
        "train": cmd_train,
        "evaluate": cmd_evaluate,
        "predict": cmd_predict,
        "serve": cmd_serve,
        "info": cmd_info,
    }[args.command]
    return handler(args)


if __name__ == "__main__":
    raise SystemExit(main())
