"""Request routing for the multi-worker serving service.

The service's workers each hold a private model replica *and* a private
warm :class:`~repro.serve.cache.SampleCache`, so where a request runs
decides whether it is cheap.  The router's job is twofold:

* **stickiness** — every design reference canonicalises to a routing
  key (:func:`routing_key`); repeat references to the same key are
  routed to the worker that prepared it first, so they hit that
  worker's warm cache instead of re-running place-and-route elsewhere;
* **lane separation** — first-seen keys are *cold* (they will pay the
  raw-``Design`` pipeline) and are spread round-robin across workers;
  already-seen keys are *warm* (expected cache hits).  The service
  keeps the two lanes in separate per-worker queues and drains the
  warm lane with strict priority, so cheap inference is never queued
  behind someone else's expensive preparation backlog.

The router never resolves designs itself — keys are derived purely from
the protocol payload, so routing costs microseconds and the service
process holds no model or design state.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

__all__ = ["Route", "Router", "routing_key"]


def routing_key(payload: dict) -> str:
    """Canonical identity of the design a predict payload references.

    Two payloads that resolve to the same prepared sample map to the
    same key: suite designs key on ``(suite, design)`` with the suite
    defaulted explicitly, inline generator specs on their canonical
    JSON (key order never matters).  Raises ``ValueError`` for payloads
    that reference nothing — the same contract as
    :meth:`repro.serve.server.DesignResolver.resolve`.
    """
    spec = payload.get("spec")
    if spec is not None:
        if not isinstance(spec, dict):
            raise ValueError(f"'spec' must be an object, got "
                             f"{type(spec).__name__}")
        return "spec:" + json.dumps(spec, sort_keys=True,
                                    separators=(",", ":"), default=str)
    name = payload.get("design")
    if not name:
        raise ValueError("predict needs 'design' (+ optional 'suite') "
                         "or an inline 'spec'")
    suite = payload.get("suite") or payload.get("_default_suite", "")
    return f"design:{suite}/{name}"


@dataclass(frozen=True)
class Route:
    """Where one request goes: worker index, lane, and its content key."""

    worker: int
    lane: str  # "warm" | "cold"
    key: str


class Router:
    """Sticky two-lane router over ``num_workers`` engine workers."""

    def __init__(self, num_workers: int, default_suite: str = "superblue"):
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self.num_workers = num_workers
        self.default_suite = default_suite
        self._home: dict[str, int] = {}
        self._cursor = 0
        self._warm_routed = 0
        self._cold_routed = 0

    def route(self, payload: dict) -> Route:
        """Assign one predict payload to a worker and lane.

        The first request for a key claims the next worker round-robin
        and is cold; every later request for that key is warm and goes
        to the same (home) worker, where the prepared sample lives.
        Raises ``ValueError`` for payloads referencing no design.
        """
        key = routing_key({**payload, "_default_suite": self.default_suite})
        home = self._home.get(key)
        if home is not None:
            self._warm_routed += 1
            return Route(worker=home, lane="warm", key=key)
        worker = self._cursor % self.num_workers
        self._cursor += 1
        self._home[key] = worker
        self._cold_routed += 1
        return Route(worker=worker, lane="cold", key=key)

    def forget(self) -> None:
        """Drop all warm-key homes (e.g. after a checkpoint reload).

        Reloading rebuilds every worker's engine, so the in-memory
        sample caches are gone; keys re-learn their homes as traffic
        returns.  The on-disk stage cache still makes the re-preparation
        cheap.
        """
        self._home.clear()

    def stats(self) -> dict:
        """Routing counters for the service ``stats`` endpoint."""
        return {"workers": self.num_workers,
                "known_keys": len(self._home),
                "warm_routed": self._warm_routed,
                "cold_routed": self._cold_routed}
