"""``repro.serve.service`` — supervised asyncio multi-worker serving.

The PR 3 engine answers one blocking session at a time; this module is
the front end that turns it into a *service*: many concurrent
connections, N supervised engine-worker processes, and explicit
operational semantics under load.  The shape follows the long-lived
supervisor/worker/watchdog pattern (async actor supervision with
monitored links): the asyncio process owns no model — it parses,
routes, queues and delivers, while every expensive byte of work happens
in :mod:`repro.serve.supervisor` worker processes.

Semantics, in the order they matter operationally:

* **Backpressure** — bounded global and per-connection queues.  A
  predict that would overflow either is answered immediately with
  ``{"ok": false, "status": "overloaded"}`` instead of being buffered
  without bound; the client decides whether to back off or shed.
* **Two-lane routing** — :class:`~repro.serve.router.Router` sends
  first-seen designs to per-worker *cold* queues (they will pay
  place-and-route) and repeat designs to their home worker's *warm*
  queue.  Warm queues drain with strict priority and cold jobs dispatch
  one request at a time, so a warm request is never queued behind the
  cold preparation backlog — it waits at most one in-flight job.
* **Auto-flush deadline** — warm requests buffer up to ``max_batch`` to
  share one block-diagonal forward pass, but never longer than
  ``flush_deadline_ms``: the latency target triggers the batch even
  when the size trigger hasn't fired.  An explicit ``flush`` op forces
  every buffer and barriers until the connection's requests are
  answered.
* **Crash containment** — a worker killed or hung mid-batch is detected
  by the supervisor's watchdog and restarted; the affected requests are
  retried once on the fresh worker and, failing that, answered with an
  explicit error.  Requests are never silently dropped and never hang.
* **Graceful drain/reload** — ``reload`` barriers in-flight jobs, swaps
  the checkpoint in every worker, then resumes: requests queued behind
  the reload are answered by the *new* model and none are dropped.
  ``shutdown`` drains every queued request before the server stops
  accepting; both ops are admin-scoped when ``admin_token`` is set.

Wire protocol: a superset of :mod:`repro.serve.server` v2 — see
``docs/serving.md`` for the op table.  Entry point: ``repro.cli serve
--workers N --port P``.
"""

from __future__ import annotations

import asyncio
import json
import time
from collections import deque
from dataclasses import dataclass, field

from .engine import ServeConfig
from .router import Router
from .server import (MAX_LINE_BYTES, protocol_version_error,
                     server_identity)
from .supervisor import Supervisor, WorkerCrashed, WorkerError, WorkerSpec

__all__ = ["ServiceConfig", "ServeService"]


@dataclass
class ServiceConfig:
    """Operational knobs of the multi-worker serving service.

    ``workers`` sizes the engine-worker pool; ``max_queue`` /
    ``max_queue_per_conn`` bound the admitted-but-unanswered requests
    globally and per connection (overflow gets an immediate
    backpressure reply); ``flush_deadline_ms`` is the auto-flush latency
    target for warm batches; ``job_timeout_s`` is the hung-worker
    watchdog; ``max_retries`` caps re-dispatches of a batch whose worker
    crashed; ``admin_token``, when set, gates ``reload``/``shutdown``.
    """

    workers: int = 2
    max_batch: int = 8
    flush_deadline_ms: float = 25.0
    max_queue: int = 256
    max_queue_per_conn: int = 64
    job_timeout_s: float = 120.0
    max_retries: int = 1
    admin_token: str | None = None
    start_method: str = "spawn"
    max_line_bytes: int = MAX_LINE_BYTES


@dataclass(eq=False)  # identity semantics: items live in per-conn sets
class _Item:
    """One admitted predict request travelling through the service."""

    payload: dict
    key: str
    lane: str
    conn: "_Connection"
    future: asyncio.Future
    enqueued_at: float
    deadline_at: float
    retries: int = 0

    @property
    def request_id(self):
        return self.payload.get("id")


@dataclass
class _Connection:
    """Per-connection delivery state (outbox keeps writes serialised)."""

    writer: asyncio.StreamWriter
    outbox: asyncio.Queue = field(default_factory=asyncio.Queue)
    outstanding: set = field(default_factory=set)
    alive: bool = True
    queued: int = 0


class ServeService:
    """Asyncio front end over a :class:`~repro.serve.supervisor.Supervisor`.

    Construct, then either ``await run(host, port)`` (blocks until a
    drained shutdown) or drive :meth:`start` / :meth:`stop` directly
    around a custom server.  ``supervisor`` is injectable for tests — it
    must provide ``start/stop/dispatch/reload/stats/restarts``.
    """

    def __init__(self, checkpoint: str | None,
                 serve: ServeConfig | None = None,
                 config: ServiceConfig | None = None,
                 default_suite: str = "superblue",
                 dtype: str | None = None,
                 supervisor=None):
        self.config = config or ServiceConfig()
        self.checkpoint = checkpoint
        self.router = Router(self.config.workers,
                             default_suite=default_suite)
        if supervisor is None:
            if checkpoint is None:
                raise ValueError("a checkpoint path is required unless a "
                                 "supervisor is injected")
            supervisor = Supervisor(
                WorkerSpec(checkpoint=checkpoint,
                           serve=serve or ServeConfig(),
                           default_suite=default_suite, dtype=dtype),
                num_workers=self.config.workers,
                job_timeout_s=self.config.job_timeout_s,
                start_method=self.config.start_method)
        self.supervisor = supervisor
        workers = self.config.workers
        self._warm: list[deque[_Item]] = [deque() for _ in range(workers)]
        self._cold: list[deque[_Item]] = [deque() for _ in range(workers)]
        self._wake = [asyncio.Event() for _ in range(workers)]
        self._force_flush = [False] * workers
        self._gate = asyncio.Event()
        self._gate.set()
        self._idle = asyncio.Event()
        self._idle.set()
        self._drained = asyncio.Event()
        self._drained.set()
        self._stopped = asyncio.Event()
        self._admin_lock = asyncio.Lock()
        self._loops: list[asyncio.Task] = []
        self._inflight = 0
        self._queued = 0
        self._next_conn_id = 0
        self._draining = False
        self._counters = {"admitted": 0, "delivered": 0, "discarded": 0,
                          "rejected": 0, "retried": 0, "failed": 0,
                          "reloads": 0}

    # -- lifecycle -------------------------------------------------------
    async def start(self) -> None:
        """Start the worker pool and the per-worker dispatch loops."""
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self.supervisor.start)
        self._loops = [asyncio.create_task(self._worker_loop(w),
                                           name=f"serve-worker-{w}")
                       for w in range(self.config.workers)]

    async def stop(self) -> None:
        """Cancel dispatch loops and stop the worker pool."""
        for task in self._loops:
            task.cancel()
        for task in self._loops:
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._loops = []
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self.supervisor.stop)

    async def run(self, host: str = "127.0.0.1", port: int = 0,
                  ready_callback=None) -> None:
        """Serve TCP until a drained ``shutdown``; the CLI entry point."""
        await self.start()
        server = await asyncio.start_server(
            self._handle_connection, host, port,
            limit=self.config.max_line_bytes)
        bound_port = server.sockets[0].getsockname()[1]
        if ready_callback is not None:
            ready_callback(bound_port)
        try:
            async with server:
                await self._stopped.wait()
        finally:
            await self.stop()

    # -- intake ----------------------------------------------------------
    def _reject(self, request_id, status: str, error: str) -> dict:
        self._counters["rejected"] += 1
        return {"ok": False, "id": request_id, "status": status,
                "error": error}

    def _admit_predict(self, conn: _Connection, payload: dict) -> dict:
        """Queue one predict or explain why not; returns the ack reply."""
        request_id = payload.get("id")
        if self._draining:
            return self._reject(request_id, "draining",
                                "server is draining; retry elsewhere")
        if self._queued >= self.config.max_queue:
            return self._reject(
                request_id, "overloaded",
                f"backpressure: global queue full "
                f"({self._queued}/{self.config.max_queue}); retry later")
        if conn.queued >= self.config.max_queue_per_conn:
            return self._reject(
                request_id, "overloaded",
                f"backpressure: connection queue full "
                f"({conn.queued}/{self.config.max_queue_per_conn}); "
                f"flush or slow down")
        channel = payload.get("channel", "h")
        if channel not in ("h", "v", "both"):
            return self._reject(request_id, "failed",
                                f"unknown channel {channel!r}; expected "
                                f"'h', 'v' or 'both'")
        try:
            route = self.router.route(payload)
        except ValueError as exc:
            return self._reject(request_id, "failed", str(exc))
        now = time.monotonic()
        item = _Item(payload=payload, key=route.key, lane=route.lane,
                     conn=conn, future=asyncio.get_running_loop()
                     .create_future(), enqueued_at=now,
                     deadline_at=now + self.config.flush_deadline_ms / 1000.0)
        lane = self._warm if route.lane == "warm" else self._cold
        lane[route.worker].append(item)
        conn.outstanding.add(item)
        conn.queued += 1
        self._queued += 1
        self._drained.clear()
        self._counters["admitted"] += 1
        self._wake[route.worker].set()
        return {"ok": True, "id": request_id, "status": "queued",
                "worker": route.worker, "lane": route.lane,
                "pending": self._queued}

    # -- per-worker dispatch ---------------------------------------------
    def _take_batch(self, w: int) -> list[_Item] | None:
        """The next batch worker ``w`` should run, or None to sleep.

        Warm items go first, in batches up to ``max_batch``, but only
        once *due* (size trigger, auto-flush deadline, or a forced
        flush).  Cold items dispatch one at a time so a warm arrival
        waits at most one preparation, never a backlog.
        """
        warm = self._warm[w]
        if warm:
            due = (len(warm) >= self.config.max_batch
                   or self._force_flush[w]
                   or time.monotonic() >= warm[0].deadline_at)
            if due:
                batch = [warm.popleft()
                         for _ in range(min(len(warm),
                                            self.config.max_batch))]
                if not warm:
                    self._force_flush[w] = False
                return batch
        if self._cold[w]:
            return [self._cold[w].popleft()]
        return None

    def _sleep_seconds(self, w: int) -> float | None:
        """How long worker ``w`` may sleep before its oldest warm is due."""
        if not self._warm[w]:
            return None
        return max(0.0, self._warm[w][0].deadline_at - time.monotonic())

    async def _worker_loop(self, w: int) -> None:
        loop = asyncio.get_running_loop()
        while True:
            await self._gate.wait()
            batch = self._take_batch(w)
            if batch is None:
                # No await separates _take_batch from clear(), so no
                # admit can slip between them; sleep until woken or
                # until the oldest buffered warm item hits its deadline.
                self._wake[w].clear()
                try:
                    await asyncio.wait_for(self._wake[w].wait(),
                                           self._sleep_seconds(w))
                except TimeoutError:
                    pass
                continue
            self._inflight += 1
            self._idle.clear()
            try:
                payloads = [item.payload for item in batch]
                try:
                    replies = await loop.run_in_executor(
                        None, self.supervisor.dispatch, w,
                        "predict_batch", payloads)
                except WorkerCrashed as exc:
                    self._handle_crash(w, batch, exc)
                    continue
                except WorkerError as exc:
                    replies = [{"ok": False, "id": item.request_id,
                                "status": "failed", "error": str(exc)}
                               for item in batch]
                self._deliver(batch, replies)
            finally:
                self._inflight -= 1
                if self._inflight == 0:
                    self._idle.set()

    def _handle_crash(self, w: int, batch: list[_Item],
                      exc: WorkerCrashed) -> None:
        """Retry a crashed batch on the restarted worker, or fail it."""
        retry: list[_Item] = []
        failed: list[_Item] = []
        for item in batch:
            (retry if item.retries < self.config.max_retries
             else failed).append(item)
        for item in reversed(retry):
            item.retries += 1
            lane = self._warm if item.lane == "warm" else self._cold
            lane[w].appendleft(item)
        if retry:
            self._counters["retried"] += len(retry)
            self._wake[w].set()
        if failed:
            self._counters["failed"] += len(failed)
            self._deliver(failed, [
                {"ok": False, "id": item.request_id, "status": "failed",
                 "error": f"{exc} while serving this request "
                          f"(after {item.retries} retr"
                          f"{'y' if item.retries == 1 else 'ies'})"}
                for item in failed])

    def _deliver(self, batch: list[_Item], replies: list[dict]) -> None:
        """Hand each item its reply: outbox, future, and accounting."""
        for item, reply in zip(batch, replies):
            conn = item.conn
            conn.outstanding.discard(item)
            conn.queued -= 1
            self._queued -= 1
            if conn.alive:
                self._counters["delivered"] += 1
                conn.outbox.put_nowait(reply)
            else:
                # The client vanished before its answer was ready; the
                # work is complete and the accounting — delivered vs
                # discarded — is what remains of it (same contract as
                # the engine loop's FlushDeliveryError).
                self._counters["discarded"] += 1
            if not item.future.done():
                item.future.set_result(reply)
        if self._queued == 0:
            self._drained.set()

    def _force_all(self) -> None:
        """Force every warm buffer to dispatch at its next pick."""
        for w in range(self.config.workers):
            if self._warm[w] or self._cold[w]:
                self._force_flush[w] = True
                self._wake[w].set()

    # -- admin ops -------------------------------------------------------
    def _admin_error(self, payload: dict) -> str | None:
        token = self.config.admin_token
        if token is not None and payload.get("token") != token:
            return "admin op requires a valid 'token'"
        return None

    async def _reload(self, checkpoint: str) -> dict:
        """Swap checkpoints without dropping a single queued request.

        Barrier order is the whole semantics: close the dispatch gate,
        wait for in-flight jobs only (queued items stay queued), reload
        every worker, reopen.  Everything still queued is then answered
        by the new model.
        """
        async with self._admin_lock:
            self._gate.clear()
            loop = asyncio.get_running_loop()
            try:
                await self._idle.wait()
                acks = await loop.run_in_executor(
                    None, self.supervisor.reload, checkpoint)
                self.checkpoint = checkpoint
                self.router.forget()
                self._counters["reloads"] += 1
            finally:
                self._gate.set()
                for w in range(self.config.workers):
                    self._wake[w].set()
        return {"ok": True, "status": "reloaded",
                "checkpoint": checkpoint, "workers": acks}

    async def _drain(self) -> int:
        """Stop admitting, force-flush, and wait out every queued item."""
        self._draining = True
        self._force_all()
        remaining = self._queued
        await self._drained.wait()
        return remaining

    def _stats(self) -> dict:
        queues = [{"warm": len(self._warm[w]), "cold": len(self._cold[w])}
                  for w in range(self.config.workers)]
        return {
            "service": {**self._counters,
                        "workers": self.config.workers,
                        "queued": self._queued,
                        "inflight": self._inflight,
                        "worker_restarts": self.supervisor.restarts,
                        "degraded": bool(getattr(self.supervisor,
                                                 "degraded", False)),
                        "draining": self._draining,
                        "checkpoint": self.checkpoint},
            "router": self.router.stats(),
            "queues": queues,
        }

    # -- connection handling ---------------------------------------------
    async def _writer_loop(self, conn: _Connection) -> None:
        while True:
            reply = await conn.outbox.get()
            if reply is None:
                return
            try:
                conn.writer.write((json.dumps(reply) + "\n").encode())
                await conn.writer.drain()
            except (ConnectionError, OSError):
                conn.alive = False
                return

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        conn = _Connection(writer=writer)
        writer_task = asyncio.create_task(self._writer_loop(conn))
        try:
            await self._session(conn, reader)
        finally:
            conn.alive = False
            conn.outbox.put_nowait(None)
            # Let the writer drain what it already has (acks for the
            # session's last ops), then close.
            try:
                await asyncio.wait_for(writer_task, timeout=5.0)
            except (TimeoutError, asyncio.CancelledError):
                writer_task.cancel()
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _session(self, conn: _Connection,
                       reader: asyncio.StreamReader) -> None:
        """One connection's read loop; malformed traffic only kills it."""
        while True:
            try:
                line = await reader.readline()
            except (asyncio.LimitOverrunError, ValueError):
                # The line outgrew the stream limit; the framing is gone,
                # so end this session (and only this session).
                conn.outbox.put_nowait(
                    {"ok": False,
                     "error": f"request line exceeds "
                              f"{self.config.max_line_bytes} bytes"})
                return
            if not line:
                return
            if not line.strip():
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as exc:
                conn.outbox.put_nowait(
                    {"ok": False, "error": f"invalid JSON: {exc}"})
                continue
            if not isinstance(payload, dict):
                conn.outbox.put_nowait(
                    {"ok": False,
                     "error": "request must be a JSON object"})
                continue
            if not await self._handle_op(conn, payload):
                return

    async def _handle_op(self, conn: _Connection, payload: dict) -> bool:
        """Answer one request; False ends the session (shutdown)."""
        op = payload.get("op", "predict")
        request_id = payload.get("id")
        version_error = protocol_version_error(payload)
        if version_error is not None:
            conn.outbox.put_nowait({"ok": False, "id": request_id,
                                    "error": version_error})
            return True
        if op == "predict":
            conn.outbox.put_nowait(self._admit_predict(conn, payload))
        elif op == "flush":
            self._force_all()
            pending = [item.future for item in list(conn.outstanding)]
            if pending:
                await asyncio.wait(pending)
            conn.outbox.put_nowait({"ok": True, "status": "flushed",
                                    "count": len(pending)})
        elif op == "stats":
            stats = self._stats()
            if payload.get("workers"):
                loop = asyncio.get_running_loop()
                stats["workers"] = await loop.run_in_executor(
                    None, self.supervisor.stats)
            conn.outbox.put_nowait({"ok": True, "stats": stats,
                                    "server": server_identity("service")})
        elif op == "ping":
            conn.outbox.put_nowait({"ok": True, "status": "pong",
                                    "server": server_identity("service")})
        elif op == "reload":
            error = self._admin_error(payload)
            checkpoint = payload.get("checkpoint")
            if error is None and not checkpoint:
                error = "reload needs a 'checkpoint' path"
            if error is not None:
                conn.outbox.put_nowait({"ok": False, "id": request_id,
                                        "error": error})
            else:
                conn.outbox.put_nowait(await self._reload(checkpoint))
        elif op == "shutdown":
            error = self._admin_error(payload)
            if error is not None:
                conn.outbox.put_nowait({"ok": False, "id": request_id,
                                        "error": error})
                return True
            drained = await self._drain()
            conn.outbox.put_nowait({"ok": True, "status": "shutting down",
                                    "drained": drained})
            self._stopped.set()
            return False
        else:
            conn.outbox.put_nowait({"ok": False, "id": request_id,
                                    "error": f"unknown op {op!r}"})
        return True
