"""In-memory serving cache for prepared, model-ready samples.

The pipeline's :class:`~repro.pipeline.cache.StageCache` already makes
repeat preparation of a design cheap (disk hit instead of place/route),
but a serving loop answering many requests for the same few designs
should not even deserialise the graph blob or re-standardise features.
:class:`SampleCache` is the hot tier above it: an LRU of fully-built
:class:`~repro.data.dataset.GraphSample` objects keyed by the pipeline's
content-addressed *graph* stage key, so a warm request does zero
placement, routing, featurisation or disk I/O.

Keys are content hashes (design fingerprint chained with the config
fingerprints of every stage), so entries can never serve stale results:
any change to the design or the pipeline configuration changes the key.
"""

from __future__ import annotations

from collections import OrderedDict

from ..data.dataset import GraphSample

__all__ = ["SampleCache"]


class SampleCache:
    """LRU of prepared samples keyed by content-addressed stage keys."""

    def __init__(self, capacity: int = 64):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._entries: OrderedDict[str, GraphSample] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def get(self, key: str) -> GraphSample | None:
        """The cached sample for ``key`` (refreshed as most-recent), or None."""
        sample = self._entries.get(key)
        if sample is None:
            self.misses += 1
            return None
        self.hits += 1
        self._entries.move_to_end(key)
        return sample

    def put(self, key: str, sample: GraphSample) -> None:
        """Insert ``sample``, evicting the least-recently-used overflow."""
        self._entries[key] = sample
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        """Drop every entry and reset the hit/miss counters."""
        self._entries.clear()
        self.hits = 0
        self.misses = 0

    def stats(self) -> dict:
        """Counters for the engine's ``stats`` endpoint."""
        return {"entries": len(self._entries), "capacity": self.capacity,
                "hits": self.hits, "misses": self.misses}
